"""Tests for mask-level connectivity extraction."""

import pytest

from repro.cif.semantics import FlatGeometry
from repro.extract.netlist import extract_netlist
from repro.geometry.box import Box
from repro.geometry.layers import nmos_technology
from repro.geometry.path import Path
from repro.geometry.point import Point

TECH = nmos_technology()
METAL = TECH.layer("metal")
POLY = TECH.layer("poly")
DIFF = TECH.layer("diffusion")
CONTACT = TECH.layer("contact")
BURIED = TECH.layer("buried")


def geom(shapes):
    g = FlatGeometry()
    for layer, box in shapes:
        g.boxes.append((layer, box))
    return g


class TestSameLayerMerging:
    def test_touching_boxes_merge(self):
        nl = extract_netlist(
            geom([(METAL, Box(0, 0, 10, 10)), (METAL, Box(10, 0, 20, 10))]), TECH
        )
        assert nl.connected(Point(1, 1), "metal", Point(19, 1), "metal")

    def test_overlapping_boxes_merge(self):
        nl = extract_netlist(
            geom([(METAL, Box(0, 0, 10, 10)), (METAL, Box(5, 5, 20, 20))]), TECH
        )
        assert nl.node_count == 1

    def test_disjoint_boxes_stay_apart(self):
        nl = extract_netlist(
            geom([(METAL, Box(0, 0, 10, 10)), (METAL, Box(50, 0, 60, 10))]), TECH
        )
        assert not nl.connected(Point(1, 1), "metal", Point(55, 1), "metal")
        assert nl.node_count == 2

    def test_chain_merges_transitively(self):
        boxes = [(METAL, Box(i * 10, 0, i * 10 + 10, 10)) for i in range(5)]
        nl = extract_netlist(geom(boxes), TECH)
        assert nl.connected(Point(1, 1), "metal", Point(49, 1), "metal")

    def test_different_layers_stay_apart(self):
        nl = extract_netlist(
            geom([(METAL, Box(0, 0, 10, 10)), (POLY, Box(0, 0, 10, 10))]), TECH
        )
        assert not nl.connected(Point(5, 5), "metal", Point(5, 5), "poly")

    def test_paths_participate(self):
        g = geom([(METAL, Box(0, 0, 10, 10))])
        g.paths.append(Path(METAL, 4, (Point(10, 5), Point(100, 5))))
        nl = extract_netlist(g, TECH)
        assert nl.connected(Point(5, 5), "metal", Point(90, 5), "metal")


class TestCuts:
    def test_contact_fuses_metal_poly(self):
        nl = extract_netlist(
            geom(
                [
                    (METAL, Box(0, 0, 10, 10)),
                    (POLY, Box(0, 0, 10, 10)),
                    (CONTACT, Box(4, 4, 6, 6)),
                ]
            ),
            TECH,
        )
        assert nl.connected(Point(5, 5), "metal", Point(5, 5), "poly")

    def test_buried_fuses_poly_diffusion_only(self):
        nl = extract_netlist(
            geom(
                [
                    (METAL, Box(0, 0, 10, 10)),
                    (POLY, Box(0, 0, 10, 10)),
                    (DIFF, Box(0, 0, 10, 10)),
                    (BURIED, Box(4, 4, 6, 6)),
                ]
            ),
            TECH,
        )
        assert nl.connected(Point(5, 5), "poly", Point(5, 5), "diffusion")
        assert not nl.connected(Point(5, 5), "metal", Point(5, 5), "poly")

    def test_cut_must_touch(self):
        nl = extract_netlist(
            geom(
                [
                    (METAL, Box(0, 0, 10, 10)),
                    (POLY, Box(0, 0, 10, 10)),
                    (CONTACT, Box(50, 50, 52, 52)),
                ]
            ),
            TECH,
        )
        assert not nl.connected(Point(5, 5), "metal", Point(5, 5), "poly")


class TestProbes:
    def test_node_at_open_space(self):
        nl = extract_netlist(geom([(METAL, Box(0, 0, 10, 10))]), TECH)
        assert nl.node_at(Point(100, 100), "metal") is None

    def test_connected_requires_both_probes(self):
        nl = extract_netlist(geom([(METAL, Box(0, 0, 10, 10))]), TECH)
        assert not nl.connected(Point(5, 5), "metal", Point(100, 100), "metal")

    def test_node_size(self):
        nl = extract_netlist(
            geom([(METAL, Box(0, 0, 10, 10)), (METAL, Box(10, 0, 20, 10))]), TECH
        )
        assert nl.node_size(Point(5, 5), "metal") == 2
        assert nl.node_size(Point(100, 100), "metal") == 0


class TestRealCells:
    def test_gate_input_reaches_its_transistor(self):
        from repro.library.stock import filter_library
        from repro.sticks.expand import expand_to_cif

        library = filter_library(TECH)
        nand = library.get("nand")
        flat = expand_to_cif(nand.sticks_cell, TECH).flatten()
        nl = extract_netlist(flat, TECH)
        a = nand.connector("A").position
        # Pin A is continuous with the poly over the first pulldown.
        assert nl.connected(a, "poly", Point(900, 1800), "poly")

    def test_gate_output_reaches_pullup_via_buried(self):
        from repro.library.stock import filter_library
        from repro.sticks.expand import expand_to_cif

        library = filter_library(TECH)
        nand = library.get("nand")
        flat = expand_to_cif(nand.sticks_cell, TECH).flatten()
        nl = extract_netlist(flat, TECH)
        out = nand.connector("OUT").position
        # OUT (poly) reaches the diffusion output bar through the
        # buried contact.
        assert nl.connected(out, "poly", Point(2400, 3400), "diffusion")

    def test_gate_inputs_isolated_from_each_other(self):
        from repro.library.stock import filter_library
        from repro.sticks.expand import expand_to_cif

        library = filter_library(TECH)
        nand = library.get("nand")
        flat = expand_to_cif(nand.sticks_cell, TECH).flatten()
        nl = extract_netlist(flat, TECH)
        a = nand.connector("A").position
        b = nand.connector("B").position
        out = nand.connector("OUT").position
        assert not nl.connected(a, "poly", b, "poly")
        assert not nl.connected(a, "poly", out, "poly")

    def test_abutted_row_is_continuous(self):
        """Two abutted srcells: the rails and the data chain are one
        node each at mask level — Riot's 'connection by abutment' is
        electrically real."""
        from repro.core.convert import composition_to_cif
        from repro.cif.parser import parse_cif
        from repro.cif.semantics import elaborate
        from repro.core.editor import RiotEditor
        from repro.library.stock import filter_library

        editor = RiotEditor(TECH)
        editor.library = filter_library(TECH)
        editor.new_cell("row")
        editor.create(at=Point(0, 0), cell_name="srcell", nx=2, name="sr")
        text = composition_to_cif(editor.cell, TECH)
        flat = elaborate(parse_cif(text), TECH).cell("row").flatten()
        nl = extract_netlist(flat, TECH)
        sr = editor.cell.instance("sr")
        in_pos = sr.connector("IN[0,0]").position
        out_pos = sr.connector("OUT[1,0]").position
        assert nl.connected(in_pos, "metal", out_pos, "metal")
        assert nl.connected(
            sr.connector("PWRL[0,0]").position,
            "metal",
            sr.connector("PWRR[1,0]").position,
            "metal",
        )
        # Data and power are distinct nodes.
        assert not nl.connected(
            in_pos, "metal", sr.connector("PWRL[0,0]").position, "metal"
        )
