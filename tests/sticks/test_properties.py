"""Property-based tests for the Sticks pipeline."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.box import Box
from repro.geometry.layers import nmos_technology
from repro.geometry.point import Point
from repro.sticks.expand import expand_to_cif
from repro.sticks.model import Contact, Device, Pin, SticksCell, SymbolicWire
from repro.sticks.parser import parse_sticks
from repro.sticks.writer import write_sticks

TECH = nmos_technology()
LAYERS = ("metal", "poly", "diffusion")

coord = st.integers(min_value=-50, max_value=50).map(lambda v: v * 100)
width = st.sampled_from((None, 500, 750, 1000))


@st.composite
def manhattan_points(draw, min_points=2, max_points=5):
    points = [Point(draw(coord), draw(coord))]
    for _ in range(draw(st.integers(min_value=min_points - 1, max_value=max_points - 1))):
        if draw(st.booleans()):
            points.append(Point(draw(coord), points[-1].y))
        else:
            points.append(Point(points[-1].x, draw(coord)))
    return tuple(points)


@st.composite
def cells(draw):
    cell = SticksCell("prop")
    for i in range(draw(st.integers(min_value=1, max_value=5))):
        cell.wires.append(
            SymbolicWire(draw(st.sampled_from(LAYERS)), draw(manhattan_points()), draw(width))
        )
    for i in range(draw(st.integers(min_value=0, max_value=3))):
        cell.pins.append(
            Pin(f"P{i}", draw(st.sampled_from(LAYERS)), Point(draw(coord), draw(coord)), draw(width))
        )
    for i in range(draw(st.integers(min_value=0, max_value=2))):
        cell.devices.append(
            Device(
                draw(st.sampled_from(("enh", "dep"))),
                Point(draw(coord), draw(coord)),
                draw(st.sampled_from(("h", "v"))),
                draw(st.sampled_from((None, 500, 1000))),
                draw(st.sampled_from((None, 500, 1000))),
            )
        )
    for i in range(draw(st.integers(min_value=0, max_value=2))):
        a, b = draw(
            st.sampled_from(
                [("metal", "poly"), ("metal", "diffusion"), ("poly", "diffusion")]
            )
        )
        cell.contacts.append(Contact(a, b, Point(draw(coord), draw(coord))))
    if draw(st.booleans()):
        pts = [p for p in cell.all_points()]
        box = Box.from_points(pts)
        cell.boundary = box.inflated(draw(st.integers(min_value=0, max_value=10)) * 100)
    return cell


class TestRoundTrip:
    @settings(max_examples=80, deadline=None)
    @given(cells())
    def test_text_roundtrip_exact(self, cell):
        again = parse_sticks(write_sticks([cell]))
        assert again == [cell]

    @settings(max_examples=50, deadline=None)
    @given(cells())
    def test_double_write_stable(self, cell):
        once = write_sticks([cell])
        assert write_sticks(parse_sticks(once)) == once


class TestExpansion:
    @settings(max_examples=60, deadline=None)
    @given(cells())
    def test_expansion_deterministic(self, cell):
        a = expand_to_cif(cell, TECH)
        b = expand_to_cif(cell, TECH)
        assert [(l.name, box) for l, box in a.geometry.boxes] == [
            (l.name, box) for l, box in b.geometry.boxes
        ]

    @settings(max_examples=60, deadline=None)
    @given(cells())
    def test_pins_become_connectors(self, cell):
        out = expand_to_cif(cell, TECH)
        assert len(out.connectors) == len(cell.pins)
        for pin, conn in zip(cell.pins, out.connectors):
            assert conn.position == pin.point
            expected = pin.width or TECH.min_width(pin.layer)
            assert conn.width == expected

    @settings(max_examples=60, deadline=None)
    @given(cells(), st.integers(min_value=-5000, max_value=5000))
    def test_translation_commutes_with_expansion(self, cell, d):
        moved_then_expanded = expand_to_cif(cell.translated(d, -d), TECH)
        expanded = expand_to_cif(cell, TECH)
        for (la, a), (lb, b) in zip(
            expanded.geometry.boxes, moved_then_expanded.geometry.boxes
        ):
            assert la.name == lb.name
            assert a.translated(d, -d) == b

    @settings(max_examples=60, deadline=None)
    @given(cells())
    def test_device_count_in_geometry(self, cell):
        out = expand_to_cif(cell, TECH)
        implants = sum(
            1 for layer, _ in out.geometry.boxes if layer.name == "implant"
        )
        assert implants == sum(1 for d in cell.devices if d.kind == "dep")
