"""Parser/writer round-trip tests for the Sticks format."""

import pytest

from repro.geometry.box import Box
from repro.geometry.point import Point
from repro.sticks.errors import SticksError
from repro.sticks.model import Contact, Device, Pin, SticksCell, SymbolicWire
from repro.sticks.parser import parse_sticks
from repro.sticks.writer import write_sticks

SAMPLE = """
# an inverter
STICKS inv
BBOX 0 0 2000 1500
PIN VDD metal 0 1250 750
PIN GND metal 0 250 750
PIN IN poly 0 750
PIN OUT metal 2000 750 750
WIRE metal 750 0 1250 2000 1250
WIRE metal - 0 250 2000 250
WIRE poly - 0 750 1000 750
DEVICE enh 1000 750 v
DEVICE dep 1000 1000 v 500 500
CONTACT metal diffusion 1000 1250
END
"""


class TestParse:
    def test_cell_parsed(self):
        cells = parse_sticks(SAMPLE)
        assert len(cells) == 1
        cell = cells[0]
        assert cell.name == "inv"
        assert cell.boundary == Box(0, 0, 2000, 1500)
        assert len(cell.pins) == 4
        assert len(cell.wires) == 3
        assert len(cell.devices) == 2
        assert len(cell.contacts) == 1

    def test_pin_fields(self):
        cell = parse_sticks(SAMPLE)[0]
        vdd = cell.pin("VDD")
        assert vdd.layer == "metal"
        assert vdd.point == Point(0, 1250)
        assert vdd.width == 750
        assert cell.pin("IN").width is None

    def test_default_wire_width(self):
        cell = parse_sticks(SAMPLE)[0]
        assert cell.wires[0].width == 750
        assert cell.wires[1].width is None

    def test_device_dims(self):
        cell = parse_sticks(SAMPLE)[0]
        assert cell.devices[0].length is None
        assert cell.devices[1].length == 500
        assert cell.devices[1].kind == "dep"

    def test_multiple_cells(self):
        text = (
            "STICKS a\nPIN P metal 0 0\nWIRE metal - 0 0 10 0\nEND\n"
            "STICKS b\nPIN Q metal 0 0\nWIRE metal - 0 0 10 0\nEND\n"
        )
        cells = parse_sticks(text)
        assert [c.name for c in cells] == ["a", "b"]

    def test_comments_and_blanks(self):
        text = "\n# hi\nSTICKS a # inline\nWIRE metal - 0 0 10 0\n\nEND\n"
        assert parse_sticks(text)[0].name == "a"


class TestParseErrors:
    def test_missing_end(self):
        with pytest.raises(SticksError, match="missing END"):
            parse_sticks("STICKS a\nWIRE metal - 0 0 10 0\n")

    def test_nested_sticks(self):
        with pytest.raises(SticksError, match="before END"):
            parse_sticks("STICKS a\nSTICKS b\nEND\nEND\n")

    def test_component_outside_cell(self):
        with pytest.raises(SticksError, match="outside a STICKS"):
            parse_sticks("PIN A metal 0 0\n")

    def test_unknown_keyword(self):
        with pytest.raises(SticksError, match="unknown keyword 'BLOB'"):
            parse_sticks("STICKS a\nBLOB 1\nEND\n")

    def test_line_number_reported(self):
        with pytest.raises(SticksError, match="line 3"):
            parse_sticks("STICKS a\nWIRE metal - 0 0 10 0\nPIN oops\nEND\n")

    def test_bad_integer(self):
        with pytest.raises(SticksError, match="not an integer"):
            parse_sticks("STICKS a\nPIN A metal x 0\nEND\n")

    def test_odd_wire_coords(self):
        with pytest.raises(SticksError, match="odd number"):
            parse_sticks("STICKS a\nWIRE metal - 0 0 10 0 20\nEND\n")

    def test_negative_width(self):
        with pytest.raises(SticksError, match="width must be positive"):
            parse_sticks("STICKS a\nPIN A metal 0 0 -5\nEND\n")

    def test_bad_device_kind(self):
        with pytest.raises(SticksError, match="unknown device kind"):
            parse_sticks("STICKS a\nDEVICE cmos 0 0 v\nEND\n")

    def test_bad_orientation(self):
        with pytest.raises(SticksError, match="unknown device orientation"):
            parse_sticks("STICKS a\nDEVICE enh 0 0 x\nEND\n")

    def test_diagonal_wire_with_line(self):
        with pytest.raises(SticksError, match="line 2.*non-Manhattan"):
            parse_sticks("STICKS a\nWIRE metal - 0 0 5 5\nEND\n")

    def test_end_with_args(self):
        with pytest.raises(SticksError, match="END takes no arguments"):
            parse_sticks("STICKS a\nWIRE metal - 0 0 1 0\nEND now\n")

    def test_invalid_cell_rejected_at_end(self):
        text = "STICKS a\nPIN P metal 0 0\nPIN P metal 5 5\nEND\n"
        with pytest.raises(SticksError, match="duplicate pin"):
            parse_sticks(text)


class TestRoundTrip:
    def test_full_roundtrip(self):
        original = parse_sticks(SAMPLE)
        again = parse_sticks(write_sticks(original))
        assert again == original

    def test_roundtrip_preserves_optional_fields(self):
        cell = SticksCell("t")
        cell.pins.append(Pin("A", "poly", Point(0, 0)))
        cell.wires.append(SymbolicWire("poly", (Point(0, 0), Point(100, 0))))
        cell.devices.append(Device("dep", Point(50, 0), "h"))
        cell.contacts.append(Contact("poly", "metal", Point(100, 0)))
        again = parse_sticks(write_sticks([cell]))[0]
        assert again == cell

    def test_roundtrip_many_cells(self):
        cells = []
        for i in range(5):
            cell = SticksCell(f"c{i}")
            cell.wires.append(
                SymbolicWire("metal", (Point(0, 0), Point(100 * (i + 1), 0)), 750)
            )
            cells.append(cell)
        assert parse_sticks(write_sticks(cells)) == cells
