"""Tests for sticks-to-mask expansion."""

import pytest

from repro.geometry.box import Box
from repro.geometry.layers import nmos_technology
from repro.geometry.point import Point
from repro.sticks.errors import SticksError
from repro.sticks.expand import expand_to_cif, expanded_bounding_box
from repro.sticks.model import Contact, Device, Pin, SticksCell, SymbolicWire

TECH = nmos_technology()  # lambda = 250


def boxes_on(cif_cell, layer_name):
    return [b for layer, b in cif_cell.geometry.boxes if layer.name == layer_name]


class TestWires:
    def test_explicit_width(self):
        cell = SticksCell("w")
        cell.wires.append(SymbolicWire("metal", (Point(0, 0), Point(1000, 0)), 400))
        out = expand_to_cif(cell, TECH)
        assert out.geometry.paths[0].width == 400

    def test_default_width_is_min(self):
        cell = SticksCell("w")
        cell.wires.append(SymbolicWire("poly", (Point(0, 0), Point(1000, 0))))
        out = expand_to_cif(cell, TECH)
        assert out.geometry.paths[0].width == TECH.min_width("poly")

    def test_unknown_layer(self):
        cell = SticksCell("w")
        cell.wires.append(SymbolicWire("copper", (Point(0, 0), Point(1000, 0))))
        with pytest.raises(KeyError, match="unknown layer"):
            expand_to_cif(cell, TECH)


class TestContacts:
    def test_cut_and_pads(self):
        cell = SticksCell("c")
        cell.contacts.append(Contact("metal", "poly", Point(1000, 1000)))
        out = expand_to_cif(cell, TECH)
        cuts = boxes_on(out, "contact")
        assert cuts == [Box(750, 750, 1250, 1250)]  # 2 lambda square
        assert boxes_on(out, "metal") == [Box(500, 500, 1500, 1500)]  # 4 lambda
        assert boxes_on(out, "poly") == [Box(500, 500, 1500, 1500)]


class TestDevices:
    def test_vertical_enhancement(self):
        cell = SticksCell("d")
        cell.devices.append(Device("enh", Point(0, 0), "v"))
        out = expand_to_cif(cell, TECH)
        # Channel 2x2 lambda; diffusion overhangs 2 lambda vertically,
        # poly overhangs 2 lambda horizontally.
        assert boxes_on(out, "diffusion") == [Box(-250, -750, 250, 750)]
        assert boxes_on(out, "poly") == [Box(-750, -250, 750, 250)]
        assert boxes_on(out, "implant") == []

    def test_horizontal_device_swaps_axes(self):
        cell = SticksCell("d")
        cell.devices.append(Device("enh", Point(0, 0), "h"))
        out = expand_to_cif(cell, TECH)
        assert boxes_on(out, "diffusion") == [Box(-750, -250, 750, 250)]
        assert boxes_on(out, "poly") == [Box(-250, -750, 250, 750)]

    def test_depletion_gets_implant(self):
        cell = SticksCell("d")
        cell.devices.append(Device("dep", Point(0, 0), "v"))
        out = expand_to_cif(cell, TECH)
        assert boxes_on(out, "implant") == [Box(-750, -750, 750, 750)]

    def test_custom_channel_dims(self):
        cell = SticksCell("d")
        cell.devices.append(Device("enh", Point(0, 0), "v", 500, 1000))
        out = expand_to_cif(cell, TECH)
        # width (x extent of diffusion) = 1000, length (y extent of poly) = 500
        assert boxes_on(out, "diffusion") == [Box(-500, -750, 500, 750)]
        assert boxes_on(out, "poly") == [Box(-1000, -250, 1000, 250)]

    def test_odd_dims_rejected(self):
        cell = SticksCell("d")
        cell.devices.append(Device("enh", Point(0, 0), "v", 501, 1000))
        with pytest.raises(SticksError, match="device"):
            expand_to_cif(cell, TECH)


class TestPinsAndBbox:
    def test_pins_become_connectors(self):
        cell = SticksCell("p")
        cell.pins.append(Pin("IN", "poly", Point(0, 500)))
        cell.wires.append(SymbolicWire("poly", (Point(0, 500), Point(1000, 500))))
        out = expand_to_cif(cell, TECH)
        conn = out.connector("IN")
        assert conn.position == Point(0, 500)
        assert conn.layer.name == "poly"
        assert conn.width == TECH.min_width("poly")

    def test_pin_width_explicit(self):
        cell = SticksCell("p")
        cell.pins.append(Pin("IN", "metal", Point(0, 0), 400))
        cell.wires.append(SymbolicWire("metal", (Point(0, 0), Point(100, 0))))
        assert expand_to_cif(cell, TECH).connector("IN").width == 400

    def test_bbox_from_geometry(self):
        cell = SticksCell("b")
        cell.wires.append(SymbolicWire("metal", (Point(0, 0), Point(1000, 0)), 500))
        assert expanded_bounding_box(cell, TECH) == Box(-250, -250, 1250, 250)

    def test_bbox_explicit_boundary(self):
        cell = SticksCell("b")
        cell.boundary = Box(0, 0, 5000, 5000)
        cell.wires.append(SymbolicWire("metal", (Point(100, 100), Point(1000, 100))))
        assert expanded_bounding_box(cell, TECH) == Box(0, 0, 5000, 5000)

    def test_validation_runs(self):
        cell = SticksCell("p")
        cell.pins.append(Pin("A", "metal", Point(0, 0)))
        cell.pins.append(Pin("A", "metal", Point(1, 0)))
        with pytest.raises(SticksError, match="duplicate pin"):
            expand_to_cif(cell, TECH)

    def test_roundtrip_to_cif_text(self):
        from repro.cif.parser import parse_cif
        from repro.cif.semantics import elaborate
        from repro.cif.writer import write_cif

        cell = SticksCell("gate")
        cell.pins.append(Pin("IN", "poly", Point(0, 500), 500))
        cell.wires.append(SymbolicWire("poly", (Point(0, 500), Point(1000, 500)), 500))
        cell.devices.append(Device("enh", Point(1000, 500), "v"))
        out = expand_to_cif(cell, TECH, number=3)
        text = write_cif([out])
        design = elaborate(parse_cif(text), TECH)
        again = design.cell("gate")
        assert again.connector("IN").width == 500
        assert len(again.geometry.boxes) == 2
