"""Tests for the symbolic model."""

import pytest

from repro.geometry.box import Box
from repro.geometry.point import Point
from repro.sticks.errors import SticksError
from repro.sticks.model import (
    Contact,
    Device,
    Pin,
    SticksCell,
    SymbolicWire,
)


def simple_cell():
    cell = SticksCell("inv")
    cell.pins.append(Pin("IN", "poly", Point(0, 500)))
    cell.pins.append(Pin("OUT", "metal", Point(2000, 500)))
    cell.wires.append(
        SymbolicWire("metal", (Point(0, 500), Point(2000, 500)), 750)
    )
    cell.devices.append(Device("enh", Point(1000, 500)))
    cell.contacts.append(Contact("metal", "diffusion", Point(1500, 500)))
    return cell


class TestComponents:
    def test_wire_needs_two_points(self):
        with pytest.raises(SticksError, match="at least 2"):
            SymbolicWire("metal", (Point(0, 0),))

    def test_wire_manhattan_only(self):
        with pytest.raises(SticksError, match="non-Manhattan"):
            SymbolicWire("metal", (Point(0, 0), Point(5, 5)))

    def test_wire_segments(self):
        w = SymbolicWire("metal", (Point(0, 0), Point(5, 0), Point(5, 5)))
        assert list(w.segments()) == [
            (Point(0, 0), Point(5, 0)),
            (Point(5, 0), Point(5, 5)),
        ]

    def test_device_kind_checked(self):
        with pytest.raises(SticksError, match="device kind"):
            Device("pmos", Point(0, 0))

    def test_device_orientation_checked(self):
        with pytest.raises(SticksError, match="orientation"):
            Device("enh", Point(0, 0), "diagonal")

    def test_contact_layers_differ(self):
        with pytest.raises(SticksError, match="must differ"):
            Contact("metal", "metal", Point(0, 0))


class TestCell:
    def test_pin_lookup(self):
        cell = simple_cell()
        assert cell.pin("IN").layer == "poly"
        assert cell.has_pin("OUT")
        assert not cell.has_pin("CLK")

    def test_pin_missing(self):
        with pytest.raises(KeyError, match="no pin 'X'"):
            simple_cell().pin("X")

    def test_component_count(self):
        assert simple_cell().component_count == 5

    def test_all_points(self):
        points = list(simple_cell().all_points())
        assert Point(1000, 500) in points
        assert Point(1500, 500) in points
        assert len(points) == 6

    def test_symbolic_bbox_derived(self):
        assert simple_cell().symbolic_bounding_box() == Box(0, 500, 2000, 500)

    def test_symbolic_bbox_explicit(self):
        cell = simple_cell()
        cell.boundary = Box(0, 0, 3000, 1000)
        assert cell.symbolic_bounding_box() == Box(0, 0, 3000, 1000)

    def test_empty_cell_bbox(self):
        with pytest.raises(SticksError, match="empty"):
            SticksCell("void").symbolic_bounding_box()


class TestValidate:
    def test_valid(self):
        simple_cell().validate()

    def test_empty_rejected(self):
        with pytest.raises(SticksError, match="empty"):
            SticksCell("void").validate()

    def test_duplicate_pins(self):
        cell = simple_cell()
        cell.pins.append(Pin("IN", "metal", Point(5, 5)))
        with pytest.raises(SticksError, match="duplicate pin"):
            cell.validate()

    def test_pin_outside_boundary(self):
        cell = simple_cell()
        cell.boundary = Box(0, 0, 100, 100)
        with pytest.raises(SticksError, match="outside the boundary"):
            cell.validate()


class TestRemap:
    def test_translate(self):
        cell = simple_cell().translated(100, -100)
        assert cell.pin("IN").point == Point(100, 400)
        assert cell.devices[0].center == Point(1100, 400)

    def test_remap_stretches(self):
        cell = simple_cell().remapped(
            "inv2", lambda x: x * 2, lambda y: y
        )
        assert cell.name == "inv2"
        assert cell.pin("OUT").point == Point(4000, 500)
        assert cell.wires[0].points == (Point(0, 500), Point(4000, 500))

    def test_remap_boundary(self):
        cell = simple_cell()
        cell.boundary = Box(0, 0, 2000, 1000)
        out = cell.remapped("x", lambda x: x + 10, lambda y: y + 20)
        assert out.boundary == Box(10, 20, 2010, 1020)

    def test_remap_preserves_widths(self):
        out = simple_cell().remapped("x", lambda x: x, lambda y: y)
        assert out.wires[0].width == 750
