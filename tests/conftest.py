"""Repository-wide pytest hooks."""


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite golden files from current output instead of comparing",
    )
