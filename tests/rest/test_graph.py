"""Tests for the difference-constraint graph solver."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rest.errors import InfeasibleConstraints
from repro.rest.graph import SOURCE, ConstraintGraph, chain_constraints


class TestBasics:
    def test_single_variable_at_bound(self):
        g = ConstraintGraph()
        g.add_variable("a")
        assert g.solve() == {"a": 0}

    def test_min_separation(self):
        g = ConstraintGraph()
        g.add_min_separation("a", "b", 10)
        assert g.solve() == {"a": 0, "b": 10}

    def test_chain(self):
        g = ConstraintGraph()
        chain_constraints(g, ["a", "b", "c"], 5)
        assert g.solve() == {"a": 0, "b": 5, "c": 10}

    def test_longest_path_wins(self):
        g = ConstraintGraph()
        g.add_min_separation("a", "c", 3)
        g.add_min_separation("a", "b", 10)
        g.add_min_separation("b", "c", 10)
        assert g.solve()["c"] == 20

    def test_pin(self):
        g = ConstraintGraph()
        g.pin("a", 42)
        assert g.solve() == {"a": 42}

    def test_pin_pushes_chain(self):
        g = ConstraintGraph()
        chain_constraints(g, ["a", "b"], 10)
        g.pin("b", 100)
        got = g.solve()
        assert got["b"] == 100
        assert got["a"] == 0  # packed to the lower bound

    def test_pin_pulls_successor(self):
        g = ConstraintGraph()
        chain_constraints(g, ["a", "b"], 10)
        g.pin("a", 50)
        got = g.solve()
        assert got == {"a": 50, "b": 60}

    def test_max_separation(self):
        g = ConstraintGraph()
        g.add_min_separation("a", "b", 5)
        g.add_max_separation("a", "b", 8)
        g.pin("a", 0)
        got = g.solve()
        assert 5 <= got["b"] <= 8

    def test_equality(self):
        g = ConstraintGraph()
        g.add_equality("a", "b", 7)
        g.pin("a", 3)
        assert g.solve()["b"] == 10

    def test_lower_bound(self):
        g = ConstraintGraph()
        g.set_lower_bound("a", 25)
        assert g.solve()["a"] == 25

    def test_negative_default_bound(self):
        g = ConstraintGraph()
        g.add_variable("a")
        assert g.solve(default_lower_bound=-100) == {"a": -100}

    def test_no_bound_unreachable(self):
        g = ConstraintGraph()
        g.add_variable("a")
        with pytest.raises(InfeasibleConstraints, match="no lower bound"):
            g.solve(default_lower_bound=None)

    def test_source_name_reserved(self):
        g = ConstraintGraph()
        with pytest.raises(ValueError, match="reserved"):
            g.add_variable(SOURCE)


class TestInfeasible:
    def test_contradictory_pins(self):
        g = ConstraintGraph()
        chain_constraints(g, ["a", "b"], 10)
        g.pin("a", 0)
        g.pin("b", 5)
        with pytest.raises(InfeasibleConstraints):
            g.solve()

    def test_positive_cycle(self):
        g = ConstraintGraph()
        g.add_min_separation("a", "b", 5)
        g.add_min_separation("b", "a", -8)  # b - a >= 5 and b - a <= 8: fine
        g.solve()  # sanity: feasible
        g.add_min_separation("b", "a", 6)  # now also a - b >= 6: cycle 5+6 > 0
        with pytest.raises(InfeasibleConstraints):
            g.solve()

    def test_cycle_reported(self):
        g = ConstraintGraph()
        g.add_min_separation("a", "b", 5)
        g.add_min_separation("b", "a", 5)
        with pytest.raises(InfeasibleConstraints) as err:
            g.solve()
        assert set(err.value.cycle) <= {"a", "b"}
        assert len(err.value.cycle) >= 1

    def test_equality_conflict(self):
        g = ConstraintGraph()
        g.add_equality("a", "b", 5)
        g.add_equality("a", "b", 6)
        with pytest.raises(InfeasibleConstraints):
            g.solve()


class TestProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=9),
                st.integers(min_value=0, max_value=9),
                st.integers(min_value=-20, max_value=20),
            ),
            max_size=30,
        )
    )
    def test_solution_satisfies_all_constraints(self, triples):
        g = ConstraintGraph()
        for u, v, d in triples:
            if u != v:
                g.add_min_separation(f"v{u}", f"v{v}", d)
        try:
            got = g.solve()
        except InfeasibleConstraints:
            return
        for u, v, d in triples:
            if u != v:
                assert got[f"v{v}"] - got[f"v{u}"] >= d

    @given(
        st.lists(st.integers(min_value=1, max_value=50), min_size=1, max_size=20)
    )
    def test_chain_is_prefix_sums(self, gaps):
        g = ConstraintGraph()
        names = [f"n{i}" for i in range(len(gaps) + 1)]
        for (u, v), d in zip(zip(names, names[1:]), gaps):
            g.add_min_separation(u, v, d)
        got = g.solve()
        total = 0
        assert got[names[0]] == 0
        for name, d in zip(names[1:], gaps):
            total += d
            assert got[name] == total

    @given(st.integers(min_value=-1000, max_value=1000))
    def test_pin_always_exact(self, value):
        g = ConstraintGraph()
        g.pin("a", value)
        g.add_min_separation("a", "b", 1)
        got = g.solve(default_lower_bound=min(0, value))
        assert got["a"] == value
        assert got["b"] >= value + 1
