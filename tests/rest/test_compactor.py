"""Tests for sticks compaction and stretching."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.box import Box
from repro.geometry.layers import nmos_technology
from repro.geometry.point import Point
from repro.rest.compactor import (
    column_occupants,
    compact,
    compact_axis,
    make_coordinate_map,
    solve_axis,
)
from repro.rest.errors import InfeasibleConstraints
from repro.rest.stretch import stretch_pins
from repro.sticks.model import Contact, Device, Pin, SticksCell, SymbolicWire

TECH = nmos_technology()


def three_wire_cell(spacing=5000):
    """Three parallel vertical metal wires, generously spaced."""
    cell = SticksCell("wires")
    for i in range(3):
        x = i * spacing
        cell.pins.append(Pin(f"P{i}", "metal", Point(x, 0), 750))
        cell.wires.append(
            SymbolicWire("metal", (Point(x, 0), Point(x, 3000)), 750)
        )
    return cell


class TestColumnOccupants:
    def test_wire_points_registered(self):
        cols = column_occupants(three_wire_cell(), TECH, "x")
        assert sorted(cols) == [0, 5000, 10000]
        assert all(len(v) >= 2 for v in cols.values())  # pin + wire points

    def test_device_occupies_both_layers(self):
        cell = SticksCell("d")
        cell.devices.append(Device("enh", Point(100, 200)))
        cols = column_occupants(cell, TECH, "x")
        layers = {o.layer for o in cols[100]}
        assert layers == {"diffusion", "poly"}

    def test_contact_occupies_three(self):
        cell = SticksCell("c")
        cell.contacts.append(Contact("metal", "poly", Point(7, 9)))
        cols = column_occupants(cell, TECH, "y")
        assert {o.layer for o in cols[9]} == {"metal", "poly", "contact"}

    def test_bad_axis(self):
        with pytest.raises(ValueError, match="axis"):
            column_occupants(three_wire_cell(), TECH, "z")


class TestCompaction:
    def test_packs_to_metal_pitch(self):
        cell = three_wire_cell(spacing=5000)
        out = compact_axis(cell, TECH, "x")
        xs = sorted(p.point.x for p in out.pins)
        assert xs == [0, 1500, 3000]  # metal pitch at width 750

    def test_compaction_idempotent(self):
        cell = three_wire_cell()
        once = compact_axis(cell, TECH, "x")
        twice = compact_axis(once, TECH, "x")
        assert [p.point for p in once.pins] == [p.point for p in twice.pins]

    def test_two_axis_compaction(self):
        cell = three_wire_cell()
        out = compact(cell, TECH, name="packed")
        assert out.name == "packed"
        ys = {p.y for w in out.wires for p in w.points}
        assert min(ys) == 0

    def test_order_preserved(self):
        cell = three_wire_cell()
        out = compact_axis(cell, TECH, "x")
        xs = [p.point.x for p in out.pins]
        assert xs == sorted(xs)

    def test_unrelated_layers_can_merge(self):
        cell = SticksCell("m")
        cell.wires.append(SymbolicWire("metal", (Point(0, 0), Point(0, 100)), 750))
        cell.wires.append(SymbolicWire("poly", (Point(400, 0), Point(400, 100)), 500))
        out = compact_axis(cell, TECH, "x")
        assert out.wires[1].points[0].x == 0  # allowed to coincide

    def test_empty_cell(self):
        out = compact_axis(SticksCell("void"), TECH, "x")
        assert out.component_count == 0


class TestCoordinateMap:
    def test_exact_columns(self):
        m = make_coordinate_map({0: 0, 10: 100})
        assert m(0) == 0
        assert m(10) == 100

    def test_interpolation(self):
        m = make_coordinate_map({0: 0, 10: 100})
        assert m(5) == 50

    def test_extrapolation_rigid(self):
        m = make_coordinate_map({0: 10, 10: 110})
        assert m(-5) == 5
        assert m(20) == 120

    def test_empty_is_identity(self):
        m = make_coordinate_map({})
        assert m(7) == 7

    @given(st.integers(min_value=-100, max_value=200))
    def test_monotone(self, c):
        m = make_coordinate_map({0: 0, 10: 30, 50: 40, 100: 200})
        assert m(c) <= m(c + 1)


class TestStretch:
    def test_pins_land_on_targets(self):
        cell = three_wire_cell()
        out = stretch_pins(
            cell, "x", {"P0": 0, "P1": 8000, "P2": 20000}, TECH, name="stretched"
        )
        assert out.name == "stretched"
        assert [p.point.x for p in out.pins] == [0, 8000, 20000]

    def test_wires_follow_pins(self):
        cell = three_wire_cell()
        out = stretch_pins(cell, "x", {"P1": 9000}, TECH)
        assert out.wires[1].points == (Point(9000, 0), Point(9000, 3000))

    def test_other_axis_untouched(self):
        cell = three_wire_cell()
        out = stretch_pins(cell, "x", {"P1": 9000}, TECH)
        assert all(w.points[0].y == 0 and w.points[1].y == 3000 for w in out.wires)

    def test_empty_targets_is_copy(self):
        cell = three_wire_cell()
        out = stretch_pins(cell, "x", {}, TECH, name="same")
        assert [p.point for p in out.pins] == [p.point for p in cell.pins]

    def test_unknown_pin(self):
        with pytest.raises(KeyError, match="no pin"):
            stretch_pins(three_wire_cell(), "x", {"NOPE": 0}, TECH)

    def test_reordering_targets_rejected(self):
        cell = three_wire_cell()
        with pytest.raises(InfeasibleConstraints):
            stretch_pins(cell, "x", {"P0": 10000, "P2": 0}, TECH)

    def test_too_close_targets_rejected(self):
        cell = three_wire_cell()
        with pytest.raises(InfeasibleConstraints):
            stretch_pins(cell, "x", {"P0": 0, "P1": 100}, TECH)

    def test_negative_targets_allowed(self):
        cell = three_wire_cell()
        out = stretch_pins(cell, "x", {"P0": -5000}, TECH)
        assert out.pins[0].point.x == -5000

    def test_stretch_preserves_design_rules(self):
        cell = three_wire_cell()
        out = stretch_pins(cell, "x", {"P2": 30000}, TECH)
        xs = sorted(p.point.x for p in out.pins)
        for a, b in zip(xs, xs[1:]):
            assert b - a >= TECH.pitch("metal")

    def test_boundary_stretches(self):
        cell = three_wire_cell()
        cell.boundary = Box(0, 0, 10000, 3000)
        out = stretch_pins(cell, "x", {"P2": 20000}, TECH)
        assert out.boundary.urx == 20000

    def test_error_names_cell_and_axis(self):
        cell = three_wire_cell()
        with pytest.raises(InfeasibleConstraints, match="axis x"):
            stretch_pins(cell, "x", {"P0": 0, "P1": 1}, TECH)

    @given(st.integers(min_value=1500, max_value=50000))
    def test_any_feasible_gap(self, gap):
        cell = three_wire_cell()
        out = stretch_pins(cell, "x", {"P0": 0, "P1": gap}, TECH)
        assert out.pins[1].point.x == gap
