"""Property-based invariants of compaction and stretching.

Random symbolic cells of parallel wires go through the solver; the
output must preserve ordering, meet every adjacent-column constraint,
and honour pinned positions exactly.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.geometry.layers import nmos_technology
from repro.geometry.point import Point
from repro.rest.compactor import (
    column_occupants,
    compact_axis,
    solve_axis,
)
from repro.rest.connectivity import build_connectivity
from repro.rest.errors import InfeasibleConstraints
from repro.rest.spacing import column_separation
from repro.sticks.model import Pin, SticksCell, SymbolicWire

TECH = nmos_technology()
LAYERS = ("metal", "poly", "diffusion")


@st.composite
def wire_cells(draw):
    """Vertical wires at random distinct x positions on random layers."""
    count = draw(st.integers(min_value=1, max_value=7))
    xs = draw(
        st.lists(
            st.integers(min_value=-40, max_value=40).map(lambda v: v * 100),
            min_size=count,
            max_size=count,
            unique=True,
        )
    )
    cell = SticksCell("prop")
    for i, x in enumerate(sorted(xs)):
        layer = draw(st.sampled_from(LAYERS))
        width = draw(st.sampled_from((None, 500, 750, 1000)))
        cell.wires.append(
            SymbolicWire(layer, (Point(x, 0), Point(x, 3000)), width)
        )
        cell.pins.append(Pin(f"P{i}", layer, Point(x, 0), width))
    return cell


def satisfied(cell, axis):
    """Do current coordinates meet every pairwise column constraint?"""
    conn = build_connectivity(cell)
    columns = column_occupants(cell, TECH, axis, conn)
    ordered = sorted(columns)
    for i, a in enumerate(ordered):
        for b in ordered[i + 1 :]:
            need = column_separation(
                columns[a], columns[b], TECH, conn.gate_pairs
            )
            if b - a < need:
                return False
    return True


class TestCompactionProperties:
    @settings(max_examples=80, deadline=None)
    @given(wire_cells())
    def test_result_satisfies_constraints(self, cell):
        out = compact_axis(cell, TECH, "x")
        assert satisfied(out, "x")

    @settings(max_examples=80, deadline=None)
    @given(wire_cells())
    def test_order_preserved(self, cell):
        out = compact_axis(cell, TECH, "x")
        before = [p.point.x for p in cell.pins]
        after = [p.point.x for p in out.pins]
        # Pins were created in ascending x; compaction keeps the order.
        assert after == sorted(after)
        assert len(after) == len(before)

    @settings(max_examples=60, deadline=None)
    @given(wire_cells())
    def test_idempotent(self, cell):
        once = compact_axis(cell, TECH, "x")
        twice = compact_axis(once, TECH, "x")
        assert [p.point for p in once.pins] == [p.point for p in twice.pins]

    @settings(max_examples=60, deadline=None)
    @given(wire_cells())
    def test_compaction_never_grows(self, cell):
        out = compact_axis(cell, TECH, "x")
        def extent(c):
            xs = [p.x for w in c.wires for p in w.points]
            return max(xs) - min(xs)
        assert extent(out) <= extent(cell) or satisfied(cell, "x") is False

    @settings(max_examples=60, deadline=None)
    @given(wire_cells(), st.integers(min_value=-50, max_value=50))
    def test_single_pin_lands_exactly(self, cell, target_hundreds):
        target = target_hundreds * 100
        name = cell.pins[0].name
        try:
            solved = solve_axis(cell, TECH, "x", pinned={name: target})
        except InfeasibleConstraints:
            assume(False)
        assert solved[cell.pins[0].point.x] == target

    @settings(max_examples=60, deadline=None)
    @given(wire_cells())
    def test_other_axis_untouched(self, cell):
        out = compact_axis(cell, TECH, "x")
        for wire in out.wires:
            assert wire.points[0].y == 0
            assert wire.points[1].y == 3000
