"""Tests for net extraction and net-aware spacing."""

import pytest

from repro.geometry.layers import nmos_technology
from repro.geometry.point import Point
from repro.rest.connectivity import build_connectivity
from repro.rest.spacing import Occupant, occupant_separation
from repro.sticks.model import Contact, Device, Pin, SticksCell, SymbolicWire

TECH = nmos_technology()


def cell_with(wires=(), pins=(), contacts=(), devices=()):
    cell = SticksCell("c")
    cell.wires.extend(wires)
    cell.pins.extend(pins)
    cell.contacts.extend(contacts)
    cell.devices.extend(devices)
    return cell


class TestWireJoins:
    def test_touching_wires_join(self):
        conn = build_connectivity(
            cell_with(
                wires=[
                    SymbolicWire("metal", (Point(0, 0), Point(100, 0))),
                    SymbolicWire("metal", (Point(100, 0), Point(100, 100))),
                ]
            )
        )
        assert conn.same_net(("w", 0), ("w", 1))

    def test_vertex_on_segment_joins(self):
        conn = build_connectivity(
            cell_with(
                wires=[
                    SymbolicWire("metal", (Point(0, 0), Point(100, 0))),
                    SymbolicWire("metal", (Point(50, 0), Point(50, 100))),
                ]
            )
        )
        assert conn.same_net(("w", 0), ("w", 1))

    def test_crossing_different_layers_stay_apart(self):
        conn = build_connectivity(
            cell_with(
                wires=[
                    SymbolicWire("metal", (Point(0, 0), Point(100, 0))),
                    SymbolicWire("poly", (Point(50, -50), Point(50, 50))),
                ]
            )
        )
        assert not conn.same_net(("w", 0), ("w", 1))

    def test_disjoint_same_layer_stay_apart(self):
        conn = build_connectivity(
            cell_with(
                wires=[
                    SymbolicWire("metal", (Point(0, 0), Point(100, 0))),
                    SymbolicWire("metal", (Point(0, 500), Point(100, 500))),
                ]
            )
        )
        assert not conn.same_net(("w", 0), ("w", 1))

    def test_transitive_join(self):
        conn = build_connectivity(
            cell_with(
                wires=[
                    SymbolicWire("metal", (Point(0, 0), Point(100, 0))),
                    SymbolicWire("metal", (Point(100, 0), Point(200, 0))),
                    SymbolicWire("metal", (Point(200, 0), Point(300, 0))),
                ]
            )
        )
        assert conn.same_net(("w", 0), ("w", 2))


class TestPinsContactsDevices:
    def test_pin_joins_wire(self):
        conn = build_connectivity(
            cell_with(
                wires=[SymbolicWire("metal", (Point(0, 0), Point(100, 0)))],
                pins=[Pin("A", "metal", Point(0, 0))],
            )
        )
        assert conn.same_net(("p", 0), ("w", 0))

    def test_pin_different_layer_stays_apart(self):
        conn = build_connectivity(
            cell_with(
                wires=[SymbolicWire("metal", (Point(0, 0), Point(100, 0)))],
                pins=[Pin("A", "poly", Point(0, 0))],
            )
        )
        assert not conn.same_net(("p", 0), ("w", 0))

    def test_contact_fuses_layers(self):
        conn = build_connectivity(
            cell_with(
                wires=[
                    SymbolicWire("metal", (Point(0, 0), Point(100, 0))),
                    SymbolicWire("poly", (Point(50, 0), Point(50, 100))),
                ],
                contacts=[Contact("metal", "poly", Point(50, 0))],
            )
        )
        assert conn.same_net(("w", 0), ("w", 1))

    def test_device_nets(self):
        conn = build_connectivity(
            cell_with(
                wires=[
                    SymbolicWire("poly", (Point(0, 50), Point(100, 50))),
                    SymbolicWire("diffusion", (Point(50, 0), Point(50, 100))),
                ],
                devices=[Device("enh", Point(50, 50))],
            )
        )
        assert conn.same_net(("dg", 0), ("w", 0))
        assert conn.same_net(("dc", 0), ("w", 1))
        assert not conn.same_net(("w", 0), ("w", 1))  # gate, not a short

    def test_gate_pairs_recorded(self):
        cell = cell_with(
            wires=[
                SymbolicWire("poly", (Point(0, 50), Point(100, 50))),
                SymbolicWire("diffusion", (Point(50, 0), Point(50, 100))),
            ],
            devices=[Device("enh", Point(50, 50))],
        )
        conn = build_connectivity(cell)
        assert (conn.find(("dg", 0)), conn.find(("dc", 0))) in conn.gate_pairs


class TestNetAwareSpacing:
    def test_same_net_no_separation(self):
        a = Occupant("metal", 750, net="n1")
        b = Occupant("metal", 750, net="n1")
        assert occupant_separation(a, b, TECH) == 0

    def test_different_nets_separated(self):
        a = Occupant("metal", 750, net="n1")
        b = Occupant("metal", 750, net="n2")
        assert occupant_separation(a, b, TECH) == 1500

    def test_unknown_net_conservative(self):
        a = Occupant("metal", 750)
        b = Occupant("metal", 750)
        assert occupant_separation(a, b, TECH) == 1500

    def test_disjoint_intervals_no_separation(self):
        a = Occupant("metal", 750, lo=0, hi=100, net="n1")
        b = Occupant("metal", 750, lo=5000, hi=6000, net="n2")
        assert occupant_separation(a, b, TECH) == 0

    def test_touching_intervals_interact(self):
        a = Occupant("metal", 750, lo=0, hi=100, net="n1")
        b = Occupant("metal", 750, lo=100, hi=200, net="n2")
        assert occupant_separation(a, b, TECH) == 1500

    def test_gate_pair_exemption(self):
        poly = Occupant("poly", 500, net="g")
        diff = Occupant("diffusion", 500, net="d")
        assert occupant_separation(poly, diff, TECH) == 750
        assert occupant_separation(poly, diff, TECH, {("g", "d")}) == 0
        # Order of arguments must not matter.
        assert occupant_separation(diff, poly, TECH, {("g", "d")}) == 0

    def test_wrong_gate_pair_still_separated(self):
        poly = Occupant("poly", 500, net="g2")
        diff = Occupant("diffusion", 500, net="d")
        assert occupant_separation(poly, diff, TECH, {("g", "d")}) == 750


class TestCompactionWithNets:
    def test_connected_wires_can_stay_together(self):
        """An L of two metal wires: compaction must not tear the
        corner apart (same net => no separation)."""
        from repro.rest.compactor import compact_axis

        cell = cell_with(
            wires=[
                SymbolicWire("metal", (Point(0, 0), Point(1000, 0)), 750),
                SymbolicWire("metal", (Point(1000, 0), Point(1000, 1000)), 750),
            ]
        )
        out = compact_axis(cell, TECH, "x")
        assert out.wires[0].points[1] == out.wires[1].points[0]

    def test_gate_wire_not_pushed_off_device(self):
        """A poly gate wire crossing its own transistor's diffusion
        must not be forced a poly-diffusion spacing away."""
        from repro.rest.compactor import compact_axis

        cell = cell_with(
            wires=[
                SymbolicWire("poly", (Point(0, 500), Point(1000, 500)), 500),
                SymbolicWire("diffusion", (Point(500, 0), Point(500, 1000)), 500),
            ],
            devices=[Device("enh", Point(500, 500))],
        )
        out = compact_axis(cell, TECH, "x")
        # The device column stays strictly between the gate wire ends.
        xs = [p.x for p in out.wires[0].points]
        assert xs[0] <= out.devices[0].center.x <= xs[1]
