"""Tests for column separation rules."""

from repro.geometry.layers import nmos_technology
from repro.rest.spacing import Occupant, column_separation, occupant_separation

TECH = nmos_technology()


class TestOccupantSeparation:
    def test_same_layer(self):
        a = Occupant("metal", 750)
        b = Occupant("metal", 750)
        # half widths (750) + metal separation (750)
        assert occupant_separation(a, b, TECH) == 1500

    def test_asymmetric_widths(self):
        a = Occupant("metal", 1000)
        b = Occupant("metal", 500)
        assert occupant_separation(a, b, TECH) == 750 + 750

    def test_odd_sum_rounds_up(self):
        a = Occupant("metal", 751)
        b = Occupant("metal", 750)
        assert occupant_separation(a, b, TECH) == 751 + 750

    def test_poly_vs_diffusion(self):
        a = Occupant("poly", 500)
        b = Occupant("diffusion", 500)
        assert occupant_separation(a, b, TECH) == 500 + TECH.lam(1)

    def test_unrelated_layers(self):
        a = Occupant("metal", 750)
        b = Occupant("poly", 500)
        assert occupant_separation(a, b, TECH) == 0

    def test_symmetric(self):
        a = Occupant("poly", 600)
        b = Occupant("diffusion", 400)
        assert occupant_separation(a, b, TECH) == occupant_separation(b, a, TECH)


class TestColumnSeparation:
    def test_empty_columns(self):
        assert column_separation([], [], TECH) == 0

    def test_max_over_pairs(self):
        left = [Occupant("metal", 750), Occupant("poly", 500)]
        right = [Occupant("metal", 750), Occupant("diffusion", 500)]
        # metal-metal pair dominates: 750 + 750
        assert column_separation(left, right, TECH) == 1500

    def test_unrelated_columns_may_coincide(self):
        left = [Occupant("metal", 750)]
        right = [Occupant("poly", 500)]
        assert column_separation(left, right, TECH) == 0
