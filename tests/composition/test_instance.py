"""Tests for instances, arrays and connector visibility."""

import pytest

from repro.composition.connector import BOTTOM, INSIDE, LEFT, RIGHT, TOP
from repro.composition.instance import Instance, instances_bounding_box
from repro.geometry.box import Box
from repro.geometry.orientation import MX, R90
from repro.geometry.point import Point
from repro.geometry.transform import Transform

from tests.composition.conftest import make_cif_leaf


@pytest.fixture()
def leaf(tech):
    return make_cif_leaf(tech=tech)  # 2000x1000, IN left, OUT right


class TestPlacement:
    def test_identity_bbox(self, leaf):
        inst = Instance("u1", leaf)
        assert inst.bounding_box() == Box(0, 0, 2000, 1000)

    def test_translated_bbox(self, leaf):
        inst = Instance("u1", leaf, Transform.translate(100, 200))
        assert inst.bounding_box() == Box(100, 200, 2100, 1200)

    def test_rotated_bbox(self, leaf):
        inst = Instance("u1", leaf, Transform(R90, Point(0, 0)))
        assert inst.bounding_box() == Box(-1000, 0, 0, 2000)

    def test_move_to(self, leaf):
        inst = Instance("u1", leaf, Transform(R90, Point(0, 0)))
        inst.move_to(Point(0, 0))
        assert inst.bounding_box() == Box(0, 0, 1000, 2000)

    def test_translate(self, leaf):
        inst = Instance("u1", leaf)
        inst.translate(10, 20)
        inst.translate(-10, -20)
        assert inst.bounding_box() == Box(0, 0, 2000, 1000)

    def test_rotate90_mutator(self, leaf):
        inst = Instance("u1", leaf)
        inst.rotate90()
        assert inst.transform.orientation == R90

    def test_mirror_mutators(self, leaf):
        inst = Instance("u1", leaf)
        inst.mirror_x()
        assert inst.transform.orientation == MX
        inst.mirror_x()
        assert inst.transform.orientation.name == "R0"

    def test_bad_replication(self, leaf):
        with pytest.raises(ValueError, match=">= 1"):
            Instance("u1", leaf, nx=0)


class TestConnectors:
    def test_single_instance_connectors(self, leaf):
        inst = Instance("u1", leaf, Transform.translate(100, 0))
        conns = inst.connectors()
        assert len(conns) == 2
        by_name = {c.name: c for c in conns}
        assert by_name["IN"].position == Point(100, 500)
        assert by_name["IN"].side == LEFT
        assert by_name["OUT"].side == RIGHT

    def test_connector_lookup(self, leaf):
        inst = Instance("u1", leaf)
        assert inst.connector("IN").base_name == "IN"
        with pytest.raises(KeyError, match="no visible connector"):
            inst.connector("NOPE")

    def test_rotation_changes_side(self, leaf):
        inst = Instance("u1", leaf, Transform(R90, Point(0, 0)))
        # IN was on the left edge; after a 90-degree CCW rotation it is
        # on the bottom edge of the new bounding box.
        assert inst.connector("IN").side == BOTTOM

    def test_mirror_swaps_sides(self, leaf):
        inst = Instance("u1", leaf, Transform(MX, Point(0, 0)))
        assert inst.connector("IN").side == RIGHT
        assert inst.connector("OUT").side == LEFT

    def test_connectors_on_side(self, leaf):
        inst = Instance("u1", leaf)
        lefts = inst.connectors_on_side(LEFT)
        assert [c.name for c in lefts] == ["IN"]


class TestArrays:
    def test_array_bbox(self, leaf):
        inst = Instance("a", leaf, nx=4)
        assert inst.bounding_box() == Box(0, 0, 8000, 1000)

    def test_default_spacing_abuts(self, leaf):
        inst = Instance("a", leaf, nx=2, ny=3)
        assert inst.dx == 2000
        assert inst.dy == 1000

    def test_custom_spacing(self, leaf):
        inst = Instance("a", leaf, nx=2, dx=2500)
        assert inst.bounding_box() == Box(0, 0, 4500, 1000)

    def test_element_transform_bounds(self, leaf):
        inst = Instance("a", leaf, nx=2)
        with pytest.raises(IndexError):
            inst.element_transform(2, 0)

    def test_outside_edge_connectors_only(self, leaf):
        inst = Instance("a", leaf, nx=3)
        conns = inst.connectors()
        names = {c.name for c in conns}
        # IN of element 0 on left edge, OUT of element 2 on right edge;
        # the four facing connectors between elements are interior.
        assert names == {"IN[0,0]", "OUT[2,0]"}

    def test_array_connector_sides(self, leaf):
        inst = Instance("a", leaf, nx=3)
        assert inst.connector("IN[0,0]").side == LEFT
        assert inst.connector("OUT[2,0]").side == RIGHT

    def test_vertical_array_exposes_columns(self, leaf):
        inst = Instance("a", leaf, ny=2)
        names = {c.name for c in inst.connectors()}
        # Left/right connectors of both rows remain on the array edge.
        assert names == {"IN[0,0]", "IN[0,1]", "OUT[0,0]", "OUT[0,1]"}

    def test_base_name_lookup_falls_back(self, leaf):
        inst = Instance("a", leaf, ny=2)
        assert inst.connector("IN").element == (0, 0)

    def test_is_array_flag(self, leaf):
        assert not Instance("u", leaf).is_array
        assert Instance("u", leaf, nx=2).is_array

    def test_gapped_array_interior_stays_hidden(self, leaf):
        # Even with a gap between elements, interior-facing connectors
        # are not on the array bounding box edge and stay hidden.
        inst = Instance("a", leaf, nx=2, dx=3000)
        names = {c.name for c in inst.connectors()}
        assert "OUT[0,0]" not in names
        assert "IN[1,0]" not in names

    def test_mirrored_array_edges(self, leaf):
        inst = Instance("a", leaf, Transform(MX, Point(0, 0)), nx=2, dx=2000)
        names = {c.name for c in inst.connectors()}
        # Mirroring flips which connectors land on the outside: element
        # (0,0) spans [-2000,0], so its OUT (local x=2000 -> parent
        # x=-2000) is now the left edge of the array.
        assert names == {"OUT[0,0]", "IN[1,0]"}
        assert inst.connector("OUT[0,0]").side == LEFT
        assert inst.connector("IN[1,0]").side == RIGHT


class TestHelpers:
    def test_instances_bounding_box(self, leaf):
        a = Instance("a", leaf)
        b = Instance("b", leaf, Transform.translate(0, 5000))
        assert instances_bounding_box([a, b]) == Box(0, 0, 2000, 6000)

    def test_repr(self, leaf):
        assert "2x1" in repr(Instance("a", leaf, nx=2))
