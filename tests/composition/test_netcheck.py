"""Tests for positional connection checking."""

import pytest

from repro.composition.instance import Instance
from repro.composition.netcheck import check_connections
from repro.geometry.layers import nmos_technology
from repro.geometry.transform import Transform

from tests.composition.conftest import make_cif_leaf

TECH = nmos_technology()


@pytest.fixture()
def leaf():
    return make_cif_leaf(tech=TECH)  # 2000x1000, IN@(0,500), OUT@(2000,500)


class TestMadeConnections:
    def test_abutted_connectors_detected(self, leaf):
        a = Instance("a", leaf)
        b = Instance("b", leaf, Transform.translate(2000, 0))
        report = check_connections([a, b], TECH)
        assert report.made_count == 1
        assert report.is_connected(a, "OUT", b, "IN")

    def test_order_insensitive(self, leaf):
        a = Instance("a", leaf)
        b = Instance("b", leaf, Transform.translate(2000, 0))
        report = check_connections([a, b], TECH)
        assert report.is_connected(b, "IN", a, "OUT")

    def test_disjoint_instances_not_connected(self, leaf):
        a = Instance("a", leaf)
        b = Instance("b", leaf, Transform.translate(10000, 0))
        report = check_connections([a, b], TECH)
        assert report.made_count == 0
        assert len(report.unconnected) == 4

    def test_different_layers_never_connect(self, tech):
        left = make_cif_leaf(
            name="l", connectors=(("OUT", 2000, 500, "metal", 400),), tech=tech
        )
        right = make_cif_leaf(
            name="r", connectors=(("IN", 0, 500, "poly", 400),), tech=tech
        )
        a = Instance("a", left)
        b = Instance("b", right, Transform.translate(2000, 0))
        report = check_connections([a, b], TECH)
        assert report.made_count == 0

    def test_same_instance_ignored(self, leaf):
        # An instance cannot connect to itself positionally.
        report = check_connections([Instance("a", leaf)], TECH)
        assert report.made_count == 0

    def test_three_way_connection(self, leaf):
        a = Instance("a", leaf)
        b = Instance("b", leaf, Transform.translate(2000, 0))
        c = Instance("c", leaf, Transform.translate(2000, 0))
        # b and c coincide entirely: a-b, a-c and b-c pairs at x=2000,
        # plus the coincident b.OUT-c.OUT pair at x=4000.
        report = check_connections([a, b, c], TECH)
        assert report.made_count == 4


class TestNearMisses:
    def test_near_miss_reported(self, leaf):
        a = Instance("a", leaf)
        b = Instance("b", leaf, Transform.translate(2100, 0))  # 100 off
        report = check_connections([a, b], TECH)
        assert report.made_count == 0
        assert len(report.near_misses) == 1
        assert report.near_misses[0].distance == 100

    def test_beyond_pitch_not_a_near_miss(self, leaf):
        a = Instance("a", leaf)
        b = Instance("b", leaf, Transform.translate(2000 + TECH.pitch("metal"), 0))
        report = check_connections([a, b], TECH)
        assert report.near_misses == []


class TestOverlap:
    def test_overlap_reported(self, leaf):
        a = Instance("a", leaf)
        b = Instance("b", leaf, Transform.translate(1000, 0))
        report = check_connections([a, b], TECH)
        assert (a, b) in report.overlapping_instances

    def test_abutment_is_not_overlap(self, leaf):
        a = Instance("a", leaf)
        b = Instance("b", leaf, Transform.translate(2000, 0))
        report = check_connections([a, b], TECH)
        assert report.overlapping_instances == []


class TestUnconnected:
    def test_unconnected_listed(self, leaf):
        a = Instance("a", leaf)
        b = Instance("b", leaf, Transform.translate(2000, 0))
        report = check_connections([a, b], TECH)
        names = {(c.instance.name, c.name) for c in report.unconnected}
        assert names == {("a", "IN"), ("b", "OUT")}
