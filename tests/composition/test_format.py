"""Round-trip tests for the composition format."""

import pytest

from repro.composition.cell import CompositionCell
from repro.composition.connector import Connector
from repro.composition.format import (
    CompositionFormatError,
    load_composition,
    save_composition,
)
from repro.composition.instance import Instance
from repro.composition.library import CellLibrary
from repro.geometry.layers import nmos_technology
from repro.geometry.orientation import R90
from repro.geometry.point import Point
from repro.geometry.transform import Transform

from tests.composition.conftest import make_cif_leaf, make_sticks_leaf


@pytest.fixture()
def lib():
    library = CellLibrary(nmos_technology())
    library.add(make_cif_leaf(name="pad"))
    library.add(make_sticks_leaf(name="gate"))
    return library


def build_session(lib):
    row = CompositionCell("row")
    row.add_instance(Instance("g1", lib.get("gate")))
    row.add_instance(
        Instance("g2", lib.get("gate"), Transform.translate(2000, 0))
    )
    row.refresh_connectors()
    top = CompositionCell("chip")
    top.add_instance(Instance("r1", row))
    top.add_instance(
        Instance("pads", lib.get("pad"), Transform(R90, Point(8000, 0)), nx=2, dx=3000)
    )
    return [row, top]


class TestSave:
    def test_header_and_sections(self, lib):
        text = save_composition(build_session(lib))
        assert text.startswith("RIOTCOMP 1")
        assert "LEAF gate sticks" in text
        assert "LEAF pad cif" in text
        assert "COMPOSITION row" in text
        assert "COMPOSITION chip" in text

    def test_dependency_order(self, lib):
        text = save_composition(build_session(lib))
        assert text.index("COMPOSITION row") < text.index("COMPOSITION chip")

    def test_array_recorded(self, lib):
        text = save_composition(build_session(lib))
        assert "ARRAY 2 1 3000" in text

    def test_orientation_recorded(self, lib):
        text = save_composition(build_session(lib))
        assert "R90 8000 0" in text


class TestRoundTrip:
    def test_full_roundtrip(self, lib):
        cells = build_session(lib)
        text = save_composition(cells)

        lib2 = CellLibrary(nmos_technology())
        lib2.add(make_cif_leaf(name="pad"))
        lib2.add(make_sticks_leaf(name="gate"))
        loaded = load_composition(text, lib2)

        assert [c.name for c in loaded] == ["row", "chip"]
        row = lib2.get("row")
        assert row.instance("g2").transform.translation == Point(2000, 0)
        chip = lib2.get("chip")
        pads = chip.instance("pads")
        assert pads.nx == 2
        assert pads.dx == 3000
        assert pads.transform.orientation == R90

    def test_connectors_roundtrip(self, lib):
        cells = build_session(lib)
        original = {c.name: c.position for c in cells[0].connectors}
        text = save_composition(cells)
        lib2 = CellLibrary(nmos_technology())
        lib2.add(make_cif_leaf(name="pad"))
        lib2.add(make_sticks_leaf(name="gate"))
        load_composition(text, lib2)
        loaded = {c.name: c.position for c in lib2.get("row").connectors}
        assert loaded == original

    def test_geometry_identical_after_roundtrip(self, lib):
        cells = build_session(lib)
        before = cells[1].bounding_box()
        text = save_composition(cells)
        lib2 = CellLibrary(nmos_technology())
        lib2.add(make_cif_leaf(name="pad"))
        lib2.add(make_sticks_leaf(name="gate"))
        load_composition(text, lib2)
        assert lib2.get("chip").bounding_box() == before


class TestErrors:
    def test_missing_header(self, lib):
        with pytest.raises(CompositionFormatError, match="RIOTCOMP"):
            load_composition("COMPOSITION x\nEND\n", lib)

    def test_bad_version(self, lib):
        with pytest.raises(CompositionFormatError, match="version"):
            load_composition("RIOTCOMP 99\n", lib)

    def test_missing_leaf(self, lib):
        text = "RIOTCOMP 1\nLEAF mystery cif mystery.cif\n"
        with pytest.raises(CompositionFormatError, match="mystery.cif"):
            load_composition(text, lib)

    def test_unknown_cell_in_instance(self, lib):
        text = "RIOTCOMP 1\nCOMPOSITION t\nINSTANCE u1 ghost R0 0 0\nEND\n"
        with pytest.raises(CompositionFormatError, match="no cell 'ghost'"):
            load_composition(text, lib)

    def test_instance_outside_composition(self, lib):
        text = "RIOTCOMP 1\nINSTANCE u1 pad R0 0 0\n"
        with pytest.raises(CompositionFormatError, match="outside"):
            load_composition(text, lib)

    def test_missing_end(self, lib):
        text = "RIOTCOMP 1\nCOMPOSITION t\nINSTANCE u1 pad R0 0 0\n"
        with pytest.raises(CompositionFormatError, match="missing END"):
            load_composition(text, lib)

    def test_bad_orientation(self, lib):
        text = "RIOTCOMP 1\nCOMPOSITION t\nINSTANCE u1 pad R45 0 0\nEND\n"
        with pytest.raises(CompositionFormatError, match="R45"):
            load_composition(text, lib)

    def test_bad_array(self, lib):
        text = "RIOTCOMP 1\nCOMPOSITION t\nINSTANCE u1 pad R0 0 0 ARRAY 0 1 10 10\nEND\n"
        with pytest.raises(CompositionFormatError, match=">= 1"):
            load_composition(text, lib)

    def test_unknown_keyword(self, lib):
        text = "RIOTCOMP 1\nBLOB\n"
        with pytest.raises(CompositionFormatError, match="unknown keyword"):
            load_composition(text, lib)

    def test_line_numbers_in_errors(self, lib):
        text = "RIOTCOMP 1\nCOMPOSITION t\nINSTANCE u1 pad R0 x y\nEND\n"
        with pytest.raises(CompositionFormatError, match="line 3"):
            load_composition(text, lib)

    def test_recursion_rejected_on_save(self, lib):
        a = CompositionCell("a")
        b = CompositionCell("b")
        # Seed both with a leaf so bounding boxes exist, then tie the knot.
        a.add_instance(Instance("p1", lib.get("pad")))
        b.add_instance(Instance("p2", lib.get("pad")))
        a.add_instance(Instance("ib", b))
        b.add_instance(Instance("ia", a))
        from repro.composition.cell import CompositionError

        with pytest.raises(CompositionError, match="recursive"):
            save_composition([a])
