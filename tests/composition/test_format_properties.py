"""Property-based round trips for the composition format."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.composition.cell import CompositionCell
from repro.composition.format import load_composition, save_composition
from repro.composition.instance import Instance
from repro.composition.library import CellLibrary
from repro.geometry.layers import nmos_technology
from repro.geometry.orientation import ALL_ORIENTATIONS
from repro.geometry.point import Point
from repro.geometry.transform import Transform

from tests.composition.conftest import make_cif_leaf, make_sticks_leaf

TECH = nmos_technology()

coord = st.integers(min_value=-40, max_value=40).map(lambda v: v * 250)


def fresh_library():
    library = CellLibrary(TECH)
    library.add(make_cif_leaf(name="pad"))
    library.add(make_sticks_leaf(name="gate"))
    return library


@st.composite
def compositions(draw):
    library = fresh_library()
    cell = CompositionCell("randomcell")
    for i in range(draw(st.integers(min_value=1, max_value=6))):
        leaf = library.get(draw(st.sampled_from(["pad", "gate"])))
        orientation = draw(st.sampled_from(ALL_ORIENTATIONS))
        transform = Transform(orientation, Point(draw(coord), draw(coord)))
        if draw(st.booleans()):
            nx = draw(st.integers(min_value=1, max_value=4))
            ny = draw(st.integers(min_value=1, max_value=3))
            instance = Instance(f"u{i}", leaf, transform, nx, ny)
        else:
            instance = Instance(f"u{i}", leaf, transform)
        cell.add_instance(instance)
    if draw(st.booleans()):
        cell.refresh_connectors()
    return library, cell


class TestFormatProperties:
    @settings(max_examples=60, deadline=None)
    @given(compositions())
    def test_geometry_roundtrips(self, built):
        _, cell = built
        text = save_composition([cell])
        library2 = fresh_library()
        load_composition(text, library2)
        again = library2.get("randomcell")
        assert again.bounding_box() == cell.bounding_box()

    @settings(max_examples=60, deadline=None)
    @given(compositions())
    def test_instances_roundtrip(self, built):
        _, cell = built
        text = save_composition([cell])
        library2 = fresh_library()
        load_composition(text, library2)
        again = library2.get("randomcell")
        for inst in cell.instances:
            loaded = again.instance(inst.name)
            assert loaded.transform == inst.transform
            assert (loaded.nx, loaded.ny) == (inst.nx, inst.ny)
            assert (loaded.dx, loaded.dy) == (inst.dx, inst.dy)
            assert loaded.cell.name == inst.cell.name

    @settings(max_examples=60, deadline=None)
    @given(compositions())
    def test_connectors_roundtrip(self, built):
        _, cell = built
        text = save_composition([cell])
        library2 = fresh_library()
        load_composition(text, library2)
        again = library2.get("randomcell")
        assert [
            (c.name, c.position, c.layer.name, c.width) for c in again.connectors
        ] == [
            (c.name, c.position, c.layer.name, c.width) for c in cell.connectors
        ]

    @settings(max_examples=40, deadline=None)
    @given(compositions())
    def test_double_save_stable(self, built):
        _, cell = built
        once = save_composition([cell])
        library2 = fresh_library()
        loaded = load_composition(once, library2)
        assert save_composition(loaded) == once

    @settings(max_examples=40, deadline=None)
    @given(compositions())
    def test_connector_visibility_preserved(self, built):
        _, cell = built
        text = save_composition([cell])
        library2 = fresh_library()
        load_composition(text, library2)
        again = library2.get("randomcell")
        for inst in cell.instances:
            original = {c.name for c in inst.connectors()}
            loaded = {c.name for c in again.instance(inst.name).connectors()}
            assert original == loaded
