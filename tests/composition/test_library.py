"""Tests for the cell library (the cell menu)."""

import pytest

from repro.composition.cell import CompositionCell, CompositionError
from repro.composition.instance import Instance
from repro.composition.library import CellLibrary
from repro.geometry.layers import nmos_technology
from repro.geometry.point import Point

from tests.composition.conftest import make_cif_leaf

CIF_TEXT = """
DS 1; 9 pad;
L NM; B 4000 4000 2000 2000;
94 PAD 0 2000 NM 750;
DF;
DS 2; 9 gate;
L NP; B 500 500 250 250;
94 G 0 250 NP 500;
DF;
E
"""

STICKS_TEXT = """
STICKS srcell
BBOX 0 0 2000 1500
PIN IN poly 0 750 500
PIN OUT poly 2000 750 500
WIRE poly - 0 750 2000 750
END
"""


@pytest.fixture()
def lib():
    return CellLibrary(nmos_technology())


class TestRegistry:
    def test_add_get(self, lib):
        leaf = make_cif_leaf()
        lib.add(leaf)
        assert lib.get("leaf") is leaf
        assert "leaf" in lib
        assert len(lib) == 1

    def test_duplicate_rejected(self, lib):
        lib.add(make_cif_leaf())
        with pytest.raises(CompositionError, match="already has a cell"):
            lib.add(make_cif_leaf())

    def test_missing_lookup_lists_contents(self, lib):
        lib.add(make_cif_leaf())
        with pytest.raises(KeyError, match="have: leaf"):
            lib.get("nope")

    def test_menu_order_is_insertion_order(self, lib):
        lib.add(make_cif_leaf(name="b"))
        lib.add(make_cif_leaf(name="a"))
        lib.add(make_cif_leaf(name="c"))
        assert lib.names == ["b", "a", "c"]

    def test_rename(self, lib):
        lib.add(make_cif_leaf())
        cell = lib.rename("leaf", "pad")
        assert cell.name == "pad"
        assert "leaf" not in lib
        assert lib.get("pad") is cell

    def test_rename_collision(self, lib):
        lib.add(make_cif_leaf(name="a"))
        lib.add(make_cif_leaf(name="b"))
        with pytest.raises(CompositionError, match="already has"):
            lib.rename("a", "b")

    def test_unique_name(self, lib):
        lib.add(make_cif_leaf(name="route"))
        assert lib.unique_name("route") == "route2"
        assert lib.unique_name("other") == "other"


class TestRemove:
    def test_remove_unused(self, lib):
        lib.add(make_cif_leaf())
        lib.remove("leaf")
        assert "leaf" not in lib

    def test_remove_in_use_rejected(self, lib):
        leaf = lib.add(make_cif_leaf())
        comp = CompositionCell("top")
        comp.add_instance(Instance("u1", leaf))
        lib.add(comp)
        with pytest.raises(CompositionError, match="still instantiated"):
            lib.remove("leaf")

    def test_remove_after_user_removed(self, lib):
        leaf = lib.add(make_cif_leaf())
        comp = CompositionCell("top")
        inst = comp.add_instance(Instance("u1", leaf))
        lib.add(comp)
        comp.remove_instance(inst)
        lib.remove("leaf")


class TestReplace:
    def test_replace_rebinds_instances(self, lib):
        leaf = lib.add(make_cif_leaf())
        comp = CompositionCell("top")
        comp.add_instance(Instance("u1", leaf))
        lib.add(comp)
        bigger = make_cif_leaf(width=4000)
        lib.replace("leaf", bigger)
        assert comp.instance("u1").cell is bigger
        assert lib.get("leaf") is bigger

    def test_replace_changes_positions_silently(self, lib):
        # The paper's failure mode: replacing a leaf moves connectors
        # and nobody is warned. The netcheck must show the difference.
        leaf = lib.add(make_cif_leaf())
        comp = CompositionCell("top")
        comp.add_instance(Instance("u1", leaf))
        lib.add(comp)
        before = comp.instance("u1").connector("OUT").position
        wider = make_cif_leaf(
            width=3000,
            connectors=(
                ("IN", 0, 500, "metal", 400),
                ("OUT", 3000, 500, "metal", 400),
            ),
        )
        lib.replace("leaf", wider)
        after = comp.instance("u1").connector("OUT").position
        assert before != after


class TestLoading:
    def test_load_cif(self, lib):
        added = lib.load_cif(CIF_TEXT, source_file="pads.cif")
        assert {c.name for c in added} == {"pad", "gate"}
        pad = lib.get("pad")
        assert not pad.is_stretchable
        assert pad.source_file == "pads.cif"
        assert pad.connector("PAD").position == Point(0, 2000)

    def test_load_sticks(self, lib):
        added = lib.load_sticks(STICKS_TEXT, source_file="sr.sticks")
        assert added[0].name == "srcell"
        assert added[0].is_stretchable
        assert lib.get("srcell").connector("IN").layer.name == "poly"

    def test_load_collision(self, lib):
        lib.load_cif(CIF_TEXT)
        with pytest.raises(CompositionError, match="already has"):
            lib.load_cif(CIF_TEXT)
