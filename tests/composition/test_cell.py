"""Tests for leaf and composition cells."""

import pytest

from repro.cif.semantics import CifCell
from repro.composition.cell import CompositionCell, CompositionError, LeafCell
from repro.composition.connector import Connector
from repro.composition.instance import Instance
from repro.geometry.box import Box
from repro.geometry.point import Point
from repro.geometry.transform import Transform

from tests.composition.conftest import make_cif_leaf, make_sticks_leaf


class TestLeafCell:
    def test_cif_leaf(self, cif_leaf):
        assert cif_leaf.is_leaf
        assert not cif_leaf.is_stretchable
        assert cif_leaf.bounding_box() == Box(0, 0, 2000, 1000)
        assert cif_leaf.connector("IN").position == Point(0, 500)

    def test_sticks_leaf(self, sticks_leaf):
        assert sticks_leaf.is_leaf
        assert sticks_leaf.is_stretchable
        assert sticks_leaf.bounding_box() == Box(0, 0, 2000, 1000)

    def test_sticks_pin_width_default(self, tech):
        leaf = make_sticks_leaf(pins=(("A", "poly", 0, 500, None),), tech=tech)
        assert leaf.connector("A").width == tech.min_width("poly")

    def test_connector_missing(self, cif_leaf):
        with pytest.raises(KeyError, match="no connector"):
            cif_leaf.connector("CLK")

    def test_needs_exactly_one_backing(self, tech):
        with pytest.raises(CompositionError, match="exactly one backing"):
            LeafCell("bad", Box(0, 0, 10, 10), [])

    def test_connector_outside_bbox_rejected(self, tech):
        cif = CifCell(1, "bad")
        cif.geometry.boxes.append((tech.layer("metal"), Box(0, 0, 100, 100)))
        from repro.cif.semantics import CifConnector

        cif.connectors.append(
            CifConnector("X", Point(500, 500), tech.layer("metal"), 400)
        )
        with pytest.raises(CompositionError, match="outside"):
            LeafCell.from_cif(cif)

    def test_duplicate_connector_rejected(self, tech):
        leaf_conns = (("A", 0, 500, "metal", 400), ("A", 2000, 500, "metal", 400))
        with pytest.raises(CompositionError, match="duplicate connector"):
            make_cif_leaf(connectors=leaf_conns, tech=tech)


class TestCompositionCell:
    def test_add_and_lookup(self, cif_leaf):
        comp = CompositionCell("top")
        inst = comp.add_instance(Instance("u1", cif_leaf))
        assert comp.instance("u1") is inst
        assert not comp.is_leaf
        assert not comp.is_stretchable

    def test_duplicate_instance_name(self, cif_leaf):
        comp = CompositionCell("top")
        comp.add_instance(Instance("u1", cif_leaf))
        with pytest.raises(CompositionError, match="already has an instance"):
            comp.add_instance(Instance("u1", cif_leaf))

    def test_self_instantiation_rejected(self, cif_leaf):
        comp = CompositionCell("top")
        comp.add_instance(Instance("u1", cif_leaf))
        with pytest.raises(CompositionError, match="instantiate itself"):
            comp.add_instance(Instance("me", comp))

    def test_remove_instance(self, cif_leaf):
        comp = CompositionCell("top")
        inst = comp.add_instance(Instance("u1", cif_leaf))
        comp.remove_instance(inst)
        assert comp.instances == []

    def test_remove_missing_instance(self, cif_leaf):
        comp = CompositionCell("top")
        with pytest.raises(CompositionError, match="not in cell"):
            comp.remove_instance(Instance("ghost", cif_leaf))

    def test_missing_instance_lookup(self):
        with pytest.raises(KeyError, match="no instance"):
            CompositionCell("top").instance("u9")

    def test_bounding_box_union(self, cif_leaf):
        comp = CompositionCell("top")
        comp.add_instance(Instance("u1", cif_leaf))
        comp.add_instance(
            Instance("u2", cif_leaf, Transform.translate(3000, 0))
        )
        assert comp.bounding_box() == Box(0, 0, 5000, 1000)

    def test_empty_bbox_raises(self):
        with pytest.raises(CompositionError, match="is empty"):
            CompositionCell("top").bounding_box()

    def test_unique_instance_name(self, cif_leaf):
        comp = CompositionCell("top")
        assert comp.unique_instance_name("leaf") == "leaf"
        comp.add_instance(Instance("leaf", cif_leaf))
        assert comp.unique_instance_name("leaf") == "leaf2"

    def test_uses_cell_recursive(self, cif_leaf):
        inner = CompositionCell("inner")
        inner.add_instance(Instance("u1", cif_leaf))
        outer = CompositionCell("outer")
        outer.add_instance(Instance("i1", inner))
        assert outer.uses_cell(cif_leaf)
        assert outer.uses_cell(inner)
        assert not inner.uses_cell(outer)


class TestRefreshConnectors:
    def test_edge_connectors_promoted(self, cif_leaf):
        comp = CompositionCell("top")
        comp.add_instance(Instance("u1", cif_leaf))
        comp.add_instance(Instance("u2", cif_leaf, Transform.translate(2000, 0)))
        promoted = comp.refresh_connectors()
        names = {c.name for c in promoted}
        # u1.IN is on the left edge, u2.OUT on the right edge; the two
        # touching connectors at x=2000 are interior.
        assert "IN" in names
        assert "OUT" in names
        positions = {c.position for c in promoted}
        assert Point(0, 500) in positions
        assert Point(4000, 500) in positions

    def test_interior_connectors_not_promoted(self, cif_leaf):
        comp = CompositionCell("top")
        comp.add_instance(Instance("u1", cif_leaf))
        comp.add_instance(Instance("u2", cif_leaf, Transform.translate(2000, 0)))
        comp.refresh_connectors()
        positions = {c.position for c in comp.connectors}
        assert Point(2000, 500) not in positions

    def test_collision_prefixed(self, cif_leaf):
        comp = CompositionCell("top")
        comp.add_instance(Instance("u1", cif_leaf))
        comp.add_instance(Instance("u2", cif_leaf, Transform.translate(0, 3000)))
        promoted = comp.refresh_connectors()
        names = {c.name for c in promoted}
        assert "u1.IN" in names
        assert "u2.IN" in names

    def test_connector_interface(self, cif_leaf):
        comp = CompositionCell("top")
        comp.add_instance(Instance("u1", cif_leaf))
        comp.refresh_connectors()
        assert comp.connector("IN").layer.name == "metal"
        with pytest.raises(KeyError):
            comp.connector("NOPE")

    def test_set_connectors_validates(self, cif_leaf, tech):
        comp = CompositionCell("top")
        metal = tech.layer("metal")
        with pytest.raises(CompositionError, match="duplicate"):
            comp.set_connectors(
                [
                    Connector("A", Point(0, 0), metal, 100),
                    Connector("A", Point(5, 5), metal, 100),
                ]
            )
