"""Property-based tests for the positional netcheck."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.composition.instance import Instance
from repro.composition.netcheck import check_connections
from repro.geometry.layers import nmos_technology
from repro.geometry.orientation import ALL_ORIENTATIONS
from repro.geometry.point import Point
from repro.geometry.transform import Transform

from tests.composition.conftest import make_cif_leaf

TECH = nmos_technology()

coord = st.integers(min_value=-20, max_value=20).map(lambda v: v * 500)


@st.composite
def instance_sets(draw):
    leaf = make_cif_leaf(tech=TECH)
    instances = []
    for i in range(draw(st.integers(min_value=1, max_value=6))):
        transform = Transform(
            draw(st.sampled_from(ALL_ORIENTATIONS)),
            Point(draw(coord), draw(coord)),
        )
        instances.append(Instance(f"u{i}", leaf, transform))
    return instances


class TestNetcheckProperties:
    @settings(max_examples=60, deadline=None)
    @given(instance_sets())
    def test_made_connections_really_coincide(self, instances):
        report = check_connections(instances, TECH)
        for made in report.made:
            assert made.a.position == made.b.position
            assert made.a.layer.name == made.b.layer.name
            assert made.a.instance is not made.b.instance

    @settings(max_examples=60, deadline=None)
    @given(instance_sets())
    def test_near_misses_really_near(self, instances):
        report = check_connections(instances, TECH)
        for miss in report.near_misses:
            d = miss.a.position.manhattan_distance(miss.b.position)
            assert 0 < d < TECH.pitch(miss.a.layer)
            assert d == miss.distance

    @settings(max_examples=60, deadline=None)
    @given(instance_sets())
    def test_every_connector_classified(self, instances):
        report = check_connections(instances, TECH)
        total = sum(len(inst.connectors()) for inst in instances)
        connected = {id(c) for m in report.made for c in (m.a, m.b)}
        assert len(connected) + len(report.unconnected) == total

    @settings(max_examples=60, deadline=None)
    @given(instance_sets(), st.integers(min_value=-10, max_value=10))
    def test_rigid_translation_invariant(self, instances, k):
        d = k * 777
        before = check_connections(instances, TECH)
        for inst in instances:
            inst.translate(d, -d)
        after = check_connections(instances, TECH)
        assert before.made_count == after.made_count
        assert len(before.near_misses) == len(after.near_misses)
        assert len(before.overlapping_instances) == len(
            after.overlapping_instances
        )

    @settings(max_examples=60, deadline=None)
    @given(instance_sets())
    def test_overlap_pairs_really_overlap(self, instances):
        report = check_connections(instances, TECH)
        for a, b in report.overlapping_instances:
            assert a.bounding_box().overlaps(b.bounding_box())
