"""Shared fixtures: small leaf cells for composition tests."""

import pytest

from repro.cif.semantics import CifCell, CifConnector
from repro.composition.cell import LeafCell
from repro.geometry.box import Box
from repro.geometry.layers import nmos_technology
from repro.geometry.point import Point
from repro.sticks.model import Pin, SticksCell, SymbolicWire


@pytest.fixture()
def tech():
    return nmos_technology()


def make_cif_leaf(
    name="leaf",
    width=2000,
    height=1000,
    connectors=(("IN", 0, 500, "metal", 400), ("OUT", 2000, 500, "metal", 400)),
    tech=None,
):
    """A CIF-backed leaf: a metal box with edge connectors."""
    tech = tech or nmos_technology()
    cif = CifCell(1, name)
    cif.geometry.boxes.append((tech.layer("metal"), Box(0, 0, width, height)))
    for cname, x, y, layer, w in connectors:
        cif.connectors.append(
            CifConnector(cname, Point(x, y), tech.layer(layer), w)
        )
    return LeafCell.from_cif(cif)


def make_sticks_leaf(
    name="gate",
    width=2000,
    height=1000,
    pins=(("IN", "poly", 0, 500, 500), ("OUT", "metal", 2000, 500, 750)),
    tech=None,
):
    """A sticks-backed (stretchable) leaf with an explicit boundary."""
    tech = tech or nmos_technology()
    cell = SticksCell(name)
    cell.boundary = Box(0, 0, width, height)
    for pname, layer, x, y, w in pins:
        cell.pins.append(Pin(pname, layer, Point(x, y), w))
    cell.wires.append(
        SymbolicWire("metal", (Point(0, height // 2), Point(width, height // 2)), 750)
    )
    return LeafCell.from_sticks(cell, tech)


@pytest.fixture()
def cif_leaf(tech):
    return make_cif_leaf(tech=tech)


@pytest.fixture()
def sticks_leaf(tech):
    return make_sticks_leaf(tech=tech)
