"""Tests for connectors and side classification."""

import pytest

from repro.composition.connector import (
    BOTTOM,
    INSIDE,
    LEFT,
    RIGHT,
    TOP,
    Connector,
    classify_side,
    opposed,
)
from repro.geometry.box import Box
from repro.geometry.layers import nmos_technology
from repro.geometry.point import Point

TECH = nmos_technology()
METAL = TECH.layer("metal")
BOX = Box(0, 0, 100, 100)


class TestClassifySide:
    def test_left(self):
        assert classify_side(Point(0, 50), BOX) == LEFT

    def test_right(self):
        assert classify_side(Point(100, 50), BOX) == RIGHT

    def test_bottom(self):
        assert classify_side(Point(50, 0), BOX) == BOTTOM

    def test_top(self):
        assert classify_side(Point(50, 100), BOX) == TOP

    def test_inside(self):
        assert classify_side(Point(50, 50), BOX) == INSIDE

    def test_corner_prefers_vertical_edge(self):
        assert classify_side(Point(0, 0), BOX) == LEFT
        assert classify_side(Point(100, 100), BOX) == RIGHT

    def test_outside_raises(self):
        with pytest.raises(ValueError, match="outside"):
            classify_side(Point(101, 50), BOX)


class TestOpposed:
    def test_left_right(self):
        assert opposed(LEFT, RIGHT)
        assert opposed(RIGHT, LEFT)

    def test_top_bottom(self):
        assert opposed(TOP, BOTTOM)
        assert opposed(BOTTOM, TOP)

    def test_same_side_not_opposed(self):
        assert not opposed(LEFT, LEFT)
        assert not opposed(TOP, TOP)

    def test_perpendicular_not_opposed(self):
        assert not opposed(LEFT, TOP)
        assert not opposed(BOTTOM, RIGHT)

    def test_inside_never_opposed(self):
        assert not opposed(INSIDE, LEFT)
        assert not opposed(INSIDE, INSIDE)


class TestConnector:
    def test_fields(self):
        c = Connector("IN", Point(0, 50), METAL, 400)
        assert c.side(BOX) == LEFT
        assert "IN" in str(c)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            Connector("", Point(0, 0), METAL, 400)

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            Connector("IN", Point(0, 0), METAL, 0)
