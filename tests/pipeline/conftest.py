"""Shared fixtures for pipeline tests."""

import pytest

from repro.core.editor import RiotEditor
from repro.geometry.layers import nmos_technology
from repro.geometry.point import Point
from repro.library.stock import filter_library

TECH = nmos_technology()


def stock_editor() -> RiotEditor:
    editor = RiotEditor(TECH)
    editor.library = filter_library(TECH)
    return editor


def make_row(editor: RiotEditor, name: str, cell_name: str = "srcell", nx: int = 2):
    """A finished composition: an ``nx``-wide abutted array of one leaf."""
    editor.new_cell(name)
    editor.create(at=Point(0, 0), cell_name=cell_name, nx=nx, name="a")
    editor.finish()
    return editor.library.get(name)


@pytest.fixture()
def editor():
    return stock_editor()


@pytest.fixture()
def tech():
    return TECH
