"""Scheduler semantics: ordering, parallel/serial equivalence, timing."""

import os

import pytest

from repro.geometry.point import Point
from repro.pipeline import (
    ContentCache,
    PipelineError,
    Scheduler,
    Task,
    build_verification_dag,
    register_kind,
    run_verification,
)

from .conftest import TECH, make_row, stock_editor


def _sum_inputs(payload, inputs):
    return payload.get("n", 0) + sum(inputs.values())


register_kind("test-sum", _sum_inputs)


def sum_task(task_id, n, deps=(), cache_key=None, local=False):
    return Task(
        id=task_id,
        kind="test-sum",
        cell_name="t",
        payload={"n": n},
        deps=tuple(deps),
        cache_key=cache_key,
        local=local,
    )


class TestDagExecution:
    def test_diamond_dependency_order(self):
        tasks = [
            sum_task("a", 1),
            sum_task("b", 10, deps=("a",)),
            sum_task("c", 100, deps=("a",)),
            sum_task("d", 0, deps=("b", "c")),
        ]
        results, timing = Scheduler(jobs=1).run(tasks)
        assert results["d"] == (10 + 1) + (100 + 1)
        assert timing.executed() == 4

    def test_parallel_matches_serial(self):
        tasks = [sum_task(f"t{i}", i) for i in range(8)]
        tasks.append(sum_task("total", 0, deps=tuple(f"t{i}" for i in range(8))))
        serial, _ = Scheduler(jobs=1).run(tasks)
        parallel, _ = Scheduler(jobs=4).run(tasks)
        assert serial == parallel

    def test_unknown_dependency_rejected(self):
        with pytest.raises(PipelineError, match="unknown"):
            Scheduler().run([sum_task("a", 1, deps=("ghost",))])

    def test_duplicate_ids_rejected(self):
        with pytest.raises(PipelineError, match="duplicate"):
            Scheduler().run([sum_task("a", 1), sum_task("a", 2)])

    def test_cycle_detected(self):
        tasks = [
            sum_task("a", 1, deps=("b",)),
            sum_task("b", 2, deps=("a",)),
        ]
        with pytest.raises(PipelineError, match="cycle"):
            Scheduler().run(tasks)

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            Scheduler(jobs=0)

    def test_unknown_kind_fails(self):
        task = Task(id="x", kind="no-such-kind", cell_name="t")
        with pytest.raises(PipelineError, match="no-such-kind"):
            Scheduler().run([task])

    def test_cache_short_circuits_upstream(self, tmp_path):
        cache = ContentCache(tmp_path)
        tasks = [
            sum_task("a", 1, cache_key="aa" * 32),
            sum_task("b", 10, deps=("a",), cache_key="bb" * 32),
        ]
        Scheduler(cache=cache).run(tasks)
        results, timing = Scheduler(cache=cache).run(tasks)
        assert results["b"] == 11
        assert timing.executed() == 0
        assert timing.cache_hits == 2


class TestVerificationDag:
    def test_shared_leaf_has_one_expand_task(self):
        editor = stock_editor()
        rowa = make_row(editor, "rowa", nx=2)
        rowb = make_row(editor, "rowb", nx=3)
        tasks = build_verification_dag([rowa, rowb], TECH)
        expands = [t for t in tasks if t.kind == "expand"]
        assert len(expands) == 1
        assert expands[0].id == "expand:srcell"

    def test_leaf_target_rejected(self):
        editor = stock_editor()
        with pytest.raises(PipelineError, match="leaf"):
            build_verification_dag([editor.library.get("srcell")], TECH)

    def test_duplicate_target_rejected(self):
        editor = stock_editor()
        row = make_row(editor, "row")
        with pytest.raises(PipelineError, match="duplicate"):
            build_verification_dag([row, row], TECH)

    def test_netcheck_and_report_stay_local_and_uncached(self):
        editor = stock_editor()
        row = make_row(editor, "row")
        tasks = build_verification_dag([row], TECH)
        by_kind = {t.kind: t for t in tasks}
        assert by_kind["netcheck"].local and by_kind["netcheck"].cache_key is None
        assert by_kind["report"].local and by_kind["report"].cache_key is None
        for kind in ("expand", "cif", "elaborate", "drc", "extract"):
            assert by_kind[kind].cache_key is not None


class TestParallelVerification:
    def test_multi_cell_parallel_reports_match_serial(self):
        editor = stock_editor()
        cells = [
            make_row(editor, "r2", nx=2),
            make_row(editor, "r3", nx=3),
        ]
        serial = run_verification(cells, TECH, jobs=1)
        parallel = run_verification(cells, TECH, jobs=2)
        for name in ("r2", "r3"):
            assert (
                parallel.reports[name].summary() == serial.reports[name].summary()
            )
        assert parallel.timing.jobs == 2
        assert not parallel.timing.degradations

    def test_identity_of_netcheck_instances_preserved(self):
        """The connection report must reference the caller's live
        Instance objects even when everything else crossed a process
        boundary — the documented reason netcheck is pinned local."""
        editor = stock_editor()
        editor.new_cell("pair")
        editor.create(at=Point(0, 0), cell_name="srcell", name="a")
        editor.create(at=Point(9000, 0), cell_name="srcell", name="b")
        editor.connect("b", "IN", "a", "OUT")
        editor.do_abut()
        editor.finish()
        cell = editor.cell
        report = run_verification([cell], TECH, jobs=2).reports["pair"]
        a, b = cell.instance("a"), cell.instance("b")
        assert report.connections.is_connected(a, "OUT", b, "IN")

    def test_probe_works_on_parallel_report(self):
        editor = stock_editor()
        row = make_row(editor, "row", nx=4)
        report = run_verification([row], TECH, jobs=2).reports["row"]
        assert report.probe("IN[0,0]", "OUT[3,0]", row)
        assert ("IN[0,0]", "OUT[3,0]", True) in report.probes


def _which_pid(payload, inputs):
    return os.getpid()


register_kind("test-pid", _which_pid)


def pid_task(task_id, cost):
    return Task(id=task_id, kind="test-pid", cell_name="t", cost=cost)


class TestCostThreshold:
    """Small tasks stay in-process: fork + pickle overhead exceeds the
    work below the threshold, which is how ``--jobs N`` used to run
    slower than serial on the stock corpus."""

    def test_threshold_value_pinned(self):
        from repro.pipeline.scheduler import POOL_COST_THRESHOLD

        assert POOL_COST_THRESHOLD == 1000

    def test_cheap_tasks_run_inline_despite_jobs(self):
        from repro.pipeline.scheduler import INLINE, POOL_COST_THRESHOLD

        tasks = [
            pid_task(f"c{i}", cost=POOL_COST_THRESHOLD - 1) for i in range(4)
        ]
        results, timing = Scheduler(jobs=2).run(tasks)
        assert all(pid == os.getpid() for pid in results.values())
        assert {s.source for s in timing.spans} == {INLINE}

    def test_expensive_tasks_still_ship(self):
        from repro.pipeline.scheduler import POOL, POOL_COST_THRESHOLD

        tasks = [
            pid_task(f"e{i}", cost=POOL_COST_THRESHOLD) for i in range(2)
        ]
        results, timing = Scheduler(jobs=2).run(tasks)
        assert {s.source for s in timing.spans} == {POOL}
        assert all(pid != os.getpid() for pid in results.values())

    def test_unknown_cost_still_ships(self):
        from repro.pipeline.scheduler import POOL

        results, timing = Scheduler(jobs=2).run([pid_task("u", cost=0)])
        assert timing.spans[0].source == POOL
        assert results["u"] != os.getpid()

    def test_stock_corpus_stays_inline(self):
        """Every stock verification task is under the threshold — the
        whole regression case (parallel_speedup < 1) runs inline now."""
        from repro.pipeline.scheduler import POOL_COST_THRESHOLD

        editor = stock_editor()
        row = make_row(editor, "row", nx=4)
        tasks = build_verification_dag([row], TECH)
        shippable = [t for t in tasks if not t.local]
        assert shippable
        assert all(0 < t.cost < POOL_COST_THRESHOLD for t in shippable)


class TestTimingReport:
    def test_to_text_mentions_stages_and_counters(self):
        editor = stock_editor()
        row = make_row(editor, "row")
        timing = run_verification([row], TECH).timing
        text = timing.to_text()
        assert "counters:" in text
        assert "executed[drc]=1" in text
        assert "row:" in text
        assert "netcheck:row" in text
        assert "ms wall" in text

    def test_cached_spans_marked(self, tmp_path):
        editor = stock_editor()
        row = make_row(editor, "row")
        run_verification([row], TECH, cache=tmp_path)
        timing = run_verification([row], TECH, cache=tmp_path).timing
        assert "cached" in timing.to_text()
        assert timing.counters()["drc"] == 0
