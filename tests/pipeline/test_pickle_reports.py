"""Every verification artifact must survive a pickle round trip —
the contract that lets them cross process boundaries and live in the
content-addressed cache."""

import pickle

import pytest

from repro.core.verify import verify_cell

from .conftest import TECH, make_row, stock_editor


@pytest.fixture(scope="module")
def report():
    editor = stock_editor()
    row = make_row(editor, "row", nx=2)
    return verify_cell(row, TECH)


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj))


class TestReportPickling:
    def test_drc_report(self, report):
        copy = roundtrip(report.drc)
        assert copy.shapes_checked == report.drc.shapes_checked
        assert copy.is_clean == report.drc.is_clean
        assert [str(v) for v in copy.violations] == [
            str(v) for v in report.drc.violations
        ]

    def test_mask_netlist(self, report):
        copy = roundtrip(report.netlist)
        assert copy.node_count == report.netlist.node_count
        assert len(copy.shapes) == len(report.netlist.shapes)
        assert sorted(
            (layer, str(box), node) for layer, box, node in copy.shapes
        ) == sorted(
            (layer, str(box), node) for layer, box, node in report.netlist.shapes
        )

    def test_connection_report(self, report):
        copy = roundtrip(report.connections)
        assert copy.made_count == report.connections.made_count
        assert len(copy.near_misses) == len(report.connections.near_misses)
        assert len(copy.unconnected) == len(report.connections.unconnected)

    def test_verification_report(self, report):
        copy = roundtrip(report)
        assert copy.cell_name == report.cell_name
        assert copy.shape_count == report.shape_count
        assert copy.summary() == report.summary()

    def test_verification_report_probe_survives(self, report):
        editor = stock_editor()
        row = make_row(editor, "probed", nx=2)
        fresh = verify_cell(row, TECH)
        copy = roundtrip(fresh)
        assert copy.probe("IN[0,0]", "OUT[1,0]", row) == fresh.probe(
            "IN[0,0]", "OUT[1,0]", row
        )
