"""Content hashes: canonical, order-independent, edit-sensitive."""

import pytest

from repro.cif.semantics import CifCell, CifConnector
from repro.composition.cell import CompositionCell, LeafCell
from repro.composition.instance import Instance
from repro.geometry.box import Box
from repro.geometry.layers import Layer, Technology, nmos_technology
from repro.geometry.point import Point
from repro.pipeline.hashing import (
    hash_cell,
    hash_cif_cell,
    hash_sticks_cell,
    hash_technology,
    task_key,
)
from repro.sticks.model import Contact, Pin, SticksCell, SymbolicWire

TECH = nmos_technology()


def sticks_components():
    pins = [
        Pin("IN", "metal", Point(0, 500), 400),
        Pin("OUT", "metal", Point(2000, 500), 400),
    ]
    wires = [
        SymbolicWire("metal", (Point(0, 500), Point(2000, 500)), 400),
        SymbolicWire("poly", (Point(1000, 0), Point(1000, 1000))),
    ]
    contacts = [Contact("metal", "poly", Point(1000, 500))]
    return pins, wires, contacts


class TestSticksHash:
    def test_stable(self):
        pins, wires, contacts = sticks_components()
        a = SticksCell("g", pins=pins, wires=wires, contacts=contacts)
        b = SticksCell("g", pins=list(pins), wires=list(wires), contacts=list(contacts))
        assert hash_sticks_cell(a) == hash_sticks_cell(b)

    def test_component_order_irrelevant(self):
        pins, wires, contacts = sticks_components()
        a = SticksCell("g", pins=pins, wires=wires, contacts=contacts)
        b = SticksCell(
            "g",
            pins=list(reversed(pins)),
            wires=list(reversed(wires)),
            contacts=contacts,
        )
        assert hash_sticks_cell(a) == hash_sticks_cell(b)

    def test_geometry_change_changes_hash(self):
        pins, wires, contacts = sticks_components()
        a = SticksCell("g", pins=pins, wires=wires, contacts=contacts)
        moved = [
            SymbolicWire("metal", (Point(0, 600), Point(2000, 600)), 400),
            wires[1],
        ]
        b = SticksCell("g", pins=pins, wires=moved, contacts=contacts)
        assert hash_sticks_cell(a) != hash_sticks_cell(b)

    def test_rename_changes_hash(self):
        pins, wires, contacts = sticks_components()
        a = SticksCell("g", pins=pins, wires=wires, contacts=contacts)
        b = SticksCell("h", pins=pins, wires=wires, contacts=contacts)
        assert hash_sticks_cell(a) != hash_sticks_cell(b)


class TestCifHash:
    def make(self, name="pad", box=Box(0, 0, 1000, 1000), reorder=False):
        cell = CifCell(7, name)
        metal = TECH.layer("metal")
        poly = TECH.layer("poly")
        shapes = [(metal, box), (poly, Box(0, 0, 200, 200))]
        if reorder:
            shapes.reverse()
        cell.geometry.boxes.extend(shapes)
        cell.connectors.append(CifConnector("PAD", Point(500, 500), metal, 400))
        return cell

    def test_shape_order_irrelevant(self):
        assert hash_cif_cell(self.make()) == hash_cif_cell(self.make(reorder=True))

    def test_symbol_number_irrelevant(self):
        a = self.make()
        b = self.make()
        b.number = 99
        assert hash_cif_cell(a) == hash_cif_cell(b)

    def test_geometry_sensitive(self):
        a = self.make()
        b = self.make(box=Box(0, 0, 1000, 1200))
        assert hash_cif_cell(a) != hash_cif_cell(b)

    def test_child_calls_hash_recursively(self):
        from repro.geometry.transform import Transform

        child_a = self.make(name="child")
        child_b = self.make(name="child", box=Box(0, 0, 900, 900))
        a = CifCell(1, "top")
        a.calls.append((child_a, Transform.translate(100, 0)))
        b = CifCell(1, "top")
        b.calls.append((child_b, Transform.translate(100, 0)))
        assert hash_cif_cell(a) != hash_cif_cell(b)


class TestCompositionHash:
    def leaf(self):
        pins, wires, contacts = sticks_components()
        sticks = SticksCell(
            "g", pins=pins, wires=wires, contacts=contacts,
            boundary=Box(0, 0, 2000, 1000),
        )
        return LeafCell.from_sticks(sticks, TECH)

    def composed(self, order=(0, 1)):
        leaf = self.leaf()
        cell = CompositionCell("top")
        placed = [
            Instance("a", leaf),
            Instance("b", leaf, transform=None),
        ]
        placed[1].translate(2000, 0)
        for index in order:
            cell.add_instance(placed[index])
        return cell

    def test_instance_order_irrelevant(self):
        assert hash_cell(self.composed()) == hash_cell(self.composed(order=(1, 0)))

    def test_placement_sensitive(self):
        a = self.composed()
        b = self.composed()
        b.instance("b").translate(100, 0)
        assert hash_cell(a) != hash_cell(b)

    def test_leaf_edit_propagates_to_parents(self):
        a = self.composed()
        b = self.composed()
        edited = b.instances[0].cell
        edited.sticks_cell.wires.append(
            SymbolicWire("metal", (Point(0, 900), Point(2000, 900)), 400)
        )
        assert hash_cell(a) != hash_cell(b)

    def test_replication_sensitive(self):
        leaf = self.leaf()
        a = CompositionCell("top")
        a.add_instance(Instance("a", leaf, nx=2))
        b = CompositionCell("top")
        b.add_instance(Instance("a", leaf, nx=3))
        assert hash_cell(a) != hash_cell(b)


class TestTechnologyHash:
    def test_reconstructed_technology_hashes_equal(self):
        assert hash_technology(nmos_technology()) == hash_technology(
            nmos_technology()
        )

    def test_lambda_changes_hash(self):
        assert hash_technology(nmos_technology(250)) != hash_technology(
            nmos_technology(200)
        )

    def test_layer_order_irrelevant(self):
        def tech(reverse):
            layers = [Layer("metal", "NM", color=4), Layer("poly", "NP", color=1)]
            if reverse:
                layers.reverse()
            return Technology(
                "t", 250, layers, {"metal": 3, "poly": 2}, {"metal": 3, "poly": 2}
            )

        assert hash_technology(tech(False)) == hash_technology(tech(True))


class TestTaskKey:
    def test_distinct_stages_distinct_keys(self):
        assert task_key("drc", "c" * 64, "t" * 64) != task_key(
            "extract", "c" * 64, "t" * 64
        )

    def test_key_is_hex(self):
        key = task_key("drc", "c" * 64, "t" * 64)
        assert len(key) == 64
        int(key, 16)


def test_hash_rejects_unknown_objects():
    with pytest.raises(TypeError):
        hash_cell(object())
