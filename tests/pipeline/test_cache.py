"""The content-addressed store, and cache *correctness*: cached
verification must be indistinguishable from fresh verification, and
editing a leaf must invalidate exactly its dependents."""

import pytest

from repro.core.verify import verify_cell
from repro.geometry.point import Point
from repro.pipeline import ContentCache, hash_cell, run_verification
from repro.sticks.model import SymbolicWire

from .conftest import TECH, stock_editor


class TestContentCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ContentCache(tmp_path)
        assert cache.get("ab" * 32) == (False, None)
        cache.put("ab" * 32, {"x": 1})
        assert cache.get("ab" * 32) == (True, {"x": 1})

    def test_falsy_value_is_a_hit(self, tmp_path):
        cache = ContentCache(tmp_path)
        cache.put("cd" * 32, [])
        hit, value = cache.get("cd" * 32)
        assert hit and value == []

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = ContentCache(tmp_path)
        key = "ef" * 32
        cache.put(key, 42)
        path = cache._path(key)
        path.write_bytes(b"\x80garbage")
        assert cache.get(key) == (False, None)
        assert not path.exists()

    def test_unpicklable_value_reports_failure(self, tmp_path):
        cache = ContentCache(tmp_path)
        assert cache.put("01" * 32, lambda: None) is False
        assert "01" * 32 not in cache

    def test_no_stray_temp_files_after_put(self, tmp_path):
        cache = ContentCache(tmp_path)
        cache.put("23" * 32, list(range(100)))
        assert not list(tmp_path.glob("**/*.tmp"))

    def test_len_counts_entries(self, tmp_path):
        cache = ContentCache(tmp_path)
        cache.put("ab" * 32, 1)
        cache.put("cd" * 32, 2)
        assert len(cache) == 2


class TestEviction:
    def test_evict_removes_entry(self, tmp_path):
        cache = ContentCache(tmp_path)
        cache.put("ab" * 32, 1)
        assert cache.evict("ab" * 32) is True
        assert cache.get("ab" * 32) == (False, None)

    def test_evicting_absent_key_is_a_noop(self, tmp_path):
        cache = ContentCache(tmp_path)
        assert cache.evict("cd" * 32) is False

    def test_evictions_are_counted(self, tmp_path):
        from repro.obs import metrics

        reg = metrics.MetricsRegistry()
        cache = ContentCache(tmp_path)
        cache.put("ab" * 32, 1)
        with metrics.scope(reg):
            cache.evict("ab" * 32)
            cache.evict("ab" * 32)  # miss: not counted
        assert reg.snapshot()["pipeline.cache.evictions"] == 1

    def test_corrupt_drop_counts_as_eviction(self, tmp_path):
        from repro.obs import metrics

        reg = metrics.MetricsRegistry()
        cache = ContentCache(tmp_path)
        key = "ef" * 32
        cache.put(key, 42)
        cache._path(key).write_bytes(b"\x80garbage")
        with metrics.scope(reg):
            assert cache.get(key) == (False, None)
        assert reg.snapshot()["pipeline.cache.evictions"] == 1


def report_fingerprint(report):
    """Everything observable about a VerificationReport, as data."""
    return (
        report.cell_name,
        report.shape_count,
        report.summary(),
        sorted(str(v) for v in report.drc.violations),
        sorted(
            (layer, str(box), node) for layer, box, node in report.netlist.shapes
        ),
        sorted(str(c) for c in report.connections.made),
        sorted(str(n.a) + str(n.b) for n in report.connections.near_misses),
        sorted(str(c) for c in report.connections.unconnected),
    )


def composition_cells_of_stock():
    """Every stock leaf, wrapped in a one-instance composition."""
    editor = stock_editor()
    leaf_names = list(editor.library.names)
    cells = []
    for leaf_name in leaf_names:
        editor.new_cell(f"wrap_{leaf_name}")
        editor.create(at=Point(0, 0), cell_name=leaf_name, name="u")
        editor.finish()
        cells.append(editor.cell)
    return cells


STOCK_CELLS = composition_cells_of_stock()


class TestCachedEqualsFresh:
    """Property over the whole stock library: for every cell, the
    report computed through a warm cache is identical to one computed
    from scratch."""

    @pytest.mark.parametrize(
        "cell", STOCK_CELLS, ids=[c.name for c in STOCK_CELLS]
    )
    def test_stock_cell_cached_report_identical(self, cell, tmp_path):
        fresh = verify_cell(cell, TECH)
        cold = verify_cell(cell, TECH, cache=tmp_path / "c")
        warm = verify_cell(cell, TECH, cache=tmp_path / "c")
        assert report_fingerprint(cold) == report_fingerprint(fresh)
        assert report_fingerprint(warm) == report_fingerprint(fresh)

    def test_warm_run_is_pure_hits(self, tmp_path):
        editor = stock_editor()
        editor.new_cell("row")
        editor.create(at=Point(0, 0), cell_name="srcell", nx=3, name="a")
        editor.finish()
        run_verification([editor.cell], TECH, cache=tmp_path)
        result = run_verification([editor.cell], TECH, cache=tmp_path)
        timing = result.timing
        assert timing.cache_misses == 0
        for kind in ("expand", "cif", "elaborate", "drc", "extract"):
            assert timing.executed(kind) == 0, kind


class TestInvalidationExactness:
    """Editing one leaf re-verifies only that leaf's dependents."""

    def build(self):
        editor = stock_editor()
        editor.new_cell("rowa")
        editor.create(at=Point(0, 0), cell_name="srcell", nx=2, name="a")
        editor.finish()
        editor.new_cell("rowb")
        editor.create(at=Point(0, 0), cell_name="fit_strap", nx=2, name="b")
        editor.finish()
        return editor

    def mutate_srcell(self, editor):
        """An in-place leaf edit: one extra metal stub on srcell."""
        leaf = editor.library.get("srcell")
        sticks = leaf.sticks_cell
        y = sticks.boundary.ury - 200
        sticks.wires.append(
            SymbolicWire(
                "metal",
                (Point(sticks.boundary.llx, y), Point(sticks.boundary.llx + 600, y)),
                750,
            )
        )

    def test_hashes_move_only_for_dependents(self):
        editor = self.build()
        rowa, rowb = editor.library.get("rowa"), editor.library.get("rowb")
        srcell, fitting = editor.library.get("srcell"), editor.library.get("fit_strap")
        before = {c.name: hash_cell(c) for c in (rowa, rowb, srcell, fitting)}
        self.mutate_srcell(editor)
        after = {c.name: hash_cell(c) for c in (rowa, rowb, srcell, fitting)}
        assert before["srcell"] != after["srcell"]
        assert before["rowa"] != after["rowa"]
        assert before["fit_strap"] == after["fit_strap"]
        assert before["rowb"] == after["rowb"]

    def test_pipeline_reruns_exactly_the_dependents(self, tmp_path):
        editor = self.build()
        cells = [editor.library.get("rowa"), editor.library.get("rowb")]
        run_verification(cells, TECH, cache=tmp_path)
        self.mutate_srcell(editor)
        result = run_verification(cells, TECH, cache=tmp_path)
        executed = {
            s.task_id for s in result.timing.spans if s.source != "cached"
        }
        # srcell and everything above it recomputed...
        assert "expand:srcell" in executed
        for stage in ("cif", "elaborate", "drc", "extract"):
            assert f"{stage}:rowa" in executed
        # ...while the untouched row stayed cached end to end.
        for stage in ("cif", "elaborate", "drc", "extract"):
            assert f"{stage}:rowb" not in executed
        assert "expand:fit_strap" not in executed

    def test_mutated_cell_report_reflects_the_edit(self, tmp_path):
        editor = self.build()
        cells = [editor.library.get("rowa")]
        first = run_verification(cells, TECH, cache=tmp_path).reports["rowa"]
        self.mutate_srcell(editor)
        second = run_verification(cells, TECH, cache=tmp_path).reports["rowa"]
        assert second.shape_count > first.shape_count


def test_cache_shared_between_jobs_levels(tmp_path):
    """Artifacts stored by a parallel run are hits for a serial run."""
    editor = stock_editor()
    editor.new_cell("row")
    editor.create(at=Point(0, 0), cell_name="srcell", nx=2, name="a")
    editor.finish()
    run_verification([editor.cell], TECH, jobs=2, cache=tmp_path)
    result = run_verification([editor.cell], TECH, jobs=1, cache=tmp_path)
    assert result.timing.cache_misses == 0
