"""Fault injection: workers that raise, die, or return garbage must
not wedge the scheduler — tasks are retried in-process and the
degradation is flagged in the timing report."""

import multiprocessing
import os
import signal

import pytest

from repro.pipeline import PipelineError, Scheduler, Task
from repro.pipeline.tasks import register_kind


def _in_worker() -> bool:
    return multiprocessing.parent_process() is not None


def _flaky(payload, inputs):
    """Raises only inside a pool worker; succeeds inline."""
    if _in_worker():
        raise RuntimeError("injected worker failure")
    return payload["n"] * 2


def _suicidal(payload, inputs):
    """SIGKILLs the worker mid-task; succeeds inline."""
    if _in_worker():
        os.kill(os.getpid(), signal.SIGKILL)
    return payload["n"] * 3


def _unpicklable_result(payload, inputs):
    """Result cannot cross the process boundary; fine inline."""
    if _in_worker():
        return lambda: None
    return payload["n"] * 5


def _always_raises(payload, inputs):
    raise ValueError("broken everywhere")


def _ok(payload, inputs):
    return payload["n"] + sum(inputs.values())


register_kind("test-flaky", _flaky)
register_kind("test-suicidal", _suicidal)
register_kind("test-unpicklable", _unpicklable_result)
register_kind("test-always-raises", _always_raises)
register_kind("test-ok", _ok)


def task(task_id, kind, n, deps=()):
    return Task(
        id=task_id, kind=kind, cell_name="t", payload={"n": n}, deps=tuple(deps)
    )


pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="fault injection needs fork workers"
)


class TestWorkerRaises:
    def test_retried_inline_and_flagged(self):
        tasks = [
            task("bad", "test-flaky", 7),
            task("after", "test-ok", 1, deps=("bad",)),
        ]
        results, timing = Scheduler(jobs=2).run(tasks)
        assert results["bad"] == 14
        assert results["after"] == 15
        assert any("retrying in-process" in d for d in timing.degradations)
        sources = {s.task_id: s.source for s in timing.spans}
        assert sources["bad"] == "retried-inline"

    def test_error_in_both_worker_and_retry_raises(self):
        with pytest.raises(PipelineError, match="broken everywhere"):
            Scheduler(jobs=2).run([task("bad", "test-always-raises", 0)])


class TestWorkerKilled:
    def test_sigkill_degrades_to_serial_without_losing_results(self):
        tasks = [
            task("dead", "test-suicidal", 2),
            task("after", "test-ok", 10, deps=("dead",)),
            task("other", "test-ok", 100),
        ]
        results, timing = Scheduler(jobs=2).run(tasks)
        assert results["dead"] == 6
        assert results["after"] == 16
        assert results["other"] == 100
        assert timing.degradations, "a killed worker must be flagged"

    def test_scheduler_reusable_after_pool_breakage(self):
        scheduler = Scheduler(jobs=2)
        scheduler.run([task("dead", "test-suicidal", 1)])
        results, timing = scheduler.run([task("fine", "test-ok", 4)])
        assert results["fine"] == 4
        assert not timing.degradations


class TestUnpicklable:
    def test_unpicklable_result_retried_inline(self):
        results, timing = Scheduler(jobs=2).run(
            [task("odd", "test-unpicklable", 3)]
        )
        assert results["odd"] == 15
        assert timing.degradations

    def test_unpicklable_payload_runs_inline(self):
        bad_payload = Task(
            id="odd",
            kind="test-ok",
            cell_name="t",
            payload={"n": 0, "hostage": lambda: None},
        )
        results, timing = Scheduler(jobs=2).run([bad_payload])
        assert results["odd"] == 0
        assert any("in-process" in d for d in timing.degradations)


class TestInlineErrors:
    def test_serial_task_error_is_a_pipeline_error(self):
        with pytest.raises(PipelineError, match="bad"):
            Scheduler(jobs=1).run([task("bad", "test-always-raises", 0)])
