"""``service.describe`` contract: the manifest is a complete export.

The property pinned here is the ISSUE's acceptance criterion: a codec
built from the manifest alone (:class:`repro.api.manifest.ManifestCodec`
— no imports of the typed dataclasses) samples, validates and encodes
**byte-identical** canonical request lines for every registered
command, and validates every result, with unknown fields rejected.
"""

from __future__ import annotations

import json
import socket

import pytest

from repro.api import wire
from repro.api.codec import canonical_json, from_jsonable, to_jsonable
from repro.api.errors import BadRequest
from repro.api.manifest import Manifest, ManifestCodec, build_manifest
from repro.api.registry import REGISTRY
from repro.api.types import PROTOCOL_VERSION
from repro.service.control import CONTROL

from .test_wire import sample_instance

MANIFEST = build_manifest(CONTROL)
CODEC = ManifestCodec(MANIFEST)

#: (method, request class, result class) for everything registered.
METHODS = sorted(
    [(m, s.request, s.result) for m, s in REGISTRY.items()]
    + [(m, req, res) for m, (req, res) in CONTROL.items()]
)


class TestManifestShape:
    def test_covers_registry_and_control_plane(self):
        assert {c.name for c in MANIFEST.commands} == set(REGISTRY) | set(
            CONTROL
        )

    def test_version_and_flags(self):
        assert MANIFEST.version == PROTOCOL_VERSION
        by_name = {c.name: c for c in MANIFEST.commands}
        assert by_name["rotate"].replayable
        assert not by_name["writecif"].replayable
        assert by_name["service.ping"].control
        assert not by_name["rotate"].control

    def test_replayable_flags_match_registry(self):
        by_name = {c.name: c for c in MANIFEST.commands}
        for method, spec in REGISTRY.items():
            assert by_name[method].replayable == spec.replayable

    def test_error_codes_include_the_pinned_vocabulary(self):
        codes = set(MANIFEST.error_codes)
        assert {
            "api.bad_request",
            "api.unknown_command",
            "service.backpressure",
            "service.moved",
            "service.overloaded",
            "service.shard_failed",
        } <= codes

    def test_manifest_travels_protocol_v1(self):
        encoded = canonical_json(MANIFEST)
        decoded = from_jsonable(Manifest, json.loads(encoded))
        assert decoded == MANIFEST
        assert canonical_json(decoded) == encoded


class TestManifestCodecProperty:
    """Per command: the manifest-only codec agrees with the typed one."""

    @pytest.mark.parametrize(
        "method,request_cls,result_cls",
        METHODS,
        ids=[m for m, _, _ in METHODS],
    )
    def test_samples_match_the_typed_encoding(
        self, method, request_cls, result_cls
    ):
        assert CODEC.sample_params(method) == to_jsonable(
            sample_instance(request_cls)
        )
        assert CODEC.sample_result(method) == to_jsonable(
            sample_instance(result_cls)
        )

    @pytest.mark.parametrize(
        "method,request_cls,result_cls",
        METHODS,
        ids=[m for m, _, _ in METHODS],
    )
    def test_encoded_lines_are_byte_identical(
        self, method, request_cls, result_cls
    ):
        typed = wire.encode_request(
            method, sample_instance(request_cls), id=3, session="alice"
        )
        from_manifest = CODEC.encode_request_line(
            method, CODEC.sample_params(method), id=3, session="alice"
        )
        assert from_manifest == typed

    @pytest.mark.parametrize(
        "method,request_cls,result_cls",
        METHODS,
        ids=[m for m, _, _ in METHODS],
    )
    def test_results_validate_and_unknowns_reject(
        self, method, request_cls, result_cls
    ):
        result = to_jsonable(sample_instance(result_cls))
        CODEC.validate_result(method, result)
        result["definitely_not_a_field"] = 1
        with pytest.raises(BadRequest, match="definitely_not_a_field"):
            CODEC.validate_result(method, result)

    def test_unknown_param_rejected(self):
        params = CODEC.sample_params("rotate")
        params["definitely_not_a_field"] = 1
        with pytest.raises(BadRequest, match="definitely_not_a_field"):
            CODEC.encode_request_line("rotate", params, id=1, session="s")

    def test_missing_required_param_rejected(self):
        with pytest.raises(BadRequest, match="name"):
            CODEC.encode_request_line("rotate", {}, id=1, session="s")

    def test_unknown_command_rejected(self):
        with pytest.raises(BadRequest, match="no_such"):
            CODEC.sample_params("no_such")


class TestDescribeEndToEnd:
    def test_manifest_fetched_over_the_wire_drives_a_raw_client(self):
        # The full loop: fetch the manifest with service.describe, then
        # speak the protocol from it alone over a bare socket.
        from repro.service.client import ServiceClient
        from repro.service.server import ServiceThread

        with ServiceThread() as srv:
            host, port = srv.address
            with ServiceClient(host, port) as control:
                fetched = control.call("service.describe")
            assert fetched == MANIFEST
            codec = ManifestCodec(fetched)
            line = codec.encode_request_line(
                "new_cell",
                {"name": "from-manifest"},
                id=1,
                session="describe-e2e",
            )
            with socket.create_connection((host, port), timeout=10) as sock:
                file = sock.makefile("rwb")
                file.write(line.encode() + b"\n")
                file.flush()
                raw = file.readline()
        envelope = wire.parse_response(raw)
        assert envelope.ok
        codec.validate_result("new_cell", envelope.result)
        assert envelope.result["name"] == "from-manifest"
