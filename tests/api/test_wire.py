"""Protocol v1 contract tests: golden round-trips for every request
and response dataclass, plus strictness (unknown fields, versions).

The round-trip invariant pinned here is what makes the wire protocol
evolvable: ``decode(encode(x)) == x`` and ``encode(decode(bytes)) ==
bytes`` for every type that travels, with unknown fields rejected by
name rather than silently dropped.
"""

from __future__ import annotations

import dataclasses
import json
import types
import typing

import pytest

from repro.api import wire
from repro.api.codec import canonical_json, from_jsonable, to_jsonable
from repro.api.errors import BadRequest, VersionError
from repro.api.registry import REGISTRY, replayable_commands, spec_for
from repro.api.types import PROTOCOL_VERSION
from repro.core.replay import REPLAYABLE
from repro.errors import ReproError
from repro.service.control import CONTROL


def wire_types() -> list[tuple[str, type]]:
    """Every dataclass that crosses the wire, labelled for test ids."""
    seen: dict[type, str] = {}
    for method, spec in sorted(REGISTRY.items()):
        seen.setdefault(spec.request, f"{method}.request")
        seen.setdefault(spec.result, f"{method}.result")
    for method, (request_cls, result_cls) in sorted(CONTROL.items()):
        seen.setdefault(request_cls, f"{method}.request")
        seen.setdefault(result_cls, f"{method}.result")
    return sorted(((label, cls) for cls, label in seen.items()))


def sample_value(hint, depth: int = 0):
    """A populated value for a type hint — non-default everywhere it
    can be, so totality is actually exercised."""
    origin = typing.get_origin(hint)
    if origin is None:
        if dataclasses.is_dataclass(hint):
            return sample_instance(hint, depth + 1)
        if hint is int:
            return 7 + depth
        if hint is float:
            return 1.5 + depth
        if hint is str:
            return f"s{depth}"
        if hint is bool:
            return True
        if hint is type(None):
            return None
        if hint is dict:
            return {"k": depth}
        raise AssertionError(f"no sample for {hint!r}")
    if origin is tuple:
        args = typing.get_args(hint)
        if len(args) == 2 and args[1] is Ellipsis:
            return (sample_value(args[0], depth), sample_value(args[0], depth + 1))
        return tuple(sample_value(arg, depth) for arg in args)
    if origin in (typing.Union, types.UnionType):
        arms = [a for a in typing.get_args(hint) if a is not type(None)]
        return sample_value(arms[0], depth)
    if origin is dict:
        _, val_t = typing.get_args(hint)
        return {"k": sample_value(val_t, depth)}
    raise AssertionError(f"no sample for {hint!r}")


def sample_instance(cls: type, depth: int = 0):
    hints = typing.get_type_hints(cls)
    return cls(
        **{f.name: sample_value(hints[f.name], depth) for f in dataclasses.fields(cls)}
    )


WIRE_TYPES = wire_types()


class TestGoldenRoundTrip:
    @pytest.mark.parametrize(
        "cls", [c for _, c in WIRE_TYPES], ids=[label for label, _ in WIRE_TYPES]
    )
    def test_round_trip_is_identity_and_bytes_stable(self, cls):
        original = sample_instance(cls)
        encoded = canonical_json(original)
        decoded = from_jsonable(cls, json.loads(encoded))
        assert decoded == original
        # Totality: re-encoding the decoded object reproduces the
        # exact bytes — nothing lost, nothing reordered.
        assert canonical_json(decoded) == encoded

    @pytest.mark.parametrize(
        "cls", [c for _, c in WIRE_TYPES], ids=[label for label, _ in WIRE_TYPES]
    )
    def test_unknown_field_rejected_by_name(self, cls):
        data = to_jsonable(sample_instance(cls))
        data["definitely_not_a_field"] = 1
        with pytest.raises(BadRequest, match="definitely_not_a_field"):
            from_jsonable(cls, data)

    @pytest.mark.parametrize(
        "cls",
        [c for _, c in WIRE_TYPES if any(
            f.default is dataclasses.MISSING
            and f.default_factory is dataclasses.MISSING
            for f in dataclasses.fields(c)
        )],
        ids=[label for label, c in WIRE_TYPES if any(
            f.default is dataclasses.MISSING
            and f.default_factory is dataclasses.MISSING
            for f in dataclasses.fields(c)
        )],
    )
    def test_missing_required_field_rejected(self, cls):
        required = next(
            f.name
            for f in dataclasses.fields(cls)
            if f.default is dataclasses.MISSING
            and f.default_factory is dataclasses.MISSING
        )
        data = to_jsonable(sample_instance(cls))
        del data[required]
        with pytest.raises(BadRequest, match=required):
            from_jsonable(cls, data)


class TestEnvelopes:
    def line(self, **overrides) -> str:
        data = {"method": "do_abut", "params": {}, "id": 1, "v": PROTOCOL_VERSION}
        data.update(overrides)
        return json.dumps({k: v for k, v in data.items() if v is not ...})

    def test_request_round_trip(self):
        spec = spec_for("do_abut")
        request = spec.request()
        line = wire.encode_request("do_abut", request, id=9, session="alice")
        envelope = wire.parse_request(line)
        assert envelope.method == "do_abut"
        assert envelope.id == 9
        assert envelope.session == "alice"
        assert envelope.v == PROTOCOL_VERSION
        assert wire.decode_params(envelope) == request

    def test_result_round_trip(self):
        spec = spec_for("do_abut")
        result = sample_instance(spec.result)
        line = wire.encode_result(3, "do_abut", result)
        envelope = wire.parse_response(line)
        assert envelope.ok
        assert envelope.id == 3
        assert wire.decode_result(envelope) == result

    def test_error_round_trip_preserves_code(self):
        line = wire.encode_error(4, KeyError("no such instance 'g9'"))
        envelope = wire.parse_response(line)
        assert not envelope.ok
        assert envelope.error.code == "args.key"
        with pytest.raises(ReproError) as excinfo:
            wire.decode_result(envelope)
        assert excinfo.value.code == "args.key"

    def test_missing_version_rejected(self):
        with pytest.raises(BadRequest, match="protocol version"):
            wire.parse_request(self.line(v=...))

    def test_unknown_version_rejected(self):
        with pytest.raises(VersionError, match="2"):
            wire.parse_request(self.line(v=2))
        with pytest.raises(VersionError):
            wire.parse_response(
                json.dumps({"ok": True, "result": {}, "v": 99})
            )

    def test_unknown_envelope_field_rejected(self):
        with pytest.raises(BadRequest, match="priority"):
            wire.parse_request(self.line(priority=5))

    def test_empty_method_rejected(self):
        with pytest.raises(BadRequest, match="empty method"):
            wire.parse_request(self.line(method=""))

    def test_non_json_rejected(self):
        with pytest.raises(BadRequest, match="not JSON"):
            wire.parse_request(b"ABUT;\n")
        with pytest.raises(BadRequest, match="object"):
            wire.parse_request(b"[1,2]")

    def test_inconsistent_response_rejected(self):
        with pytest.raises(BadRequest, match="ok without result"):
            wire.parse_response(json.dumps({"ok": True, "v": PROTOCOL_VERSION}))
        with pytest.raises(BadRequest, match="failure without error"):
            wire.parse_response(json.dumps({"ok": False, "v": PROTOCOL_VERSION}))


class TestRegistryContract:
    def test_replayable_commands_match_journal_allowlist(self):
        # The journal's replay allowlist and the registry's replayable
        # flag are the same contract stated twice; they must agree.
        assert replayable_commands() == REPLAYABLE

    def test_every_registry_method_resolves(self):
        for method in REGISTRY:
            spec = spec_for(method)
            assert spec.name == method
            assert dataclasses.is_dataclass(spec.request)
            assert dataclasses.is_dataclass(spec.result)

    def test_error_codes_are_stable_strings(self):
        # Pin the dotted code strings clients are allowed to match on.
        from repro.api.errors import ApiError, BadRequest, UnknownCommand, VersionError
        from repro.service.errors import (
            BackpressureError,
            BadSessionName,
            OverloadedError,
            ServiceError,
            ServiceTimeout,
            SessionLimitError,
            SessionMovedError,
            ShardFailedError,
            ShutdownError,
        )

        codes = {
            ApiError: "api.error",
            UnknownCommand: "api.unknown_command",
            BadRequest: "api.bad_request",
            VersionError: "api.version",
            ServiceError: "service.error",
            BadSessionName: "service.bad_session",
            SessionLimitError: "service.session_limit",
            BackpressureError: "service.backpressure",
            ServiceTimeout: "service.timeout",
            ShutdownError: "service.shutdown",
            ShardFailedError: "service.shard_failed",
            OverloadedError: "service.overloaded",
            SessionMovedError: "service.moved",
        }
        for exc_type, code in codes.items():
            assert exc_type("x").code == code

    def test_error_detail_survives_the_wire(self):
        from repro.api import wire
        from repro.service.errors import SessionMovedError

        line = wire.encode_error(
            9,
            SessionMovedError(
                "stale lease",
                retry_after_ms=25,
                detail=wire.ErrorDetail(
                    shard=3, generation=2, host="127.0.0.1", port=7453
                ),
            ),
        )
        envelope = wire.parse_response(line)
        assert envelope.error.detail == wire.ErrorDetail(
            shard=3, generation=2, host="127.0.0.1", port=7453
        )
        rebuilt = wire.response_error(envelope)
        assert rebuilt.code == "service.moved"
        assert rebuilt.detail.port == 7453

    def test_error_detail_omitted_when_absent(self):
        # Old clients parse new servers' plain errors: no detail key.
        from repro.api import wire
        from repro.api.errors import BadRequest

        line = wire.encode_error(1, BadRequest("nope"))
        assert '"detail"' not in line
        assert wire.parse_response(line).error.detail is None

    def test_relay_requests_omit_the_generation_key(self):
        # Old servers parse new clients' relay lines: no generation.
        from repro.api import wire

        line = wire.encode_request(
            "rotate", spec_for("rotate").request(name="g0"), id=1
        )
        assert '"generation"' not in line
        direct = wire.encode_request(
            "rotate", spec_for("rotate").request(name="g0"), id=1,
            generation=4,
        )
        assert wire.parse_request(direct).generation == 4

    def test_retry_after_hint_survives_the_wire(self):
        from repro.api import wire
        from repro.service.errors import OverloadedError

        line = wire.encode_error(
            7, OverloadedError("shed", retry_after_ms=250)
        )
        envelope = wire.parse_response(line)
        assert envelope.error.retry_after_ms == 250
        rebuilt = wire.response_error(envelope)
        assert rebuilt.code == "service.overloaded"
        assert rebuilt.retry_after_ms == 250

    def test_retry_after_hint_defaults_to_none(self):
        from repro.api import wire
        from repro.api.errors import BadRequest

        envelope = wire.parse_response(
            wire.encode_error(1, BadRequest("nope"))
        )
        assert envelope.error.retry_after_ms is None
