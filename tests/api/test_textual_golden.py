"""The textual interface's output is pinned byte-for-byte.

The api_redesign moved every command's logic into the typed
:mod:`repro.api` layer, leaving ``core/textual.py`` a parse/format
shell.  This golden transcript — captured from the pre-refactor
implementation — asserts the move changed nothing a user (or a script
diffing session logs) can see: same success strings, same error
strings, same multi-line reports.

Regenerate with ``pytest tests/api/test_textual_golden.py
--update-golden`` only when an output change is intentional.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.editor import RiotEditor
from repro.core.textual import TextualInterface
from repro.library.stock import filter_library
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

GOLDEN = Path(__file__).parent / "golden_textual_transcript.txt"

#: Every textual command family, success and failure paths, in an
#: order whose outputs are deterministic (fresh metrics registry, no
#: wall-clock-dependent commands, memory store).
COMMANDS = [
    # lifecycle + editing
    "new demo",
    "create srcell 0 30000 nx=4 name=sr",
    "create nand 0 20000 name=n0",
    "connect n0 A sr TAP[0,0]",
    "pending",
    "abut",
    "create nand 4000 20000 name=n1",
    "connect n1 A sr TAP[1,0]",
    "route",
    "create nand 0 10000 name=m0",
    "connect m0 A n0 OUT",
    "connect m0 B n1 OUT",
    "stretch overlap",
    "finish",
    # environment + inspection
    "set tracks 4",
    "select nand",
    "cells",
    "check",
    "report demo",
    "verify demo",
    # files (memory store)
    "savereplay demo.replay",
    "write session.comp",
    "writecif demo demo.cif",
    "writesticks demo demo.sticks",
    "plot demo demo.svg",
    "plot demo demo-mask.svg mask",
    "read demo.cif",
    # observability
    "stats",
    "trace status",
    "trace on",
    "trace status",
    "trace off",
    # renames and deletion
    "rename demo demo2",
    "edit demo2",
    "delete demo2",
    # error paths: unknown command, usage errors, engine errors
    "bogus",
    "create",
    "connect a b c",
    "route",
    "abut sideways",
    "stretch sideways",
    "edit nosuch",
    "select nosuch",
    "set tracks 0",
    "set tracks x",
    "read missing.txt",
    "read noformat",
    "report nand",
    "verify",
    "journal j.rpl",
    "trace",
    "trace save t.json",
    "new demo",
    "create nand 0 0 name=n0",
    "create nand 0 0 bogus=1",
    "connect n0 A n0 A",
    "help",
]


def run_transcript() -> str:
    previous = obs_metrics.set_registry(obs_metrics.MetricsRegistry())
    tracing_before = obs_trace.active()
    try:
        editor = RiotEditor()
        editor.library = filter_library(editor.technology)
        interface = TextualInterface(editor)
        chunks = []
        for command in COMMANDS:
            chunks.append(f"$ {command}\n{interface.execute(command)}\n")
        return "".join(chunks)
    finally:
        obs_trace.disable()
        if tracing_before is not None:
            obs_trace.enable(tracing_before)
        obs_metrics.set_registry(previous)


def test_textual_output_byte_identical(request):
    transcript = run_transcript()
    if request.config.getoption("--update-golden"):
        GOLDEN.write_text(transcript, encoding="utf-8")
        pytest.skip("golden transcript rewritten")
    expected = GOLDEN.read_text(encoding="utf-8")
    assert transcript == expected
