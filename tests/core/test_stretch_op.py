"""End-to-end tests of the STRETCH command (paper figure 6)."""

import pytest

from repro.core.errors import RiotError
from repro.geometry.point import Point


class TestStretchCommand:
    def _gate_to_spread(self, editor):
        editor.create(at=Point(6000, 0), cell_name="gate", name="g")
        editor.create(at=Point(0, 0), cell_name="spread", name="s")
        # gate pins A@y400, B@y1600 on its left edge; spread connectors
        # A@300, B@2300 on its right edge?  spread's connectors are on
        # the LEFT edge, so mirror it to face the gate.
        editor.mirror("s")
        editor.connect("g", "A", "s", "A")
        editor.connect("g", "B", "s", "B")

    def test_new_cell_created(self, editor):
        self._gate_to_spread(editor)
        result = editor.do_stretch()
        assert result.old_cell == "gate"
        assert result.new_cell in editor.library.names
        assert editor.library.get(result.new_cell).is_stretchable

    def test_connectors_meet_without_routing(self, editor):
        self._gate_to_spread(editor)
        editor.do_stretch()
        g = editor.cell.instance("g")
        s = editor.cell.instance("s")
        assert g.connector("A").position == s.connector("A").position
        assert g.connector("B").position == s.connector("B").position

    def test_pin_separation_matches_target(self, editor):
        self._gate_to_spread(editor)
        result = editor.do_stretch()
        new_leaf = editor.library.get(result.new_cell)
        a = new_leaf.connector("A").position.y
        b = new_leaf.connector("B").position.y
        assert abs(b - a) == 2400  # spread's connector separation

    def test_no_routing_area_used(self, editor):
        # The stretched connection abuts: no route cell appears.
        self._gate_to_spread(editor)
        editor.do_stretch()
        assert not any(n.startswith("route") for n in editor.library.names)

    def test_original_cell_untouched(self, editor):
        self._gate_to_spread(editor)
        original_pins = {
            c.name: c.position for c in editor.library.get("gate").connectors
        }
        editor.do_stretch()
        after = {c.name: c.position for c in editor.library.get("gate").connectors}
        assert after == original_pins

    def test_cif_cell_not_stretchable(self, editor):
        editor.create(at=Point(6000, 0), cell_name="driver", name="d")
        editor.create(at=Point(20000, 0), cell_name="spread", name="s")
        editor.connect("d", "A", "s", "A")
        with pytest.raises(RiotError, match="not symbolic"):
            editor.do_stretch()

    def test_array_not_stretchable(self, editor):
        editor.create(at=Point(6000, 0), cell_name="gate", nx=2, name="g")
        editor.create(at=Point(20000, 0), cell_name="spread", name="s")
        editor.mirror("s")
        editor.connect("g", "A[0,0]", "s", "A")
        with pytest.raises(RiotError, match="array"):
            editor.do_stretch()

    def test_pending_cleared(self, editor):
        self._gate_to_spread(editor)
        editor.do_stretch()
        assert len(editor.pending) == 0

    def test_pending_cleared_on_failure(self, editor):
        editor.create(at=Point(6000, 0), cell_name="driver", name="d")
        editor.create(at=Point(20000, 0), cell_name="spread", name="s")
        editor.connect("d", "A", "s", "A")
        with pytest.raises(RiotError):
            editor.do_stretch()
        assert len(editor.pending) == 0

    def test_reordering_targets_infeasible(self, editor):
        from tests.core.conftest import cif_block

        # Targets that would swap the gate's pin order: A above B.
        editor.library.add(
            cif_block("swapped", 2000, 2600, [("A", 0, 2300), ("B", 0, 300)])
        )
        editor.create(at=Point(6000, 0), cell_name="gate", name="g")
        editor.create(at=Point(0, 0), cell_name="swapped", name="s")
        editor.mirror("s")
        editor.connect("g", "A", "s", "A")
        editor.connect("g", "B", "s", "B")
        with pytest.raises(RiotError, match="STRETCH"):
            editor.do_stretch()

    def test_stretch_then_check(self, editor):
        self._gate_to_spread(editor)
        editor.do_stretch()
        report = editor.check()
        assert report.made_count >= 2
        assert report.near_misses == []

    def test_stretched_cell_reusable(self, editor):
        self._gate_to_spread(editor)
        result = editor.do_stretch()
        extra = editor.create(
            at=Point(0, 30000), cell_name=result.new_cell, name="g2"
        )
        assert extra.cell.name == result.new_cell

    def test_stretch_names_unique(self, editor):
        self._gate_to_spread(editor)
        editor.do_stretch()
        editor.create(at=Point(30000, 0), cell_name="gate", name="g2")
        editor.create(at=Point(22000, 0), cell_name="spread", name="s2")
        editor.mirror("s2")
        editor.connect("g2", "A", "s2", "A")
        editor.connect("g2", "B", "s2", "B")
        result = editor.do_stretch()
        stretched = [n for n in editor.library.names if n.startswith("gate_s")]
        assert len(stretched) == 2
