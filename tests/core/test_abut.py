"""Tests for connection by abutment (paper figure 4)."""

import pytest

from repro.core.abut import abut, abut_edges
from repro.core.errors import RiotError
from repro.core.pending import PendingList
from repro.geometry.point import Point


class TestConnectorAbut:
    def test_connectors_meet_exactly(self, editor):
        d = editor.create(at=Point(0, 0), cell_name="driver", name="d")
        r = editor.create(at=Point(5000, 200), cell_name="receiver", name="r")
        pending = PendingList()
        pending.add(d, "A", r, "A")
        result = abut(pending)
        assert result.made == 1
        assert result.warnings == []
        assert d.connector("A").position == r.connector("A").position

    def test_only_from_moves(self, editor):
        d = editor.create(at=Point(0, 0), cell_name="driver", name="d")
        r = editor.create(at=Point(5000, 0), cell_name="receiver", name="r")
        r_before = r.bounding_box()
        pending = PendingList()
        pending.add(d, "A", r, "A")
        abut(pending)
        assert r.bounding_box() == r_before

    def test_matching_pattern_makes_all(self, editor):
        d = editor.create(at=Point(0, 0), cell_name="driver", name="d")
        r = editor.create(at=Point(5000, 0), cell_name="receiver", name="r")
        pending = PendingList()
        pending.add_bus(d, r)
        result = abut(pending)
        assert result.made == 2
        assert result.warnings == []

    def test_mismatched_pattern_warns(self, editor):
        # spread's connectors are further apart than driver's; the
        # second connection cannot be made by a rigid move.
        d = editor.create(at=Point(0, 0), cell_name="driver", name="d")
        s = editor.create(at=Point(5000, 0), cell_name="spread", name="s")
        pending = PendingList()
        pending.add(d, "A", s, "A")
        pending.add(d, "B", s, "B")
        result = abut(pending)
        assert result.made == 1
        assert len(result.warnings) == 1
        assert "not made by abutment" in result.warnings[0]

    def test_empty_pending_rejected(self):
        with pytest.raises(RiotError, match="no pending"):
            abut(PendingList())


class TestOverlap:
    """Edge connectors touching never overlap; the overlap case is
    one-to-many: meeting the first target lands the from instance on
    top of a second to instance (the paper's rail-sharing scenario)."""

    def _setup(self, editor):
        d = editor.create(at=Point(0, 3000), cell_name="driver", name="d")
        r1 = editor.create(at=Point(5000, 0), cell_name="receiver", name="r1")
        r2 = editor.create(at=Point(4000, 0), cell_name="receiver", name="r2")
        pending = PendingList()
        pending.add(d, "A", r1, "A")
        pending.add(d, "B", r2, "B")
        return d, r1, r2, pending

    def test_overlap_rejected_by_default(self, editor):
        _, _, _, pending = self._setup(editor)
        with pytest.raises(RiotError, match="overlap"):
            abut(pending)

    def test_rejected_abut_restores_position(self, editor):
        d, _, _, pending = self._setup(editor)
        before = d.bounding_box()
        with pytest.raises(RiotError):
            abut(pending)
        assert d.bounding_box() == before

    def test_overlap_allowed_with_option(self, editor):
        d, r1, r2, pending = self._setup(editor)
        result = abut(pending, overlap=True)
        assert result.made == 1  # d.A meets r1.A exactly
        assert d.bounding_box().overlaps(r2.bounding_box())
        assert d.connector("A").position == r1.connector("A").position


class TestEdgeAbut:
    def test_from_right_of_to(self, editor):
        d = editor.create(at=Point(10000, 3000), cell_name="driver", name="d")
        r = editor.create(at=Point(0, 0), cell_name="receiver", name="r")
        abut_edges(d, r)
        box_d, box_r = d.bounding_box(), r.bounding_box()
        assert box_d.llx == box_r.urx  # edges touch
        assert box_d.lly == box_r.lly  # bottoms aligned

    def test_from_left_of_to(self, editor):
        d = editor.create(at=Point(-9000, 3000), cell_name="driver", name="d")
        r = editor.create(at=Point(0, 0), cell_name="receiver", name="r")
        abut_edges(d, r)
        assert d.bounding_box().urx == r.bounding_box().llx
        assert d.bounding_box().lly == r.bounding_box().lly

    def test_from_above_to(self, editor):
        d = editor.create(at=Point(500, 9000), cell_name="driver", name="d")
        r = editor.create(at=Point(0, 0), cell_name="receiver", name="r")
        abut_edges(d, r)
        assert d.bounding_box().lly == r.bounding_box().ury
        assert d.bounding_box().llx == r.bounding_box().llx  # lefts aligned

    def test_from_below_to(self, editor):
        d = editor.create(at=Point(500, -9000), cell_name="driver", name="d")
        r = editor.create(at=Point(0, 0), cell_name="receiver", name="r")
        abut_edges(d, r)
        assert d.bounding_box().ury == r.bounding_box().lly
        assert d.bounding_box().llx == r.bounding_box().llx

    def test_self_abut_rejected(self, editor):
        d = editor.create(at=Point(0, 0), cell_name="driver", name="d")
        with pytest.raises(RiotError, match="itself"):
            abut_edges(d, d)

    def test_array_elements_abut(self, editor):
        # The shift-register pattern: array elements connect by
        # abutment because spacing defaults to the cell width.
        a = editor.create(at=Point(0, 0), cell_name="driver", nx=4, name="a")
        assert a.bounding_box().width == 4 * 2000
