"""Tests for the editor's instance and lifecycle commands."""

import pytest

from repro.core.errors import RiotError
from repro.geometry.box import Box
from repro.geometry.point import Point


class TestLifecycle:
    def test_new_cell_registers_and_edits(self, editor):
        assert editor.cell.name == "top"
        assert "top" in editor.library

    def test_edit_switches(self, editor):
        editor.new_cell("other")
        editor.edit("top")
        assert editor.cell.name == "top"

    def test_edit_clears_pending(self, editor):
        editor.create(at=Point(0, 0), cell_name="driver", name="d")
        editor.create(at=Point(8000, 0), cell_name="receiver", name="r")
        editor.connect("d", "A", "r", "A")
        editor.new_cell("other")
        assert len(editor.pending) == 0

    def test_edit_leaf_rejected(self, editor):
        with pytest.raises(RiotError, match="leaf cell"):
            editor.edit("driver")

    def test_no_cell_under_edit(self, tech):
        from repro.core.editor import RiotEditor

        fresh = RiotEditor(tech)
        with pytest.raises(RiotError, match="no cell under edit"):
            fresh.create(at=Point(0, 0), cell_name="x")

    def test_finish_promotes(self, editor):
        editor.create(at=Point(0, 0), cell_name="driver", name="d")
        names = editor.finish()
        assert set(names) == {"A", "B"}
        assert editor.cell.connector("A").layer.name == "metal"

    def test_delete_cell_clears_edit_state(self, editor):
        editor.select("driver")
        editor.create(at=Point(0, 0), name="d")
        editor.delete_instance("d")
        editor.delete_cell("top")
        assert editor.cell is None

    def test_rename_cell_updates_selection(self, editor):
        editor.select("driver")
        editor.rename_cell("driver", "pads")
        assert editor.selected_cell == "pads"


class TestCreate:
    def test_create_at_position(self, editor):
        inst = editor.create(at=Point(1000, 2000), cell_name="driver")
        assert inst.bounding_box().lower_left == Point(1000, 2000)

    def test_create_uses_selection(self, editor):
        editor.select("receiver")
        inst = editor.create(at=Point(0, 0))
        assert inst.cell.name == "receiver"

    def test_create_no_selection(self, editor):
        with pytest.raises(RiotError, match="no cell selected"):
            editor.create(at=Point(0, 0))

    def test_create_with_orientation(self, editor):
        inst = editor.create(at=Point(0, 0), cell_name="driver", orientation="R90")
        box = inst.bounding_box()
        assert (box.width, box.height) == (1000, 2000)
        assert box.lower_left == Point(0, 0)

    def test_create_array(self, editor):
        inst = editor.create(at=Point(0, 0), cell_name="driver", nx=4, ny=2)
        assert inst.bounding_box() == Box(0, 0, 8000, 2000)

    def test_create_unique_names(self, editor):
        a = editor.create(at=Point(0, 0), cell_name="driver")
        b = editor.create(at=Point(0, 5000), cell_name="driver")
        assert a.name == "driver"
        assert b.name == "driver2"

    def test_create_self_rejected(self, editor):
        with pytest.raises(RiotError, match="itself"):
            editor.create(at=Point(0, 0), cell_name="top")

    def test_select_unknown(self, editor):
        with pytest.raises(KeyError):
            editor.select("ghost")


class TestManipulation:
    def test_move(self, editor):
        editor.create(at=Point(0, 0), cell_name="driver", name="d")
        editor.move("d", Point(500, 600))
        assert editor.cell.instance("d").bounding_box().lower_left == Point(500, 600)

    def test_move_by(self, editor):
        editor.create(at=Point(0, 0), cell_name="driver", name="d")
        editor.move_by("d", 10, -20)
        assert editor.cell.instance("d").bounding_box().lower_left == Point(10, -20)

    def test_rotate_in_place(self, editor):
        editor.create(at=Point(1000, 1000), cell_name="driver", name="d")
        editor.rotate("d")
        box = editor.cell.instance("d").bounding_box()
        assert box.lower_left == Point(1000, 1000)
        assert (box.width, box.height) == (1000, 2000)

    def test_mirror_in_place(self, editor):
        editor.create(at=Point(1000, 1000), cell_name="driver", name="d")
        editor.mirror("d", axis="x")
        box = editor.cell.instance("d").bounding_box()
        assert box.lower_left == Point(1000, 1000)
        # Mirroring flips which edge carries the connectors.
        assert editor.cell.instance("d").connector("A").side == "left"

    def test_mirror_bad_axis(self, editor):
        editor.create(at=Point(0, 0), cell_name="driver", name="d")
        with pytest.raises(RiotError, match="axis"):
            editor.mirror("d", axis="z")

    def test_replicate(self, editor):
        editor.create(at=Point(0, 0), cell_name="driver", name="d")
        editor.replicate("d", nx=3)
        assert editor.cell.instance("d").bounding_box().width == 6000

    def test_replicate_custom_spacing(self, editor):
        editor.create(at=Point(0, 0), cell_name="driver", name="d")
        editor.replicate("d", nx=2, dx=2500)
        assert editor.cell.instance("d").bounding_box().width == 4500

    def test_replicate_invalid(self, editor):
        editor.create(at=Point(0, 0), cell_name="driver", name="d")
        with pytest.raises(RiotError, match=">= 1"):
            editor.replicate("d", nx=0)

    def test_delete_instance_drops_pending(self, editor):
        editor.create(at=Point(0, 0), cell_name="driver", name="d")
        editor.create(at=Point(8000, 0), cell_name="receiver", name="r")
        editor.connect("d", "A", "r", "A")
        editor.delete_instance("r")
        assert len(editor.pending) == 0
        assert any("dropped" in m for m in editor.messages)

    def test_unknown_instance(self, editor):
        with pytest.raises(KeyError):
            editor.move("ghost", Point(0, 0))


class TestBringOut:
    def test_bring_out_reaches_edge(self, editor):
        editor.create(at=Point(0, 0), cell_name="driver", name="d")
        editor.create(at=Point(8000, 0), cell_name="receiver", name="r")
        # driver's outputs point right toward the cell interior edge? The
        # cell bbox spans to receiver's right edge at x=10000.
        out = editor.bring_out("d", ["A", "B"])
        box = out.bounding_box()
        assert box.urx == editor.cell.bounding_box().urx

    def test_bring_out_promotes_after_finish(self, editor):
        editor.create(at=Point(0, 0), cell_name="driver", name="d")
        editor.create(at=Point(8000, 7000), cell_name="receiver", name="r")
        editor.bring_out("d", ["A"])
        names = editor.finish()
        assert any(n.endswith("A") for n in names)

    def test_bring_out_mixed_sides_rejected(self, editor):
        from tests.core.conftest import cif_block

        editor.library.add(
            cif_block("corner", 2000, 1000, [("E", 2000, 500), ("N", 1000, 1000)])
        )
        editor.create(at=Point(0, 0), cell_name="corner", name="c")
        editor.create(at=Point(8000, 8000), cell_name="receiver", name="r")
        with pytest.raises(RiotError, match="share one side"):
            editor.bring_out("c", ["E", "N"])

    def test_bring_out_empty(self, editor):
        editor.create(at=Point(0, 0), cell_name="driver", name="d")
        with pytest.raises(RiotError, match="no connectors"):
            editor.bring_out("d", [])

    def test_bringout_cells_named_uniquely(self, editor):
        editor.create(at=Point(0, 0), cell_name="driver", name="d1")
        editor.create(at=Point(0, 5000), cell_name="driver", name="d2")
        editor.create(at=Point(12000, 0), cell_name="receiver", name="r")
        editor.bring_out("d1", ["A"])
        editor.bring_out("d2", ["A"])
        names = [n for n in editor.library.names if n.startswith("bringout")]
        assert len(set(names)) == 2


class TestSessionIO:
    def test_composition_roundtrip_through_editor(self, editor):
        editor.create(at=Point(0, 0), cell_name="driver", name="d")
        editor.create(at=Point(2000, 0), cell_name="receiver", name="r")
        editor.finish()
        text = editor.write_composition()

        from repro.core.editor import RiotEditor
        from tests.core.conftest import TECH, cif_block, sticks_gate

        other = RiotEditor(TECH)
        other.library.add(
            cif_block("driver", 2000, 1000, [("A", 2000, 300), ("B", 2000, 700)])
        )
        other.library.add(
            cif_block("receiver", 2000, 1000, [("A", 0, 300), ("B", 0, 700)])
        )
        other.library.add(
            cif_block("spread", 2000, 3200, [("A", 0, 300), ("B", 0, 2700)])
        )
        other.library.add(sticks_gate("gate"))
        loaded = other.read_composition(text)
        assert "top" in loaded
        other.edit("top")
        assert other.check().made_count == 2

    def test_write_composition_empty(self, tech):
        from repro.core.editor import RiotEditor

        fresh = RiotEditor(tech)
        with pytest.raises(RiotError, match="no composition cells"):
            fresh.write_composition()
