"""Shared fixtures for editor-level tests.

The cells here mirror the paper's example stock: rigid CIF "pads"
(unstretchable) and symbolic Sticks "gates" (stretchable), with
opposed metal connectors sized for abutment, routing and stretching
scenarios.
"""

import pytest

from repro.cif.semantics import CifCell, CifConnector
from repro.composition.cell import LeafCell
from repro.core.editor import RiotEditor
from repro.geometry.box import Box
from repro.geometry.layers import nmos_technology
from repro.geometry.point import Point
from repro.sticks.model import Pin, SticksCell, SymbolicWire

TECH = nmos_technology()


def cif_block(name, width, height, connectors):
    """A CIF leaf: a metal slab with the given connectors.

    ``connectors`` is a list of (name, x, y) tuples; all metal, width
    400 centimicrons.
    """
    cif = CifCell(1, name)
    cif.geometry.boxes.append((TECH.layer("metal"), Box(0, 0, width, height)))
    for cname, x, y in connectors:
        cif.connectors.append(
            CifConnector(cname, Point(x, y), TECH.layer("metal"), 400)
        )
    return LeafCell.from_cif(cif)


def sticks_gate(name, width=3000, height=2000, left_pins=(("A", 400), ("B", 1600)),
                right_pins=(("OUT", 1000),)):
    """A Sticks leaf: metal pins on the left and right edges, a poly
    body wire and a transistor so the compactor has structure to keep."""
    cell = SticksCell(name)
    cell.boundary = Box(0, 0, width, height)
    for pname, y in left_pins:
        cell.pins.append(Pin(pname, "metal", Point(0, y), 400))
        cell.wires.append(
            SymbolicWire("metal", (Point(0, y), Point(width // 2, y)), 400)
        )
    for pname, y in right_pins:
        cell.pins.append(Pin(pname, "metal", Point(width, y), 400))
        cell.wires.append(
            SymbolicWire("metal", (Point(width // 2, y), Point(width, y)), 400)
        )
    return LeafCell.from_sticks(cell, TECH)


@pytest.fixture()
def editor():
    """An editor stocked with the standard test cells, editing 'top'."""
    ed = RiotEditor(TECH)
    lib = ed.library
    # driver: two outputs on its right edge.
    lib.add(cif_block("driver", 2000, 1000, [("A", 2000, 300), ("B", 2000, 700)]))
    # receiver: matching inputs on its left edge.
    lib.add(cif_block("receiver", 2000, 1000, [("A", 0, 300), ("B", 0, 700)]))
    # spread: same inputs but much further apart (forces jogs/stretch).
    # The 2400 separation clears the gate's stretch minimum: its A and
    # B pins have a third metal wire between them, so they can come no
    # closer than two metal pitches (2300).
    lib.add(cif_block("spread", 2000, 3200, [("A", 0, 300), ("B", 0, 2700)]))
    # gate: stretchable sticks cell with left pins A/B.
    lib.add(sticks_gate("gate"))
    ed.new_cell("top")
    return ed


@pytest.fixture()
def tech():
    return TECH
