"""End-to-end tests of the ROUTE command through the editor."""

import pytest

from repro.core.errors import RiotError
from repro.geometry.point import Point


def connect_pair(editor, d, r):
    editor.connect(d, "A", r, "A")
    editor.connect(d, "B", r, "B")


class TestRouteCommand:
    def test_route_cell_enters_menu(self, editor):
        editor.create(at=Point(0, 0), cell_name="driver", name="d")
        editor.create(at=Point(8000, 0), cell_name="receiver", name="r")
        connect_pair(editor, "d", "r")
        result = editor.do_route()
        assert result.route_cell in editor.library.names
        assert editor.library.get(result.route_cell).is_leaf

    def test_route_instance_placed(self, editor):
        editor.create(at=Point(0, 0), cell_name="driver", name="d")
        editor.create(at=Point(8000, 0), cell_name="receiver", name="r")
        connect_pair(editor, "d", "r")
        result = editor.do_route()
        assert result.instance in editor.cell.instances

    def test_connections_made_positionally(self, editor):
        editor.create(at=Point(0, 0), cell_name="driver", name="d")
        editor.create(at=Point(8000, 0), cell_name="receiver", name="r")
        connect_pair(editor, "d", "r")
        editor.do_route()
        report = editor.check()
        # driver.A/B touch the route's OUT pins; route's IN pins touch
        # receiver.A/B: at least 4 made connections.
        assert report.made_count >= 4

    def test_from_instance_abuts_route(self, editor):
        d = editor.create(at=Point(0, 0), cell_name="driver", name="d")
        editor.create(at=Point(8000, 0), cell_name="receiver", name="r")
        connect_pair(editor, "d", "r")
        result = editor.do_route()
        route_box = result.instance.bounding_box()
        # The from instance moved: its connectors sit on the route exit.
        assert d.connector("A").position.x == route_box.urx or (
            d.connector("A").position.x == route_box.llx
        )
        assert result.moved_by != Point(0, 0)

    def test_least_space_route(self, editor):
        # "thereby using the least amount of space possible": matching
        # patterns give a straight strap of one pitch + width.
        editor.create(at=Point(0, 0), cell_name="driver", name="d")
        editor.create(at=Point(20000, 0), cell_name="receiver", name="r")
        connect_pair(editor, "d", "r")
        result = editor.do_route()
        assert result.solved.height == 1150  # 400 width + 750 separation

    def test_route_without_moving(self, editor):
        d = editor.create(at=Point(0, 0), cell_name="driver", name="d")
        r = editor.create(at=Point(8000, 0), cell_name="receiver", name="r")
        d_before = d.bounding_box()
        connect_pair(editor, "d", "r")
        result = editor.do_route(move_from=False)
        assert d.bounding_box() == d_before
        assert result.moved_by == Point(0, 0)
        # The route fills the whole gap and still makes the connections.
        assert editor.check().made_count >= 4

    def test_route_with_jogs(self, editor):
        editor.create(at=Point(0, 0), cell_name="driver", name="d")
        editor.create(at=Point(8000, 0), cell_name="spread", name="s")
        editor.connect("d", "A", "s", "A")
        editor.connect("d", "B", "s", "B")
        result = editor.do_route()
        assert result.solved.jog_count >= 1
        assert editor.check().made_count >= 4

    def test_pending_cleared_after_route(self, editor):
        editor.create(at=Point(0, 0), cell_name="driver", name="d")
        editor.create(at=Point(8000, 0), cell_name="receiver", name="r")
        connect_pair(editor, "d", "r")
        editor.do_route()
        assert len(editor.pending) == 0

    def test_pending_cleared_even_on_failure(self, editor):
        editor.create(at=Point(0, 0), cell_name="driver", name="d")
        editor.create(at=Point(2000, 0), cell_name="receiver", name="r")
        connect_pair(editor, "d", "r")
        with pytest.raises(RiotError):
            editor.do_route(move_from=False)  # zero gap
        assert len(editor.pending) == 0

    def test_route_cells_get_unique_names(self, editor):
        for i, x in enumerate((8000, 20000)):
            editor.create(at=Point(0, i * 5000), cell_name="driver", name=f"d{i}")
            editor.create(at=Point(x, i * 5000), cell_name="receiver", name=f"r{i}")
            editor.connect(f"d{i}", "A", f"r{i}", "A")
            result = editor.do_route()
        names = [n for n in editor.library.names if n.startswith("route")]
        assert len(names) == 2
        assert len(set(names)) == 2

    def test_route_cell_is_reusable(self, editor):
        # "The routing cells made in Riot are treated just like other
        # cells": instantiate the route cell a second time.
        editor.create(at=Point(0, 0), cell_name="driver", name="d")
        editor.create(at=Point(8000, 0), cell_name="receiver", name="r")
        connect_pair(editor, "d", "r")
        result = editor.do_route()
        extra = editor.create(
            at=Point(0, 20000), cell_name=result.route_cell, name="route_again"
        )
        assert extra in editor.cell.instances

    def test_vertical_route(self, editor):
        from tests.core.conftest import cif_block

        editor.library.add(
            cif_block("up", 2000, 1000, [("T", 1000, 1000)])
        )
        editor.library.add(
            cif_block("down", 2000, 1000, [("D", 1000, 0)])
        )
        editor.create(at=Point(0, 8000), cell_name="down", name="dn")
        editor.create(at=Point(0, 0), cell_name="up", name="up")
        editor.connect("dn", "D", "up", "T")
        result = editor.do_route()
        assert editor.check().made_count >= 2

    def test_bus_then_route(self, editor):
        editor.create(at=Point(0, 0), cell_name="driver", name="d")
        editor.create(at=Point(9000, 0), cell_name="receiver", name="r")
        count = editor.bus("d", "r")
        assert count == 2
        editor.do_route()
        assert editor.check().made_count >= 4
