"""Tests for the pending-connection list and its validity rules."""

import pytest

from repro.core.errors import ConnectionError_
from repro.core.pending import PendingList
from repro.geometry.point import Point


@pytest.fixture()
def placed(editor):
    """driver at origin, receiver to its right (not touching)."""
    d = editor.create(at=Point(0, 0), cell_name="driver", name="d")
    r = editor.create(at=Point(5000, 0), cell_name="receiver", name="r")
    return d, r


class TestAdd:
    def test_valid_connection(self, placed):
        d, r = placed
        pending = PendingList()
        conn = pending.add(d, "A", r, "A")
        assert len(pending) == 1
        assert str(conn) == "d.A - r.A"

    def test_self_connection_rejected(self, placed):
        d, _ = placed
        pending = PendingList()
        with pytest.raises(ConnectionError_, match="itself"):
            pending.add(d, "A", d, "B")

    def test_unknown_connector(self, placed):
        d, r = placed
        pending = PendingList()
        with pytest.raises(KeyError):
            pending.add(d, "NOPE", r, "A")

    def test_layer_mismatch(self, editor):
        from tests.core.conftest import cif_block
        from repro.cif.semantics import CifCell, CifConnector
        from repro.composition.cell import LeafCell
        from repro.geometry.box import Box
        from tests.core.conftest import TECH

        cif = CifCell(1, "polyblock")
        cif.geometry.boxes.append((TECH.layer("poly"), Box(0, 0, 2000, 1000)))
        cif.connectors.append(
            CifConnector("A", Point(0, 300), TECH.layer("poly"), 400)
        )
        editor.library.add(LeafCell.from_cif(cif))
        d = editor.create(at=Point(0, 0), cell_name="driver", name="d")
        p = editor.create(at=Point(5000, 0), cell_name="polyblock", name="p")
        pending = PendingList()
        with pytest.raises(ConnectionError_, match="different layers"):
            pending.add(d, "A", p, "A")

    def test_not_opposed_rejected(self, editor):
        d1 = editor.create(at=Point(0, 0), cell_name="driver", name="d1")
        d2 = editor.create(at=Point(5000, 0), cell_name="driver", name="d2")
        pending = PendingList()
        with pytest.raises(ConnectionError_, match="not opposed"):
            pending.add(d1, "A", d2, "A")  # both on right edges

    def test_one_to_many_enforced(self, editor):
        d1 = editor.create(at=Point(0, 0), cell_name="driver", name="d1")
        d2 = editor.create(at=Point(0, 3000), cell_name="driver", name="d2")
        r = editor.create(at=Point(5000, 0), cell_name="receiver", name="r")
        pending = PendingList()
        pending.add(d1, "A", r, "A")
        with pytest.raises(ConnectionError_, match="one instance"):
            pending.add(d2, "B", r, "B")

    def test_one_from_to_many_tos_allowed(self, editor):
        d = editor.create(at=Point(0, 0), cell_name="driver", name="d")
        r1 = editor.create(at=Point(5000, 0), cell_name="receiver", name="r1")
        r2 = editor.create(at=Point(5000, 3000), cell_name="receiver", name="r2")
        pending = PendingList()
        pending.add(d, "A", r1, "A")
        pending.add(d, "B", r2, "B")
        assert len(pending) == 2
        assert pending.to_instances() == [r1, r2]

    def test_duplicate_rejected(self, placed):
        d, r = placed
        pending = PendingList()
        pending.add(d, "A", r, "A")
        with pytest.raises(ConnectionError_, match="already pending"):
            pending.add(d, "A", r, "A")


class TestBus:
    def test_bus_by_name(self, placed):
        d, r = placed
        pending = PendingList()
        count = pending.add_bus(d, r)
        assert count == 2
        assert {str(c) for c in pending} == {"d.A - r.A", "d.B - r.B"}

    def test_bus_by_position_when_names_differ(self, editor):
        from tests.core.conftest import cif_block

        editor.library.add(
            cif_block("sink", 2000, 1000, [("X", 0, 300), ("Y", 0, 700)])
        )
        d = editor.create(at=Point(0, 0), cell_name="driver", name="d")
        s = editor.create(at=Point(5000, 0), cell_name="sink", name="s")
        pending = PendingList()
        count = pending.add_bus(d, s)
        assert count == 2
        assert {str(c) for c in pending} == {"d.A - s.X", "d.B - s.Y"}

    def test_bus_no_pairs(self, editor):
        d1 = editor.create(at=Point(0, 0), cell_name="driver", name="d1")
        d2 = editor.create(at=Point(0, 3000), cell_name="driver", name="d2")
        pending = PendingList()
        with pytest.raises(ConnectionError_, match="no compatible"):
            pending.add_bus(d1, d2)


class TestEditing:
    def test_remove(self, placed):
        d, r = placed
        pending = PendingList()
        pending.add(d, "A", r, "A")
        removed = pending.remove(0)
        assert str(removed) == "d.A - r.A"
        assert len(pending) == 0

    def test_remove_bad_index(self, placed):
        pending = PendingList()
        with pytest.raises(ConnectionError_, match="no pending connection"):
            pending.remove(0)

    def test_clear(self, placed):
        d, r = placed
        pending = PendingList()
        pending.add_bus(d, r)
        pending.clear()
        assert len(pending) == 0
        assert pending.from_instance is None

    def test_drop_instance(self, editor):
        d = editor.create(at=Point(0, 0), cell_name="driver", name="d")
        r1 = editor.create(at=Point(5000, 0), cell_name="receiver", name="r1")
        r2 = editor.create(at=Point(5000, 3000), cell_name="receiver", name="r2")
        pending = PendingList()
        pending.add(d, "A", r1, "A")
        pending.add(d, "B", r2, "B")
        assert pending.drop_instance(r1) == 1
        assert len(pending) == 1

    def test_display_strings(self, placed):
        d, r = placed
        pending = PendingList()
        pending.add(d, "A", r, "A")
        assert pending.display_strings() == ["d.A - r.A"]

    def test_resolve_tracks_movement(self, placed):
        d, r = placed
        pending = PendingList()
        connection = pending.add(d, "A", r, "A")
        before = connection.resolve()[0].position
        d.translate(100, 0)
        after = connection.resolve()[0].position
        assert after == before.translated(100, 0)
