"""Property-based invariants of the river router.

Hypothesis generates random non-crossing wire sets; the router's
output must always satisfy the river-route definition: endpoints
exact, no layer changes, same-layer jogs never overlap on a track,
every wire inside the channel.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import RiotError
from repro.core.river import RiverWire, route_channel
from repro.geometry.layers import nmos_technology

TECH = nmos_technology()
LAYERS = ("metal", "poly")
WIDTHS = {"metal": 400, "poly": 500}


@st.composite
def wire_sets(draw):
    """Non-crossing per layer by construction: u_in strictly increasing
    per layer, offsets monotone (same order on both sides)."""
    wires = []
    for layer in LAYERS:
        count = draw(st.integers(min_value=0, max_value=6))
        if not count:
            continue
        # Strictly increasing entries with generous gaps.
        entries = []
        u = draw(st.integers(min_value=-20, max_value=20)) * 100
        for _ in range(count):
            u += draw(st.integers(min_value=15, max_value=60)) * 100
            entries.append(u)
        # Monotone exits: cumulative non-negative growth plus a shared shift.
        shift = draw(st.integers(min_value=-30, max_value=30)) * 100
        exits = []
        grow = 0
        for u in entries:
            grow += draw(st.integers(min_value=0, max_value=20)) * 100
            exits.append(u + shift + grow)
        for i, (u_in, u_out) in enumerate(zip(entries, exits)):
            wires.append(
                RiverWire(
                    f"{layer}{i}",
                    layer,
                    WIDTHS[layer],
                    u_in,
                    u_out,
                    entry_v=draw(st.integers(min_value=0, max_value=5)) * 200,
                )
            )
    if not wires:
        wires.append(RiverWire("w", "metal", 400, 0, 0))
    return wires


class TestRouterProperties:
    @settings(max_examples=80, deadline=None)
    @given(wire_sets())
    def test_endpoints_exact(self, wires):
        route = route_channel(list(wires), TECH)
        for wire in route.wires:
            pts = wire.points(route.height)
            assert pts[0] == (wire.u_in, wire.entry_v)
            assert pts[-1] == (wire.u_out, route.height)

    @settings(max_examples=80, deadline=None)
    @given(wire_sets())
    def test_wires_stay_in_channel(self, wires):
        route = route_channel(list(wires), TECH)
        for wire in route.wires:
            for u, v in wire.points(route.height):
                assert 0 <= v <= route.height

    @settings(max_examples=80, deadline=None)
    @given(wire_sets())
    def test_same_layer_jogs_never_collide(self, wires):
        route = route_channel(list(wires), TECH)
        by_layer = {}
        for wire in route.wires:
            by_layer.setdefault(wire.layer_name, []).append(wire)
        for layer, group in by_layer.items():
            sep = TECH.min_separation(layer)
            joggers = [w for w in group if w.needs_jog]
            for i, a in enumerate(joggers):
                for b in joggers[i + 1 :]:
                    if a.track_v != b.track_v:
                        continue
                    a_lo = min(a.u_in, a.u_out) - a.width // 2
                    a_hi = max(a.u_in, a.u_out) + a.width // 2
                    b_lo = min(b.u_in, b.u_out) - b.width // 2
                    b_hi = max(b.u_in, b.u_out) + b.width // 2
                    gap = max(b_lo - a_hi, a_lo - b_hi)
                    assert gap > sep, (
                        f"{a.name} and {b.name} share track {a.track_v} "
                        f"with gap {gap}"
                    )

    @settings(max_examples=80, deadline=None)
    @given(wire_sets())
    def test_order_preserved_per_layer(self, wires):
        route = route_channel(list(wires), TECH)
        by_layer = {}
        for wire in route.wires:
            by_layer.setdefault(wire.layer_name, []).append(wire)
        for group in by_layer.values():
            ordered = sorted(group, key=lambda w: w.u_in)
            outs = [w.u_out for w in ordered]
            assert outs == sorted(outs)

    @settings(max_examples=80, deadline=None)
    @given(wire_sets(), st.integers(min_value=1, max_value=6))
    def test_channel_count_formula(self, wires, capacity):
        route = route_channel(list(wires), TECH, tracks_per_channel=capacity)
        max_tracks = max(route.tracks_by_layer.values(), default=0)
        expected = max(1, -(-max_tracks // capacity))
        assert route.channels == expected

    @settings(max_examples=50, deadline=None)
    @given(wire_sets())
    def test_height_at_least_entries(self, wires):
        route = route_channel(list(wires), TECH)
        assert route.height > max(w.entry_v for w in wires)

    @settings(max_examples=50, deadline=None)
    @given(wire_sets())
    def test_total_length_at_least_manhattan(self, wires):
        route = route_channel(list(wires), TECH)
        minimum = sum(
            abs(w.u_out - w.u_in) + (route.height - w.entry_v)
            for w in route.wires
        )
        assert route.total_wire_length() == minimum  # one jog is optimal
