"""Tests for composition-to-CIF and composition-to-Sticks conversion."""

import pytest

from repro.cif.parser import parse_cif
from repro.cif.semantics import elaborate
from repro.core.convert import composition_to_cif, composition_to_sticks
from repro.geometry.point import Point

from tests.core.conftest import TECH


class TestToCif:
    def test_output_parses(self, editor):
        editor.create(at=Point(0, 0), cell_name="driver", name="d")
        text = composition_to_cif(editor.cell, TECH)
        design = elaborate(parse_cif(text), TECH)
        assert design.cell("top") is not None

    def test_hierarchy_preserved(self, editor):
        editor.create(at=Point(0, 0), cell_name="driver", name="d")
        editor.create(at=Point(5000, 0), cell_name="receiver", name="r")
        text = composition_to_cif(editor.cell, TECH)
        design = elaborate(parse_cif(text), TECH)
        top = design.cell("top")
        assert len(top.calls) == 2
        callees = {c.name for c, _ in top.calls}
        assert callees == {"driver", "receiver"}

    def test_shared_leaf_emitted_once(self, editor):
        editor.create(at=Point(0, 0), cell_name="driver", name="d1")
        editor.create(at=Point(0, 5000), cell_name="driver", name="d2")
        text = composition_to_cif(editor.cell, TECH)
        assert text.count("9 driver;") == 1

    def test_arrays_unrolled(self, editor):
        editor.create(at=Point(0, 0), cell_name="driver", nx=4, ny=2, name="a")
        text = composition_to_cif(editor.cell, TECH)
        design = elaborate(parse_cif(text), TECH)
        assert len(design.cell("top").calls) == 8

    def test_sticks_leaf_expanded(self, editor):
        editor.create(at=Point(0, 0), cell_name="gate", name="g")
        text = composition_to_cif(editor.cell, TECH)
        design = elaborate(parse_cif(text), TECH)
        gate = design.cell("gate")
        assert gate.geometry.paths  # expanded wires present

    def test_connectors_carried(self, editor):
        editor.create(at=Point(0, 0), cell_name="driver", name="d")
        editor.finish()
        text = composition_to_cif(editor.cell, TECH)
        design = elaborate(parse_cif(text), TECH)
        assert {c.name for c in design.cell("top").connectors} == {"A", "B"}

    def test_flattened_geometry_positions(self, editor):
        editor.create(at=Point(1000, 2000), cell_name="driver", name="d")
        text = composition_to_cif(editor.cell, TECH)
        design = elaborate(parse_cif(text), TECH)
        flat = design.cell("top").flatten()
        assert flat.bounding_box().lower_left == Point(1000, 2000)

    def test_nested_composition(self, editor):
        editor.create(at=Point(0, 0), cell_name="driver", name="d")
        editor.new_cell("outer")
        editor.create(at=Point(0, 0), cell_name="top", name="t1")
        editor.create(at=Point(0, 5000), cell_name="top", name="t2")
        text = composition_to_cif(editor.cell, TECH)
        design = elaborate(parse_cif(text), TECH)
        outer = design.cell("outer")
        assert len(outer.calls) == 2
        assert outer.flatten().shape_count == 2


class TestToSticks:
    def test_flatten_symbolic_leaves(self, editor):
        editor.create(at=Point(0, 0), cell_name="gate", name="g")
        editor.finish()
        flat, warnings = composition_to_sticks(editor.cell, TECH)
        assert warnings == []
        assert len(flat.wires) == 3  # the gate's wires

    def test_pins_from_composition_connectors(self, editor):
        editor.create(at=Point(0, 0), cell_name="gate", name="g")
        editor.finish()
        flat, _ = composition_to_sticks(editor.cell, TECH)
        names = {p.name for p in flat.pins}
        assert names == {"A", "B", "OUT"}

    def test_cif_leaf_warns(self, editor):
        editor.create(at=Point(0, 0), cell_name="driver", name="d")
        editor.finish()
        flat, warnings = composition_to_sticks(editor.cell, TECH)
        assert len(warnings) == 1
        assert "driver" in warnings[0]

    def test_cif_leaf_warned_once(self, editor):
        editor.create(at=Point(0, 0), cell_name="driver", name="d1")
        editor.create(at=Point(0, 5000), cell_name="driver", name="d2")
        editor.finish()
        _, warnings = composition_to_sticks(editor.cell, TECH)
        assert len(warnings) == 1

    def test_transform_applied(self, editor):
        editor.create(at=Point(10000, 0), cell_name="gate", name="g")
        editor.finish()
        flat, _ = composition_to_sticks(editor.cell, TECH)
        xs = [p.x for w in flat.wires for p in w.points]
        assert min(xs) >= 10000

    def test_device_orientation_swaps_under_rotation(self, editor):
        from repro.composition.cell import LeafCell
        from repro.sticks.model import Device, SticksCell, SymbolicWire
        from repro.geometry.box import Box

        cell = SticksCell("dev")
        cell.boundary = Box(0, 0, 2000, 2000)
        cell.devices.append(Device("enh", Point(1000, 1000), "v"))
        editor.library.add(LeafCell.from_sticks(cell, TECH))
        editor.create(at=Point(0, 0), cell_name="dev", name="d", orientation="R90")
        editor.finish()
        flat, _ = composition_to_sticks(editor.cell, TECH)
        assert flat.devices[0].orientation == "h"

    def test_mirror_keeps_device_orientation(self, editor):
        from repro.composition.cell import LeafCell
        from repro.sticks.model import Device, SticksCell
        from repro.geometry.box import Box

        cell = SticksCell("dev2")
        cell.boundary = Box(0, 0, 2000, 2000)
        cell.devices.append(Device("dep", Point(1000, 1000), "h"))
        editor.library.add(LeafCell.from_sticks(cell, TECH))
        editor.create(at=Point(0, 0), cell_name="dev2", name="d", orientation="MX")
        editor.finish()
        flat, _ = composition_to_sticks(editor.cell, TECH)
        assert flat.devices[0].orientation == "h"
        assert flat.devices[0].kind == "dep"

    def test_array_elements_flattened(self, editor):
        editor.create(at=Point(0, 0), cell_name="gate", nx=3, name="g")
        editor.finish()
        flat, _ = composition_to_sticks(editor.cell, TECH)
        assert len(flat.wires) == 9

    def test_boundary_is_cell_bbox(self, editor):
        editor.create(at=Point(0, 0), cell_name="gate", name="g")
        editor.finish()
        flat, _ = composition_to_sticks(editor.cell, TECH)
        assert flat.boundary == editor.cell.bounding_box()

    def test_roundtrip_through_text(self, editor):
        from repro.sticks.parser import parse_sticks
        from repro.sticks.writer import write_sticks

        editor.create(at=Point(0, 0), cell_name="gate", name="g")
        editor.finish()
        flat, _ = composition_to_sticks(editor.cell, TECH)
        again = parse_sticks(write_sticks([flat]))[0]
        assert again == flat
