"""Failure injection: errors must leave the editor consistent.

An interactive tool lives or dies by how it behaves after a failed
command: Riot's user keeps editing.  Every failure here must leave
the editor able to carry on, with no half-applied state.
"""

import pytest

from repro.core.editor import RiotEditor
from repro.core.errors import ConnectionError_, RiotError
from repro.core.replay import Journal
from repro.core.textual import MemoryStore, TextualInterface
from repro.geometry.point import Point

from tests.core.conftest import TECH, cif_block, sticks_gate


@pytest.fixture()
def editor():
    ed = RiotEditor(TECH)
    ed.library.add(cif_block("driver", 2000, 1000, [("A", 2000, 300), ("B", 2000, 700)]))
    ed.library.add(cif_block("receiver", 2000, 1000, [("A", 0, 300), ("B", 0, 700)]))
    ed.library.add(sticks_gate("gate"))
    ed.new_cell("top")
    return ed


class TestEditorStateAfterErrors:
    def test_failed_route_leaves_instances_unmoved(self, editor):
        d = editor.create(at=Point(0, 0), cell_name="driver", name="d")
        r = editor.create(at=Point(2000, 0), cell_name="receiver", name="r")
        d_box, r_box = d.bounding_box(), r.bounding_box()
        editor.connect("d", "A", "r", "A")
        with pytest.raises(RiotError):
            editor.do_route(move_from=False)  # zero gap
        assert d.bounding_box() == d_box
        assert r.bounding_box() == r_box

    def test_failed_route_leaves_library_unpolluted(self, editor):
        editor.create(at=Point(0, 0), cell_name="driver", name="d")
        editor.create(at=Point(2000, 0), cell_name="receiver", name="r")
        before = set(editor.library.names)
        editor.connect("d", "A", "r", "A")
        with pytest.raises(RiotError):
            editor.do_route(move_from=False)
        assert set(editor.library.names) == before

    def test_failed_stretch_keeps_instance_cell(self, editor):
        editor.create(at=Point(0, 0), cell_name="driver", name="d")
        editor.create(at=Point(8000, 0), cell_name="receiver", name="r")
        editor.connect("d", "A", "r", "A")
        with pytest.raises(RiotError, match="not symbolic"):
            editor.do_stretch()
        assert editor.cell.instance("d").cell.name == "driver"

    def test_editor_usable_after_failure(self, editor):
        editor.create(at=Point(0, 0), cell_name="driver", name="d")
        editor.create(at=Point(2000, 0), cell_name="receiver", name="r")
        editor.connect("d", "A", "r", "A")
        with pytest.raises(RiotError):
            editor.do_route(move_from=False)
        # Carry on: a normal abutment still works.
        editor.connect("d", "A", "r", "A")
        result = editor.do_abut(overlap=True)
        assert result.made == 1

    def test_bad_connect_does_not_grow_pending(self, editor):
        editor.create(at=Point(0, 0), cell_name="driver", name="d1")
        editor.create(at=Point(0, 3000), cell_name="driver", name="d2")
        with pytest.raises(ConnectionError_):
            editor.connect("d1", "A", "d2", "A")  # not opposed
        assert len(editor.pending) == 0

    def test_unknown_connector_does_not_grow_pending(self, editor):
        editor.create(at=Point(0, 0), cell_name="driver", name="d")
        editor.create(at=Point(8000, 0), cell_name="receiver", name="r")
        with pytest.raises(KeyError):
            editor.connect("d", "NOPE", "r", "A")
        assert len(editor.pending) == 0

    def test_delete_cell_under_edit_blocks_commands(self, editor):
        editor.delete_cell("top")
        with pytest.raises(RiotError, match="no cell under edit"):
            editor.create(at=Point(0, 0), cell_name="driver")


class TestReplayFailureModes:
    def test_truncated_journal_line(self):
        with pytest.raises(RiotError, match="line"):
            Journal.from_text('{"command": "create", "at"')

    def test_replay_stops_at_first_failure(self, editor):
        journal = Journal.from_text(
            "\n".join(
                [
                    '{"command": "select", "cell_name": "driver"}',
                    '{"command": "select", "cell_name": "ghost"}',
                    '{"command": "select", "cell_name": "receiver"}',
                ]
            )
        )
        with pytest.raises(RiotError, match="entry 1"):
            journal.replay(editor)
        # The failing entry did not corrupt the selection state.
        assert editor.selected_cell == "driver"

    def test_replay_failure_restores_recording(self, editor):
        journal = Journal.from_text('{"command": "select", "cell_name": "ghost"}')
        with pytest.raises(RiotError):
            journal.replay(editor)
        assert editor.journal.recording

    def test_non_dict_json_rejected(self):
        with pytest.raises(RiotError, match="missing command"):
            Journal.from_text("[1, 2, 3]")

    def test_replay_with_wrong_argument_names(self, editor):
        journal = Journal.from_text('{"command": "select", "wrong": 1}')
        with pytest.raises(RiotError, match="replay failed"):
            journal.replay(editor)


class TestTextualFailureModes:
    @pytest.fixture()
    def tui(self, editor):
        return TextualInterface(editor, MemoryStore())

    def test_every_command_survives_no_arguments(self, tui):
        for name in ("read", "write", "writecif", "writesticks", "plot",
                     "new", "edit", "delete", "rename", "set", "savereplay",
                     "replay", "verify"):
            out = tui.execute(name)
            assert out.startswith("error"), f"{name}: {out}"

    def test_malformed_cif_reported_not_raised(self, tui):
        tui.store["bad.cif"] = "DS 1; B oops; DF; E"
        out = tui.execute("read bad.cif")
        assert out.startswith("error")

    def test_malformed_sticks_reported(self, tui):
        tui.store["bad.sticks"] = "STICKS x\nWIRE metal - 0 0 5 5\nEND\n"
        out = tui.execute("read bad.sticks")
        assert out.startswith("error")
        assert "non-Manhattan" in out

    def test_malformed_composition_reported(self, tui):
        tui.store["bad.comp"] = "RIOTCOMP 1\nINSTANCE a ghost R0 0 0\n"
        out = tui.execute("read bad.comp")
        assert out.startswith("error")

    def test_corrupt_replay_file_reported(self, tui):
        tui.store["bad.rpl"] = "not a journal at all"
        out = tui.execute("replay bad.rpl")
        assert out.startswith("error")

    def test_editor_alive_after_error_storm(self, tui):
        for line in ("read x", "edit nope", "delete ghost", "set tracks -1"):
            assert tui.execute(line).startswith("error")
        assert tui.execute("cells").startswith("cells:")


class TestLibraryFailureModes:
    def test_partial_cif_load_rolls_back_nothing(self, editor):
        # The second symbol is broken; the loader raises and the first
        # symbol must not be half-registered... (loads are per-cell, so
        # the already-added cell stays — like Riot, reads are not
        # transactional; verify the failure is at least clean).
        text = "DS 1; 9 good; L NM; B 100 100 50 50; DF; DS 2; 9 bad; L QQ; B 2 2 0 0; DF; E"
        with pytest.raises(KeyError):
            editor.read_cif(text)
        # The library is still consistent and usable.
        assert editor.library.get is not None

    def test_route_cell_naming_survives_user_collisions(self, editor):
        from tests.core.conftest import cif_block as make

        editor.library.add(make("route", 2000, 1000, [("A", 0, 500)]))
        editor.create(at=Point(0, 0), cell_name="driver", name="d")
        editor.create(at=Point(8000, 0), cell_name="receiver", name="r")
        editor.connect("d", "A", "r", "A")
        result = editor.do_route()
        assert result.route_cell == "route2"  # skipped the user's cell
