"""Tests for the multi-layer river router (paper figure 5)."""

import pytest

from repro.core.errors import RiotError
from repro.core.pending import PendingList
from repro.core.river import (
    ChannelFrame,
    RiverWire,
    plan_route,
    route_channel,
)
from repro.geometry.layers import nmos_technology
from repro.geometry.point import Point

TECH = nmos_technology()


def wire(name, u_in, u_out, layer="metal", width=400, entry=0):
    return RiverWire(name, layer, width, u_in, u_out, entry_v=entry)


class TestRouteChannel:
    def test_straight_wires_minimal_strap(self):
        route = route_channel([wire("a", 0, 0), wire("b", 2000, 2000)], TECH)
        assert route.jog_count == 0
        assert route.channels == 1
        # minimal strap height = max width + metal separation
        assert route.height == 400 + 750

    def test_single_jog(self):
        route = route_channel([wire("a", 0, 3000)], TECH)
        assert route.jog_count == 1
        assert route.tracks_by_layer["metal"] == 1
        # one track: pitch*(tracks+1)
        assert route.height == (400 + 750) * 2

    def test_parallel_shifts_share_direction(self):
        # Two wires both shifting right by the same amount: their jog
        # spans overlap, needing two tracks.
        route = route_channel([wire("a", 0, 3000), wire("b", 2000, 5000)], TECH)
        assert route.tracks_by_layer["metal"] == 2

    def test_disjoint_jogs_share_track(self):
        route = route_channel([wire("a", 0, 1000), wire("b", 50000, 51000)], TECH)
        assert route.tracks_by_layer["metal"] == 1

    def test_layers_independent(self):
        route = route_channel(
            [wire("a", 0, 3000, "metal"), wire("b", 0, 3000, "poly", width=500)],
            TECH,
        )
        assert route.tracks_by_layer == {"metal": 1, "poly": 1}
        assert route.wire_count == 2

    def test_crossing_rejected(self):
        with pytest.raises(RiotError, match="cross"):
            route_channel([wire("a", 0, 3000), wire("b", 3000, 0)], TECH)

    def test_same_entry_rejected(self):
        with pytest.raises(RiotError, match="same position"):
            route_channel([wire("a", 0, 1000), wire("b", 0, 2000)], TECH)

    def test_same_exit_rejected(self):
        with pytest.raises(RiotError, match="leave at the same"):
            route_channel([wire("a", 0, 1000), wire("b", 500, 1000)], TECH)

    def test_crossing_on_different_layers_allowed(self):
        route = route_channel(
            [wire("a", 0, 3000, "metal"), wire("b", 3000, 0, "poly", width=500)],
            TECH,
        )
        assert route.wire_count == 2

    def test_empty_rejected(self):
        with pytest.raises(RiotError, match="no wires"):
            route_channel([], TECH)

    def test_fixed_height_sufficient(self):
        route = route_channel([wire("a", 0, 0)], TECH, fixed_height=10000)
        assert route.height == 10000

    def test_fixed_height_too_small(self):
        with pytest.raises(RiotError, match="only 100 is available"):
            route_channel([wire("a", 0, 3000)], TECH, fixed_height=100)

    def test_multi_channel_overflow(self):
        # 12 mutually overlapping jogs at 1 track each; with 4 tracks
        # per channel that is 3 channels ("another channel is added").
        wires = [
            wire(f"w{i}", i * 2000, i * 2000 + 30000)
            for i in range(12)
        ]
        route = route_channel(wires, TECH, tracks_per_channel=4)
        assert route.tracks_by_layer["metal"] > 4
        assert route.channels == -(-route.tracks_by_layer["metal"] // 4)

    def test_ragged_entries_raise_tracks(self):
        route = route_channel([wire("a", 0, 3000, entry=5000)], TECH)
        assert route.height > 5000
        a = route.wires[0]
        assert a.track_v is not None
        assert a.track_v > 5000

    def test_wire_points_geometry(self):
        route = route_channel([wire("a", 0, 3000)], TECH)
        pts = route.wires[0].points(route.height)
        assert pts[0] == (0, 0)
        assert pts[-1] == (3000, route.height)
        assert len(pts) == 4

    def test_total_wire_length(self):
        route = route_channel([wire("a", 0, 0)], TECH)
        assert route.total_wire_length() == route.height

    def test_bad_tracks_per_channel(self):
        with pytest.raises(RiotError, match="tracks_per_channel"):
            route_channel([wire("a", 0, 0)], TECH, tracks_per_channel=0)


class TestChannelFrame:
    def test_top(self):
        frame = ChannelFrame.for_side("top", 1000)
        assert frame.to_channel(Point(500, 1000)) == (500, 0)
        assert frame.to_parent(500, 200) == Point(500, 1200)

    def test_bottom(self):
        frame = ChannelFrame.for_side("bottom", 1000)
        assert frame.to_channel(Point(500, 1000)) == (500, 0)
        assert frame.to_parent(500, 200) == Point(500, 800)

    def test_right(self):
        frame = ChannelFrame.for_side("right", 2000)
        assert frame.to_channel(Point(2000, 700)) == (700, 0)
        assert frame.to_parent(700, 300) == Point(2300, 700)

    def test_left(self):
        frame = ChannelFrame.for_side("left", 2000)
        assert frame.to_channel(Point(2000, 700)) == (700, 0)
        assert frame.to_parent(700, 300) == Point(1700, 700)

    def test_roundtrip(self):
        for side, base in (("top", 10), ("bottom", -5), ("left", 7), ("right", 0)):
            frame = ChannelFrame.for_side(side, base)
            u, v = 123, 456
            assert frame.to_channel(frame.to_parent(u, v)) == (u, v)

    def test_inside_rejected(self):
        with pytest.raises(RiotError, match="cannot route"):
            ChannelFrame.for_side("inside", 0)


class TestPlanRoute:
    def test_matching_pattern_routes_straight(self, editor):
        d = editor.create(at=Point(0, 0), cell_name="driver", name="d")
        r = editor.create(at=Point(8000, 0), cell_name="receiver", name="r")
        pending = PendingList()
        pending.add(d, "A", r, "A")
        pending.add(d, "B", r, "B")
        frame, wires, route, shift = plan_route(pending, TECH)
        assert route.jog_count == 0
        assert frame.to_side == "left"

    def test_mismatched_pattern_jogs(self, editor):
        d = editor.create(at=Point(0, 0), cell_name="driver", name="d")
        s = editor.create(at=Point(8000, 0), cell_name="spread", name="s")
        pending = PendingList()
        pending.add(d, "A", s, "A")
        pending.add(d, "B", s, "B")
        frame, wires, route, shift = plan_route(pending, TECH)
        # median offset zeroes one wire's jog; the other one jogs.
        assert route.jog_count == 1

    def test_empty_pending(self):
        with pytest.raises(RiotError, match="no pending"):
            plan_route(PendingList(), TECH)

    def test_mixed_to_sides_rejected(self, editor):
        from tests.core.conftest import cif_block

        # A from cell with connectors on two different edges, each
        # pending toward a different to side: not river-routable.
        editor.library.add(
            cif_block("corner", 2000, 1000, [("E", 2000, 500), ("N", 1000, 1000)])
        )
        c = editor.create(at=Point(0, 0), cell_name="corner", name="c")
        r1 = editor.create(at=Point(8000, 0), cell_name="receiver", name="r1")
        editor.library.add(cif_block("below", 2000, 1000, [("S", 1000, 0)]))
        b = editor.create(at=Point(0, 8000), cell_name="below", name="b")
        pending = PendingList()
        pending.add(c, "E", r1, "A")
        pending.add(c, "N", b, "S")
        with pytest.raises(RiotError, match="share one side"):
            plan_route(pending, TECH)

    def test_no_move_uses_gap(self, editor):
        d = editor.create(at=Point(0, 0), cell_name="driver", name="d")
        r = editor.create(at=Point(8000, 0), cell_name="receiver", name="r")
        pending = PendingList()
        pending.add(d, "A", r, "A")
        frame, wires, route, shift = plan_route(pending, TECH, move_from=False)
        assert shift == 0
        assert route.height == 6000  # the existing gap 8000 - 2000

    def test_no_move_zero_gap_rejected(self, editor):
        d = editor.create(at=Point(0, 0), cell_name="driver", name="d")
        r = editor.create(at=Point(2000, 0), cell_name="receiver", name="r")
        pending = PendingList()
        pending.add(d, "A", r, "A")
        with pytest.raises(RiotError, match="gap <= 0"):
            plan_route(pending, TECH, move_from=False)
