"""Tests for the design report."""

import pytest

from repro.core.report import report_cell
from repro.core.textual import TextualInterface
from repro.geometry.point import Point


@pytest.fixture()
def built(editor):
    editor.create(at=Point(0, 0), cell_name="driver", name="d1")
    editor.create(at=Point(0, 2000), cell_name="driver", nx=3, name="row")
    editor.create(at=Point(0, 6000), cell_name="gate", name="g")
    return editor


class TestReport:
    def test_usage_counts(self, built):
        report = report_cell(built.cell)
        assert report.usage["driver"].instance_count == 4  # 1 + 3-array
        assert report.usage["gate"].instance_count == 1
        assert report.total_instances == 5

    def test_kinds(self, built):
        report = report_cell(built.cell)
        assert report.usage["driver"].kind == "cif"
        assert report.usage["gate"].kind == "sticks"

    def test_depth_counts_nesting(self, built):
        built.new_cell("outer")
        built.create(at=Point(0, 0), cell_name="top", name="t")
        report = report_cell(built.cell)
        assert report.depth == 2
        assert report.usage["top"].kind == "composition"
        assert report.usage["driver"].instance_count == 4

    def test_areas(self, built):
        report = report_cell(built.cell)
        driver_area = 2000 * 1000
        assert report.usage["driver"].placed_area == 4 * driver_area
        assert report.bounding_area == built.cell.bounding_box().area
        assert 0 < report.utilization_percent <= 100

    def test_generated_cells_listed(self, editor):
        editor.create(at=Point(0, 0), cell_name="driver", name="d")
        editor.create(at=Point(8000, 0), cell_name="receiver", name="r")
        editor.connect("d", "A", "r", "A")
        editor.do_route()
        report = report_cell(editor.cell)
        assert report.generated_cells() == ["route"]

    def test_text_rendering(self, built):
        text = report_cell(built.cell).to_text()
        assert "report for top:" in text
        assert "driver" in text
        assert "utilisation" in text

    def test_textual_command(self, built):
        tui = TextualInterface(built)
        out = tui.execute("report top")
        assert out.startswith("report for top")

    def test_textual_usage_errors(self, built):
        tui = TextualInterface(built)
        assert "usage" in tui.execute("report")
        assert "error" in tui.execute("report driver")
