"""Tests for the textual command interface."""

import pytest

from repro.core.editor import RiotEditor
from repro.core.textual import DiskStore, MemoryStore, TextualInterface
from repro.geometry.point import Point

from tests.core.conftest import TECH, cif_block

PADS_CIF = """
DS 1; 9 inpad;
L NM; B 4000 4000 2000 2000;
94 PAD 4000 2000 NM 750;
DF;
E
"""

GATE_STICKS = """
STICKS nand
BBOX 0 0 3000 2000
PIN A metal 0 400 400
PIN B metal 0 1600 400
PIN OUT metal 3000 1000 400
WIRE metal 400 0 400 1500 400
WIRE metal 400 0 1600 1500 1600
WIRE metal 400 1500 400 1500 1600
WIRE metal 400 1500 1000 3000 1000
END
"""


@pytest.fixture()
def tui():
    editor = RiotEditor(TECH)
    store = MemoryStore()
    store["pads.cif"] = PADS_CIF
    store["gates.sticks"] = GATE_STICKS
    return TextualInterface(editor, store)


class TestReadWrite:
    def test_read_cif(self, tui):
        assert tui.execute("read pads.cif") == "read 1 cell(s): inpad"
        assert "inpad" in tui.editor.library

    def test_read_sticks(self, tui):
        assert "nand" in tui.execute("read gates.sticks")
        assert tui.editor.library.get("nand").is_stretchable

    def test_read_unknown_extension(self, tui):
        assert "error" in tui.execute("read pads.gds")

    def test_read_missing_file(self, tui):
        out = tui.execute("read nothere.cif")
        assert out.startswith("error: no such file")

    def test_write_and_reload_session(self, tui):
        tui.execute("read pads.cif")
        tui.execute("new top")
        tui.editor.create(at=Point(0, 0), cell_name="inpad", name="p1")
        assert tui.execute("write session.comp").startswith("wrote session")

        editor2 = RiotEditor(TECH)
        tui2 = TextualInterface(editor2, tui.store)
        tui2.execute("read pads.cif")
        assert tui2.execute("read session.comp") == "read 1 cell(s): top"

    def test_writecif(self, tui):
        tui.execute("read pads.cif")
        tui.execute("new top")
        tui.editor.create(at=Point(0, 0), cell_name="inpad", name="p1")
        out = tui.execute("writecif top chip.cif")
        assert out == "wrote CIF for top to chip.cif"
        assert "DS" in tui.store["chip.cif"]

    def test_writecif_leaf_rejected(self, tui):
        tui.execute("read pads.cif")
        assert "error" in tui.execute("writecif inpad x.cif")

    def test_writesticks(self, tui):
        tui.execute("read gates.sticks")
        tui.execute("new top")
        tui.editor.create(at=Point(0, 0), cell_name="nand", name="g")
        tui.editor.finish()
        out = tui.execute("writesticks top sim.sticks")
        assert "wrote Sticks" in out
        assert "STICKS top" in tui.store["sim.sticks"]

    def test_writesticks_warns_on_cif(self, tui):
        tui.execute("read pads.cif")
        tui.execute("new top")
        tui.editor.create(at=Point(0, 0), cell_name="inpad", name="p")
        out = tui.execute("writesticks top sim.sticks")
        assert "warning" in out

    def test_plot_symbolic(self, tui):
        tui.execute("read pads.cif")
        tui.execute("new top")
        tui.editor.create(at=Point(0, 0), cell_name="inpad", name="p")
        out = tui.execute("plot top view.svg")
        assert out == "plotted top to view.svg"
        assert tui.store["view.svg"].startswith("<?xml")

    def test_plot_mask(self, tui):
        tui.execute("read pads.cif")
        tui.execute("new top")
        tui.editor.create(at=Point(0, 0), cell_name="inpad", name="p")
        tui.execute("plot top mask.svg mask")
        assert "<rect" in tui.store["mask.svg"]


class TestEditingCommands:
    def test_new_edit_finish(self, tui):
        tui.execute("read pads.cif")
        assert tui.execute("new top") == "editing new cell top"
        tui.editor.create(at=Point(0, 0), cell_name="inpad", name="p")
        assert tui.execute("finish").startswith("finished; 1 connector")
        assert tui.execute("edit top") == "editing top"

    def test_delete_rename(self, tui):
        tui.execute("read pads.cif")
        assert tui.execute("rename inpad pad") == "renamed inpad to pad"
        assert tui.execute("delete pad") == "deleted pad"
        assert "pad" not in tui.editor.library

    def test_set_tracks(self, tui):
        assert tui.execute("set tracks 4") == "routing tracks per channel = 4"
        assert tui.editor.tracks_per_channel == 4

    def test_set_tracks_invalid(self, tui):
        assert "error" in tui.execute("set tracks 0")
        assert "error" in tui.execute("set gizmos 4")


class TestInspection:
    def test_cells_listing(self, tui):
        assert tui.execute("cells") == "cells: (none)"
        tui.execute("read pads.cif")
        assert tui.execute("cells") == "cells: inpad"

    def test_pending_listing(self, tui):
        assert tui.execute("pending") == "pending: (none)"

    def test_check(self, tui):
        tui.execute("read pads.cif")
        tui.execute("new top")
        tui.editor.create(at=Point(0, 0), cell_name="inpad", name="p")
        out = tui.execute("check")
        assert "connections made: 0" in out

    def test_help_lists_commands(self, tui):
        out = tui.execute("help")
        for cmd in ("read", "write", "plot", "replay", "set"):
            assert cmd in out

    def test_unknown_command(self, tui):
        assert "unknown command" in tui.execute("frobnicate")

    def test_empty_line(self, tui):
        assert tui.execute("") == ""

    def test_last_error_kept(self, tui):
        tui.execute("read nothere.cif")
        assert tui.last_error is not None
        tui.execute("cells")
        assert tui.last_error is None


class TestReplayCommands:
    def test_save_and_replay(self, tui):
        tui.execute("read pads.cif")
        tui.execute("new top")
        tui.editor.create(at=Point(0, 0), cell_name="inpad", name="p")
        out = tui.execute("savereplay session.rpl")
        assert "saved replay" in out

        editor2 = RiotEditor(TECH)
        tui2 = TextualInterface(editor2, tui.store)
        tui2.execute("read pads.cif")
        assert tui2.execute("replay session.rpl") == "replayed 2 command(s)"
        assert "top" in editor2.library

    def test_run_script(self, tui):
        responses = tui.run_script(["read pads.cif", "cells"])
        assert len(responses) == 2
        assert responses[1] == "cells: inpad"


class TestDiskStore:
    def test_roundtrip(self, tmp_path):
        store = DiskStore(str(tmp_path))
        store.write("sub/file.txt", "hello")
        assert store.read("sub/file.txt") == "hello"

    def test_missing(self, tmp_path):
        store = DiskStore(str(tmp_path))
        from repro.core.errors import RiotError

        with pytest.raises(RiotError, match="no such file"):
            store.read("ghost.txt")
