"""The write-ahead journal and crash recovery — fault injection.

The paper: "The replay also enables users to recover an
abnormally-terminated editing session."  These tests tear the journal
apart the way real crashes do — truncated tails, flipped bytes, a
SIGKILLed session — and assert the recovery machinery salvages every
committed command.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.editor import RiotEditor
from repro.core.errors import JournalError, ReplayError, RiotError
from repro.core.replay import JOURNAL_HEADER, Journal, JournalEntry
from repro.core.textual import DiskStore, TextualInterface
from repro.core.wal import JournalWriter, load_text, recover
from repro.geometry.point import Point

from tests.core.conftest import TECH, cif_block

SRC = Path(__file__).resolve().parents[2] / "src"
SUBPROCESS_ENV = {
    **os.environ,
    "PYTHONPATH": str(SRC) + os.pathsep + os.environ.get("PYTHONPATH", ""),
}


def stocked_editor(wal=None):
    ed = RiotEditor(TECH, wal=wal)
    ed.library.add(cif_block("driver", 2000, 1000, [("A", 2000, 300), ("B", 2000, 700)]))
    ed.library.add(cif_block("receiver", 2000, 1000, [("A", 0, 300), ("B", 0, 700)]))
    return ed


def good_lines(*commands):
    """Framed v2 journal lines for simple commands."""
    return [JournalEntry(cmd, kwargs).to_line() for cmd, kwargs in commands]


class TestJournalWriter:
    def test_header_written_once(self, tmp_path):
        path = tmp_path / "s.rpl"
        with JournalWriter(path) as writer:
            writer.append(JournalEntry("new_cell", {"name": "top"}))
        lines = path.read_text().splitlines()
        assert lines[0] == JOURNAL_HEADER
        assert len(lines) == 2

    def test_append_is_immediately_durable(self, tmp_path):
        path = tmp_path / "s.rpl"
        writer = JournalWriter(path)
        writer.append(JournalEntry("new_cell", {"name": "top"}))
        # Read back through a separate handle without closing the writer:
        # the entry must already be on disk.
        journal = load_text(path.read_text())
        assert [e.command for e in journal.entries] == ["new_cell"]

    def test_truncate_to_drops_tail(self, tmp_path):
        path = tmp_path / "s.rpl"
        writer = JournalWriter(path)
        offset = writer.append(JournalEntry("new_cell", {"name": "top"}))
        writer.append(JournalEntry("finish", {}))
        writer.truncate_to(offset + len(path.read_text().splitlines()[1]) + 1)
        journal = load_text(path.read_text())
        assert [e.command for e in journal.entries] == ["new_cell"]

    def test_checkpoint_compacts_atomically(self, tmp_path):
        path = tmp_path / "s.rpl"
        writer = JournalWriter(path)
        for i in range(5):
            writer.append(JournalEntry("new_cell", {"name": f"c{i}"}))
        entries = [JournalEntry("new_cell", {"name": "kept"})]
        writer.checkpoint(entries)
        journal = load_text(path.read_text())
        assert [e.kwargs["name"] for e in journal.entries] == ["kept"]
        # No temp litter left behind.
        assert [p.name for p in tmp_path.iterdir()] == ["s.rpl"]
        # Appends continue after the compaction.
        writer.append(JournalEntry("finish", {}))
        assert len(load_text(path.read_text()).entries) == 2

    def test_editor_tees_to_wal(self, tmp_path):
        path = tmp_path / "s.rpl"
        ed = stocked_editor(wal=str(path))
        ed.new_cell("top")
        ed.create(at=Point(0, 0), cell_name="driver", name="d")
        journal = load_text(path.read_text())
        assert [e.command for e in journal.entries] == ["new_cell", "create"]

    def test_periodic_checkpoint_at_command_boundary(self, tmp_path):
        path = tmp_path / "s.rpl"
        ed = stocked_editor(wal=JournalWriter(path, checkpoint_interval=3))
        ed.new_cell("top")
        ed.new_cell("mid")
        size_before = path.stat().st_size
        ed.new_cell("bot")  # third append triggers compaction
        assert len(load_text(path.read_text()).entries) == 3
        assert path.stat().st_size > size_before


class TestTransactionalCommands:
    def test_failed_command_rolls_back_cell(self):
        ed = stocked_editor()
        ed.new_cell("top")
        ed.create(at=Point(0, 0), cell_name="driver", name="d")
        with pytest.raises(Exception):
            # Duplicate instance name: add_instance raises after the
            # journal entry was recorded.
            ed.create(at=Point(500, 500), cell_name="receiver", name="d")
        assert len(ed.cell.instances) == 1
        assert ed.cell.instance("d").cell.name == "driver"

    def test_failed_command_leaves_no_journal_entry(self):
        ed = stocked_editor()
        ed.new_cell("top")
        with pytest.raises(Exception):
            ed.new_cell("top")  # duplicate cell name
        assert [e.command for e in ed.journal.entries] == ["new_cell"]

    def test_failed_command_truncates_wal(self, tmp_path):
        path = tmp_path / "s.rpl"
        ed = stocked_editor(wal=str(path))
        ed.new_cell("top")
        before = path.read_bytes()
        with pytest.raises(Exception):
            ed.new_cell("top")
        assert path.read_bytes() == before

    def test_failed_replicate_keeps_array_shape(self):
        ed = stocked_editor()
        ed.new_cell("top")
        inst = ed.create(at=Point(0, 0), cell_name="driver", name="d")
        with pytest.raises(RiotError):
            ed.replicate("d", nx=0)
        assert (inst.nx, inst.ny) == (1, 1)


class TestSalvage:
    def test_empty_file(self):
        journal = load_text("")
        assert journal.entries == []
        assert journal.corruption is None

    def test_truncated_last_line(self):
        lines = good_lines(("new_cell", {"name": "top"}), ("finish", {}))
        torn = lines[1][: len(lines[1]) // 2]
        text = "\n".join([JOURNAL_HEADER, lines[0], torn])
        journal = load_text(text)
        assert [e.command for e in journal.entries] == ["new_cell"]
        assert journal.corruption is not None
        assert journal.corruption.lineno == 3

    def test_bad_crc(self):
        line = JournalEntry("new_cell", {"name": "top"}).to_line()
        corrupted = line.replace('"top"', '"bop"')
        journal = load_text("\n".join([JOURNAL_HEADER, corrupted]))
        assert journal.entries == []
        assert journal.corruption.reason == "CRC mismatch"
        assert journal.corruption.lineno == 2

    def test_uncrc_v1_lines_still_load(self):
        journal = load_text('{"command": "new_cell", "name": "top"}')
        assert [e.command for e in journal.entries] == ["new_cell"]
        assert journal.corruption is None

    def test_non_allowlisted_command_rejected_not_fatal(self):
        evil = json.dumps({"command": "__init__"})
        good = JournalEntry("new_cell", {"name": "top"}).to_line()
        journal = load_text("\n".join([JOURNAL_HEADER, evil, good]))
        # Salvage continues past the rejection to the good entry.
        assert [e.command for e in journal.entries] == ["new_cell"]
        assert len(journal.rejected) == 1
        assert journal.rejected[0].command == "__init__"
        assert journal.rejected[0].lineno == 2

    def test_strict_parser_still_raises(self):
        line = JournalEntry("new_cell", {"name": "top"}).to_line()
        with pytest.raises(JournalError, match="CRC mismatch"):
            Journal.from_text(line.replace('"top"', '"bop"'))


class TestRecoveryReport:
    def test_skip_mode_survives_vanished_connector(self):
        original = stocked_editor()
        original.new_cell("top")
        original.create(at=Point(0, 0), cell_name="driver", name="d")
        original.create(at=Point(8000, 100), cell_name="receiver", name="r")
        original.connect("d", "A", "r", "A")
        original.connect("d", "B", "r", "B")
        original.do_abut()
        text = original.journal.to_text()

        # The paper's leaf-cell-modification scenario: B vanished.
        broken = RiotEditor(TECH)
        broken.library.add(cif_block("driver", 2000, 1000, [("A", 2000, 300)]))
        broken.library.add(
            cif_block("receiver", 2000, 1000, [("A", 0, 300), ("B", 0, 700)])
        )
        report = broken.recover_from(text)
        assert report.executed == report.total - 1
        assert len(report.skipped) == 1
        assert report.skipped[0].index == 4
        assert report.skipped[0].command == "connect"
        # The session survived: d.A-r.A still connects at ABUT time.
        broken.edit("top")
        assert broken.check().made_count >= 1

    def test_strict_mode_raises_structured_error(self):
        ed = stocked_editor()
        journal = Journal.from_text('{"command": "edit", "name": "ghost"}')
        with pytest.raises(ReplayError) as info:
            journal.replay(ed, mode="strict")
        assert info.value.entry_index == 0
        assert info.value.command == "edit"
        assert isinstance(info.value.original, KeyError)

    def test_unknown_kwargs_skipped_with_report(self):
        ed = stocked_editor()
        journal = load_text('{"command": "finish", "bogus": 1}')
        report = journal.replay(ed, mode="skip")
        assert report.executed == 0
        # Strict request decoding rejects the stray field by name.
        assert report.skipped[0].error.startswith("BadRequest")
        assert "bogus" in report.skipped[0].error

    def test_corrupt_tail_reported_at_salvage_point(self):
        lines = good_lines(
            ("new_cell", {"name": "top"}),
            ("new_cell", {"name": "other"}),
        )
        torn = '{"command": "edit", "na'
        journal = load_text("\n".join([JOURNAL_HEADER, *lines, torn]))
        report = journal.replay(stocked_editor(), mode="skip")
        assert report.executed == 2
        assert report.corruption.lineno == 4
        assert "4" in report.to_text()

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="strict"):
            Journal().replay(stocked_editor(), mode="yolo")

    def test_recover_adopts_committed_history(self):
        original = stocked_editor()
        original.new_cell("top")
        original.new_cell("other")
        text = original.journal.to_text()
        fresh = stocked_editor()
        recover(fresh, load_text(text))
        # The recovered session can itself be saved and replayed.
        assert len(fresh.journal) == 2
        third = stocked_editor()
        assert third.replay_from(fresh.journal.to_text()) == 2


class TestTextualCommands:
    def test_journal_and_recover_roundtrip(self, tmp_path):
        tui = TextualInterface(stocked_editor(), DiskStore(str(tmp_path)))
        assert "journaling" in tui.execute("journal s.rpl")
        tui.execute("new demo")
        tui.execute("rename demo better")

        tui2 = TextualInterface(stocked_editor(), DiskStore(str(tmp_path)))
        out = tui2.execute("recover s.rpl")
        assert "recovered 2 of 2" in out
        assert "better" in tui2.execute("cells")

    def test_journal_requires_disk_store(self):
        tui = TextualInterface(stocked_editor())
        assert tui.execute("journal s.rpl").startswith("error")


class TestCrashRecoverySubprocess:
    def test_sigkill_mid_session_then_recover(self, tmp_path):
        """The acceptance scenario: SIGKILL a recording session, then
        --recover restores every committed command."""
        proc = subprocess.Popen(
            [sys.executable, "-u", "-m", "repro", "--journal", "s.rpl"],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            text=True,
            cwd=str(tmp_path),
            env=SUBPROCESS_ENV,
        )
        try:
            for command in ("new demo\n", "new second\n", "rename second best\n"):
                proc.stdin.write(command)
                proc.stdin.flush()
                # Reading the echoed response proves the command (and its
                # fsynced WAL append) completed before we pull the plug.
                assert proc.stdout.readline().strip()
            proc.send_signal(signal.SIGKILL)
        finally:
            proc.kill()
            proc.wait(timeout=60)

        result = subprocess.run(
            [sys.executable, "-m", "repro", "--recover", "s.rpl"],
            input="cells\nquit\n",
            capture_output=True,
            text=True,
            timeout=120,
            cwd=str(tmp_path),
            env=SUBPROCESS_ENV,
        )
        assert result.returncode == 0
        assert "recovered 3 of 3" in result.stdout
        assert "demo" in result.stdout
        assert "best" in result.stdout

    def test_recover_missing_file_fails_cleanly(self, tmp_path):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "--recover", "ghost.rpl"],
            input="quit\n",
            capture_output=True,
            text=True,
            timeout=120,
            cwd=str(tmp_path),
            env=SUBPROCESS_ENV,
        )
        assert result.returncode == 1
        assert "error: recovery failed" in result.stdout
