"""Tests for the REPLAY journal — the paper's answer to leaf-cell edits."""

import pytest

from repro.core.editor import RiotEditor
from repro.core.errors import RiotError
from repro.core.replay import Journal, JournalEntry
from repro.geometry.point import Point

from tests.core.conftest import TECH, cif_block, sticks_gate


def fresh_editor(driver_connectors=None):
    """An editor with the standard stock; driver connectors overridable
    to model a re-designed leaf cell."""
    ed = RiotEditor(TECH)
    conns = driver_connectors or [("A", 2000, 300), ("B", 2000, 700)]
    ed.library.add(cif_block("driver", 2000, 1000, conns))
    ed.library.add(cif_block("receiver", 2000, 1000, [("A", 0, 300), ("B", 0, 700)]))
    ed.library.add(cif_block("spread", 2000, 3200, [("A", 0, 300), ("B", 0, 2700)]))
    ed.library.add(sticks_gate("gate"))
    return ed


def record_session(editor):
    editor.new_cell("top")
    editor.create(at=Point(0, 0), cell_name="driver", name="d")
    editor.create(at=Point(8000, 100), cell_name="receiver", name="r")
    editor.connect("d", "A", "r", "A")
    editor.connect("d", "B", "r", "B")
    editor.do_abut()
    editor.finish()


class TestJournalRecording:
    def test_commands_recorded(self, editor):
        editor.create(at=Point(0, 0), cell_name="driver", name="d")
        commands = [e.command for e in editor.journal.entries]
        assert commands == ["new_cell", "create"]

    def test_arguments_recorded(self, editor):
        editor.create(at=Point(10, 20), cell_name="driver", name="d")
        entry = editor.journal.entries[-1]
        assert entry.kwargs["at"] == [10, 20]
        assert entry.kwargs["name"] == "d"

    def test_text_roundtrip(self, editor):
        editor.create(at=Point(0, 0), cell_name="driver", name="d")
        editor.move("d", Point(5, 5))
        text = editor.journal.to_text()
        again = Journal.from_text(text)
        assert [e.command for e in again.entries] == ["new_cell", "create", "move"]
        assert again.entries[2].kwargs == {"name": "d", "to": [5, 5]}

    def test_header_and_comments_skipped(self):
        journal = Journal.from_text("# comment\n\n" + JournalEntry("finish", {}).to_line())
        assert len(journal) == 1

    def test_malformed_line(self):
        with pytest.raises(RiotError, match="line 1"):
            Journal.from_text("not json")

    def test_missing_command(self):
        with pytest.raises(RiotError, match="missing command"):
            Journal.from_text('{"x": 1}')

    def test_allowlist_enforced(self):
        with pytest.raises(RiotError, match="not a replayable"):
            Journal.from_text('{"command": "__init__"}')


class TestReplay:
    def test_identical_replay(self):
        original = fresh_editor()
        record_session(original)
        text = original.journal.to_text()

        fresh = fresh_editor()
        executed = fresh.replay_from(text)
        assert executed == len(original.journal)
        fresh.edit("top")
        assert fresh.check().made_count == 2
        assert (
            fresh.cell.instance("d").transform
            == original.library.get("top").instance("d").transform
        )

    def test_replay_reconnects_after_leaf_edit(self):
        """The paper's headline replay property: the leaf changed shape,
        a plain composition reload would leave broken connections, but
        replay re-resolves connector names and re-makes them."""
        original = fresh_editor()
        record_session(original)
        text = original.journal.to_text()

        # The driver grew taller and its connectors moved.
        edited = fresh_editor(
            driver_connectors=[("A", 2000, 500), ("B", 2000, 1000)]
        )
        # (heights differ too)
        edited.library.replace(
            "driver",
            cif_block("driver", 2000, 1500, [("A", 2000, 500), ("B", 2000, 900)]),
        )
        edited.replay_from(text)
        edited.edit("top")
        report = edited.check()
        assert report.is_connected(
            edited.cell.instance("d"), "A", edited.cell.instance("r"), "A"
        )

    def test_replay_does_not_rerecord(self):
        original = fresh_editor()
        record_session(original)
        text = original.journal.to_text()
        fresh = fresh_editor()
        fresh.replay_from(text)
        assert len(fresh.journal) == 0

    def test_recording_resumes_after_replay(self):
        original = fresh_editor()
        record_session(original)
        fresh = fresh_editor()
        fresh.replay_from(original.journal.to_text())
        fresh.edit("top")
        assert len(fresh.journal) == 1  # the edit itself

    def test_replay_failure_names_entry(self):
        original = fresh_editor()
        record_session(original)
        text = original.journal.to_text()
        # An editor whose driver lost its B connector entirely.
        broken = fresh_editor(driver_connectors=[("A", 2000, 300)])
        with pytest.raises(RiotError, match="replay failed at entry 4"):
            broken.replay_from(text)

    def test_replay_crash_recovery(self):
        """Recover an 'abnormally-terminated' session: replay the
        journal into a brand new editor."""
        original = fresh_editor()
        original.new_cell("top")
        original.create(at=Point(0, 0), cell_name="driver", name="d")
        text = original.journal.to_text()
        del original  # the crash

        recovered = fresh_editor()
        recovered.replay_from(text)
        recovered.edit("top")
        assert recovered.cell.instance("d").cell.name == "driver"

    def test_replay_of_route_session(self):
        original = fresh_editor()
        original.new_cell("top")
        original.create(at=Point(0, 0), cell_name="driver", name="d")
        original.create(at=Point(8000, 0), cell_name="spread", name="s")
        original.connect("d", "A", "s", "A")
        original.connect("d", "B", "s", "B")
        original.do_route()
        text = original.journal.to_text()

        fresh = fresh_editor()
        fresh.replay_from(text)
        fresh.edit("top")
        assert fresh.check().made_count >= 4
        assert any(n.startswith("route") for n in fresh.library.names)

    def test_replay_of_stretch_session(self):
        original = fresh_editor()
        original.new_cell("top")
        original.create(at=Point(6000, 0), cell_name="gate", name="g")
        original.create(at=Point(0, 0), cell_name="spread", name="s")
        original.mirror("s")
        original.connect("g", "A", "s", "A")
        original.connect("g", "B", "s", "B")
        original.do_stretch()
        text = original.journal.to_text()

        fresh = fresh_editor()
        fresh.replay_from(text)
        fresh.edit("top")
        g = fresh.cell.instance("g")
        s = fresh.cell.instance("s")
        assert g.connector("A").position == s.connector("A").position
