"""Tests for the graphical command interface, driven through devices.

These tests replay the paper's interaction model end to end: a
pointing device produces events, the display hit-tests them, and the
command state machine calls the editor — exactly how a user at the
Charles or GIGI workstation drove Riot.
"""

import pytest

from repro.core.commands import COMMANDS, GraphicalInterface
from repro.geometry.point import Point
from repro.workstation.devices import charles_workstation, gigi_workstation


@pytest.fixture()
def gui(editor):
    ws = charles_workstation()
    gui = GraphicalInterface(editor, ws.display)
    gui.workstation = ws
    return gui


def press_menu(gui, kind, name):
    point = gui.display.menu_point(kind, name)
    gui.workstation.point_and_press(point)
    return gui.handle_events(gui.workstation.events())


def press_world(gui, world_point):
    screen = gui.display.viewport.to_screen(world_point)
    gui.workstation.point_and_press(screen)
    return gui.handle_events(gui.workstation.events())


class TestMenuDriving:
    def test_select_cell_from_menu(self, gui):
        messages = press_menu(gui, "cell-menu", "driver")
        assert messages == ["selected driver"]
        assert gui.editor.selected_cell == "driver"

    def test_pick_command(self, gui):
        messages = press_menu(gui, "command-menu", "CREATE")
        assert "point in the editing area" in messages[0]
        assert gui.current_command == "CREATE"

    def test_every_menu_command_reachable(self, gui):
        for name in COMMANDS:
            hit = gui.display.hit_test(gui.display.menu_point("command-menu", name))
            assert hit.name == name


class TestCreateFlow:
    def test_create_via_clicks(self, gui):
        gui.display.viewport.fit(
            __import__("repro.geometry.box", fromlist=["Box"]).Box(0, 0, 20000, 20000)
        )
        press_menu(gui, "cell-menu", "driver")
        press_menu(gui, "command-menu", "CREATE")
        messages = press_world(gui, Point(1000, 1000))
        assert messages == ["created driver"]
        inst = gui.editor.cell.instance("driver")
        corner = inst.bounding_box().lower_left
        # Screen pixels quantize world coordinates at this zoom level.
        scale = gui.display.viewport.scale_den // gui.display.viewport.scale_num
        assert abs(corner.x - 1000) <= scale
        assert abs(corner.y - 1000) <= scale

    def test_create_without_selection_reports_error(self, gui):
        press_menu(gui, "command-menu", "CREATE")
        messages = press_world(gui, Point(1000, 1000))
        assert messages[0].startswith("error")


class TestEditingFlows:
    def _place_two(self, gui):
        from repro.geometry.box import Box

        gui.display.viewport.fit(Box(-20000, -20000, 40000, 40000))
        gui.editor.create(at=Point(0, 0), cell_name="driver", name="d")
        gui.editor.create(at=Point(10000, 0), cell_name="receiver", name="r")
        gui.redraw()

    def test_move_two_click_flow(self, gui):
        self._place_two(gui)
        press_menu(gui, "command-menu", "MOVE")
        first = press_world(gui, Point(500, 500))
        assert "moving d" in first[0]
        press_world(gui, Point(4000, 4000))
        box = gui.editor.cell.instance("d").bounding_box()
        # Viewport rounding: the destination is quantized by the pixel
        # grid, so allow the scale error.
        scale = gui.display.viewport.scale_den // gui.display.viewport.scale_num
        assert abs(box.llx - 4000) <= scale
        assert abs(box.lly - 4000) <= scale

    def test_rotate_click(self, gui):
        self._place_two(gui)
        press_menu(gui, "command-menu", "ROTATE")
        messages = press_world(gui, Point(500, 500))
        assert messages == ["rotated d"]

    def test_delete_click(self, gui):
        self._place_two(gui)
        press_menu(gui, "command-menu", "DELETE")
        press_world(gui, Point(500, 500))
        assert all(i.name != "d" for i in gui.editor.cell.instances)

    def test_click_on_empty_space_errors(self, gui):
        self._place_two(gui)
        press_menu(gui, "command-menu", "DELETE")
        messages = press_world(gui, Point(-15000, -15000))
        assert messages[0].startswith("error: no instance")

    def test_idle_click_identifies_instance(self, gui):
        self._place_two(gui)
        messages = press_world(gui, Point(500, 500))
        assert "d" in messages[0]


class TestConnectFlow:
    def test_connect_and_abut(self, gui):
        from repro.geometry.box import Box

        gui.display.viewport.fit(Box(-5000, -5000, 20000, 10000))
        gui.editor.create(at=Point(0, 0), cell_name="driver", name="d")
        gui.editor.create(at=Point(10000, 0), cell_name="receiver", name="r")
        gui.redraw()
        press_menu(gui, "command-menu", "CONNECT")
        first = press_world(gui, Point(2000, 300))  # d.A
        assert "from" in first[0]
        second = press_world(gui, Point(10000, 300))  # r.A
        assert "pending" in second[0]
        assert len(gui.editor.pending) == 1

        messages = press_menu(gui, "command-menu", "ABUT")
        assert "abutted" in messages[0]
        d = gui.editor.cell.instance("d")
        r = gui.editor.cell.instance("r")
        assert d.connector("A").position == r.connector("A").position

    def test_connector_pick_radius(self, gui):
        from repro.geometry.box import Box

        gui.display.viewport.fit(Box(-5000, -5000, 20000, 10000))
        gui.editor.create(at=Point(0, 0), cell_name="driver", name="d")
        gui.redraw()
        press_menu(gui, "command-menu", "CONNECT")
        # Far away from any connector: an error.
        messages = press_world(gui, Point(-4000, -4000))
        assert messages[0].startswith("error: no connector")

    def test_bus_flow(self, gui):
        from repro.geometry.box import Box

        gui.display.viewport.fit(Box(-5000, -5000, 20000, 10000))
        gui.editor.create(at=Point(0, 0), cell_name="driver", name="d")
        gui.editor.create(at=Point(10000, 0), cell_name="receiver", name="r")
        gui.redraw()
        press_menu(gui, "command-menu", "BUS")
        press_world(gui, Point(500, 500))
        messages = press_world(gui, Point(10500, 500))
        assert "2 pending" in messages[0]


class TestImmediateCommands:
    def test_zoom_commands(self, gui):
        before = gui.display.viewport.scale_num / gui.display.viewport.scale_den
        press_menu(gui, "command-menu", "ZOOMIN")
        mid = gui.display.viewport.scale_num / gui.display.viewport.scale_den
        assert mid == before * 2
        press_menu(gui, "command-menu", "ZOOMOUT")
        after = gui.display.viewport.scale_num / gui.display.viewport.scale_den
        assert after == before

    def test_fit_requires_content(self, gui):
        messages = press_menu(gui, "command-menu", "FIT")
        assert messages[0].startswith("error: nothing to fit")

    def test_pan_recenters(self, gui):
        gui.editor.create(at=Point(0, 0), cell_name="driver", name="d")
        gui.redraw()
        press_menu(gui, "command-menu", "PAN")
        messages = press_world(gui, Point(4000, 4000))
        assert "panned" in messages[0]
        center = gui.display.viewport.world_center
        scale = gui.display.viewport.scale_den // gui.display.viewport.scale_num
        assert abs(center.x - 4000) <= scale
        assert abs(center.y - 4000) <= scale

    def test_names_toggle(self, gui):
        assert press_menu(gui, "command-menu", "NAMES") == ["names on"]
        assert press_menu(gui, "command-menu", "NAMES") == ["names off"]

    def test_finish_via_menu(self, gui):
        gui.editor.create(at=Point(0, 0), cell_name="driver", name="d")
        gui.redraw()
        messages = press_menu(gui, "command-menu", "FINISH")
        assert "2 connector(s)" in messages[0]

    def test_route_via_menu(self, gui):
        gui.editor.create(at=Point(0, 0), cell_name="driver", name="d")
        gui.editor.create(at=Point(9000, 0), cell_name="receiver", name="r")
        gui.editor.connect("d", "A", "r", "A")
        gui.editor.connect("d", "B", "r", "B")
        gui.redraw()
        messages = press_menu(gui, "command-menu", "ROUTE")
        assert "routed 2 wire(s)" in messages[0]

    def test_stretch_via_menu(self, gui):
        gui.editor.create(at=Point(6000, 0), cell_name="gate", name="g")
        gui.editor.create(at=Point(0, 0), cell_name="spread", name="s")
        gui.editor.mirror("s")
        gui.editor.connect("g", "A", "s", "A")
        gui.editor.connect("g", "B", "s", "B")
        gui.redraw()
        messages = press_menu(gui, "command-menu", "STRETCH")
        assert "stretched gate" in messages[0]


class TestBothWorkstations:
    def test_gigi_drives_the_same_editor(self, editor):
        ws = gigi_workstation()
        gui = GraphicalInterface(editor, ws.display)
        point = ws.display.menu_point("cell-menu", "driver")
        ws.point_and_press(point)
        messages = gui.handle_events(ws.events())
        assert messages == ["selected driver"]

    def test_keyline_events_pass_through(self, gui):
        from repro.workstation.events import KeyLine

        message = gui.handle(KeyLine("cells"))
        assert message == "(textual) cells"
