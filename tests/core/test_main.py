"""Tests for the ``python -m repro`` entry point."""

import os
import subprocess
import sys
from pathlib import Path

from repro.__main__ import build_interface, run

#: Subprocesses must resolve ``repro`` regardless of install state or
#: working directory, so the repo's src/ rides along on PYTHONPATH.
SRC = Path(__file__).resolve().parents[2] / "src"
SUBPROCESS_ENV = {
    **os.environ,
    "PYTHONPATH": str(SRC) + os.pathsep + os.environ.get("PYTHONPATH", ""),
}


class TestRunFunction:
    def test_commands_execute(self):
        outputs = []
        failures = run(["cells", "help"], echo=outputs.append)
        assert failures == 0
        assert outputs[0].startswith("cells:")

    def test_blank_and_comments_skipped(self):
        outputs = []
        run(["", "# a comment", "cells"], echo=outputs.append)
        assert len(outputs) == 1

    def test_quit_stops(self):
        outputs = []
        run(["quit", "cells"], echo=outputs.append)
        assert outputs == []

    def test_failures_counted(self):
        outputs = []
        failures = run(["edit ghost", "read nope.cif"], echo=outputs.append)
        assert failures == 2

    def test_stock_library_preloaded(self):
        interface = build_interface()
        assert "srcell" in interface.editor.library

    def test_session_flow(self, tmp_path):
        interface = build_interface(str(tmp_path))
        outputs = []
        failures = run(
            [
                "new demo",
                "cells",
                "write demo.comp",
            ],
            interface,
            echo=outputs.append,
        )
        assert failures == 0
        assert (tmp_path / "demo.comp").exists()


class TestSubprocess:
    def test_pipe_mode(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro"],
            input="cells\nquit\n",
            capture_output=True,
            text=True,
            timeout=120,
            env=SUBPROCESS_ENV,
        )
        assert result.returncode == 0
        assert "cells:" in result.stdout

    def test_script_mode(self, tmp_path):
        script = tmp_path / "session.txt"
        script.write_text("cells\nhelp\n")
        result = subprocess.run(
            [sys.executable, "-m", "repro", str(script)],
            capture_output=True,
            text=True,
            timeout=120,
            cwd=str(tmp_path),
            env=SUBPROCESS_ENV,
        )
        assert result.returncode == 0
        assert "commands:" in result.stdout
