"""Golden-file check: canonical CIF for the stock library.

The CIF writer's output is part of the tool's contract — downstream
mask tooling consumes it byte-for-byte, so any change to symbol
numbering, layer ordering, geometry sorting or the 9/94 extension
lines must be a deliberate one.  ``pytest --update-golden`` rewrites
the reference after such a change; the diff then documents it.
"""

import pytest

from pathlib import Path

from repro.cif.writer import write_cif
from repro.geometry.layers import nmos_technology
from repro.library.stock import filter_library
from repro.sticks.expand import expand_to_cif

GOLDEN = Path(__file__).parent / "stock_library.cif"


def render_stock_library() -> str:
    technology = nmos_technology()
    library = filter_library(technology)
    tops = []
    for name in sorted(library.names):
        leaf = library.get(name)
        if leaf.cif_cell is not None:
            tops.append(leaf.cif_cell)
        else:
            tops.append(expand_to_cif(leaf.sticks_cell, technology))
    return write_cif(tops, instantiate_top=False)


def test_stock_library_cif_matches_golden(request):
    rendered = render_stock_library()
    if request.config.getoption("--update-golden"):
        GOLDEN.write_text(rendered)
        pytest.skip("golden file rewritten")
    assert GOLDEN.exists(), (
        f"{GOLDEN} missing; run pytest --update-golden to create it"
    )
    assert rendered == GOLDEN.read_text(), (
        "CIF writer output changed; inspect the diff and run "
        "pytest --update-golden if the change is intended"
    )


def test_render_is_deterministic():
    assert render_stock_library() == render_stock_library()
