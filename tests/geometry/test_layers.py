"""Tests for the layer registry and the NMOS technology rules."""

import pytest

from repro.geometry.layers import Layer, Technology, nmos_technology


@pytest.fixture()
def tech():
    return nmos_technology()


class TestNmosTechnology:
    def test_default_lambda(self, tech):
        assert tech.lambda_cm == 250

    def test_has_mead_conway_layers(self, tech):
        for name in ("diffusion", "poly", "metal", "contact", "implant"):
            assert tech.has_layer(name)

    def test_cif_names(self, tech):
        assert tech.layer("metal").cif_name == "NM"
        assert tech.layer_by_cif("NP").name == "poly"

    def test_unknown_layer_message(self, tech):
        with pytest.raises(KeyError, match="unknown layer 'metal9'"):
            tech.layer("metal9")

    def test_unknown_cif_layer(self, tech):
        with pytest.raises(KeyError, match="unknown CIF layer"):
            tech.layer_by_cif("CM")

    def test_metal_rules(self, tech):
        # Classic Mead-Conway: metal 3 lambda wide, 3 lambda apart.
        assert tech.min_width("metal") == 750
        assert tech.min_separation("metal") == 750
        assert tech.pitch("metal") == 1500

    def test_poly_rules(self, tech):
        assert tech.min_width("poly") == 500
        assert tech.min_separation("poly") == 500

    def test_diffusion_rules(self, tech):
        assert tech.min_width("diffusion") == 500
        assert tech.min_separation("diffusion") == 750

    def test_rules_accept_layer_objects(self, tech):
        metal = tech.layer("metal")
        assert tech.min_width(metal) == tech.min_width("metal")

    def test_lam_helper(self, tech):
        assert tech.lam(3) == 750

    def test_routing_layers_exclude_cuts(self, tech):
        names = {layer.name for layer in tech.routing_layers}
        assert "metal" in names
        assert "poly" in names
        assert "contact" not in names
        assert "implant" not in names

    def test_scaled_technology(self):
        fine = nmos_technology(lambda_cm=100)
        assert fine.min_width("metal") == 300

    def test_layers_listing(self, tech):
        assert len(tech.layers) == 7


class TestValidation:
    def test_duplicate_layer_name_rejected(self):
        layers = [Layer("a", "LA", 0), Layer("a", "LB", 1)]
        with pytest.raises(ValueError, match="duplicate layer name"):
            Technology("t", 100, layers, {"a": 1}, {"a": 1})

    def test_duplicate_cif_name_rejected(self):
        layers = [Layer("a", "LX", 0), Layer("b", "LX", 1)]
        with pytest.raises(ValueError, match="duplicate CIF layer name"):
            Technology("t", 100, layers, {"a": 1, "b": 1}, {"a": 1, "b": 1})

    def test_missing_rule_rejected(self):
        layers = [Layer("a", "LA", 0), Layer("b", "LB", 1)]
        with pytest.raises(ValueError, match="missing width rules"):
            Technology("t", 100, layers, {"a": 1}, {"a": 1, "b": 1})


class TestEquality:
    """Two Technology objects built from identical rules are equal and
    hash equal — the property the verification cache keys rely on."""

    def test_reconstructed_technologies_equal(self):
        assert nmos_technology() == nmos_technology()
        assert hash(nmos_technology()) == hash(nmos_technology())

    def test_usable_as_dict_key(self):
        table = {nmos_technology(): "a"}
        assert table[nmos_technology()] == "a"

    def test_lambda_breaks_equality(self):
        assert nmos_technology(250) != nmos_technology(200)

    def test_rule_change_breaks_equality(self):
        layers = [Layer("a", "LA", 0)]
        one = Technology("t", 100, layers, {"a": 2}, {"a": 2})
        other = Technology("t", 100, layers, {"a": 3}, {"a": 2})
        assert one != other

    def test_layer_order_does_not_matter(self):
        def build(reverse):
            layers = [Layer("a", "LA", 0), Layer("b", "LB", 1)]
            if reverse:
                layers.reverse()
            return Technology(
                "t", 100, layers, {"a": 2, "b": 3}, {"a": 2, "b": 3}
            )

        assert build(False) == build(True)
        assert hash(build(False)) == hash(build(True))

    def test_not_equal_to_other_types(self):
        assert nmos_technology() != "nmos"
        assert (nmos_technology() == object()) is False
