"""Unit tests for repro.geometry.point."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.point import ORIGIN, Point

coords = st.integers(min_value=-10**6, max_value=10**6)
points = st.builds(Point, coords, coords)


class TestConstruction:
    def test_basic(self):
        p = Point(3, -4)
        assert p.x == 3
        assert p.y == -4

    def test_rejects_float_x(self):
        with pytest.raises(TypeError):
            Point(1.5, 2)

    def test_rejects_float_y(self):
        with pytest.raises(TypeError):
            Point(1, 2.5)

    def test_origin_constant(self):
        assert ORIGIN == Point(0, 0)

    def test_immutable(self):
        p = Point(1, 2)
        with pytest.raises(AttributeError):
            p.x = 5

    def test_hashable(self):
        assert len({Point(1, 2), Point(1, 2), Point(2, 1)}) == 2


class TestArithmetic:
    def test_add(self):
        assert Point(1, 2) + Point(3, 4) == Point(4, 6)

    def test_sub(self):
        assert Point(5, 5) - Point(2, 3) == Point(3, 2)

    def test_neg(self):
        assert -Point(1, -2) == Point(-1, 2)

    def test_mul(self):
        assert Point(2, 3) * 4 == Point(8, 12)

    def test_rmul(self):
        assert 4 * Point(2, 3) == Point(8, 12)

    def test_mul_rejects_float(self):
        with pytest.raises(TypeError):
            Point(1, 1) * 1.5

    def test_translated(self):
        assert Point(1, 1).translated(2, -3) == Point(3, -2)


class TestMetrics:
    def test_manhattan_distance(self):
        assert Point(0, 0).manhattan_distance(Point(3, 4)) == 7

    def test_manhattan_distance_symmetric(self):
        a, b = Point(-2, 5), Point(7, 1)
        assert a.manhattan_distance(b) == b.manhattan_distance(a)

    def test_orthogonal_horizontal(self):
        assert Point(0, 5).is_orthogonal_to(Point(9, 5))

    def test_orthogonal_vertical(self):
        assert Point(3, 0).is_orthogonal_to(Point(3, 9))

    def test_not_orthogonal(self):
        assert not Point(0, 0).is_orthogonal_to(Point(1, 1))

    def test_same_point_orthogonal(self):
        assert Point(2, 2).is_orthogonal_to(Point(2, 2))


class TestProperties:
    @given(points, points)
    def test_add_commutes(self, a, b):
        assert a + b == b + a

    @given(points, points)
    def test_sub_inverts_add(self, a, b):
        assert (a + b) - b == a

    @given(points)
    def test_neg_involution(self, p):
        assert -(-p) == p

    @given(points, points, points)
    def test_triangle_inequality(self, a, b, c):
        assert a.manhattan_distance(c) <= (
            a.manhattan_distance(b) + b.manhattan_distance(c)
        )

    @given(points)
    def test_str_roundtrip_shape(self, p):
        assert str(p) == f"({p.x},{p.y})"
