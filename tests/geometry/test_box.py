"""Unit and property tests for repro.geometry.box."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.box import Box, union_all
from repro.geometry.point import Point

coords = st.integers(min_value=-10**6, max_value=10**6)
boxes = st.builds(Box, coords, coords, coords, coords)
points = st.builds(Point, coords, coords)


class TestConstruction:
    def test_normalises_corners(self):
        assert Box(10, 20, 0, 5) == Box(0, 5, 10, 20)

    def test_rejects_floats(self):
        with pytest.raises(TypeError):
            Box(0, 0, 1.5, 1)

    def test_degenerate_allowed(self):
        b = Box(5, 5, 5, 5)
        assert b.width == 0
        assert b.height == 0
        assert b.area == 0

    def test_from_points(self):
        b = Box.from_points([Point(3, 7), Point(-1, 2), Point(5, 0)])
        assert b == Box(-1, 0, 5, 7)

    def test_from_points_empty_raises(self):
        with pytest.raises(ValueError):
            Box.from_points([])

    def test_from_center(self):
        b = Box.from_center(Point(10, 10), 4, 6)
        assert b == Box(8, 7, 12, 13)

    def test_from_center_odd_raises(self):
        with pytest.raises(ValueError):
            Box.from_center(Point(0, 0), 3, 2)

    def test_from_center_negative_raises(self):
        with pytest.raises(ValueError):
            Box.from_center(Point(0, 0), -2, 2)


class TestMeasures:
    def test_dimensions(self):
        b = Box(0, 0, 10, 20)
        assert b.width == 10
        assert b.height == 20
        assert b.area == 200

    def test_center(self):
        assert Box(0, 0, 10, 20).center == Point(5, 10)

    def test_corners(self):
        cs = list(Box(0, 0, 2, 3).corners())
        assert cs == [Point(0, 0), Point(2, 0), Point(2, 3), Point(0, 3)]

    def test_corner_accessors(self):
        b = Box(1, 2, 3, 4)
        assert b.lower_left == Point(1, 2)
        assert b.upper_right == Point(3, 4)
        assert b.lower_right == Point(3, 2)
        assert b.upper_left == Point(1, 4)


class TestPredicates:
    def test_contains_point_interior(self):
        assert Box(0, 0, 10, 10).contains_point(Point(5, 5))

    def test_contains_point_boundary(self):
        assert Box(0, 0, 10, 10).contains_point(Point(0, 10))

    def test_contains_point_outside(self):
        assert not Box(0, 0, 10, 10).contains_point(Point(11, 5))

    def test_contains_box(self):
        assert Box(0, 0, 10, 10).contains_box(Box(2, 2, 8, 8))
        assert not Box(0, 0, 10, 10).contains_box(Box(2, 2, 12, 8))

    def test_overlaps_open(self):
        assert Box(0, 0, 10, 10).overlaps(Box(5, 5, 15, 15))

    def test_shared_edge_does_not_overlap(self):
        assert not Box(0, 0, 10, 10).overlaps(Box(10, 0, 20, 10))

    def test_shared_edge_touches(self):
        assert Box(0, 0, 10, 10).touches(Box(10, 0, 20, 10))

    def test_disjoint_neither(self):
        a, b = Box(0, 0, 1, 1), Box(5, 5, 6, 6)
        assert not a.overlaps(b)
        assert not a.touches(b)

    def test_corner_touch(self):
        assert Box(0, 0, 10, 10).touches(Box(10, 10, 20, 20))


class TestCombination:
    def test_union(self):
        assert Box(0, 0, 5, 5).union(Box(3, 3, 10, 8)) == Box(0, 0, 10, 8)

    def test_intersection(self):
        assert Box(0, 0, 10, 10).intersection(Box(5, 5, 15, 15)) == Box(5, 5, 10, 10)

    def test_intersection_disjoint(self):
        assert Box(0, 0, 1, 1).intersection(Box(5, 5, 6, 6)) is None

    def test_intersection_edge_degenerate(self):
        got = Box(0, 0, 10, 10).intersection(Box(10, 0, 20, 10))
        assert got == Box(10, 0, 10, 10)

    def test_union_all(self):
        got = union_all([Box(0, 0, 1, 1), Box(5, 5, 6, 6), Box(-2, 0, 0, 1)])
        assert got == Box(-2, 0, 6, 6)

    def test_union_all_empty_raises(self):
        with pytest.raises(ValueError):
            union_all([])


class TestMovement:
    def test_translated(self):
        assert Box(0, 0, 2, 2).translated(5, -1) == Box(5, -1, 7, 1)

    def test_inflated(self):
        assert Box(0, 0, 10, 10).inflated(2) == Box(-2, -2, 12, 12)

    def test_deflated(self):
        assert Box(0, 0, 10, 10).inflated(-2) == Box(2, 2, 8, 8)

    def test_inflated_inversion_raises(self):
        with pytest.raises(ValueError):
            Box(0, 0, 2, 2).inflated(-2)


class TestProperties:
    @given(boxes, boxes)
    def test_union_contains_both(self, a, b):
        u = a.union(b)
        assert u.contains_box(a)
        assert u.contains_box(b)

    @given(boxes, boxes)
    def test_union_commutes(self, a, b):
        assert a.union(b) == b.union(a)

    @given(boxes, boxes)
    def test_intersection_symmetric(self, a, b):
        assert a.intersection(b) == b.intersection(a)

    @given(boxes, boxes)
    def test_intersection_inside_both(self, a, b):
        inter = a.intersection(b)
        if inter is not None:
            assert a.contains_box(inter)
            assert b.contains_box(inter)

    @given(boxes)
    def test_area_nonnegative(self, b):
        assert b.area >= 0

    @given(boxes, coords, coords)
    def test_translation_preserves_area(self, b, dx, dy):
        assert b.translated(dx, dy).area == b.area

    @given(boxes, points)
    def test_contains_consistent_with_from_points(self, b, p):
        if b.contains_point(p):
            assert b.union(Box.from_points([p])) == b

    @given(boxes, boxes)
    def test_overlap_implies_positive_intersection_area(self, a, b):
        if a.overlaps(b):
            inter = a.intersection(b)
            assert inter is not None
            assert inter.area > 0
