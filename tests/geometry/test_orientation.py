"""Unit and property tests for the orientation group."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.orientation import (
    ALL_ORIENTATIONS,
    MX,
    MXR90,
    MY,
    MYR90,
    R0,
    R90,
    R180,
    R270,
    Orientation,
)
from repro.geometry.point import Point

orientations = st.sampled_from(ALL_ORIENTATIONS)
coords = st.integers(min_value=-10**6, max_value=10**6)
points = st.builds(Point, coords, coords)


class TestBasics:
    def test_exactly_eight(self):
        assert len(set(ALL_ORIENTATIONS)) == 8

    def test_invalid_matrix_rejected(self):
        with pytest.raises(ValueError):
            Orientation(2, 0, 0, 1)

    def test_shear_rejected(self):
        with pytest.raises(ValueError):
            Orientation(1, 1, 0, 1)

    def test_r90_action(self):
        assert R90.apply(Point(1, 0)) == Point(0, 1)
        assert R90.apply(Point(0, 1)) == Point(-1, 0)

    def test_r180_action(self):
        assert R180.apply(Point(3, 4)) == Point(-3, -4)

    def test_mx_flips_x(self):
        assert MX.apply(Point(3, 4)) == Point(-3, 4)

    def test_my_flips_y(self):
        assert MY.apply(Point(3, 4)) == Point(3, -4)

    def test_names_roundtrip(self):
        for o in ALL_ORIENTATIONS:
            assert Orientation.from_name(o.name) == o

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            Orientation.from_name("R45")


class TestGroup:
    def test_rotations_cycle(self):
        assert R90.compose(R90) == R180
        assert R90.compose(R180) == R270
        assert R90.compose(R270) == R0

    def test_mirror_involutions(self):
        assert MX.compose(MX) == R0
        assert MY.compose(MY) == R0

    def test_mx_my_is_r180(self):
        assert MX.compose(MY) == R180

    def test_mirror_flags(self):
        assert MX.is_mirror
        assert MY.is_mirror
        assert MXR90.is_mirror
        assert MYR90.is_mirror
        assert not R0.is_mirror
        assert not R90.is_mirror

    def test_rotated90_helper(self):
        assert R0.rotated90() == R90
        assert R270.rotated90() == R0

    def test_mirror_helpers(self):
        assert R0.mirrored_x() == MX
        assert R0.mirrored_y() == MY

    @given(orientations, orientations, points)
    def test_compose_is_apply_order(self, a, b, p):
        assert a.compose(b).apply(p) == a.apply(b.apply(p))

    @given(orientations, points)
    def test_inverse(self, o, p):
        assert o.inverse().apply(o.apply(p)) == p
        assert o.apply(o.inverse().apply(p)) == p

    @given(orientations, orientations)
    def test_closure(self, a, b):
        assert a.compose(b) in ALL_ORIENTATIONS

    @given(orientations, points)
    def test_preserves_manhattan_distance(self, o, p):
        origin = Point(0, 0)
        assert o.apply(p).manhattan_distance(o.apply(origin)) == p.manhattan_distance(
            origin
        )


class TestCifElements:
    def _apply_cif(self, elements, p):
        """Interpret a CIF transform-element list (left to right)."""
        for el in elements:
            parts = el.split()
            if parts[0] == "MX":
                p = Point(-p.x, p.y)
            elif parts[0] == "MY":
                p = Point(p.x, -p.y)
            elif parts[0] == "R":
                a, b = int(parts[1]), int(parts[2])
                if (a, b) == (1, 0):
                    pass
                elif (a, b) == (0, 1):
                    p = Point(-p.y, p.x)
                elif (a, b) == (-1, 0):
                    p = Point(-p.x, -p.y)
                elif (a, b) == (0, -1):
                    p = Point(p.y, -p.x)
                else:
                    raise AssertionError(f"non-Manhattan rotation {el}")
            else:
                raise AssertionError(f"unknown element {el}")
        return p

    @given(orientations, points)
    def test_cif_elements_realise_orientation(self, o, p):
        assert self._apply_cif(o.cif_elements(), p) == o.apply(p)

    def test_identity_is_empty(self):
        assert R0.cif_elements() == []
