"""Unit and property tests for rigid transforms."""

from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.box import Box
from repro.geometry.orientation import ALL_ORIENTATIONS, MX, R90, R180
from repro.geometry.point import Point
from repro.geometry.transform import IDENTITY, Transform

coords = st.integers(min_value=-10**5, max_value=10**5)
points = st.builds(Point, coords, coords)
transforms = st.builds(Transform, st.sampled_from(ALL_ORIENTATIONS), points)
boxes = st.builds(Box, coords, coords, coords, coords)


class TestBasics:
    def test_identity(self):
        assert IDENTITY.apply(Point(3, 4)) == Point(3, 4)

    def test_translate(self):
        t = Transform.translate(10, -5)
        assert t.apply(Point(1, 1)) == Point(11, -4)

    def test_rotation_then_translation(self):
        t = Transform.at(Point(100, 0), R90)
        assert t.apply(Point(1, 0)) == Point(100, 1)

    def test_at_default_orientation(self):
        t = Transform.at(Point(5, 6))
        assert t.apply(Point(0, 0)) == Point(5, 6)

    def test_apply_box(self):
        t = Transform.at(Point(0, 0), R90)
        assert t.apply_box(Box(0, 0, 2, 1)) == Box(-1, 0, 0, 2)

    def test_apply_vector_ignores_translation(self):
        t = Transform.at(Point(100, 100), R180)
        assert t.apply_vector(Point(1, 0)) == Point(-1, 0)

    def test_translated(self):
        t = Transform.at(Point(1, 1), MX).translated(2, 3)
        assert t.translation == Point(3, 4)
        assert t.orientation == MX


class TestGroup:
    @given(transforms, transforms, points)
    def test_compose_semantics(self, outer, inner, p):
        assert outer.compose(inner).apply(p) == outer.apply(inner.apply(p))

    @given(transforms, points)
    def test_inverse(self, t, p):
        assert t.inverse().apply(t.apply(p)) == p

    @given(transforms)
    def test_inverse_composition_is_identity(self, t):
        assert t.compose(t.inverse()) == IDENTITY
        assert t.inverse().compose(t) == IDENTITY

    @given(transforms, points, points)
    def test_rigidity(self, t, a, b):
        assert t.apply(a).manhattan_distance(t.apply(b)) == a.manhattan_distance(b)

    @given(transforms, boxes)
    def test_box_transform_preserves_area(self, t, box):
        assert t.apply_box(box).area == box.area

    @given(transforms, boxes, points)
    def test_box_transform_preserves_membership(self, t, box, p):
        assert box.contains_point(p) == t.apply_box(box).contains_point(t.apply(p))
