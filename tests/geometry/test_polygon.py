"""Tests for polygons."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.box import Box
from repro.geometry.layers import nmos_technology
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.transform import Transform

TECH = nmos_technology()
METAL = TECH.layer("metal")


def square(side=10):
    return Polygon.from_list(
        METAL, [Point(0, 0), Point(side, 0), Point(side, side), Point(0, side)]
    )


class TestConstruction:
    def test_too_few_vertices(self):
        with pytest.raises(ValueError, match="at least 3"):
            Polygon.from_list(METAL, [Point(0, 0), Point(1, 1)])

    def test_from_box(self):
        p = Polygon.from_box(METAL, Box(0, 0, 4, 6))
        assert p.area == 24
        assert p.is_manhattan


class TestArea:
    def test_square_area(self):
        assert square(10).area == 100

    def test_ccw_positive_signed(self):
        assert square().signed_area2() > 0

    def test_cw_negative_signed(self):
        p = Polygon.from_list(
            METAL, [Point(0, 0), Point(0, 10), Point(10, 10), Point(10, 0)]
        )
        assert p.signed_area2() < 0
        assert p.area == 100

    def test_triangle(self):
        p = Polygon.from_list(METAL, [Point(0, 0), Point(10, 0), Point(0, 10)])
        assert p.area == 50
        assert not p.is_manhattan

    def test_l_shape(self):
        p = Polygon.from_list(
            METAL,
            [
                Point(0, 0),
                Point(20, 0),
                Point(20, 10),
                Point(10, 10),
                Point(10, 20),
                Point(0, 20),
            ],
        )
        assert p.area == 300
        assert p.is_manhattan


class TestContainment:
    def test_interior(self):
        assert square().contains_point(Point(5, 5))

    def test_boundary(self):
        assert square().contains_point(Point(0, 5))
        assert square().contains_point(Point(10, 10))

    def test_outside(self):
        assert not square().contains_point(Point(11, 5))
        assert not square().contains_point(Point(-1, -1))

    def test_l_shape_notch(self):
        p = Polygon.from_list(
            METAL,
            [
                Point(0, 0),
                Point(20, 0),
                Point(20, 10),
                Point(10, 10),
                Point(10, 20),
                Point(0, 20),
            ],
        )
        assert p.contains_point(Point(5, 15))
        assert not p.contains_point(Point(15, 15))

    @given(
        st.integers(min_value=-20, max_value=40),
        st.integers(min_value=-20, max_value=40),
    )
    def test_square_matches_box(self, x, y):
        box = Box(0, 0, 10, 10)
        assert square().contains_point(Point(x, y)) == box.contains_point(Point(x, y))


class TestTransforms:
    def test_bounding_box(self):
        assert square(8).bounding_box() == Box(0, 0, 8, 8)

    def test_translated(self):
        p = square().translated(100, 0)
        assert p.bounding_box() == Box(100, 0, 110, 10)

    def test_rotation_preserves_area(self):
        from repro.geometry.orientation import R90

        p = square().transformed(Transform.at(Point(0, 0), R90))
        assert p.area == 100
