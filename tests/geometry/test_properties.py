"""Property tests for the geometry layer, driven by the proptest PRNG.

The algebraic core everything else leans on: the eight-symmetry
orientation group, affine transform composition, and the interval
algebra of boxes.  Randomised inputs from the same seeded generator
the fuzzer uses — failures reproduce from the seed alone.
"""

from repro.geometry.box import Box, union_all
from repro.geometry.orientation import ALL_ORIENTATIONS, Orientation, R0
from repro.geometry.point import Point
from repro.geometry.transform import Transform
from repro.proptest.prng import Rng

SEEDS = range(30)


def rand_point(rng: Rng) -> Point:
    return Point(rng.randint(-50_000, 50_000), rng.randint(-50_000, 50_000))


def rand_box(rng: Rng) -> Box:
    return Box.from_points([rand_point(rng), rand_point(rng)])


def rand_transform(rng: Rng) -> Transform:
    return Transform(rng.choice(ALL_ORIENTATIONS), rand_point(rng))


# -- orientation group ------------------------------------------------------


def test_orientation_group_closure():
    # Composing any two of the eight symmetries yields one of the eight:
    # D4 is closed, and every element's inverse is in the group.
    for a in ALL_ORIENTATIONS:
        assert a.inverse() in ALL_ORIENTATIONS
        for b in ALL_ORIENTATIONS:
            assert a.compose(b) in ALL_ORIENTATIONS


def test_orientation_inverse_cancels():
    for a in ALL_ORIENTATIONS:
        assert a.compose(a.inverse()) == R0
        assert a.inverse().compose(a) == R0


def test_orientation_names_round_trip():
    assert len({o.name for o in ALL_ORIENTATIONS}) == 8
    for o in ALL_ORIENTATIONS:
        assert Orientation.from_name(o.name) == o


def test_orientation_apply_matches_compose():
    rng = Rng(11).fork("orient")
    for seed in SEEDS:
        r = rng.fork(seed)
        a, b = r.choice(ALL_ORIENTATIONS), r.choice(ALL_ORIENTATIONS)
        p = rand_point(r)
        assert a.compose(b).apply(p) == a.apply(b.apply(p))


def test_orientation_preserves_distance():
    rng = Rng(12).fork("dist")
    for seed in SEEDS:
        r = rng.fork(seed)
        o = r.choice(ALL_ORIENTATIONS)
        p, q = rand_point(r), rand_point(r)
        ip, iq = o.apply(p), o.apply(q)
        assert {abs(ip.x - iq.x), abs(ip.y - iq.y)} == {
            abs(p.x - q.x), abs(p.y - q.y)
        }


# -- transforms -------------------------------------------------------------


def test_transform_inverse_round_trips_points():
    rng = Rng(13).fork("transform")
    for seed in SEEDS:
        r = rng.fork(seed)
        t = rand_transform(r)
        p = rand_point(r)
        assert t.inverse().apply(t.apply(p)) == p
        assert t.apply(t.inverse().apply(p)) == p


def test_transform_compose_is_application_order():
    rng = Rng(14).fork("compose")
    for seed in SEEDS:
        r = rng.fork(seed)
        outer, inner = rand_transform(r), rand_transform(r)
        p = rand_point(r)
        assert outer.compose(inner).apply(p) == outer.apply(inner.apply(p))


def test_transform_compose_associative():
    rng = Rng(15).fork("assoc")
    for seed in SEEDS:
        r = rng.fork(seed)
        a, b, c = (rand_transform(r) for _ in range(3))
        p = rand_point(r)
        assert a.compose(b).compose(c).apply(p) == a.compose(b.compose(c)).apply(p)


def test_transform_box_matches_corner_transform():
    rng = Rng(16).fork("box")
    for seed in SEEDS:
        r = rng.fork(seed)
        t = rand_transform(r)
        box = rand_box(r)
        corners = [
            Point(box.llx, box.lly), Point(box.llx, box.ury),
            Point(box.urx, box.lly), Point(box.urx, box.ury),
        ]
        assert t.apply_box(box) == Box.from_points([t.apply(c) for c in corners])


# -- box algebra ------------------------------------------------------------


def test_box_union_contains_both_and_is_commutative():
    rng = Rng(17).fork("union")
    for seed in SEEDS:
        r = rng.fork(seed)
        a, b = rand_box(r), rand_box(r)
        u = a.union(b)
        assert u == b.union(a)
        for box in (a, b):
            assert u.llx <= box.llx and u.lly <= box.lly
            assert u.urx >= box.urx and u.ury >= box.ury
        assert u == union_all([a, b])


def test_box_intersection_is_the_meet():
    rng = Rng(18).fork("meet")
    for seed in SEEDS:
        r = rng.fork(seed)
        a, b = rand_box(r), rand_box(r)
        i = a.intersection(b)
        assert i == b.intersection(a)
        if i is None:
            continue
        # Every point of the intersection lies in both operands.
        assert a.contains_point(Point(i.llx, i.lly))
        assert b.contains_point(Point(i.urx, i.ury))
        # Absorption: meet then join gives back the larger shape.
        assert a.union(i) == a
        assert b.union(i) == b


def test_box_union_intersection_idempotent():
    rng = Rng(19).fork("idem")
    for seed in SEEDS:
        box = rand_box(rng.fork(seed))
        assert box.union(box) == box
        assert box.intersection(box) == box


def test_box_overlap_iff_positive_intersection_area():
    rng = Rng(20).fork("overlap")
    for seed in SEEDS:
        r = rng.fork(seed)
        a, b = rand_box(r), rand_box(r)
        i = a.intersection(b)
        positive = i is not None and i.llx < i.urx and i.lly < i.ury
        assert a.overlaps(b) == positive


def test_box_translate_round_trip():
    rng = Rng(21).fork("translate")
    for seed in SEEDS:
        r = rng.fork(seed)
        box = rand_box(r)
        dx, dy = r.randint(-9999, 9999), r.randint(-9999, 9999)
        assert box.translated(dx, dy).translated(-dx, -dy) == box
