"""Tests for wire paths."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.box import Box
from repro.geometry.layers import nmos_technology
from repro.geometry.path import Path, paths_bounding_box
from repro.geometry.point import Point
from repro.geometry.transform import Transform

TECH = nmos_technology()
METAL = TECH.layer("metal")
POLY = TECH.layer("poly")


def mk(points, width=100, layer=METAL):
    return Path.from_list(layer, width, points)


class TestValidation:
    def test_zero_width_rejected(self):
        with pytest.raises(ValueError, match="width"):
            mk([Point(0, 0), Point(10, 0)], width=0)

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            mk([Point(0, 0), Point(10, 0)], width=-5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one point"):
            mk([])

    def test_diagonal_rejected(self):
        with pytest.raises(ValueError, match="non-Manhattan"):
            mk([Point(0, 0), Point(5, 5)])

    def test_single_point_allowed(self):
        p = mk([Point(0, 0)])
        assert p.length == 0


class TestMeasures:
    def test_length_l_shape(self):
        p = mk([Point(0, 0), Point(10, 0), Point(10, 5)])
        assert p.length == 15

    def test_bounding_box_includes_caps(self):
        p = mk([Point(0, 0), Point(100, 0)], width=20)
        assert p.bounding_box() == Box(-10, -10, 110, 10)

    def test_single_point_bbox(self):
        p = mk([Point(5, 5)], width=10)
        assert p.bounding_box() == Box(0, 0, 10, 10)

    def test_to_boxes_segment_count(self):
        p = mk([Point(0, 0), Point(10, 0), Point(10, 10), Point(20, 10)])
        assert len(p.to_boxes()) == 3

    def test_to_boxes_covers_centerline(self):
        p = mk([Point(0, 0), Point(100, 0), Point(100, 100)], width=20)
        boxes = p.to_boxes()
        for pt in (Point(0, 0), Point(50, 0), Point(100, 50), Point(100, 100)):
            assert any(b.contains_point(pt) for b in boxes)

    def test_paths_bounding_box(self):
        a = mk([Point(0, 0), Point(10, 0)], width=2)
        b = mk([Point(50, 50), Point(50, 60)], width=2)
        assert paths_bounding_box([a, b]) == Box(-1, -1, 51, 61)


class TestTransforms:
    def test_translated(self):
        p = mk([Point(0, 0), Point(10, 0)]).translated(5, 5)
        assert p.points == (Point(5, 5), Point(15, 5))

    def test_transform_keeps_layer_and_width(self):
        from repro.geometry.orientation import R90

        p = mk([Point(0, 0), Point(10, 0)], width=40, layer=POLY)
        q = p.transformed(Transform.at(Point(0, 0), R90))
        assert q.layer is POLY
        assert q.width == 40
        assert q.points == (Point(0, 0), Point(0, 10))

    @given(
        st.integers(min_value=-1000, max_value=1000),
        st.integers(min_value=-1000, max_value=1000),
    )
    def test_translation_preserves_length(self, dx, dy):
        p = mk([Point(0, 0), Point(30, 0), Point(30, 40)])
        assert p.translated(dx, dy).length == p.length
