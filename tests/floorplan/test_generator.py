"""The synthetic chip generator: tier shapes, determinism, palette."""

from __future__ import annotations

import pytest

from repro.core.editor import RiotEditor
from repro.floorplan.generator import (
    TIERS,
    gen_floorplan_case,
    install_palette,
    palette_cells,
    resolve_tier,
)
from repro.proptest.prng import Rng


class TestTiers:
    def test_known_tiers_cover_three_orders_of_magnitude(self):
        sizes = {name: tier.slice_instances for name, tier in TIERS.items()}
        assert sizes["small"] < 100
        assert sizes["medium"] > 100
        assert sizes["large"] > 1000
        assert sizes["xl"] >= 2000  # the acceptance floor

    def test_resolve_tier_accepts_name_or_spec(self):
        assert resolve_tier("small") is TIERS["small"]
        assert resolve_tier(TIERS["large"]) is TIERS["large"]
        with pytest.raises(ValueError, match="unknown floorplan tier"):
            resolve_tier("galactic")


class TestCase:
    def test_case_is_deterministic_in_seed(self):
        a = gen_floorplan_case(Rng(7), "small")
        b = gen_floorplan_case(Rng(7), "small")
        assert a == b

    def test_different_seeds_differ(self):
        cases = [gen_floorplan_case(Rng(seed), "small") for seed in range(8)]
        assert any(c != cases[0] for c in cases[1:])

    def test_case_shape_matches_tier(self):
        tier = TIERS["medium"]
        case = gen_floorplan_case(Rng(3), tier)
        cols, rows = tier.grid
        assert len(case["blocks"]) == cols * rows
        assert len(case["chip_rows"]) == rows
        for block in case["blocks"]:
            assert len(block["slices"]) == tier.block_rows
            assert all(len(r) == tier.block_cols for r in block["slices"])
        for side, pads in case["pads"].items():
            assert len(pads) == tier.pads_per_side

    def test_case_is_json_plain(self):
        import json

        case = gen_floorplan_case(Rng(0), "small")
        assert json.loads(json.dumps(case)) == case


class TestPalette:
    def test_palette_cells_validate_and_have_boundaries(self):
        case = gen_floorplan_case(Rng(0), "small")
        cells = palette_cells(case)
        assert cells
        for cell in cells:
            assert cell.boundary is not None
            assert cell.pins

    def test_install_palette_twice_rebinds_instead_of_erroring(self):
        case = gen_floorplan_case(Rng(0), "small")
        editor = RiotEditor()
        first = install_palette(editor.library, case)
        again = install_palette(editor.library, case)
        assert first == again
        assert set(first) <= set(editor.library.names)
