"""Determinism pins: same seed, same chip, byte for byte.

The golden CIF freezes the seed-0 small-tier chip end to end —
generator draws, strategy decisions, river solutions, REST stretches,
CIF serialisation.  Any unintended behaviour change in that whole
stack shows up as a golden diff.  Regenerate with ``pytest
tests/floorplan/test_golden.py --update-golden`` only when the change
is intentional.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.convert import composition_to_cif
from repro.floorplan.assemble import assemble_floorplan
from repro.floorplan.generator import gen_floorplan_case
from repro.proptest.gen import describe_editor
from repro.proptest.prng import Rng

GOLDEN = Path(__file__).parent / "golden_seed0_small.cif"


def chip_cif(seed: int = 0, tier: str = "small") -> str:
    report = assemble_floorplan(gen_floorplan_case(Rng(seed), tier))
    chip = report.editor.library.get(report.top)
    return composition_to_cif(chip, report.editor.technology)


class TestGoldenCif:
    def test_seed0_small_chip_cif_is_pinned(self, request):
        cif = chip_cif()
        if request.config.getoption("--update-golden"):
            GOLDEN.write_text(cif)
        assert GOLDEN.exists(), (
            "golden missing; run with --update-golden to create it"
        )
        assert cif == GOLDEN.read_text(), (
            "seed-0 small-tier chip CIF changed; if intentional, "
            "regenerate with --update-golden"
        )


class TestDeterminism:
    def test_same_seed_builds_identical_sessions(self):
        reports = [
            assemble_floorplan(gen_floorplan_case(Rng(42), "small"))
            for _ in range(2)
        ]
        digests = [describe_editor(r.editor) for r in reports]
        assert digests[0] == digests[1]
        assert reports[0].to_dict() == reports[1].to_dict()

    def test_same_seed_builds_identical_cif_bytes(self):
        assert chip_cif(5) == chip_cif(5)

    def test_different_seed_builds_a_different_chip(self):
        assert chip_cif(0) != chip_cif(1)
