"""The pluggable assembly-strategy seam."""

from __future__ import annotations

import pytest

from repro.floorplan.assemble import assemble_floorplan
from repro.floorplan.generator import gen_floorplan_case
from repro.floorplan.strategy import (
    STRATEGIES,
    AssemblyStrategy,
    EdgeContext,
    GreedyStrategy,
    OpOption,
    make_strategy,
    register_strategy,
)
from repro.proptest.prng import Rng


def edge_with(*options: OpOption) -> EdgeContext:
    return EdgeContext(
        scope="row",
        cell="blk",
        from_instance="a",
        to_instance="b",
        pairs=2,
        options=tuple(options),
    )


class TestGreedy:
    def test_prefers_cheapest_feasible_op(self):
        edge = edge_with(
            OpOption("abut", False, reason="deltas differ"),
            OpOption("stretch", True, area=500.0),
            OpOption("route", True, area=100.0, wirelength=50.0),
        )
        assert GreedyStrategy().choose(edge) == "route"

    def test_ties_break_toward_the_simpler_primitive(self):
        edge = edge_with(
            OpOption("abut", True, area=0.0),
            OpOption("route", True, area=0.0),
        )
        assert GreedyStrategy().choose(edge) == "abut"

    def test_alpha_weights_wirelength(self):
        edge = edge_with(
            OpOption("stretch", True, area=100.0, wirelength=0.0),
            OpOption("route", True, area=0.0, wirelength=10.0),
        )
        assert GreedyStrategy(alpha=1.0).choose(edge) == "route"
        assert GreedyStrategy(alpha=100.0).choose(edge) == "stretch"

    def test_no_feasible_op_is_an_error(self):
        edge = edge_with(OpOption("abut", False, reason="overlap"))
        with pytest.raises(ValueError, match="no feasible op"):
            GreedyStrategy().choose(edge)


class TestRegistry:
    def test_stock_strategies_registered(self):
        assert {"greedy", "route-only"} <= set(STRATEGIES)

    def test_make_strategy_resolves_names_and_instances(self):
        assert isinstance(make_strategy(None), GreedyStrategy)
        assert isinstance(make_strategy("greedy"), GreedyStrategy)
        custom = GreedyStrategy(alpha=2.0)
        assert make_strategy(custom) is custom
        with pytest.raises(ValueError, match="unknown assembly strategy"):
            make_strategy("annealing")

    def test_custom_strategy_plugs_into_the_assembler(self):
        class StretchNever(AssemblyStrategy):
            name = "stretch-never"

            def choose(self, edge):
                feasible = [
                    o.op for o in edge.options if o.feasible and o.op != "stretch"
                ]
                return feasible[0] if feasible else "route"

        register_strategy(StretchNever)
        try:
            case = gen_floorplan_case(Rng(0), "small")
            report = assemble_floorplan(case, strategy="stretch-never")
            assert report.edge_count("stretch") == 0
        finally:
            del STRATEGIES["stretch-never"]


class TestStrategiesDiffer:
    def test_route_only_routes_every_edge_greedy_does_not(self):
        case = gen_floorplan_case(Rng(0), "small")
        greedy = assemble_floorplan(case, strategy="greedy")
        routed = assemble_floorplan(
            gen_floorplan_case(Rng(0), "small"), strategy="route-only"
        )
        assert greedy.edge_count("abut") > 0
        assert routed.edge_count("route") > greedy.edge_count("route")
        # Routing everything costs area: the optimizer must beat the
        # conservative baseline, or it is not optimizing.
        assert greedy.chip_box().width <= routed.chip_box().width
