"""The floorplan command surface: typed dispatch, textual verb, wire.

One behaviour, four transports — the build is dispatched through the
same registry entry whether it comes from in-process typed requests,
the textual REPL, journal replay of its emitted commands, or the
socket service.
"""

from __future__ import annotations

import pytest

from repro.api import types as t
from repro.api.session import Session
from repro.core.editor import RiotEditor
from repro.core.textual import TextualInterface
from repro.service.client import ServiceClient
from repro.service.server import ServiceThread


class TestTypedDispatch:
    def test_build_assembles_into_the_session(self):
        session = Session()
        result = session.dispatch(t.FloorplanBuildRequest(seed=0, tier="small"))
        assert result.top == "chip"
        assert result.instances > 0
        assert result.blocks == 2
        assert "chip" in session.editor.library
        # The build went through the journaled command surface.
        assert result.commands == len(session.editor.journal.entries)

    def test_build_rejects_unknown_tier_before_mutating(self):
        from repro.errors import ReproError

        session = Session()
        before = session.editor.library.names
        with pytest.raises((ValueError, ReproError), match="unknown floorplan tier"):
            session.dispatch(t.FloorplanBuildRequest(seed=0, tier="planet"))
        assert session.editor.library.names == before

    def test_second_build_gets_fresh_cell_names(self):
        session = Session()
        first = session.dispatch(t.FloorplanBuildRequest(seed=0, tier="small"))
        second = session.dispatch(t.FloorplanBuildRequest(seed=1, tier="small"))
        assert first.top == "chip"
        assert second.top != first.top
        assert {first.top, second.top} <= set(session.editor.library.names)

    def test_tiers_lists_every_tier(self):
        session = Session()
        result = session.dispatch(t.FloorplanTiersRequest())
        names = [tier.name for tier in result.tiers]
        assert names == ["small", "medium", "large", "xl"]
        xl = result.tiers[names.index("xl")]
        assert xl.slice_instances >= 2000


class TestTextualVerb:
    def test_build_and_tiers(self):
        ti = TextualInterface(RiotEditor())
        tiers = ti.execute("floorplan tiers")
        assert "small:" in tiers and "xl:" in tiers
        out = ti.execute("floorplan build 0 small")
        assert out.startswith("assembled chip (small, seed 0):")
        assert "abuts" in out and "routes" in out

    def test_strategy_flag(self):
        ti = TextualInterface(RiotEditor())
        out = ti.execute("floorplan build 0 small --strategy route-only")
        assert out.startswith("assembled")

    def test_usage_errors(self):
        ti = TextualInterface(RiotEditor())
        assert ti.execute("floorplan").startswith("error: usage:")
        assert ti.execute("floorplan demolish").startswith("error: usage:")
        assert "unknown floorplan tier" in ti.execute("floorplan build 0 moon")


class TestJournalReplay:
    def test_emitted_journal_replays_into_an_equivalent_session(self):
        from repro.floorplan.generator import gen_floorplan_case, install_palette
        from repro.proptest.gen import describe_editor
        from repro.proptest.prng import Rng

        session = Session()
        session.dispatch(t.FloorplanBuildRequest(seed=2, tier="small"))
        fresh = RiotEditor(
            tracks_per_channel=session.editor.tracks_per_channel
        )
        install_palette(fresh.library, gen_floorplan_case(Rng(2), "small"))
        fresh.replay_from(session.editor.journal.to_text())
        assert describe_editor(fresh) == describe_editor(session.editor)


class TestSocketTransport:
    def test_build_over_the_socket_matches_in_process(self):
        with ServiceThread(max_sessions=2) as srv:
            host, port = srv.address
            with ServiceClient(host, port, session="fp") as client:
                over_wire = client.call("floorplan.build", seed=0, tier="small")
                tiers = client.call("floorplan.tiers")
        in_process = Session().dispatch(
            t.FloorplanBuildRequest(seed=0, tier="small")
        )
        # Same typed dataclass, modulo the cell-menu size: the service
        # session starts from the stock library, the plain one empty.
        assert over_wire.top == in_process.top
        assert over_wire.instances == in_process.instances
        assert over_wire.abuts == in_process.abuts
        assert over_wire.stretches == in_process.stretches
        assert over_wire.routes == in_process.routes
        assert over_wire.area == in_process.area
        assert [tier.name for tier in tiers.tiers] == [
            "small",
            "medium",
            "large",
            "xl",
        ]


class TestCli:
    def test_cli_builds_checks_and_writes(self, tmp_path, capsys):
        from repro.floorplan.cli import main

        out = tmp_path / "chip.cif"
        report = tmp_path / "chip.json"
        code = main(
            [
                "--seed",
                "0",
                "--tier",
                "small",
                "--check",
                "--out",
                str(out),
                "--report",
                str(report),
            ]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "assembled chip (small, seed 0)" in stdout
        assert "checks ok:" in stdout
        assert out.read_text().startswith("( CIF written by repro.riot )")
        import json

        stats = json.loads(report.read_text())
        assert stats["tier"] == "small" and stats["instances"] > 0

    def test_cli_report_to_stdout(self, capsys):
        from repro.floorplan.cli import main

        assert main(["--seed", "1", "--report", "-"]) == 0
        stdout = capsys.readouterr().out
        assert '"tier": "small"' in stdout

    def test_module_subcommand_dispatch(self, tmp_path, capsys):
        from repro.__main__ import main

        code = main(["floorplan", "--seed", "0", "--tier", "small"])
        assert code == 0
        assert "assembled chip" in capsys.readouterr().out
