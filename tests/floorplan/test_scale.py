"""The scale-regression suite: seeds x tiers through every invariant.

Each case generates a chip, assembles it with the paper's three
primitives, and runs the full floorplan check stack (abut coincidence,
stretch rebinding, route separation, sibling overlap, strict WAL
replay).  The small tier is part of tier-1; the 1000+-instance tiers
carry the ``slow`` marker and run in the scheduled/smoke jobs.
"""

from __future__ import annotations

import pytest

from repro.floorplan.assemble import assemble_floorplan
from repro.floorplan.checks import check_verify_pipeline, run_floorplan_checks
from repro.floorplan.generator import TIERS, gen_floorplan_case
from repro.proptest.prng import Rng


def build(seed: int, tier: str):
    return assemble_floorplan(gen_floorplan_case(Rng(seed), tier))


def assert_clean(report) -> dict:
    summary = run_floorplan_checks(report)
    assert report.fallbacks == 0, "strategy choices should all execute"
    assert summary["abuts"] + summary["stretches"] + summary["routes"] > 0
    return summary


class TestSmallTier:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_small_chip_assembles_clean(self, seed):
        report = build(seed, "small")
        assert_clean(report)
        assert report.instances >= TIERS["small"].slice_instances

    def test_uses_all_three_primitives_across_seeds(self):
        # One seed may not exercise every primitive; the seed sweep must.
        ops = set()
        for seed in range(4):
            report = build(seed, "small")
            ops.update(e.op for e in report.edges)
        assert ops == {"abut", "stretch", "route"}

    def test_verification_pipeline_clean_on_seed0(self):
        report = build(0, "small")
        violations = check_verify_pipeline(report)
        assert set(violations) == {*report.blocks, report.top}
        assert all(count == 0 for count in violations.values())


@pytest.mark.slow
class TestBigTiers:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_medium_chip_assembles_clean(self, seed):
        assert_clean(build(seed, "medium"))

    def test_large_chip_assembles_clean(self):
        report = build(0, "large")
        assert_clean(report)
        assert report.instances > 1000

    def test_xl_chip_meets_the_acceptance_floor(self):
        report = build(0, "xl")
        assert_clean(report)
        assert report.instances >= 2000
        stats = report.to_dict()
        # The workload is only interesting if the optimizer had real
        # choices to make and the router was under real pressure.
        assert stats["abuts"] and stats["stretches"] and stats["routes"]
        assert stats["route_channels"] >= stats["routes"]
