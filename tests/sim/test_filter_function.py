"""The capstone: the assembled filter tree computes the paper's equation.

The paper defines the chip's function as

    f_n = OR_{i=1..4} c_i x_{n-i}     (Boolean sums and products)

and describes the implementation: "two stages of NAND gates provide
the ANDing of the constant terms and the first level of ORs, then
routing is done to the OR gate."  That is the De Morgan identity

    f = OR( NAND(NAND(x1,c1), NAND(x2,c2)),
            NAND(NAND(x3,c3), NAND(x4,c4)) )

With logic-true gates (``repro.library.functional``) the tree is
assembled with Riot's own commands, written out as Sticks — the
paper's simulation hand-off — and the switch-level simulator checks
the function over all 256 input combinations.
"""

import pytest

from repro.core.convert import composition_to_sticks
from repro.core.editor import RiotEditor
from repro.geometry.layers import nmos_technology
from repro.geometry.point import Point
from repro.library.functional import functional_library
from repro.sim.switch import SwitchCircuit, simulate_truth_table
from repro.sticks.parser import parse_sticks
from repro.sticks.writer import write_sticks

TECH = nmos_technology()
PITCH = 5200


def assemble_tree(editor: RiotEditor):
    """Four NANDs, two NANDs, one OR — connected with ROUTE commands."""
    editor.new_cell("tree")
    for i in range(4):
        editor.create(at=Point(PITCH * i, 20000), cell_name="nand", name=f"n{i}")
    for m, (a, b) in (("m0", ("n0", "n1")), ("m1", ("n2", "n3"))):
        x = 0 if m == "m0" else 2 * PITCH
        editor.create(at=Point(x, 10000), cell_name="nand", name=m)
        editor.connect(m, "A", a, "OUT")
        editor.connect(m, "B", b, "OUT")
        editor.do_route()
    editor.create(at=Point(0, 0), cell_name="or2", name="o")
    editor.connect("o", "A", "m0", "OUT")
    editor.connect("o", "B", "m1", "OUT")
    editor.do_route()
    editor.finish()
    return editor.cell


@pytest.fixture(scope="module")
def circuit():
    editor = RiotEditor(TECH)
    editor.library = functional_library(TECH)
    cell = assemble_tree(editor)
    flat, warnings = composition_to_sticks(cell, TECH)
    assert warnings == []
    # Power hookup: only the tree's edge rails promote to pins, so the
    # inner rows' rails would float.  Tie every instance's rails to the
    # supplies by name, the way the chip-level fittings and pad routes
    # do on the full chip.
    from repro.sticks.model import Pin

    for index, inst in enumerate(cell.instances):
        for conn in inst.connectors():
            if conn.base_name.startswith(("PWR", "GND")):
                flat.pins.append(
                    Pin(
                        f"{conn.base_name}[{index}]",
                        conn.layer.name,
                        conn.position,
                        conn.width,
                    )
                )
    # Through the real hand-off: written to text, read back.
    reloaded = parse_sticks(write_sticks([flat]))[0]
    return SwitchCircuit.from_sticks(reloaded), cell


def expected_f(xs, cs):
    return 1 if any(x & c for x, c in zip(xs, cs)) else 0


class TestFunctionalGates:
    def test_true_nand_table(self):
        nand = functional_library(TECH).get("nand").sticks_cell
        table = simulate_truth_table(nand, ["A", "B"], "OUT")
        assert table == {(0, 0): 1, (0, 1): 1, (1, 0): 1, (1, 1): 0}

    def test_true_or_table(self):
        or2 = functional_library(TECH).get("or2").sticks_cell
        table = simulate_truth_table(or2, ["A", "B"], "OUT")
        assert table == {(0, 0): 0, (0, 1): 1, (1, 0): 1, (1, 1): 1}


class TestAssembledTree:
    def test_tree_exposes_the_eight_inputs(self, circuit):
        sim, cell = circuit
        inputs = [p for p in sim.signal_pins if ".A" in p or ".B" in p]
        assert len(inputs) == 8

    def test_output_exposed(self, circuit):
        sim, _ = circuit
        assert "OUT" in sim.pin_nets

    def test_filter_equation_holds_everywhere(self, circuit):
        """All 256 combinations: f = OR_i (c_i AND x_i)."""
        sim, cell = circuit
        x_pins = [f"n{i}.A" for i in range(4)]
        c_pins = [f"n{i}.B" for i in range(4)]
        for bits in range(256):
            xs = [(bits >> i) & 1 for i in range(4)]
            cs = [(bits >> (4 + i)) & 1 for i in range(4)]
            inputs = dict(zip(x_pins, xs)) | dict(zip(c_pins, cs))
            out = sim.evaluate(inputs)["OUT"]
            assert out == expected_f(xs, cs), (
                f"xs={xs} cs={cs}: got {out}, want {expected_f(xs, cs)}"
            )

    def test_route_cells_carry_the_signals(self, circuit):
        """The verification runs *through* the river-route cells Riot
        made — the routes are part of the simulated netlist."""
        _, cell = circuit
        route_instances = [
            inst for inst in cell.instances if inst.cell.name.startswith("route")
        ]
        assert len(route_instances) == 3
