"""Tests for the NMOS switch-level simulator."""

import pytest

from repro.geometry.point import Point
from repro.sim.switch import (
    SimulationError,
    SwitchCircuit,
    simulate_truth_table,
)
from repro.sticks.model import Contact, Device, Pin, SticksCell, SymbolicWire
from repro.sticks.parser import parse_sticks

INVERTER = """
STICKS inv
PIN VDD metal 0 5000 750
PIN GND metal 0 0 750
PIN A poly 0 1500 500
PIN OUT diffusion 3000 2500 500
WIRE metal 750 0 5000 2000 5000
WIRE metal 750 0 0 2000 0
WIRE diffusion - 1000 0 1000 5000
WIRE diffusion - 1000 2500 3000 2500
WIRE poly 500 0 1500 2000 1500
CONTACT metal diffusion 1000 0
CONTACT metal diffusion 1000 5000
DEVICE enh 1000 1500 v
DEVICE dep 1000 3500 v
END
"""

NOR2 = """
STICKS nor2
PIN VDD metal 0 5000 750
PIN GND metal 0 0 750
PIN A poly 0 1000 500
PIN B poly 3500 1000 500
PIN OUT diffusion 5500 2500 500
WIRE metal 750 0 5000 5500 5000
WIRE metal 750 0 0 5500 0
WIRE diffusion - 1000 0 1000 2500
WIRE diffusion - 5000 0 5000 2500
WIRE diffusion - 1000 2500 5500 2500
WIRE diffusion - 3000 2500 3000 5000
WIRE poly 500 0 1000 1500 1000
WIRE poly 500 3500 1000 5500 1000
CONTACT metal diffusion 1000 0
CONTACT metal diffusion 5000 0
CONTACT metal diffusion 3000 5000
DEVICE enh 1000 1000 v
DEVICE enh 5000 1000 v
DEVICE dep 3000 3500 v
END
"""

NAND2 = """
STICKS nand2real
PIN VDD metal 0 5000 750
PIN GND metal 0 0 750
PIN A poly 0 1000 500
PIN B poly 0 2000 500
PIN OUT diffusion 3000 2500 500
WIRE metal 750 0 5000 2000 5000
WIRE metal 750 0 0 2000 0
WIRE diffusion - 1000 0 1000 5000
WIRE diffusion - 1000 2500 3000 2500
WIRE poly 500 0 1000 1500 1000
WIRE poly 500 0 2000 1500 2000
CONTACT metal diffusion 1000 0
CONTACT metal diffusion 1000 5000
DEVICE enh 1000 1000 v
DEVICE enh 1000 2000 v
DEVICE dep 1000 3500 v
END
"""


def load(text):
    return parse_sticks(text)[0]


class TestExtraction:
    def test_inverter_structure(self):
        circuit = SwitchCircuit.from_sticks(load(INVERTER))
        assert len(circuit.transistors) == 2
        kinds = sorted(t.kind for t in circuit.transistors)
        assert kinds == ["dep", "enh"]
        assert circuit.vdd_nets and circuit.gnd_nets

    def test_rail_recognition(self):
        circuit = SwitchCircuit.from_sticks(load(INVERTER))
        assert circuit.pin_nets["VDD"] in circuit.vdd_nets
        assert circuit.pin_nets["GND"] in circuit.gnd_nets
        assert set(circuit.signal_pins) == {"A", "OUT"}

    def test_channel_separates_source_drain(self):
        circuit = SwitchCircuit.from_sticks(load(INVERTER))
        enh = next(t for t in circuit.transistors if t.kind == "enh")
        assert enh.source != enh.drain

    def test_library_cells_extract(self):
        from repro.library.stock import filter_library

        lib = filter_library()
        for name in ("srcell", "nand", "or2"):
            circuit = SwitchCircuit.from_sticks(lib.get(name).sticks_cell)
            assert len(circuit.transistors) >= 2


class TestInverter:
    def test_truth_table(self):
        table = simulate_truth_table(load(INVERTER), ["A"], "OUT")
        assert table == {(0,): 1, (1,): 0}

    def test_unknown_input_gives_unknown(self):
        circuit = SwitchCircuit.from_sticks(load(INVERTER))
        assert circuit.evaluate({"A": "X"})["OUT"] == "X"

    def test_rails_always_solid(self):
        circuit = SwitchCircuit.from_sticks(load(INVERTER))
        out = circuit.evaluate({"A": 1})
        assert out["VDD"] == 1
        assert out["GND"] == 0

    def test_bad_pin_rejected(self):
        circuit = SwitchCircuit.from_sticks(load(INVERTER))
        with pytest.raises(SimulationError, match="no pin"):
            circuit.evaluate({"Q": 1})

    def test_bad_level_rejected(self):
        circuit = SwitchCircuit.from_sticks(load(INVERTER))
        with pytest.raises(SimulationError, match="level"):
            circuit.evaluate({"A": 7})


class TestGates:
    def test_nor_truth_table(self):
        table = simulate_truth_table(load(NOR2), ["A", "B"], "OUT")
        assert table == {(0, 0): 1, (0, 1): 0, (1, 0): 0, (1, 1): 0}

    def test_nand_truth_table(self):
        table = simulate_truth_table(load(NAND2), ["A", "B"], "OUT")
        assert table == {(0, 0): 1, (0, 1): 1, (1, 0): 1, (1, 1): 0}

    def test_inverter_chain(self):
        """Two inverters composed net-level: out follows in."""
        # Build a single cell with two stages.
        text = """
STICKS chain
PIN VDD metal 0 5000 750
PIN GND metal 0 0 750
PIN A poly 0 1500 500
PIN OUT diffusion 9000 2500 500
WIRE metal 750 0 5000 8000 5000
WIRE metal 750 0 0 8000 0
WIRE diffusion - 1000 0 1000 5000
WIRE diffusion - 1000 2500 3000 2500
WIRE poly 500 0 1500 2000 1500
CONTACT metal diffusion 1000 0
CONTACT metal diffusion 1000 5000
DEVICE enh 1000 1500 v
DEVICE dep 1000 3500 v
CONTACT poly diffusion 3000 2500
WIRE poly 500 3000 2500 3000 1500
WIRE poly 500 3000 1500 7000 1500
WIRE diffusion - 6000 0 6000 5000
WIRE diffusion - 6000 2500 9000 2500
CONTACT metal diffusion 6000 0
CONTACT metal diffusion 6000 5000
DEVICE enh 6000 1500 v
DEVICE dep 6000 3500 v
END
"""
        table = simulate_truth_table(load(text), ["A"], "OUT")
        assert table == {(0,): 0, (1,): 1}


class TestLibraryCellsHonestly:
    def test_shared_gate_plan_is_electrically_nor(self):
        """The stock 'nand'/'or2' share a parallel-pulldown plan; the
        simulator shows what that plan really computes: NOR.  (The
        substitution is documented in DESIGN.md — Riot's composition
        flow never observes gate function.)"""
        from repro.library.stock import filter_library

        nand = filter_library().get("nand").sticks_cell
        table = simulate_truth_table(nand, ["A", "B"], "OUT")
        assert table == {(0, 0): 1, (0, 1): 0, (1, 0): 0, (1, 1): 0}

    def test_srcell_inverts_under_clock(self):
        """The srcell's pass structure: with the clock high the data
        node follows the inverted clock-gated pulldown."""
        from repro.library.stock import filter_library

        srcell = filter_library().get("srcell").sticks_cell
        circuit = SwitchCircuit.from_sticks(srcell)
        high = circuit.evaluate({"CLKB": 1})
        low = circuit.evaluate({"CLKB": 0})
        assert high["IN"] == 0  # pulldown conducts
        assert low["IN"] == 1  # depletion pullup wins
