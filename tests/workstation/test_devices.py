"""Tests for pointing devices and workstation assemblies."""

import pytest

from repro.geometry.point import Point
from repro.workstation.devices import (
    BitPad,
    Mouse,
    charles_workstation,
    gigi_workstation,
)
from repro.workstation.events import ButtonPress, KeyLine, PointerMove


class TestMouse:
    def test_starts_centered(self):
        m = Mouse(100, 100)
        assert m.position == Point(50, 50)

    def test_relative_motion(self):
        m = Mouse(100, 100)
        m.move(10, -5)
        assert m.position == Point(60, 45)

    def test_clamped_to_screen(self):
        m = Mouse(100, 100)
        m.move(1000, 1000)
        assert m.position == Point(99, 99)
        m.move(-1000, -1000)
        assert m.position == Point(0, 0)

    def test_move_to(self):
        m = Mouse(100, 100)
        m.move_to(Point(7, 93))
        assert m.position == Point(7, 93)

    def test_events_queued_in_order(self):
        m = Mouse(100, 100)
        m.move(1, 0)
        m.press()
        events = m.drain()
        assert isinstance(events[0], PointerMove)
        assert isinstance(events[1], ButtonPress)
        assert events[1].position == Point(51, 50)

    def test_drain_clears(self):
        m = Mouse(100, 100)
        m.press()
        m.drain()
        assert m.drain() == []


class TestBitPad:
    def test_absolute_mapping(self):
        b = BitPad(200, 100, tablet_size=2000)
        b.touch(1000, 1000)
        assert b.position == Point(99, 49)

    def test_corners(self):
        b = BitPad(200, 100, tablet_size=2000)
        b.touch(0, 0)
        assert b.position == Point(0, 0)
        b.touch(2000, 2000)
        assert b.position == Point(199, 99)

    def test_outside_tablet_rejected(self):
        b = BitPad(200, 100)
        with pytest.raises(ValueError, match="outside"):
            b.touch(-1, 0)

    def test_bad_tablet_size(self):
        with pytest.raises(ValueError):
            BitPad(100, 100, tablet_size=0)

    def test_move_to_lands_exactly(self):
        b = BitPad(512, 390)
        b.move_to(Point(123, 77))
        assert b.position == Point(123, 77)
        events = b.drain()
        assert events[-1] == PointerMove(Point(123, 77))


class TestWorkstation:
    def test_charles_has_plotter(self):
        ws = charles_workstation()
        assert ws.name == "charles"
        assert ws.plotter is not None
        assert isinstance(ws.pointer, Mouse)

    def test_gigi_has_bitpad_no_plotter(self):
        ws = gigi_workstation()
        assert ws.name == "gigi"
        assert ws.plotter is None
        assert isinstance(ws.pointer, BitPad)

    def test_event_stream_merges_pointer_and_keyboard(self):
        ws = charles_workstation()
        ws.pointer.move(5, 5)
        ws.type_line("read pads.cif")
        events = ws.events()
        assert isinstance(events[0], PointerMove)
        assert events[-1] == KeyLine("read pads.cif")

    def test_point_and_press(self):
        ws = gigi_workstation()
        ws.point_and_press(Point(100, 100))
        events = ws.events()
        assert isinstance(events[-1], ButtonPress)
        assert events[-1].position == Point(100, 100)

    def test_both_configurations_same_event_interface(self):
        # The editor cannot tell the workstations apart — the paper's
        # portability claim.
        for ws in (charles_workstation(), gigi_workstation()):
            ws.point_and_press(Point(10, 10))
            events = ws.events()
            assert isinstance(events[-1], ButtonPress)

    def test_button_validation(self):
        with pytest.raises(ValueError):
            ButtonPress(Point(0, 0), button=0)
