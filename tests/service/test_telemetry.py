"""Distributed request telemetry: stages, histograms, aggregation.

Covers the layers bottom-up: the classification and flight-recorder
primitives in :mod:`repro.service.telemetry`; detached (cross-thread,
cross-process) spans in :mod:`repro.obs.trace`; the ``trace`` /
``stages`` envelope fields on the wire; then the live aggregation —
``service.telemetry`` on a single-process service and on a supervised
sharded one, heartbeat piggybacking included — and the satellite
regression: per-session metrics isolation across the sharded relay.
"""

from __future__ import annotations

import threading

import pytest

from repro.api import wire
from repro.obs import trace
from repro.service import telemetry
from repro.service.client import ServiceClient
from repro.service.server import ServiceThread
from repro.service.supervisor import SupervisorThread
from repro.service.telemetry import (
    STAGES,
    FlightRecorder,
    TelemetryHub,
    command_class,
    us,
)
from repro.service.top import render


class TestCommandClass:
    def test_control_plane(self):
        assert command_class("service.ping") == "control"
        assert command_class("service.telemetry") == "control"

    def test_library_commands(self):
        assert command_class("library.publish") == "library"

    def test_reads(self):
        assert command_class("cells") == "read"
        assert command_class("stats") == "read"
        assert command_class("library.resolve") == "library"

    def test_edits_are_the_replayable_commands(self):
        assert command_class("rotate") == "edit"
        assert command_class("new_cell") == "edit"

    def test_everything_else_is_io(self):
        assert command_class("plot") == "io"
        assert command_class("no_such_method") == "io"


class TestUs:
    def test_rounds_to_integer_microseconds(self):
        assert us(0.001) == 1000
        assert us(0.0000004) == 0
        assert us(0.0000006) == 1

    def test_stage_values_are_json_safe_integers(self):
        assert isinstance(us(1.5), int)


class TestFlightRecorder:
    def entry(self, n, method="rotate", error=None):
        return dict(
            method=method, total_us=n, session="s", shard=0,
            trace_id=f"t{n}", stages={"handler": n}, error=error,
        )

    def test_keeps_the_n_slowest_worst_first(self):
        recorder = FlightRecorder(keep=3)
        for n in (5, 1, 9, 7, 3):
            recorder.add(self.entry(n))
        assert [e["total_us"] for e in recorder.slowest()] == [9, 7, 5]

    def test_errored_ring_is_most_recent_first(self):
        recorder = FlightRecorder(keep=2)
        for n in (1, 2, 3):
            recorder.add(self.entry(n, error="boom"))
        assert [e["total_us"] for e in recorder.errored()] == [3, 2]

    def test_errored_requests_do_not_crowd_the_slow_heap(self):
        recorder = FlightRecorder(keep=2)
        recorder.add(self.entry(100, error="boom"))
        recorder.add(self.entry(1))
        slowest = recorder.slowest()
        assert [e["total_us"] for e in slowest] == [100, 1]
        assert [e["total_us"] for e in recorder.errored()] == [100]


class TestTelemetryHub:
    def test_records_counts_and_histograms_per_class_and_stage(self):
        hub = TelemetryHub(process="test")
        hub.record_request(
            "rotate",
            total_us=4000,
            stages={"handler": 3000, "fsync": 1000},
        )
        snap = hub.snapshot()
        assert snap["rpc.requests"] == 1
        assert snap["rpc.all.total"]["count"] == 1
        assert snap["rpc.edit.total"]["count"] == 1
        assert snap["rpc.all.handler"]["count"] == 1
        assert snap["rpc.edit.fsync"]["count"] == 1
        assert "rpc.errors" not in snap

    def test_errors_count_and_land_in_the_recorder(self):
        hub = TelemetryHub(process="test")
        hub.record_request("rotate", total_us=10, error="riot.no_such")
        snap = hub.snapshot()
        assert snap["rpc.errors"] == 1
        slowest, errored = hub.flight()
        assert errored[0]["error"] == "riot.no_such"
        assert slowest[0]["method"] == "rotate"


class TestDetachedSpans:
    def test_begin_allocates_ref_before_close(self):
        tracer = trace.Tracer()
        span = tracer.begin("supervisor.request", method="rotate")
        label, _, span_id = span.ref.partition(":")
        assert label == trace.process_label()
        assert int(span_id) == span.record.span_id
        assert tracer.open_count() == 1
        span.close()
        assert tracer.open_count() == 0
        (rec,) = tracer.finished()
        assert rec.name == "supervisor.request"

    def test_remote_parent_and_trace_id_ride_the_record(self):
        tracer = trace.Tracer()
        span = tracer.begin(
            "shard.request", trace_id="t-1", remote_parent="client:7"
        )
        span.close()
        (rec,) = tracer.finished()
        assert rec.trace_id == "t-1"
        assert rec.remote_parent == "client:7"

    def test_detached_close_off_thread_leaves_stack_alone(self):
        tracer = trace.Tracer()
        span = tracer.begin("relay.hop")
        worker = threading.Thread(target=span.close)
        worker.start()
        worker.join()
        with tracer.span("unrelated"):
            pass
        assert {r.name for r in tracer.finished()} == {
            "relay.hop", "unrelated"
        }

    def test_module_begin_is_null_span_when_disabled(self):
        span = trace.begin("client.request")
        assert span is trace.NULL_SPAN
        assert span.ref is None
        span.close()  # no-op

    def test_close_is_idempotent(self):
        tracer = trace.Tracer()
        span = tracer.begin("x")
        span.close()
        span.close()
        assert len(tracer.finished()) == 1


class TestEnvelopeFields:
    def request(self):
        from repro.api.registry import spec_for

        return spec_for("rotate").request(name="g0")

    def test_request_trace_context_round_trips(self):
        line = wire.encode_request(
            "rotate", self.request(), id=1,
            trace={"id": "t-1", "parent": "client:3"},
        )
        envelope = wire.parse_request(line)
        assert envelope.trace == {"id": "t-1", "parent": "client:3"}

    def test_request_without_trace_is_total(self):
        # Protocol v1 emits every field always; no context is null.
        line = wire.encode_request("rotate", self.request(), id=1)
        assert '"trace":null' in line
        assert wire.parse_request(line).trace is None

    def test_result_stages_round_trip(self):
        line = wire.encode_result(3, "rotate", {"ok": True},
                                  stages={"handler": 42})
        envelope = wire.parse_response(line)
        assert envelope.stages == {"handler": 42}

    def test_error_carries_stages_too(self):
        line = wire.encode_error(
            4, "riot.no_such", "nope", stages={"handler": 7}
        )
        envelope = wire.parse_response(line)
        assert not envelope.ok
        assert envelope.stages == {"handler": 7}


@pytest.fixture(scope="module")
def single():
    with ServiceThread() as srv:
        yield srv


def drive(host, port, session, commands=3):
    with ServiceClient(host, port, session=session) as client:
        client.call("new_cell", name="bench")
        client.call("create", at=(0, 0), cell_name="nand", name="g0")
        for _ in range(commands):
            client.call("rotate", name="g0")
        return client.call("stats").text, dict(client.last_stages)


class TestSingleProcessTelemetry:
    def test_result_shape_and_stage_histograms(self, single):
        host, port = single.address
        drive(host, port, "tel-single")
        with ServiceClient(host, port) as control:
            result = control.call("service.telemetry", slow=True)
        assert result.process == "server"
        assert result.pid is not None
        assert result.merged["rpc.requests"] >= 5
        assert result.merged["rpc.edit.total"]["count"] >= 5
        for stage in ("shard_queue", "handler", "fsync"):
            assert result.merged[f"rpc.all.{stage}"]["count"] >= 5
        assert result.shards == ()
        assert result.slowest, "flight recorder should have entries"
        worst = result.slowest[0]
        assert worst.total_us > 0 and "handler" in worst.stages

    def test_flight_recorder_gated_by_slow_flag(self, single):
        host, port = single.address
        with ServiceClient(host, port) as control:
            result = control.call("service.telemetry")
        assert result.slowest == () and result.errored == ()

    def test_single_process_responses_carry_shard_side_stages(self, single):
        host, port = single.address
        _, stages = drive(host, port, "tel-stages")
        for stage in ("shard_queue", "handler", "fsync", "client"):
            assert stage in stages
        assert stages["client"] >= stages["handler"]

    def test_render_smoke(self, single):
        host, port = single.address
        with ServiceClient(host, port) as control:
            result = control.call("service.telemetry", slow=True)
        report = render(result, slow=True)
        assert "latency by command class" in report
        assert "latency by stage" in report


@pytest.fixture(scope="module")
def sharded(tmp_path_factory):
    journal_dir = tmp_path_factory.mktemp("telemetry-wals")
    with SupervisorThread(shards=2, journal_dir=journal_dir) as srv:
        yield srv


def shard_of(host, port, session):
    with ServiceClient(host, port) as control:
        listed = control.call("service.sessions").sessions
    (index,) = [s.shard for s in listed if s.name == session]
    return index


class TestShardedTelemetry:
    def test_merged_counts_requests_exactly_once(self, sharded):
        host, port = sharded.supervisor.host, sharded.supervisor.port
        with ServiceClient(host, port) as control:
            before = control.call("service.telemetry")
        n_before = before.merged.get("rpc.requests", 0)
        drive(host, port, "tel-count", commands=4)
        with ServiceClient(host, port) as control:
            after = control.call("service.telemetry")
        # new_cell + create + 4 rotates + stats: 7 requests, counted
        # once — not once at the supervisor and again at the shard.
        assert after.merged["rpc.requests"] - n_before == 7
        assert after.process == "supervisor"

    def test_per_shard_views_come_from_heartbeat_piggyback(self, sharded):
        host, port = sharded.supervisor.host, sharded.supervisor.port
        drive(host, port, "tel-shardview")
        index = shard_of(host, port, "tel-shardview")
        with ServiceClient(host, port) as control:
            result = control.call("service.telemetry")
        assert len(result.shards) == 2
        by_index = {s.index: s for s in result.shards}
        view = by_index[index]
        assert view.alive
        assert view.metrics is not None
        assert view.metrics["rpc.all.total"]["count"] >= 6
        # The shard's own rpc view keeps only shard-side stages.
        assert f"rpc.all.handler" in view.metrics
        assert "rpc.all.relay" not in view.metrics

    def test_supervisor_counters_stay_out_of_shard_sums(self, sharded):
        host, port = sharded.supervisor.host, sharded.supervisor.port
        drive(host, port, "tel-prefix")
        with ServiceClient(host, port) as control:
            result = control.call("service.telemetry")
        supervisor_keys = [
            k for k in result.merged if k.startswith("supervisor.")
        ]
        assert supervisor_keys, "supervisor's own counters are prefixed"
        assert "supervisor.requests" in result.merged
        # The shards' service.* counters sum separately, unprefixed.
        assert result.merged["service.requests"] >= 1

    def test_sharded_stage_decomposition_reaches_the_client(self, sharded):
        # The client negotiated direct routing, so the decomposition is
        # the data-plane one: the shard's own turnaround under
        # ``direct``, no supervisor hop at all.
        host, port = sharded.supervisor.host, sharded.supervisor.port
        _, stages = drive(host, port, "tel-decomp")
        for stage in ("client", "direct", "shard_queue", "handler", "fsync"):
            assert stage in stages, stages
        assert "relay" not in stages and "supervisor_queue" not in stages
        assert stages["client"] >= stages["direct"] >= stages["handler"]

    def test_relay_path_still_decomposes_supervisor_stages(self, sharded):
        host, port = sharded.supervisor.host, sharded.supervisor.port
        with ServiceClient(
            host, port, session="tel-relayed", direct=False
        ) as client:
            client.call("new_cell", name="bench")
            stages = dict(client.last_stages)
        for stage in STAGES:
            if stage == "direct":
                assert stage not in stages, stages
            else:
                assert stage in stages, stages
        assert stages["client"] >= stages["relay"]

    def test_flight_recorder_attributes_shard_and_session(self, sharded):
        host, port = sharded.supervisor.host, sharded.supervisor.port
        drive(host, port, "tel-flight")
        with ServiceClient(host, port) as control:
            result = control.call("service.telemetry", slow=True)
        assert result.slowest
        entry = result.slowest[0]
        assert entry.session is not None
        assert entry.shard in (0, 1)
        # Relayed entries carry the supervisor's stages; direct entries
        # (merged in from the shards' own recorders) carry ``direct``.
        stages = set(entry.stages)
        assert stages >= {"supervisor_queue", "relay"} or "direct" in stages

    def test_trace_context_stitches_when_client_traces(self, sharded):
        host, port = sharded.supervisor.host, sharded.supervisor.port
        tracer = trace.enable(trace.Tracer())
        previous = trace.set_process_label("client")
        try:
            drive(host, port, "tel-traced", commands=2)
        finally:
            trace.disable()
            trace.set_process_label(previous)
        roots = [
            r for r in tracer.finished() if r.name == "client.request"
        ]
        assert roots
        assert all(r.trace_id for r in roots)
        with ServiceClient(host, port) as control:
            result = control.call("service.telemetry", slow=True)
        traced = [e for e in result.slowest if e.trace_id]
        assert traced, "flight recorder lost the trace ids"
        client_ids = {r.trace_id for r in roots}
        assert {e.trace_id for e in traced} & client_ids


class TestSessionIsolationAcrossShards:
    """Satellite: two concurrent sessions must not bleed counters into
    each other's ``stats`` view through the sharded relay."""

    def test_stats_stay_per_session(self, sharded):
        host, port = sharded.supervisor.host, sharded.supervisor.port
        # Find two session names that land on different shards.
        names = [f"iso-{i}" for i in range(8)]
        placed: dict[str, int] = {}
        for name in names:
            with ServiceClient(host, port, session=name) as probe:
                probe.call("new_cell", name="bench")
            placed[name] = shard_of(host, port, name)
            if len(set(placed.values())) == 2:
                break
        assert len(set(placed.values())) == 2, placed
        by_shard: dict[int, str] = {v: k for k, v in placed.items()}
        a, b = by_shard.values()

        results: dict[str, str] = {}

        def hammer(session: str, rotations: int) -> None:
            with ServiceClient(host, port, session=session) as client:
                client.call(
                    "create", at=(0, 0), cell_name="nand", name="g0"
                )
                for _ in range(rotations):
                    client.call("rotate", name="g0")
                results[session] = client.call("stats").text

        threads = [
            threading.Thread(target=hammer, args=(a, 6)),
            threading.Thread(target=hammer, args=(b, 2)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        # new_cell + create + N rotates, counted per session only
        # (the read-only stats command is not an editor command).
        assert "editor.commands 8" in results[a], results[a]
        assert "editor.commands 4" in results[b], results[b]
