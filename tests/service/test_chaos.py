"""ChaosPolicy parsing and counters (the kill itself is exercised by
the supervisor crash-point tests and the CI chaos smoke)."""

from __future__ import annotations

import pytest

from repro.service.chaos import ChaosError, ChaosPolicy


class TestParse:
    def test_kill_after(self):
        policy = ChaosPolicy.parse("kill-shard-after:50")
        assert policy.kill_after == 50
        assert policy.drop_heartbeat_after is None
        assert policy.slow_worker_ms == 0

    def test_composed_specs(self):
        policy = ChaosPolicy.parse(
            "kill-shard-after:3, slow-worker:5, drop-heartbeat-after:0"
        )
        assert policy.kill_after == 3
        assert policy.slow_worker_ms == 5
        assert policy.drop_heartbeat_after == 0

    def test_unknown_spec_rejected(self):
        with pytest.raises(ChaosError, match="unknown chaos spec"):
            ChaosPolicy.parse("set-on-fire:1")

    def test_non_integer_rejected(self):
        with pytest.raises(ChaosError, match="integer"):
            ChaosPolicy.parse("kill-shard-after:soon")

    def test_minimums_enforced(self):
        with pytest.raises(ChaosError, match=">= 1"):
            ChaosPolicy.parse("kill-shard-after:0")
        with pytest.raises(ChaosError, match=">= 0"):
            ChaosPolicy.parse("drop-heartbeat-after:-1")
        with pytest.raises(ChaosError, match=">= 1"):
            ChaosPolicy.parse("slow-worker:0")

    def test_describe_round_trips(self):
        spec = "kill-shard-after:50,slow-worker:5"
        assert ChaosPolicy.parse(spec).describe() == spec


class TestFromEnv:
    def test_unset_means_no_chaos(self):
        assert ChaosPolicy.from_env({}) is None
        assert ChaosPolicy.from_env({"REPRO_CHAOS": "  "}) is None

    def test_set_parses(self):
        policy = ChaosPolicy.from_env({"REPRO_CHAOS": "slow-worker:2"})
        assert policy is not None
        assert policy.slow_worker_ms == 2

    def test_bad_value_raises(self):
        with pytest.raises(ChaosError):
            ChaosPolicy.from_env({"REPRO_CHAOS": "nope"})


class TestCounters:
    def test_drop_ping_answers_first_n(self):
        policy = ChaosPolicy(drop_heartbeat_after=2)
        assert [policy.drop_ping() for _ in range(4)] == [
            False,
            False,
            True,
            True,
        ]

    def test_no_drop_when_unconfigured(self):
        policy = ChaosPolicy()
        assert not policy.drop_ping()

    def test_command_delay(self):
        assert ChaosPolicy(slow_worker_ms=250).command_delay() == 0.25
        assert ChaosPolicy().command_delay() == 0.0

    def test_ack_counter_ignores_control_and_failures(self):
        fired = []
        policy = ChaosPolicy(kill_after=2)
        # Count acknowledged session commands only: control-plane
        # responses and failures must not advance the kill point.
        ok = '{"id":1,"method":"new_cell","ok":true,"result":{},"v":1}'
        bad = '{"error":{"code":"x","message":""},"id":2,"ok":false,"v":1}'
        import repro.service.chaos as chaos_mod

        original = chaos_mod.os.kill
        chaos_mod.os.kill = lambda pid, sig: fired.append((pid, sig))
        try:
            policy.after_response(b'{"method":"service.ping"}', ok)
            policy.after_response(b'{"method":"new_cell"}', bad)
            policy.after_response(b'{"method":"new_cell"}', ok)
            assert not fired
            policy.after_response(b'{"method":"create"}', ok)
            assert len(fired) == 1
            # exactly once: later acks do not re-fire
            policy.after_response(b'{"method":"create"}', ok)
            assert len(fired) == 1
        finally:
            chaos_mod.os.kill = original
