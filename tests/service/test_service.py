"""Service behaviour: session isolation, backpressure, timeouts,
shutdown checkpointing and WAL resume — all against a real server on a
background thread (:class:`repro.service.server.ServiceThread`)."""

from __future__ import annotations

import json
import socket
import time

import pytest

from repro.api.registry import spec_for
from repro.api.types import PROTOCOL_VERSION
from repro.api.wire import encode_request, parse_response
from repro.core import wal
from repro.errors import ReproError
from repro.service.client import ServiceClient
from repro.service.server import ServiceThread


def call_error_code(client: ServiceClient, method: str, **params) -> str:
    with pytest.raises(ReproError) as excinfo:
        client.call(method, **params)
    return excinfo.value.code


@pytest.fixture(scope="module")
def server():
    with ServiceThread(max_sessions=4) as srv:
        yield srv


def client_for(server, session=None, **kwargs) -> ServiceClient:
    host, port = server.address
    return ServiceClient(host, port, session=session, **kwargs)


class TestRoundTrip:
    def test_ping(self, server):
        with client_for(server) as client:
            pong = client.call("service.ping")
        assert pong.version == PROTOCOL_VERSION

    def test_typed_results(self, server):
        with client_for(server, session="rt") as client:
            client.call("new_cell", name="top")
            created = client.call(
                "create", at=(0, 20000), cell_name="nand", name="n0"
            )
            assert (created.name, created.x, created.y) == ("n0", 0, 20000)
            moved = client.call("move", name="n0", to=(400, 20000))
            assert (moved.name, moved.x, moved.y) == ("n0", 400, 20000)
            client.call("create", at=(0, 30000), cell_name="srcell", nx=4, name="sr")
            client.call(
                "connect",
                from_instance="n0",
                from_connector="A",
                to_instance="sr",
                to_connector="TAP[0,0]",
            )
            abutted = client.call("do_abut")
            assert abutted.made == 1

    def test_unknown_method(self, server):
        with client_for(server, session="rt") as client:
            assert call_error_code(client, "frobnicate") == "api.unknown_command"
        with client_for(server) as client:
            assert (
                call_error_code(client, "service.frobnicate")
                == "api.unknown_command"
            )

    def test_missing_session_field(self, server):
        with client_for(server) as client:
            assert call_error_code(client, "do_abut") == "api.bad_request"

    def test_bad_session_name(self, server):
        with client_for(server, session="../escape") as client:
            assert call_error_code(client, "do_abut") == "service.bad_session"

    def test_strict_params(self, server):
        host, port = server.address
        with socket.create_connection((host, port), timeout=10) as sock:
            f = sock.makefile("rwb")
            line = {
                "method": "rotate",
                "params": {"name": "g0", "sideways": True},
                "id": 1,
                "session": "rt",
                "v": PROTOCOL_VERSION,
            }
            f.write(json.dumps(line).encode() + b"\n")
            f.flush()
            envelope = parse_response(f.readline())
        assert not envelope.ok
        assert envelope.error.code == "api.bad_request"
        assert "sideways" in envelope.error.message


class TestIsolation:
    def test_sessions_do_not_share_state(self, server):
        with client_for(server, session="iso.a") as a, client_for(
            server, session="iso.b"
        ) as b:
            a.call("new_cell", name="left")
            b.call("new_cell", name="right")
            a.call("create", at=(0, 0), cell_name="nand", name="g0")
            # b has no g0: same name, different editor.
            assert call_error_code(b, "rotate", name="g0") == "args.key"
            # a's g0 is untouched by b's failure.
            a.call("rotate", name="g0")

    def test_failed_command_rolls_back_and_session_continues(self, server):
        with client_for(server, session="iso.roll") as client:
            client.call("new_cell", name="c")
            client.call("create", at=(0, 0), cell_name="nand", name="g0")
            code = call_error_code(
                client,
                "connect",
                from_instance="g0",
                from_connector="NOPE",
                to_instance="g0",
                to_connector="A",
            )
            assert code == "riot.connection"
            # The editor is still consistent and serving.
            client.call("rotate", name="g0")
            with client_for(server) as control:
                info = {
                    s.name: s for s in control.call("service.sessions").sessions
                }
            assert info["iso.roll"].failed == 1
            assert info["iso.roll"].executed == 3


class TestLimits:
    def test_session_limit(self, server):
        # The module fixture allows 4 sessions; spend the rest, then
        # one more must be refused while existing sessions still work.
        with client_for(server) as control:
            open_now = control.call("service.ping").sessions
        clients = []
        try:
            for i in range(4 - open_now):
                client = client_for(server, session=f"fill{i}")
                clients.append(client)
                client.call("new_cell", name="c")
            with client_for(server, session="overflow") as extra:
                assert (
                    call_error_code(extra, "new_cell", name="c")
                    == "service.session_limit"
                )
            if clients:
                clients[0].call("new_cell", name="again")
        finally:
            for client in clients:
                client.close()

    def test_backpressure_bounds_the_queue(self):
        with ServiceThread(queue_limit=1) as srv:
            host, port = srv.address
            with socket.create_connection((host, port), timeout=30) as sock:
                f = sock.makefile("rwb")
                # Pipeline a burst at a brand-new session: its init is
                # still running on the worker thread, so the queue can
                # only drain after the burst has all arrived.
                total = 50
                for i in range(total):
                    request = spec_for("new_cell").request(name=f"c{i}")
                    line = encode_request(
                        "new_cell", request, id=i, session="burst"
                    )
                    f.write(line.encode() + b"\n")
                f.flush()
                by_code: dict[str | None, int] = {}
                for _ in range(total):
                    envelope = parse_response(f.readline())
                    code = None if envelope.ok else envelope.error.code
                    by_code[code] = by_code.get(code, 0) + 1
            assert by_code.get(None, 0) >= 1
            assert by_code.get("service.backpressure", 0) >= 1
            assert sum(by_code.values()) == total
            # The session recovers once the burst is over.
            with ServiceClient(host, port, session="burst") as client:
                client.call("new_cell", name="after")

    def test_timeout_answers_but_command_completes(self):
        with ServiceThread(timeout=0.0) as srv:
            with client_for(srv, session="slow") as client:
                # A zero deadline always expires before the session
                # thread can report back, so the command times out...
                assert (
                    call_error_code(client, "new_cell", name="c")
                    == "service.timeout"
                )
            # ...but still runs to completion on the session thread.
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                worker = srv.service.workers["slow"]
                if worker.executed == 1:
                    break
                time.sleep(0.01)
            assert worker.executed == 1


class TestShutdownAndResume:
    def test_shutdown_checkpoints_and_wal_resumes(self, tmp_path):
        journal_dir = tmp_path / "wals"
        with ServiceThread(journal_dir=journal_dir) as srv:
            with client_for(srv, session="persist") as client:
                client.call("new_cell", name="keep")
                client.call("create", at=(0, 0), cell_name="nand", name="g0")
            with client_for(srv) as control:
                ack = control.call("service.shutdown")
            assert ack.sessions == 1
            assert ack.journaled == 1
        path = journal_dir / "persist.wal"
        assert path.exists()
        journal = wal.load_path(path)
        assert journal.corruption is None
        assert [e.command for e in journal.entries] == ["new_cell", "create"]

        # A new server life: the session name picks its state back up.
        with ServiceThread(journal_dir=journal_dir) as srv:
            with client_for(srv, session="persist") as client:
                client.call("rotate", name="g0")  # exists only via replay
            with client_for(srv) as control:
                control.call("service.shutdown")
        journal = wal.load_path(path)
        assert [e.command for e in journal.entries] == [
            "new_cell",
            "create",
            "rotate",
        ]

    def test_commands_refused_while_draining(self, tmp_path):
        with ServiceThread(journal_dir=tmp_path / "wals") as srv:
            with client_for(srv, session="drain") as client:
                client.call("new_cell", name="c")
                with client_for(srv) as control:
                    control.call("service.shutdown")
                # The ack races the drain: a command sent right after
                # may still execute, but within the deadline the
                # session must be refused (or the socket closed).
                outcome = None
                deadline = time.monotonic() + 30
                while outcome is None and time.monotonic() < deadline:
                    try:
                        client.call("new_cell", name="late")
                    except ReproError as exc:
                        if exc.code in ("service.shutdown", "service.error"):
                            outcome = exc.code
                    except (OSError, ValueError):
                        outcome = "closed"
                    else:
                        time.sleep(0.005)
                assert outcome in ("service.shutdown", "service.error", "closed")
