"""ServiceClient retry/backoff against a scripted fake server: which
codes retry, which raise, how ``retry_after_ms`` paces, and the
connect-time backoff window."""

from __future__ import annotations

import json
import random
import socket
import threading
import time

import pytest

from repro.api.errors import UnknownCommand
from repro.api.types import PROTOCOL_VERSION
from repro.api.wire import ErrorDetail, encode_error, encode_result
from repro.errors import ReproError
from repro.service.client import NO_RETRY, RetryPolicy, ServiceClient
from repro.service.control import HelloResult, PingResult
from repro.service.errors import (
    BackpressureError,
    OverloadedError,
    SessionMovedError,
    ShardFailedError,
)

#: A fast schedule so tests spend milliseconds, not seconds.
FAST = RetryPolicy(
    attempts=8, base_delay=0.005, max_delay=0.02, connect_window=5.0, seed=7
)


def _respond(behavior: str, envelope: dict) -> str | None:
    """The wire line a scripted behavior answers with (None = hang up)."""
    id, method = envelope.get("id"), envelope.get("method", "")
    if behavior == "ok":
        if method == "service.ping":
            return encode_result(
                id, method, PingResult(version=PROTOCOL_VERSION, sessions=0)
            )
        # Echo-style success for session commands under test.
        from repro.api.registry import spec_for

        result = spec_for(method).result(**envelope.get("params", {}))
        return encode_result(id, method, result)
    if behavior == "overloaded":
        return encode_error(
            id, OverloadedError("shed", retry_after_ms=10)
        )
    if behavior == "backpressure":
        return encode_error(id, BackpressureError("queue full"))
    if behavior == "shard_failed":
        return encode_error(
            id, ShardFailedError("shard died", retry_after_ms=5)
        )
    if behavior == "moved":
        return encode_error(
            id,
            SessionMovedError(
                "route lease generation 0 is stale",
                retry_after_ms=5,
                detail=ErrorDetail(shard=1, generation=2),
            ),
        )
    assert behavior == "drop"
    return None


class ScriptedServer:
    """One behavior per request, in order; 'drop' closes the socket
    (the client is expected to reconnect for the next behavior).

    ``service.hello`` is answered transparently — not scripted, not
    recorded — because every new client opens with the handshake;
    ``hello=False`` simulates a pre-handshake server that rejects it
    with ``api.unknown_command``.  Either way no capabilities are
    advertised, so clients under test always relay."""

    def __init__(self, behaviors: list[str], *, hello: bool = True) -> None:
        self.hello = hello
        self.behaviors = list(behaviors)
        self.requests: list[dict] = []
        self._listener = socket.create_server(("127.0.0.1", 0))
        self._listener.settimeout(0.1)  # poll _closing while accepting
        self.port = self._listener.getsockname()[1]
        self._closing = False
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self) -> None:
        while self.behaviors and not self._closing:
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            conn.settimeout(0.1)  # poll _closing while reading
            # The makefile must be closed explicitly below: it holds
            # the fd open past conn.close(), so a 'drop' would never
            # actually send FIN to the client otherwise.
            file = conn.makefile("rwb")
            try:
                while self.behaviors and not self._closing:
                    try:
                        raw = file.readline()
                    except socket.timeout:
                        continue
                    if not raw:
                        break
                    envelope = json.loads(raw)
                    if envelope.get("method") == "service.hello":
                        if self.hello:
                            answer = encode_result(
                                envelope.get("id"),
                                "service.hello",
                                HelloResult(
                                    version=PROTOCOL_VERSION,
                                    server="scripted",
                                    capabilities=(),
                                ),
                            )
                        else:
                            answer = encode_error(
                                envelope.get("id"),
                                UnknownCommand(
                                    "unknown command 'service.hello'"
                                ),
                            )
                        file.write(answer.encode() + b"\n")
                        file.flush()
                        continue
                    self.requests.append(envelope)
                    behavior = self.behaviors.pop(0)
                    response = _respond(behavior, envelope)
                    if response is None:
                        break  # hang up; next behavior reconnects
                    file.write(response.encode() + b"\n")
                    file.flush()
            finally:
                file.close()
                conn.close()

    def close(self) -> None:
        self._closing = True
        self._listener.close()
        self._thread.join(timeout=5)

    def __enter__(self) -> "ScriptedServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def client_for(server: ScriptedServer, **kwargs) -> ServiceClient:
    kwargs.setdefault("retry", FAST)
    return ServiceClient("127.0.0.1", server.port, session="s", **kwargs)


class TestErrorRetries:
    def test_overloaded_retried_until_success(self):
        with ScriptedServer(["overloaded", "overloaded", "ok"]) as srv:
            with client_for(srv) as client:
                result = client.call("new_cell", name="top")
        assert result.name == "top"
        assert client.retries == 2

    def test_backpressure_retried(self):
        with ScriptedServer(["backpressure", "ok"]) as srv:
            with client_for(srv) as client:
                assert client.call("new_cell", name="t").name == "t"

    def test_overloaded_honors_retry_after_hint(self):
        with ScriptedServer(["overloaded", "ok"]) as srv:
            with client_for(srv) as client:
                start = time.monotonic()
                client.call("new_cell", name="top")
                waited = time.monotonic() - start
        # the 10ms hint floors the (otherwise ~5ms) backoff delay
        assert waited >= 0.010

    def test_shard_failed_retried_for_replayable(self):
        with ScriptedServer(["shard_failed", "ok"]) as srv:
            with client_for(srv) as client:
                assert client.call("new_cell", name="top").name == "top"
                assert client.retries == 1

    def test_shard_failed_retried_for_control_plane(self):
        with ScriptedServer(["shard_failed", "ok"]) as srv:
            with client_for(srv) as client:
                pong = client.call("service.ping")
        assert pong.version == PROTOCOL_VERSION

    def test_shard_failed_not_retried_for_side_effect_commands(self):
        with ScriptedServer(["shard_failed", "ok"]) as srv:
            with client_for(srv) as client:
                with pytest.raises(ReproError) as excinfo:
                    client.call("writecif", cell="top", path="/tmp/x.cif")
        assert excinfo.value.code == "service.shard_failed"
        assert len(srv.requests) == 1  # no second attempt went out

    def test_attempts_exhausted_raises_last_error(self):
        policy = RetryPolicy(
            attempts=3, base_delay=0.001, max_delay=0.002, seed=1
        )
        with ScriptedServer(["overloaded"] * 3) as srv:
            with client_for(srv, retry=policy) as client:
                with pytest.raises(ReproError) as excinfo:
                    client.call("new_cell", name="x")
        assert excinfo.value.code == "service.overloaded"
        assert len(srv.requests) == 3

    def test_moved_retried_for_replayable(self):
        # A stale route lease on the relay path: refresh and retry —
        # new_cell is replayable, so a duplicate send is safe.
        with ScriptedServer(["moved", "ok"]) as srv:
            with client_for(srv) as client:
                assert client.call("new_cell", name="top").name == "top"
                assert client.retries == 1

    def test_moved_not_retried_for_side_effect_commands(self):
        # writecif is not replayable: the attempt that provoked the
        # re-route may already have written the file, so surface it.
        with ScriptedServer(["moved", "ok"]) as srv:
            with client_for(srv) as client:
                with pytest.raises(ReproError) as excinfo:
                    client.call("writecif", cell="top", path="/tmp/x.cif")
        assert excinfo.value.code == "service.moved"
        assert excinfo.value.detail.generation == 2
        assert len(srv.requests) == 1  # no second attempt went out

    def test_no_retry_policy_fails_fast(self):
        with ScriptedServer(["overloaded", "ok"]) as srv:
            with client_for(srv, retry=NO_RETRY) as client:
                with pytest.raises(ReproError) as excinfo:
                    client.call("new_cell", name="x")
        assert excinfo.value.code == "service.overloaded"
        assert len(srv.requests) == 1


class TestConnectionLoss:
    def test_dropped_connection_retried_for_replayable(self):
        with ScriptedServer(["drop", "ok"]) as srv:
            with client_for(srv) as client:
                assert client.call("new_cell", name="top").name == "top"

    def test_dropped_connection_not_retried_for_side_effects(self):
        with ScriptedServer(["drop", "ok"]) as srv:
            with client_for(srv) as client:
                with pytest.raises((ConnectionError, OSError)):
                    client.call("writecif", cell="top", path="/tmp/x.cif")


class TestHello:
    def test_capabilities_recorded_from_handshake(self):
        with ScriptedServer(["ok"]) as srv:
            with client_for(srv) as client:
                assert client.call("new_cell", name="t").name == "t"
        assert client.capabilities == ()
        assert client.server_label == "scripted"
        assert client.server_version == PROTOCOL_VERSION

    def test_old_server_rejecting_hello_still_works(self):
        # A pre-handshake server answers api.unknown_command; the
        # client treats that as the empty capability set and relays.
        with ScriptedServer(["ok"], hello=False) as srv:
            with client_for(srv) as client:
                assert client.call("new_cell", name="t").name == "t"
        assert client.capabilities == ()
        assert client.server_label is None


class _ZeroJitter(random.Random):
    """An injected RNG whose ``random()`` is always 0.0 — the jitter
    factor becomes exactly 1, so delays equal the deterministic
    ``base * 2**n`` schedule."""

    def random(self) -> float:  # noqa: A003 - mirrors random.Random
        return 0.0


class TestDeterministicBackoff:
    """The injectable rng/sleep seams: retry schedules asserted
    exactly, in zero wall time."""

    def test_injected_rng_and_sleep_pin_the_schedule(self):
        slept: list[float] = []
        policy = RetryPolicy(
            attempts=4, base_delay=0.05, max_delay=1.0, jitter=0.5
        )
        with ScriptedServer(["backpressure"] * 3 + ["ok"]) as srv:
            with client_for(
                srv, retry=policy, rng=_ZeroJitter(), sleep=slept.append
            ) as client:
                client.call("new_cell", name="top")
        # backpressure carries no retry_after_ms hint, so the pure
        # exponential schedule shows through: base * 2**attempt.
        assert client.retry_delays == [0.05, 0.1, 0.2]
        assert slept == client.retry_delays

    def test_retry_after_hint_floors_injected_schedule(self):
        slept: list[float] = []
        policy = RetryPolicy(attempts=3, base_delay=0.001, max_delay=1.0)
        with ScriptedServer(["overloaded", "ok"]) as srv:
            with client_for(
                srv, retry=policy, rng=_ZeroJitter(), sleep=slept.append
            ) as client:
                client.call("new_cell", name="top")
        # overloaded's 10ms hint floors the otherwise 1ms delay.
        assert slept == [0.010]

    def test_same_seed_same_delays(self):
        def run(seed: int) -> list[float]:
            policy = RetryPolicy(
                attempts=4, base_delay=0.001, max_delay=0.004, seed=seed
            )
            slept: list[float] = []
            with ScriptedServer(["backpressure"] * 3 + ["ok"]) as srv:
                with client_for(srv, retry=policy, sleep=slept.append) as client:
                    client.call("new_cell", name="top")
            return slept

        assert run(99) == run(99)
        assert run(99) != run(100)

    def test_injected_sleep_never_blocks(self):
        # Eight scripted failures, zero real sleeping: the whole retry
        # storm resolves in well under the schedule's nominal seconds.
        start = time.monotonic()
        policy = RetryPolicy(attempts=8, base_delay=0.5, max_delay=4.0, seed=1)
        with ScriptedServer(["overloaded"] * 7 + ["ok"]) as srv:
            with client_for(srv, retry=policy, sleep=lambda _d: None) as client:
                client.call("new_cell", name="top")
        assert client.retries == 7
        assert time.monotonic() - start < 2.0


class TestConnectBackoff:
    def test_connects_to_late_starting_server(self):
        listener = socket.create_server(("127.0.0.1", 0))
        port = listener.getsockname()[1]
        listener.close()  # nothing listening yet
        accepted = threading.Event()

        def start_late():
            time.sleep(0.3)
            late = socket.create_server(("127.0.0.1", port))
            conn, _ = late.accept()
            accepted.set()
            conn.close()
            late.close()

        threading.Thread(target=start_late, daemon=True).start()
        client = ServiceClient(
            "127.0.0.1",
            port,
            session="s",
            retry=RetryPolicy(
                base_delay=0.02, max_delay=0.1, connect_window=10.0, seed=3
            ),
        )
        client.close()
        assert accepted.wait(timeout=5)

    def test_zero_window_fails_fast(self):
        listener = socket.create_server(("127.0.0.1", 0))
        port = listener.getsockname()[1]
        listener.close()
        start = time.monotonic()
        with pytest.raises(OSError):
            ServiceClient("127.0.0.1", port, session="s", retry=NO_RETRY)
        assert time.monotonic() - start < 2.0
