"""The shared cell library over the socket transport: parity with
in-process dispatch, CAS conflicts between concurrent publishers, and
the library counters in ``service.stats``."""

from __future__ import annotations

import threading

import pytest

from repro.api import types as t
from repro.api.session import Session
from repro.cellstore import CellStore
from repro.core.editor import RiotEditor
from repro.errors import ReproError
from repro.library.stock import filter_library
from repro.service.client import ServiceClient
from repro.service.server import ServiceThread


@pytest.fixture
def library_dir(tmp_path):
    return tmp_path / "lib"


@pytest.fixture
def server(library_dir):
    with ServiceThread(max_sessions=8, library_dir=str(library_dir)) as srv:
        yield srv


def client_for(server, session) -> ServiceClient:
    host, port = server.address
    return ServiceClient(host, port, session=session)


def local_session(library_dir) -> Session:
    editor = RiotEditor()
    editor.library = filter_library(editor.technology)
    return Session(editor=editor, cellstore=CellStore(library_dir))


class TestTransportParity:
    def test_same_typed_results_in_process_and_over_socket(
        self, server, library_dir
    ):
        # Publish through a local session (the textual interface's
        # transport)...
        local = local_session(library_dir)
        published = local.dispatch(t.LibraryPublishRequest(name="nand"))
        assert published == t.LibraryPublishResult(
            name="nand",
            version=1,
            hash=published.hash,
            kind="sticks",
        )
        # ...then read it back over the socket: byte-identical typed
        # dataclasses, not merely similar ones.
        with client_for(server, "parity") as client:
            over_wire = client.call("library.resolve", ref="nand@1")
        in_process = local.dispatch(t.LibraryResolveRequest(ref="nand@1"))
        assert over_wire == in_process
        assert over_wire.hash == published.hash

    def test_publish_over_socket_visible_locally(self, server, library_dir):
        with client_for(server, "writer") as client:
            result = client.call("library.publish", name="or2")
        assert (result.name, result.version) == ("or2", 1)
        local = local_session(library_dir)
        got = local.dispatch(t.LibraryGetRequest(ref="or2"))
        assert got.ref == "or2@1"

    def test_library_listing_over_socket(self, server, library_dir):
        local_session(library_dir).dispatch(t.LibraryPublishRequest(name="nand"))
        with client_for(server, "reader") as client:
            listing = client.call("library.list")
            deps = client.call("library.deps", ref="nand@1")
        assert [e.name for e in listing.entries] == ["nand"]
        assert deps.dependents == ()

    def test_unconfigured_service_reports_unavailable(self, tmp_path):
        with ServiceThread(max_sessions=2) as srv:  # no library_dir
            with client_for(srv, "nolib") as client:
                with pytest.raises(ReproError) as excinfo:
                    client.call("library.list")
        assert excinfo.value.code == "library.unavailable"


class TestConcurrentPublish:
    def test_concurrent_cas_publishes_one_wins_one_conflicts(self, server):
        # Two sessions both read head version 0 and race to create
        # nand@1 with expected_version=0: the store's lock serializes
        # them, exactly one wins, the loser gets the structured
        # conflict naming the head it lost to.
        barrier = threading.Barrier(2)
        outcomes: dict[str, object] = {}

        def contend(name: str) -> None:
            with client_for(server, name) as client:
                barrier.wait(timeout=10)
                try:
                    outcomes[name] = client.call(
                        "library.publish", name="nand", expected_version=0
                    )
                except ReproError as exc:
                    outcomes[name] = exc

        threads = [
            threading.Thread(target=contend, args=(n,))
            for n in ("alice", "bob")
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join(timeout=30)

        results = [o for o in outcomes.values() if isinstance(o, t.LibraryPublishResult)]
        errors = [o for o in outcomes.values() if isinstance(o, ReproError)]
        assert len(results) == 1 and len(errors) == 1
        assert results[0].version == 1
        assert errors[0].code == "library.conflict"

    def test_loser_rebases_and_succeeds(self, server):
        with client_for(server, "rebase") as client:
            client.call("library.publish", name="nand", expected_version=0)
            with pytest.raises(ReproError) as excinfo:
                client.call("library.publish", name="nand", expected_version=0)
            assert excinfo.value.code == "library.conflict"
            head = client.call("library.resolve", ref="nand").version
            rebased = client.call(
                "library.publish", name="nand", expected_version=head
            )
        assert rebased.version == head + 1


class TestServiceStats:
    def test_stats_count_publishes_and_conflicts(self, server):
        with client_for(server, "stats") as client:
            client.call("library.publish", name="nand")
            with pytest.raises(ReproError):
                client.call("library.publish", name="nand", expected_version=0)
            stats = client.call("service.stats")
        assert stats.library_publishes == 1
        assert stats.library_conflicts == 1


class TestRepeatedGet:
    """``library.get`` of a composition the session already holds is a
    rebind, not a collision (regression: it used to raise
    ``composition.format`` from the loader's ``library.add``)."""

    def publish_composition(self, library_dir) -> None:
        local = local_session(library_dir)
        local.dispatch(t.NewCellRequest(name="duo"))
        local.dispatch(t.CreateRequest(cell_name="nand", name="g1", at=(0, 0)))
        local.dispatch(t.CreateRequest(cell_name="nand", name="g2", at=(0, 20000)))
        local.dispatch(t.FinishRequest())
        local.dispatch(t.LibraryPublishRequest(name="nand"))
        local.dispatch(t.LibraryPublishRequest(name="duo"))

    def test_get_twice_over_socket_rebinds(self, server, library_dir):
        self.publish_composition(library_dir)
        with client_for(server, "regetter") as client:
            first = client.call("library.get", ref="duo")
            second = client.call("library.get", ref="duo")
            # The session is still usable: the re-fetched composition
            # opens for edit, and a third get while it is under edit
            # rebinds silently too.
            client.call("edit", name="duo")
            third = client.call("library.get", ref="duo")
            check = client.call("check")
        assert first.loaded == second.loaded == third.loaded == ("nand", "duo")
        assert check.overlapping == 0

    def test_get_rebinds_the_cell_under_edit(self, library_dir):
        self.publish_composition(library_dir)
        session = local_session(library_dir)
        session.dispatch(t.LibraryGetRequest(ref="duo"))
        session.dispatch(t.EditRequest(name="duo"))
        session.dispatch(
            t.ConnectRequest(
                from_instance="g1",
                from_connector="OUT",
                to_instance="g2",
                to_connector="A",
            )
        )
        assert len(session.editor.pending) == 1
        again = session.dispatch(t.LibraryGetRequest(ref="duo"))
        assert "duo" in again.loaded
        # The editor now edits the freshly loaded definition, and the
        # pending list (which named the old instances) was dropped.
        assert session.editor.cell is session.editor.library.get("duo")
        assert len(session.editor.pending) == 0
        # Follow-on edits work against the rebound cell.
        session.dispatch(
            t.CreateRequest(cell_name="nand", name="g3", at=(8000, 0))
        )
        assert [i.name for i in session.editor.cell.instances] == [
            "g1",
            "g2",
            "g3",
        ]
