"""RestartGovernor policy: backoff doubling, progress resets, the
crash-loop circuit breaker and its half-open probe — all against an
injected clock, no processes involved."""

from __future__ import annotations

import pytest

from repro.service.health import RestartGovernor


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


def governor(**kwargs) -> tuple[RestartGovernor, FakeClock]:
    clock = FakeClock()
    defaults = dict(
        base_delay=0.05, max_delay=2.0, max_failures=5, cooldown=15.0
    )
    defaults.update(kwargs)
    return RestartGovernor(clock=clock, **defaults), clock


class TestBackoff:
    def test_progress_death_restarts_at_base_delay(self):
        gov, _ = governor()
        decision = gov.record_death(progress=True)
        assert decision.delay == 0.05
        assert not decision.circuit_opened
        assert not gov.circuit_open

    def test_no_progress_deaths_double_the_delay(self):
        gov, _ = governor()
        delays = [gov.record_death(progress=False).delay for _ in range(4)]
        assert delays == [0.05, 0.1, 0.2, 0.4]

    def test_delay_caps_at_max(self):
        gov, _ = governor(max_delay=0.2, max_failures=100)
        delays = [gov.record_death(progress=False).delay for _ in range(5)]
        assert delays == [0.05, 0.1, 0.2, 0.2, 0.2]

    def test_progress_resets_the_streak(self):
        gov, _ = governor()
        gov.record_death(progress=False)
        gov.record_death(progress=False)
        gov.record_progress()
        assert gov.record_death(progress=False).delay == 0.05

    def test_progressful_death_resets_the_streak(self):
        gov, _ = governor()
        gov.record_death(progress=False)
        gov.record_death(progress=False)
        gov.record_death(progress=True)
        assert gov.record_death(progress=False).delay == 0.05


class TestCircuitBreaker:
    def test_opens_after_max_consecutive_failures(self):
        gov, _ = governor(max_failures=3)
        assert not gov.record_death(progress=False).circuit_opened
        assert not gov.record_death(progress=False).circuit_opened
        decision = gov.record_death(progress=False)
        assert decision.circuit_opened
        assert decision.delay == 15.0
        assert gov.circuit_open
        assert not gov.may_attempt()

    def test_retry_after_counts_down_with_the_clock(self):
        gov, clock = governor(max_failures=1, cooldown=10.0)
        gov.record_death(progress=False)
        assert 9_000 < gov.retry_after_ms() <= 10_001
        clock.now += 6.0
        assert 3_000 < gov.retry_after_ms() <= 4_001

    def test_half_open_after_cooldown(self):
        gov, clock = governor(max_failures=1, cooldown=10.0)
        gov.record_death(progress=False)
        assert gov.circuit_open
        clock.now += 10.0
        assert not gov.circuit_open  # half-open: one attempt allowed
        assert gov.may_attempt()

    def test_progress_closes_the_circuit(self):
        gov, clock = governor(max_failures=2, cooldown=10.0)
        gov.record_death(progress=False)
        gov.record_death(progress=False)
        assert gov.circuit_open
        clock.now += 10.0
        gov.record_progress()  # the probe served a command
        assert not gov.circuit_open
        assert gov.retry_after_ms() == 0
        # and the streak restarted from zero
        assert gov.record_death(progress=False).delay == 0.05

    def test_failed_probe_reopens(self):
        gov, clock = governor(max_failures=1, cooldown=10.0)
        gov.record_death(progress=False)
        clock.now += 10.0
        decision = gov.record_death(progress=False)  # probe died too
        assert decision.circuit_opened
        assert gov.circuit_open


class TestValidation:
    def test_rejects_bad_delays(self):
        with pytest.raises(ValueError):
            RestartGovernor(base_delay=0.0)
        with pytest.raises(ValueError):
            RestartGovernor(base_delay=1.0, max_delay=0.5)

    def test_rejects_bad_max_failures(self):
        with pytest.raises(ValueError):
            RestartGovernor(max_failures=0)
