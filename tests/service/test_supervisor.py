"""The supervised sharded service, end to end: consistent-hash
routing, per-shard stats, admission control, crash detection + restart
+ WAL resume, and the deterministic chaos crash-point invariant — all
against real shard subprocesses via :class:`SupervisorThread`."""

from __future__ import annotations

import os
import signal
import threading
import time

import pytest

from repro.core import wal
from repro.errors import ReproError
from repro.service.client import NO_RETRY, RetryPolicy, ServiceClient
from repro.service.supervisor import HashRing, SupervisorThread

#: Retry schedule used by tests that ride out a shard restart.
PATIENT = RetryPolicy(
    attempts=10, base_delay=0.05, max_delay=0.5, connect_window=10.0, seed=11
)


def client_for(sup, session=None, **kwargs) -> ServiceClient:
    host, port = sup.address
    kwargs.setdefault("retry", PATIENT)
    return ServiceClient(host, port, session=session, **kwargs)


def error_code(client, method, **params) -> str:
    with pytest.raises(ReproError) as excinfo:
        client.call(method, **params)
    return excinfo.value.code


def shard_pid_for(client, index: int) -> int:
    stats = client.call("service.stats")
    (pid,) = [s.pid for s in stats.shards if s.index == index]
    assert pid is not None
    return pid


def wait_for_restart(client, index: int, deadline: float = 20.0) -> None:
    start = time.monotonic()
    while time.monotonic() - start < deadline:
        stats = client.call("service.stats")
        shard = next(s for s in stats.shards if s.index == index)
        if shard.alive and shard.restarts >= 1:
            return
        time.sleep(0.05)
    raise TimeoutError(f"shard {index} did not restart")


class TestHashRing:
    def test_deterministic_across_instances(self):
        a, b = HashRing(4), HashRing(4)
        names = [f"session-{i}" for i in range(200)]
        assert [a.shard_for(n) for n in names] == [
            b.shard_for(n) for n in names
        ]

    def test_covers_every_shard(self):
        ring = HashRing(4)
        owners = {ring.shard_for(f"s{i}") for i in range(500)}
        assert owners == {0, 1, 2, 3}

    def test_single_shard_takes_everything(self):
        ring = HashRing(1)
        assert {ring.shard_for(f"s{i}") for i in range(50)} == {0}

    def test_growing_the_ring_moves_few_keys(self):
        names = [f"cell-{i}" for i in range(1000)]
        before = HashRing(4)
        after = HashRing(5)
        moved = sum(
            1 for n in names if before.shard_for(n) != after.shard_for(n)
        )
        # consistent hashing: ~1/5 of the keys move, nowhere near all
        assert moved < 450

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            HashRing(0)


@pytest.fixture(scope="module")
def sup(tmp_path_factory):
    journal_dir = tmp_path_factory.mktemp("sup-wals")
    with SupervisorThread(shards=2, journal_dir=journal_dir) as srv:
        yield srv


class TestRouting:
    def test_typed_commands_round_trip(self, sup):
        with client_for(sup, session="alice") as client:
            client.call("new_cell", name="top")
            created = client.call(
                "create", at=(0, 20000), cell_name="nand", name="n0"
            )
            assert (created.name, created.x, created.y) == ("n0", 0, 20000)
            names = client.call("cells").names
            assert "top" in names

    def test_sessions_carry_their_shard_index(self, sup):
        ring = HashRing(2)
        with client_for(sup, session="bob") as client:
            client.call("new_cell", name="b")
        with client_for(sup) as control:
            listed = control.call("service.sessions").sessions
        by_name = {s.name: s for s in listed}
        assert "bob" in by_name
        for info in by_name.values():
            assert info.shard == ring.shard_for(info.name)

    def test_same_session_lands_on_same_shard(self, sup):
        with client_for(sup, session="carol") as client:
            client.call("new_cell", name="c")
            client.call("create", at=(0, 20000), cell_name="nand", name="g0")
        with client_for(sup) as control:
            listed = control.call("service.sessions").sessions
        shards = [s.shard for s in listed if s.name == "carol"]
        assert len(shards) == 1  # one entry, one shard — never split

    def test_bad_session_name_rejected(self, sup):
        with client_for(sup, session=".dotfile") as client:
            assert error_code(client, "cells") == "service.bad_session"

    def test_session_commands_need_a_session(self, sup):
        with client_for(sup) as client:
            assert error_code(client, "cells") == "api.bad_request"

    def test_ping_counts_sessions_globally(self, sup):
        with client_for(sup) as client:
            pong = client.call("service.ping")
        assert pong.sessions >= 2  # alice, bob, carol live here


class TestStats:
    def test_per_shard_figures(self, sup):
        with client_for(sup) as client:
            stats = client.call("service.stats")
        assert stats.pid == os.getpid()  # the answering supervisor
        assert len(stats.shards) == 2
        assert [s.index for s in stats.shards] == [0, 1]
        pids = [s.pid for s in stats.shards]
        assert all(isinstance(p, int) for p in pids)
        assert len(set(pids)) == 2 and os.getpid() not in pids
        for shard in stats.shards:
            assert shard.alive
            assert shard.restarts == 0
            assert not shard.circuit_open
        # sessions aggregate matches the sum of per-shard counts
        assert stats.sessions == sum(s.sessions for s in stats.shards)

    def test_original_fields_still_aggregate(self, sup):
        with client_for(sup) as client:
            stats = client.call("service.stats")
        assert stats.requests >= 1
        assert stats.connections >= 1
        assert stats.timeouts == 0


class TestAdmissionControl:
    def test_global_session_cap(self, tmp_path):
        with SupervisorThread(shards=2, max_sessions=2) as srv:
            with client_for(srv, session="one") as c1:
                c1.call("new_cell", name="a")
            with client_for(srv, session="two") as c2:
                c2.call("new_cell", name="b")
            with client_for(srv, session="three", retry=NO_RETRY) as c3:
                assert error_code(c3, "cells") == "service.session_limit"

    def test_shed_answers_overloaded_with_pacing_hint(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "slow-worker:400")
        with SupervisorThread(shards=1, shed_at=1) as srv:
            with client_for(srv, session="busy", retry=NO_RETRY) as slow:
                slow.call("new_cell", name="t")  # session is warm

                t = threading.Thread(
                    target=lambda: slow.call(
                        "create", at=(0, 20000), cell_name="nand", name="g0"
                    )
                )
                t.start()
                time.sleep(0.15)  # let the slow command get in flight
                with client_for(srv, session="busy", retry=NO_RETRY) as c2:
                    with pytest.raises(ReproError) as excinfo:
                        c2.call("cells")
                t.join()
            assert excinfo.value.code == "service.overloaded"
            assert excinfo.value.retry_after_ms is not None
            with client_for(srv) as control:
                assert control.call("service.stats").shed >= 1


class TestCrashRecovery:
    def test_sigkilled_shard_restarts_and_session_resumes(self, tmp_path):
        ring = HashRing(2)
        name = "phoenix"
        with SupervisorThread(shards=2, journal_dir=tmp_path) as srv:
            with client_for(srv, session=name) as client:
                client.call("new_cell", name="top")
                client.call(
                    "create", at=(0, 20000), cell_name="nand", name="n0"
                )
                index = ring.shard_for(name)
                os.kill(shard_pid_for(client, index), signal.SIGKILL)
                # the retrying client rides out the restart...
                moved = client.call("move", name="n0", to=(400, 20000))
                assert moved.x == 400
                assert client.retries >= 1
                stats = client.call("service.stats")
                shard = next(s for s in stats.shards if s.index == index)
                assert shard.restarts >= 1
                # ...and replay preserved the pre-crash state
                assert "top" in client.call("cells").names
            with client_for(srv) as control:
                control.call("service.shutdown")
        journal = wal.load_path(
            tmp_path / f"shard-{index}" / f"{name}.wal"
        )
        assert journal.corruption is None
        assert [e.command for e in journal.entries] == [
            "new_cell",
            "create",
            "move",
        ]

    def test_other_shards_keep_serving_through_a_crash(self, tmp_path):
        ring = HashRing(2)
        victim, bystander = "vic", "safe0"
        # pick a bystander session hashed onto the other shard
        i = 0
        while ring.shard_for(bystander) == ring.shard_for(victim):
            i += 1
            bystander = f"safe{i}"
        with SupervisorThread(shards=2, journal_dir=tmp_path) as srv:
            with client_for(srv, session=victim) as cv, client_for(
                srv, session=bystander
            ) as cb:
                cv.call("new_cell", name="v")
                cb.call("new_cell", name="s")
                os.kill(
                    shard_pid_for(cv, ring.shard_for(victim)), signal.SIGKILL
                )
                # the untouched shard answers instantly, no retries needed
                before = cb.retries
                assert "s" in cb.call("cells").names
                assert cb.retries == before
                wait_for_restart(cb, ring.shard_for(victim))


class TestChaosCrashPoint:
    """The WAL invariant under deterministic kills: a shard SIGKILLed
    right after acknowledging its N-th command must replay to exactly
    the acknowledged prefix — nothing lost, nothing extra."""

    @pytest.mark.parametrize("kill_after", [1, 3])
    def test_wal_holds_exactly_the_acknowledged_prefix(
        self, tmp_path, monkeypatch, kill_after
    ):
        monkeypatch.setenv("REPRO_CHAOS", f"kill-shard-after:{kill_after}")
        name = "crashy"
        commands = [("new_cell", {"name": "top"})] + [
            (
                "create",
                {"at": (i * 8000, 20000), "cell_name": "nand", "name": f"g{i}"},
            )
            for i in range(4)
        ]
        acked = []
        with SupervisorThread(shards=1, journal_dir=tmp_path) as srv:
            with client_for(srv, session=name, retry=NO_RETRY) as client:
                failure = None
                for method, params in commands:
                    try:
                        client.call(method, **params)
                        acked.append(method)
                    except (ReproError, ConnectionError, OSError) as exc:
                        failure = exc
                        break
                assert failure is not None
                assert len(acked) == kill_after
        journal = wal.load_path(tmp_path / "shard-0" / f"{name}.wal")
        assert journal.corruption is None
        assert [e.command for e in journal.entries] == acked

    def test_retrying_client_completes_interrupted_workload(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CHAOS", "kill-shard-after:3")
        name = "storm"
        with SupervisorThread(shards=1, journal_dir=tmp_path) as srv:
            with client_for(srv, session=name) as client:
                client.call("new_cell", name="top")
                for i in range(6):
                    client.call(
                        "create",
                        at=(i * 8000, 20000),
                        cell_name="nand",
                        name=f"g{i}",
                    )
                assert client.retries >= 1  # the storm really hit
            with client_for(srv) as control:
                stats = control.call("service.stats")
                assert stats.shards[0].restarts >= 1
                control.call("service.shutdown")
        # every acknowledged command — and only those — replays clean
        journal = wal.load_path(tmp_path / "shard-0" / f"{name}.wal")
        assert journal.corruption is None
        assert [e.command for e in journal.entries] == ["new_cell"] + [
            "create"
        ] * 6
