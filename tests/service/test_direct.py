"""The direct-to-shard data plane, end to end: the negotiated routing
handshake, direct traffic bypassing the supervisor, lease-generation
staleness after a shard restart, relay failover mid-kill, and the
chaos crash-point invariant on the direct path — all against real
shard subprocesses via :class:`SupervisorThread`."""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.api.types import PROTOCOL_VERSION
from repro.core import wal
from repro.errors import ReproError
from repro.service.client import NO_RETRY, RetryPolicy, ServiceClient
from repro.service.supervisor import HashRing, SupervisorThread

#: Retry schedule used by tests that ride out a shard restart.
PATIENT = RetryPolicy(
    attempts=12, base_delay=0.05, max_delay=0.5, connect_window=15.0, seed=5
)


def client_for(sup, session=None, **kwargs) -> ServiceClient:
    host, port = sup.address
    kwargs.setdefault("retry", PATIENT)
    return ServiceClient(host, port, session=session, **kwargs)


def shard_pid_for(client, index: int) -> int:
    stats = client.call("service.stats")
    (pid,) = [s.pid for s in stats.shards if s.index == index]
    assert pid is not None
    return pid


def restarts_of(client, index: int) -> int:
    stats = client.call("service.stats")
    return next(s.restarts for s in stats.shards if s.index == index)


def wait_for_restart(
    client, index: int, *, past: int = 0, deadline: float = 20.0
) -> None:
    start = time.monotonic()
    while time.monotonic() - start < deadline:
        stats = client.call("service.stats")
        shard = next(s for s in stats.shards if s.index == index)
        if shard.alive and shard.restarts > past:
            return
        time.sleep(0.05)
    raise TimeoutError(f"shard {index} did not restart")


@pytest.fixture(scope="module")
def sup(tmp_path_factory):
    journal_dir = tmp_path_factory.mktemp("direct-wals")
    with SupervisorThread(shards=2, journal_dir=journal_dir) as srv:
        yield srv


class TestHandshake:
    def test_hello_advertises_direct_routing(self, sup):
        with client_for(sup) as control:
            hello = control.call("service.hello", client="test/1")
        assert hello.version == PROTOCOL_VERSION
        assert hello.server == "supervisor"
        assert "direct_routing" in hello.capabilities
        assert "telemetry" in hello.capabilities
        assert control.capabilities == hello.capabilities

    def test_route_matches_the_ring_and_leases_generation_zero(self, sup):
        ring = HashRing(2)
        with client_for(sup) as control:
            for name in ("dr-a", "dr-b", "dr-c"):
                route = control.call("service.route", session=name)
                assert route.session == name
                assert route.direct
                assert route.shard == ring.shard_for(name)
                assert route.host and route.port
                assert route.generation == 0
                assert route.lease_ms > 0

    def test_route_performs_admission(self, sup):
        with client_for(sup, retry=NO_RETRY) as control:
            with pytest.raises(ReproError) as excinfo:
                control.call("service.route", session=".dotfile")
        assert excinfo.value.code == "service.bad_session"


class TestDirectPath:
    def test_session_traffic_bypasses_the_supervisor(self, sup):
        with client_for(sup, session="dr-bypass") as client:
            client.call("new_cell", name="top")
            client.call("create", at=(0, 20000), cell_name="nand", name="g0")
            for _ in range(3):
                client.call("rotate", name="g0")
            stages = dict(client.last_stages)
        assert client.direct_calls == 5
        assert client.route_refreshes == 1  # one lease covered the burst
        assert "direct" in stages and "relay" not in stages
        with client_for(sup) as control:
            stats = control.call("service.stats")
        assert stats.direct_requests >= 5

    def test_direct_false_pins_the_relay_path(self, sup):
        with client_for(sup, session="dr-pinned", direct=False) as client:
            client.call("new_cell", name="top")
            stages = dict(client.last_stages)
        assert client.direct_calls == 0
        assert client.relayed_calls >= 1
        assert "relay" in stages and "direct" not in stages

    def test_direct_request_to_the_wrong_shard_is_refused(self, sup):
        # Dial shard A's data socket, stamp a lease, but name a session
        # the ring assigns to shard B: the shard itself refuses.
        ring = HashRing(2)
        mine, other = "dr-wrong-a", "dr-wrong-b"
        i = 0
        while ring.shard_for(other) == ring.shard_for(mine):
            i += 1
            other = f"dr-wrong-b{i}"
        with client_for(sup, session=mine) as client:
            client.call("new_cell", name="top")  # direct wire is live
            route = client._route
            assert route is not None
            with ServiceClient(
                route.host,
                route.port,
                session=other,
                retry=NO_RETRY,
                direct=False,
            ) as intruder:
                # Forge a direct envelope by stamping the generation.
                from repro.service.client import method_types

                request_cls, _ = method_types("new_cell")
                with pytest.raises(ReproError) as excinfo:
                    intruder._round_trip(
                        "new_cell",
                        request_cls(name="x"),
                        file=intruder._file,
                        generation=route.generation,
                    )
        assert excinfo.value.code == "service.moved"
        assert excinfo.value.detail.shard == ring.shard_for(other)


@pytest.fixture(scope="class")
def long_lease(tmp_path_factory):
    # A lease long enough that it is still cached — and stale — after
    # the kill/restart cycle these tests stage.
    journal_dir = tmp_path_factory.mktemp("stale-wals")
    with SupervisorThread(
        shards=2, journal_dir=journal_dir, route_lease=60.0
    ) as srv:
        yield srv


class TestStaleLease:
    def test_stale_generation_adopts_the_new_address_in_place(
        self, long_lease
    ):
        ring = HashRing(2)
        name = "dr-stale"
        with client_for(long_lease, session=name) as client:
            client.call("new_cell", name="top")
            client.call("create", at=(0, 20000), cell_name="nand", name="g0")
            assert client.route_refreshes == 1
            index = ring.shard_for(name)
            with client_for(long_lease) as control:
                past = restarts_of(control, index)
                os.kill(shard_pid_for(control, index), signal.SIGKILL)
                wait_for_restart(control, index, past=past)
            # Simulate an idle client whose direct socket was dropped
            # while its (now stale) lease survived: the reconnect lands
            # on the restarted shard's pinned port, which answers
            # service.moved carrying the new generation — adopted in
            # place, no supervisor re-route.
            client._close_direct()
            assert client.call("rotate", name="g0").name == "g0"
            assert client.retries >= 1
            assert client.route_refreshes == 1
            assert client._route.generation >= 1
        # Replay preserved the pre-crash state on the direct path too.
        with client_for(long_lease, session=name) as fresh:
            assert "top" in fresh.call("cells").names

    def test_stale_lease_surfaces_moved_for_side_effect_commands(
        self, long_lease, tmp_path
    ):
        ring = HashRing(2)
        name = "dr-stale-io"
        with client_for(long_lease, session=name) as client:
            client.call("new_cell", name="top")
            index = ring.shard_for(name)
            with client_for(long_lease) as control:
                past = restarts_of(control, index)
                os.kill(shard_pid_for(control, index), signal.SIGKILL)
                wait_for_restart(control, index, past=past)
            client._close_direct()
            # writecif is not replayable: the stale-lease refusal must
            # surface instead of being silently retried.
            with pytest.raises(ReproError) as excinfo:
                client.call(
                    "writecif", cell="top", path=str(tmp_path / "x.cif")
                )
            assert excinfo.value.code == "service.moved"
            # ...but the adopted route serves the next command.
            assert "top" in client.call("cells").names


class TestFailover:
    def test_kill_mid_burst_fails_over_then_re_redirects(self, tmp_path):
        name = "dr-failover"
        with SupervisorThread(
            shards=1, journal_dir=tmp_path, route_lease=30.0
        ) as srv:
            with client_for(srv, session=name) as client:
                client.call("new_cell", name="top")
                client.call(
                    "create", at=(0, 20000), cell_name="nand", name="g0"
                )
                assert client.direct_calls == 2
                with client_for(srv) as control:
                    os.kill(shard_pid_for(control, 0), signal.SIGKILL)
                # The direct socket is dead: the client falls back
                # through the supervisor relay and rides out the
                # restart with retries.
                moved = client.call("move", name="g0", to=(400, 20000))
                assert moved.x == 400
                assert client.retries >= 1
                with client_for(srv) as control:
                    wait_for_restart(control, 0)
                # After the relay-until window passes, the client
                # re-routes and the direct path comes back.
                direct_before = client.direct_calls
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    client.call("rotate", name="g0")
                    if client.direct_calls > direct_before:
                        break
                    time.sleep(0.1)
                assert client.direct_calls > direct_before
                assert client.route_refreshes >= 2
        journal = wal.load_path(tmp_path / "shard-0" / f"{name}.wal")
        assert journal.corruption is None
        assert journal.entries[0].command == "new_cell"


class TestChaosCrashPointDirect:
    """The WAL invariant holds on the data plane: a shard SIGKILLed
    right after acknowledging its N-th command — acknowledged on its
    own data socket, no supervisor in the loop — must replay to
    exactly the acknowledged prefix."""

    @pytest.mark.parametrize("kill_after", [1, 3])
    def test_wal_holds_exactly_the_acknowledged_prefix(
        self, tmp_path, monkeypatch, kill_after
    ):
        monkeypatch.setenv("REPRO_CHAOS", f"kill-shard-after:{kill_after}")
        name = "dr-crashy"
        commands = [("new_cell", {"name": "top"})] + [
            (
                "create",
                {"at": (i * 8000, 20000), "cell_name": "nand", "name": f"g{i}"},
            )
            for i in range(4)
        ]
        acked = []
        with SupervisorThread(shards=1, journal_dir=tmp_path) as srv:
            with client_for(srv, session=name, retry=NO_RETRY) as client:
                failure = None
                for method, params in commands:
                    try:
                        client.call(method, **params)
                        acked.append(method)
                    except (ReproError, ConnectionError, OSError) as exc:
                        failure = exc
                        break
                assert failure is not None
                assert len(acked) == kill_after
                assert client.direct_calls == kill_after  # all direct
        journal = wal.load_path(tmp_path / "shard-0" / f"{name}.wal")
        assert journal.corruption is None
        assert [e.command for e in journal.entries] == acked

    def test_retrying_client_completes_interrupted_direct_workload(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CHAOS", "kill-shard-after:3")
        name = "dr-storm"
        with SupervisorThread(shards=1, journal_dir=tmp_path) as srv:
            with client_for(srv, session=name) as client:
                client.call("new_cell", name="top")
                for i in range(6):
                    client.call(
                        "create",
                        at=(i * 8000, 20000),
                        cell_name="nand",
                        name=f"g{i}",
                    )
                assert client.retries >= 1  # the storm really hit
                assert client.direct_calls >= 1
            with client_for(srv) as control:
                stats = control.call("service.stats")
                assert stats.shards[0].restarts >= 1
                control.call("service.shutdown")
        # every acknowledged command — and only those — replays clean
        journal = wal.load_path(tmp_path / "shard-0" / f"{name}.wal")
        assert journal.corruption is None
        assert [e.command for e in journal.entries] == ["new_cell"] + [
            "create"
        ] * 6
