"""Tests for the design-rule engine."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cif.semantics import FlatGeometry
from repro.drc.engine import box_separation, check_geometry, geometry_rectangles
from repro.geometry.box import Box
from repro.geometry.layers import nmos_technology
from repro.geometry.path import Path
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon

TECH = nmos_technology()
METAL = TECH.layer("metal")
POLY = TECH.layer("poly")


def geom(*metal_boxes, paths=(), polygons=()):
    g = FlatGeometry()
    for box in metal_boxes:
        g.boxes.append((METAL, box))
    g.paths.extend(paths)
    g.polygons.extend(polygons)
    return g


class TestBoxSeparation:
    def test_overlapping(self):
        assert box_separation(Box(0, 0, 10, 10), Box(5, 5, 15, 15)) == 0

    def test_touching(self):
        assert box_separation(Box(0, 0, 10, 10), Box(10, 0, 20, 10)) == 0

    def test_horizontal_gap(self):
        assert box_separation(Box(0, 0, 10, 10), Box(15, 0, 25, 10)) == 5

    def test_vertical_gap(self):
        assert box_separation(Box(0, 0, 10, 10), Box(0, 17, 10, 27)) == 7

    def test_diagonal_takes_max(self):
        assert box_separation(Box(0, 0, 10, 10), Box(13, 18, 23, 28)) == 8

    @given(
        st.integers(min_value=-1000, max_value=1000),
        st.integers(min_value=-1000, max_value=1000),
    )
    def test_symmetric(self, dx, dy):
        a = Box(0, 0, 100, 100)
        b = a.translated(dx, dy)
        assert box_separation(a, b) == box_separation(b, a)


class TestWidthRule:
    def test_wide_enough(self):
        report = check_geometry(geom(Box(0, 0, 750, 750)), TECH)
        assert report.is_clean

    def test_too_narrow(self):
        report = check_geometry(geom(Box(0, 0, 400, 5000)), TECH)
        assert report.count("width", "metal") == 1
        v = report.violations[0]
        assert v.measured == 400
        assert v.required == 750

    def test_short_side_checked(self):
        report = check_geometry(geom(Box(0, 0, 5000, 400)), TECH)
        assert report.count("width") == 1

    def test_path_segments_checked(self):
        thin = Path(METAL, 400, (Point(0, 0), Point(5000, 0)))
        report = check_geometry(geom(paths=[thin]), TECH)
        assert report.count("width", "metal") == 1

    def test_layer_specific_rules(self):
        g = FlatGeometry()
        g.boxes.append((POLY, Box(0, 0, 500, 5000)))  # poly min is 500: ok
        g.boxes.append((METAL, Box(2000, 0, 2500, 5000)))  # metal min 750: bad
        report = check_geometry(g, TECH)
        assert report.count("width", "poly") == 0
        assert report.count("width", "metal") == 1


class TestSpacingRule:
    def test_far_apart_clean(self):
        report = check_geometry(
            geom(Box(0, 0, 1000, 1000), Box(2000, 0, 3000, 1000)), TECH
        )
        assert report.is_clean

    def test_exactly_at_rule_clean(self):
        report = check_geometry(
            geom(Box(0, 0, 1000, 1000), Box(1750, 0, 2750, 1000)), TECH
        )
        assert report.is_clean

    def test_too_close(self):
        report = check_geometry(
            geom(Box(0, 0, 1000, 1000), Box(1400, 0, 2400, 1000)), TECH
        )
        assert report.count("spacing", "metal") == 1
        assert report.violations[0].measured == 400

    def test_touching_exempt(self):
        report = check_geometry(
            geom(Box(0, 0, 1000, 1000), Box(1000, 0, 2000, 1000)), TECH
        )
        assert report.is_clean

    def test_overlapping_exempt(self):
        report = check_geometry(
            geom(Box(0, 0, 1000, 1000), Box(500, 0, 1500, 1000)), TECH
        )
        assert report.is_clean

    def test_different_layers_not_compared(self):
        g = FlatGeometry()
        g.boxes.append((METAL, Box(0, 0, 1000, 1000)))
        g.boxes.append((POLY, Box(1100, 0, 2100, 1000)))
        report = check_geometry(g, TECH)
        assert report.count("spacing") == 0

    def test_diagonal_neighbors(self):
        report = check_geometry(
            geom(Box(0, 0, 1000, 1000), Box(1200, 1300, 2200, 2300)), TECH
        )
        # max(200, 300) = 300 < 750.
        assert report.count("spacing") == 1
        assert report.violations[0].measured == 300

    def test_many_shapes_count(self):
        # A picket fence 400 apart: each adjacent pair violates.
        boxes = [Box(i * 1400, 0, i * 1400 + 1000, 5000) for i in range(10)]
        report = check_geometry(geom(*boxes), TECH)
        assert report.count("spacing", "metal") == 9


class TestReport:
    def test_by_layer(self):
        g = FlatGeometry()
        g.boxes.append((METAL, Box(0, 0, 400, 5000)))
        g.boxes.append((POLY, Box(2000, 0, 2300, 5000)))
        report = check_geometry(g, TECH)
        assert report.by_layer() == {"metal": 1, "poly": 1}

    def test_shapes_checked(self):
        report = check_geometry(geom(Box(0, 0, 1000, 1000)), TECH)
        assert report.shapes_checked == 1

    def test_violation_str(self):
        report = check_geometry(geom(Box(0, 0, 400, 5000)), TECH)
        assert "metal width 400 < 750" in str(report.violations[0])

    def test_polygon_bbox_used(self):
        poly = Polygon(METAL, (Point(0, 0), Point(5000, 0), Point(0, 5000)))
        report = check_geometry(geom(polygons=[poly]), TECH)
        assert report.shapes_checked == 1
        assert report.is_clean


class TestRealCells:
    def test_expanded_gate_is_clean(self):
        from repro.library.stock import filter_library
        from repro.sticks.expand import expand_to_cif

        library = filter_library(TECH)
        for name in ("nand", "or2", "srcell"):
            flat = expand_to_cif(library.get(name).sticks_cell, TECH).flatten()
            report = check_geometry(flat, TECH)
            assert report.is_clean, (
                f"{name}: " + "; ".join(str(v) for v in report.violations)
            )

    def test_pads_are_clean(self):
        from repro.library.stock import filter_library

        library = filter_library(TECH)
        for name in ("inpad", "outpad"):
            report = check_geometry(library.get(name).cif_cell.flatten(), TECH)
            assert report.is_clean
