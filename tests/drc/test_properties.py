"""Property-based tests for the DRC engine and the extractor.

Random rectangle soups, checked against brute-force oracles: blob
merging must match transitive closure, spacing violations must be
real gaps, and extraction connectivity must equal reachability over
the touching-graph.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cif.semantics import FlatGeometry
from repro.drc.engine import box_separation, check_geometry
from repro.extract.netlist import extract_netlist
from repro.geometry.box import Box
from repro.geometry.layers import nmos_technology
from repro.geometry.point import Point

TECH = nmos_technology()
METAL = TECH.layer("metal")

coord = st.integers(min_value=0, max_value=20).map(lambda v: v * 500)
size = st.integers(min_value=2, max_value=8).map(lambda v: v * 500)


@st.composite
def metal_boxes(draw):
    count = draw(st.integers(min_value=1, max_value=10))
    boxes = []
    for _ in range(count):
        x, y = draw(coord), draw(coord)
        boxes.append(Box(x, y, x + draw(size), y + draw(size)))
    return boxes


def geom(boxes):
    g = FlatGeometry()
    for box in boxes:
        g.boxes.append((METAL, box))
    return g


def brute_force_blobs(boxes):
    """Transitive closure of touching/overlapping, the slow way."""
    parent = list(range(len(boxes)))

    def find(i):
        while parent[i] != i:
            i = parent[i]
        return i

    changed = True
    while changed:
        changed = False
        for i, a in enumerate(boxes):
            for j, b in enumerate(boxes):
                if i < j and box_separation(a, b) == 0 and (
                    a.lly <= b.ury and b.lly <= a.ury
                ) and (a.llx <= b.urx and b.llx <= a.urx):
                    ri, rj = find(i), find(j)
                    if ri != rj:
                        parent[rj] = ri
                        changed = True
    return [find(i) for i in range(len(boxes))]


class TestDrcProperties:
    @settings(max_examples=60, deadline=None)
    @given(metal_boxes())
    def test_no_violations_between_same_blob(self, boxes):
        report = check_geometry(geom(boxes), TECH)
        blobs = brute_force_blobs(boxes)
        # Every reported spacing violation separates distinct blobs.
        for violation in report.violations:
            if violation.rule != "spacing":
                continue
            # The gap box touches both offenders; find candidates.
            near = [
                i
                for i, b in enumerate(boxes)
                if box_separation(b, violation.location) == 0
            ]
            assert len({blobs[i] for i in near}) >= 2 or len(near) < 2

    @settings(max_examples=60, deadline=None)
    @given(metal_boxes())
    def test_violation_distances_are_real(self, boxes):
        report = check_geometry(geom(boxes), TECH)
        sep = TECH.min_separation("metal")
        for violation in report.violations:
            if violation.rule == "spacing":
                assert 0 < violation.measured < sep

    @settings(max_examples=60, deadline=None)
    @given(metal_boxes())
    def test_spread_out_layout_is_clean(self, boxes):
        # Spacing every box onto a generous grid removes all violations.
        spread = [
            b.translated(i * 50000, i * 50000) for i, b in enumerate(boxes)
        ]
        report = check_geometry(geom(spread), TECH)
        assert report.count("spacing") == 0

    @settings(max_examples=60, deadline=None)
    @given(metal_boxes())
    def test_deterministic(self, boxes):
        a = check_geometry(geom(boxes), TECH)
        b = check_geometry(geom(boxes), TECH)
        assert [str(v) for v in a.violations] == [str(v) for v in b.violations]


class TestExtractionProperties:
    @settings(max_examples=60, deadline=None)
    @given(metal_boxes())
    def test_connectivity_matches_brute_force(self, boxes):
        netlist = extract_netlist(geom(boxes), TECH)
        blobs = brute_force_blobs(boxes)
        for i, a in enumerate(boxes):
            for j, b in enumerate(boxes):
                if i >= j:
                    continue
                same = netlist.connected(a.center, "metal", b.center, "metal")
                # Centre probes can be ambiguous when boxes overlap a
                # third shape; restrict the oracle to blob equality.
                if blobs[i] == blobs[j]:
                    assert same
                elif not any(
                    k != i and k != j
                    and boxes[k].contains_point(a.center)
                    or boxes[k].contains_point(b.center)
                    for k in range(len(boxes))
                ):
                    assert not same

    @settings(max_examples=60, deadline=None)
    @given(metal_boxes())
    def test_node_count_matches_blob_count(self, boxes):
        netlist = extract_netlist(geom(boxes), TECH)
        assert netlist.node_count == len(set(brute_force_blobs(boxes)))

    @settings(max_examples=40, deadline=None)
    @given(metal_boxes(), st.integers(min_value=-3, max_value=3))
    def test_translation_invariant(self, boxes, k):
        d = k * 12345
        moved = [b.translated(d, -d) for b in boxes]
        a = extract_netlist(geom(boxes), TECH)
        b = extract_netlist(geom(moved), TECH)
        assert a.node_count == b.node_count
