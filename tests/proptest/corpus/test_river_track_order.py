"""Regression: overlapping same-direction jogs must order their tracks.

Found by the river oracle (seed 0).  Two rightward wires whose jog
spans overlap: B enters at u=1500, inside A's jog span (0, 3000).  The
original greedy packer put A on the lower track, so B's entry vertical
crossed A's horizontal jog at (1500, track_A) — a same-layer short.
The later-entering wire must jog on the lower track.
"""

from repro.core.river import RiverWire, route_channel
from repro.geometry.layers import nmos_technology
from repro.proptest.oracles import same_layer_conflicts


def test_overlapping_rightward_jogs_order_their_tracks():
    wires = [
        RiverWire("A", "metal", 750, u_in=0, u_out=3000),
        RiverWire("B", "metal", 750, u_in=1500, u_out=4500),
    ]
    route = route_channel(wires, nmos_technology())
    a, b = route.wires
    assert same_layer_conflicts(route) == []
    assert b.track_v < a.track_v
    assert route.tracks_by_layer["metal"] == 2
