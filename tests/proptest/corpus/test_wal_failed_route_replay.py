"""Regression: a failed ROUTE must journal its pending-clear.

Found by analysis while building the wal oracle.  ROUTE/ABUT/STRETCH
throw the pending list away whether or not they succeed ("after the
connection specification command, the logical connection information
is thrown out"), but the transactional wrapper also rolls the failed
command's entry out of the journal.  Without a substitute
``clear_pending`` entry, a replayed session kept connections the live
session had discarded: here, two crossed pairs that the route refuses
live on as pending connections after replay, and the session digests
diverge.
"""

from repro.composition.cell import LeafCell
from repro.core import wal
from repro.core.editor import RiotEditor
from repro.core.errors import RiotError
from repro.geometry.layers import nmos_technology
from repro.geometry.point import Point
from repro.proptest import gen

TO_CELL = {
    "name": "to_leaf", "lambda": 250, "pin_side": "top",
    "columns": 2, "grid": 3000, "depth": 9000,
    "pins": [
        {"name": "P0", "layer": "metal", "column": 0},
        {"name": "P1", "layer": "metal", "column": 1},
    ],
    "risers": [], "contacts": [], "devices": [], "spine": None,
}
FROM_CELL = {
    "name": "from_leaf", "lambda": 250, "pin_side": "bottom",
    "columns": 2, "grid": 3000, "depth": 9000,
    "pins": [
        {"name": "P0", "layer": "metal", "column": 0},
        {"name": "P1", "layer": "metal", "column": 1},
    ],
    "risers": [], "contacts": [], "devices": [], "spine": None,
}


def _editor(path=None):
    editor = RiotEditor(nmos_technology(), wal=path)
    for case in (TO_CELL, FROM_CELL):
        editor.library.add(
            LeafCell.from_sticks(gen.build_sticks_cell(case), editor.technology)
        )
    return editor


def test_failed_route_replays_to_an_equivalent_session(tmp_path):
    path = tmp_path / "session.rpl"
    editor = _editor(str(path))
    editor.new_cell("top")
    editor.create(Point(0, 0), cell_name="to_leaf", name="TO")
    editor.create(Point(0, 30000), cell_name="from_leaf", name="FROM")
    # Crossed pairs pass pending validation and fail inside plan_route.
    editor.connect("FROM", "P0", "TO", "P1")
    editor.connect("FROM", "P1", "TO", "P0")
    try:
        editor.do_route()
        raise AssertionError("crossed pairs must be refused")
    except RiotError:
        pass
    assert len(editor.pending) == 0
    want = gen.describe_editor(editor)
    editor.journal.writer.close()

    fresh = _editor()
    journal = wal.load_path(str(path))
    report = journal.replay(fresh, mode="strict")
    assert report.clean
    assert len(fresh.pending) == 0
    assert gen.describe_editor(fresh) == want


def test_failed_route_with_empty_pending_adds_no_entry(tmp_path):
    path = tmp_path / "session.rpl"
    editor = _editor(str(path))
    editor.new_cell("top")
    before = len(editor.journal.entries)
    try:
        editor.do_route()
        raise AssertionError("ROUTE with no pending must be refused")
    except RiotError:
        pass
    # Nothing was cleared, so nothing extra may be journalled.
    assert len(editor.journal.entries) == before
