"""Regression: a wire entering exactly where another exits.

Found by the river oracle while shrinking (seed 0).  A exits at
u=1000 and B enters at u=1000: both wires own a vertical run on the
same line, so they only stay apart if B jogs strictly below A — B's
entry vertical then ends before A's exit vertical begins.  Track
sharing or inverted order shorts them along u=1000.
"""

from repro.core.river import RiverWire, route_channel
from repro.geometry.layers import nmos_technology
from repro.proptest.oracles import same_layer_conflicts


def test_shared_vertical_line_forces_strict_track_order():
    wires = [
        RiverWire("A", "metal", 750, u_in=0, u_out=1000),
        RiverWire("B", "metal", 750, u_in=1000, u_out=4000),
    ]
    route = route_channel(wires, nmos_technology())
    a, b = route.wires
    assert same_layer_conflicts(route) == []
    assert b.track_v < a.track_v
