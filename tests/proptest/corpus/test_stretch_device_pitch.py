"""Boundary: adjacent transistor columns need a 9-lambda pitch.

Found by the stretch oracle (seed 0) back when leaf cells were
generated on an 8-lambda grid: two neighbouring transistors place
6-lambda diffusion occupants on different nets, demanding
3 + 3 + 3 = 9 lambda of pitch — more than the grid itself, so the
"gaps only grow" feasibility argument collapsed.  The solver was
right and the generator wrong (cells now sit on a 12-lambda grid).
This pins the exact boundary: 9 lambda between pinned transistor
columns is satisfiable, one centimicron less is not.
"""

import pytest

from repro.proptest import gen
from repro.rest.errors import InfeasibleConstraints
from repro.rest.stretch import stretch_pins

CELL = {
    "name": "twodev", "lambda": 250, "pin_side": "left",
    "columns": 2, "grid": 3000, "depth": 9000,
    "pins": [
        {"name": "P0", "layer": "poly", "column": 0},
        {"name": "P1", "layer": "poly", "column": 1},
    ],
    "risers": [
        {"column": 0, "layer": "poly"},
        {"column": 1, "layer": "poly"},
    ],
    "contacts": [],
    "devices": [
        {"column": 0, "kind": "enh"},
        {"column": 1, "kind": "enh"},
    ],
    "spine": None,
}

NINE_LAMBDA = 9 * 250


def test_nine_lambda_pitch_is_exactly_satisfiable():
    cell = gen.build_sticks_cell(CELL)
    tech = gen.build_technology(CELL)
    stretched = stretch_pins(
        cell, "y", {"P0": 0, "P1": NINE_LAMBDA}, tech, name="squeezed"
    )
    assert stretched.pin("P0").point.y == 0
    assert stretched.pin("P1").point.y == NINE_LAMBDA


def test_below_nine_lambda_is_infeasible():
    cell = gen.build_sticks_cell(CELL)
    tech = gen.build_technology(CELL)
    with pytest.raises(InfeasibleConstraints):
        stretch_pins(
            cell, "y", {"P0": 0, "P1": NINE_LAMBDA - 1}, tech, name="toofar"
        )
