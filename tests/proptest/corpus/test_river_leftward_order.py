"""Regression: leftward jog pairs order their tracks the other way.

Mirror image of the rightward case: for wires jogging toward -u, the
later-entering wire's *exit* vertical lands inside the earlier wire's
jog span, so it must jog strictly *above* — the opposite of the
rightward rule.  A single sort order cannot satisfy both directions;
the assigner must derive the constraint from the geometry.
"""

from repro.core.river import RiverWire, route_channel
from repro.geometry.layers import nmos_technology
from repro.proptest.oracles import same_layer_conflicts


def test_overlapping_leftward_jogs_order_their_tracks():
    wires = [
        RiverWire("A", "metal", 750, u_in=3000, u_out=0),
        RiverWire("B", "metal", 750, u_in=4500, u_out=1500),
    ]
    route = route_channel(wires, nmos_technology())
    a, b = route.wires
    assert same_layer_conflicts(route) == []
    assert b.track_v > a.track_v


def test_mixed_direction_groups_stay_planar():
    # Disjoint spans, opposite directions: no constraints, dense packing.
    wires = [
        RiverWire("L", "metal", 750, u_in=12000, u_out=9000),
        RiverWire("R", "metal", 750, u_in=0, u_out=3000),
    ]
    route = route_channel(wires, nmos_technology())
    assert same_layer_conflicts(route) == []
    assert route.tracks_by_layer["metal"] == 1  # they share the track
