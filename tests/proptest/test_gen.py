"""The generators: deterministic, JSON-clean, and honest about validity."""

import json

import pytest

from repro.proptest import gen
from repro.proptest.prng import Rng


def test_prng_known_answers():
    # SplitMix64 is spelled out so a seed means the same stream on
    # every platform and Python version; pin a few draws.
    rng = Rng(0)
    assert [rng.randint(0, 10**9) for _ in range(3)] == [
        364399135,
        234069186,
        983928661,
    ]


def test_prng_fork_independence():
    rng = Rng(42)
    a = rng.fork("a")
    b = rng.fork("b")
    first_b = b.randint(0, 10**9)
    # Draining one fork must not perturb a sibling fork.
    for _ in range(100):
        a.randint(0, 10**9)
    assert Rng(42).fork("b").randint(0, 10**9) == first_b


@pytest.mark.parametrize(
    "generate",
    [
        gen.gen_river_case,
        gen.gen_abut_case,
        gen.gen_stretch_case,
        gen.gen_session_case,
        gen.gen_pipeline_case,
    ],
)
def test_cases_are_json_and_deterministic(generate):
    for seed in range(5):
        case = generate(Rng(seed))
        again = generate(Rng(seed))
        assert case == again
        assert json.loads(json.dumps(case)) == case


def test_river_cases_build_and_are_planar():
    from repro.core.river import route_channel

    for seed in range(20):
        case = gen.gen_river_case(Rng(seed))
        wires = gen.build_river_wires(case)
        assert wires
        # Planar by construction: the router accepts every generated set.
        route_channel(wires, gen.build_technology(case))


def test_sticks_cases_build_valid_cells():
    for seed in range(20):
        case = gen.gen_sticks_case(Rng(seed))
        cell = gen.build_sticks_cell(case)
        assert cell.pins
        assert cell.boundary is not None


def test_stretch_cases_are_feasible_by_construction():
    # build_stretch_setup enforces the two preconditions the stretch
    # oracle's feasibility argument rests on; generated cases must
    # never trip them.
    for seed in range(20):
        case = gen.gen_stretch_case(Rng(seed))
        cell, axis, targets, _tech = gen.build_stretch_setup(case)
        assert targets
        for name in targets:
            assert cell.has_pin(name)
        assert axis in ("x", "y")


def test_builders_reject_malformed_cases():
    with pytest.raises(gen.CaseInvalid):
        gen.build_river_wires({"wires": []})
    with pytest.raises(gen.CaseInvalid):
        gen.build_river_wires(
            {"wires": [{"name": "w", "layer": "nosuch", "width": 500,
                        "u_in": 0, "u_out": 0, "entry_v": 0}]}
        )
    with pytest.raises(gen.CaseInvalid):
        gen.build_technology({"lambda": 0})
    case = gen.gen_stretch_case(Rng(0))
    bad = json.loads(json.dumps(case))
    bad["axis"] = "z"
    with pytest.raises(gen.CaseInvalid):
        gen.build_stretch_setup(bad)


def test_stretch_setup_rejects_shrunken_gaps():
    # Targets that squeeze pinned columns closer than they started are
    # outside the feasible-by-construction contract: CaseInvalid, so
    # the shrinker cannot morph a solver bug into an infeasible input.
    case = gen.gen_stretch_case(Rng(3))
    names = sorted(case["targets"])
    if len(names) < 2:
        case["targets"][names[0] + "X"] = 0  # force a malformed pin instead
        with pytest.raises(gen.CaseInvalid):
            gen.build_stretch_setup(case)
        return
    squeezed = json.loads(json.dumps(case))
    squeezed["targets"][names[0]] = squeezed["targets"][names[-1]]
    with pytest.raises(gen.CaseInvalid):
        gen.build_stretch_setup(squeezed)
