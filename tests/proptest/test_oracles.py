"""The oracles: green on generated cases, loud on violated guarantees."""

import json

import pytest

from repro.core.river import RiverWire, route_channel
from repro.geometry.layers import nmos_technology
from repro.proptest import gen
from repro.proptest.oracles import (
    ORACLES,
    OracleFailure,
    same_layer_conflicts,
)
from repro.proptest.prng import Rng


def test_registry_names_and_claims():
    assert sorted(ORACLES) == [
        "abut",
        "floorplan",
        "pipeline",
        "river",
        "stretch",
        "wal",
    ]
    for oracle in ORACLES.values():
        assert oracle.claim
        assert oracle.cost >= 1


@pytest.mark.parametrize("name", sorted(ORACLES))
def test_oracle_green_on_generated_cases(name):
    oracle = ORACLES[name]
    budget = max(2, 10 // oracle.cost)
    stream = Rng(1234).fork(name)
    for index in range(budget):
        case = oracle.generate(stream.fork(index))
        assert oracle.check(case) in (None, "vacuous")


def test_river_oracle_vacuous_on_nonplanar_case():
    case = {
        "lambda": 250,
        "tracks_per_channel": 4,
        "wires": [
            {"name": "a", "layer": "metal", "width": 750,
             "u_in": 0, "u_out": 5000, "entry_v": 0},
            {"name": "b", "layer": "metal", "width": 750,
             "u_in": 2500, "u_out": 1000, "entry_v": 0},
        ],
    }
    # The router refuses crossing wires; refusal is not a failure.
    assert ORACLES["river"].check(case) == "vacuous"


def test_same_layer_conflicts_detects_crossing():
    tech = nmos_technology()
    wires = [
        RiverWire("a", "metal", 750, u_in=0, u_out=6000),
        RiverWire("b", "metal", 750, u_in=3000, u_out=9000),
    ]
    route = route_channel(wires, tech)
    assert same_layer_conflicts(route) == []
    # Force the illegal order the old greedy packer produced.
    a, b = route.wires
    a.track_v, b.track_v = b.track_v, a.track_v
    assert same_layer_conflicts(route) == [("a", "b")]


def test_stretch_oracle_accepts_perturbed_feasible_targets():
    # Growing the last gap keeps the case feasible; the solver must
    # still honour it exactly.
    case = json.loads(json.dumps(gen.gen_stretch_case(Rng(5))))
    names = sorted(case["targets"])
    case["targets"][names[-1]] += 250
    assert ORACLES["stretch"].check(case) is None


def test_stretch_oracle_fails_on_missed_target(monkeypatch):
    import repro.rest.stretch as stretch_mod

    def identity_stretch(cell, axis, pin_targets, tech, name=None):
        return cell.remapped(name or cell.name, lambda c: c, lambda c: c)

    monkeypatch.setattr(stretch_mod, "stretch_pins", identity_stretch)
    stream = Rng(9).fork("stretch")
    tripped = False
    for index in range(20):
        case = ORACLES["stretch"].generate(stream.fork(index))
        try:
            ORACLES["stretch"].check(case)
        except OracleFailure as exc:
            assert "constrained to" in str(exc)
            tripped = True
            break
    assert tripped, "identity stretch never missed a target"


def test_abut_oracle_fails_on_unmoved_from(monkeypatch):
    import repro.core.abut as abut_mod
    from repro.core.abut import AbutResult

    def lazy_abut(pending, overlap=False):
        # A broken abutment that reports success without moving anything.
        return AbutResult(moved_by=None, warnings=[], made=len(pending))

    monkeypatch.setattr(abut_mod, "abut", lazy_abut)
    case = gen.gen_abut_case(Rng(2))
    with pytest.raises(OracleFailure):
        ORACLES["abut"].check(case)


def test_wal_oracle_fails_on_dropped_entries(monkeypatch):
    from repro.core.replay import Journal

    recorded = Journal.record

    def leaky_record(self, command, **kwargs):
        if command == "move_by":
            return None  # lose MOVE BY commands: replay must diverge
        return recorded(self, command, **kwargs)

    monkeypatch.setattr(Journal, "record", leaky_record)
    stream = Rng(77).fork("wal")
    tripped = False
    for index in range(30):
        case = ORACLES["wal"].generate(stream.fork(index))
        if not any(op.get("op") == "move_by" for op in case.get("ops", [])):
            continue
        try:
            ORACLES["wal"].check(case)
        except OracleFailure:
            tripped = True
            break
    assert tripped, "no session with a move_by diverged under a leaky journal"
