"""The acceptance demo: an injected router bug is caught and shrunk small.

``buggy_assign_tracks`` below is the track assigner this repository
shipped before the proptest subsystem existed: greedy left-edge
packing sorted by jog start, blind to the order constraints between a
wire's jog and its neighbours' vertical runs.  Injecting it back in
must make the river oracle fail, and the shrinker must cut the
failure down to a reproducer of at most 3 wires.
"""

import pytest

import repro.core.river as river_mod
from repro.proptest import gen
from repro.proptest.oracles import ORACLES
from repro.proptest.prng import Rng
from repro.proptest.runner import run_fuzz
from repro.proptest.shrink import (
    case_size,
    failure_predicate,
    shrink_case,
)


def buggy_assign_tracks(group, pitch, technology):
    jogging = [w for w in group if w.needs_jog]
    for wire in group:
        wire.track_index = None
    if not jogging:
        return 0
    jogging.sort(key=lambda w: min(w.u_in, w.u_out))
    track_last_end = []
    sep = technology.min_separation(group[0].layer_name)
    for wire in jogging:
        start = min(wire.u_in, wire.u_out) - wire.width // 2
        end = max(wire.u_in, wire.u_out) + wire.width // 2
        for index, last_end in enumerate(track_last_end):
            if start > last_end + sep:
                track_last_end[index] = end
                wire.track_index = index
                break
        else:
            track_last_end.append(end)
            wire.track_index = len(track_last_end) - 1
    return len(track_last_end)


def test_injected_router_bug_is_caught_and_shrunk(monkeypatch):
    monkeypatch.setattr(river_mod, "_assign_tracks", buggy_assign_tracks)
    summary = run_fuzz(
        seed=0, cases=30, oracles=["river"], corpus_dir=None, shrink=True
    )
    assert not summary["ok"]
    failures = summary["oracles"]["river"]["failures"]
    assert failures, "the river oracle missed the injected bug"
    smallest = min(failures, key=lambda f: len(f["case"]["wires"]))
    assert len(smallest["case"]["wires"]) <= 3
    # The shrunk case still demonstrates the same class of violation.
    assert "cross or touch" in smallest["shrunk_error"]


def test_shrunk_reproducer_passes_on_fixed_router():
    # The same seed/budget that finds the bug above runs green against
    # the constraint-ordered assigner that fixed it.
    summary = run_fuzz(
        seed=0, cases=30, oracles=["river"], corpus_dir=None, shrink=False
    )
    assert summary["ok"]


def test_shrink_reaches_fixpoint_on_synthetic_predicate():
    # Failure iff at least two wires with u_in >= 1000 are present:
    # the minimum is exactly two such wires, everything else dropped.
    case = {
        "lambda": 250,
        "tracks_per_channel": 4,
        "wires": [
            {"name": f"w{i}", "layer": "metal", "width": 750,
             "u_in": 1000 * i, "u_out": 1000 * i + 500, "entry_v": 0}
            for i in range(8)
        ],
    }

    def fails(candidate):
        wires = candidate.get("wires", [])
        return sum(1 for w in wires if w.get("u_in", 0) >= 1000) >= 2

    shrunk = shrink_case(case, fails)
    assert fails(shrunk)
    assert len(shrunk["wires"]) == 2
    assert case_size(shrunk) < case_size(case)


def test_failure_predicate_treats_invalid_as_pass():
    fails = failure_predicate(ORACLES["river"].check)
    assert fails({"wires": []}) is False  # CaseInvalid, not a bug


def test_generated_failures_shrink_monotonically(monkeypatch):
    monkeypatch.setattr(river_mod, "_assign_tracks", buggy_assign_tracks)
    check = ORACLES["river"].check
    fails = failure_predicate(check)
    stream = Rng(0).fork("river")
    for index in range(30):
        case = ORACLES["river"].generate(stream.fork(index))
        if not fails(case):
            continue
        shrunk = shrink_case(case, fails)
        assert fails(shrunk)
        assert case_size(shrunk) <= case_size(case)
        return
    pytest.fail("no failing case found to shrink")
