"""The fuzz runner and its CLI: determinism, corpus replay, exit codes."""

import json
import os
import subprocess
import sys

import pytest

import repro.core.river as river_mod
from repro.proptest.runner import format_summary, run_fuzz
from tests.proptest.test_shrink import buggy_assign_tracks

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def test_identical_runs_are_identical():
    a = run_fuzz(seed=3, cases=20, corpus_dir=None)
    b = run_fuzz(seed=3, cases=20, corpus_dir=None)
    assert format_summary(a) == format_summary(b)


def test_different_seeds_draw_different_cases():
    from repro.proptest.oracles import ORACLES
    from repro.proptest.prng import Rng

    gen = ORACLES["river"].generate
    assert gen(Rng(0).fork("river").fork(0)) != gen(Rng(1).fork("river").fork(0))


def test_cost_scales_budgets():
    summary = run_fuzz(seed=0, cases=40, corpus_dir=None, shrink=False)
    assert summary["oracles"]["river"]["budget"] == 40
    assert summary["oracles"]["wal"]["budget"] == 10  # cost 4
    assert summary["oracles"]["pipeline"]["budget"] == 5  # cost 8


def test_unknown_oracle_is_an_error():
    with pytest.raises(ValueError, match="unknown oracle"):
        run_fuzz(seed=0, cases=1, oracles=["nosuch"], corpus_dir=None)


def test_corpus_replays_before_fresh_cases(tmp_path):
    case = {
        "lambda": 250,
        "tracks_per_channel": 4,
        "wires": [
            {"name": "a", "layer": "metal", "width": 750,
             "u_in": 0, "u_out": 6000, "entry_v": 0},
        ],
    }
    (tmp_path / "repro_river_seed.json").write_text(
        json.dumps({"oracle": "river", "case": case, "error": ""})
    )
    summary = run_fuzz(
        seed=0, cases=1, oracles=["river"], corpus_dir=str(tmp_path)
    )
    assert summary["corpus"]["replayed"] == 1
    assert summary["corpus"]["failures"] == []


def test_corpus_failure_fails_the_run(tmp_path, monkeypatch):
    monkeypatch.setattr(river_mod, "_assign_tracks", buggy_assign_tracks)
    case = {
        "lambda": 250,
        "tracks_per_channel": 4,
        "wires": [
            {"name": "a", "layer": "metal", "width": 750,
             "u_in": 0, "u_out": 3000, "entry_v": 0},
            {"name": "b", "layer": "metal", "width": 750,
             "u_in": 1500, "u_out": 4500, "entry_v": 0},
        ],
    }
    (tmp_path / "repro_river_crossing.json").write_text(
        json.dumps({"oracle": "river", "case": case, "error": ""})
    )
    summary = run_fuzz(
        seed=0, cases=1, oracles=["stretch"], corpus_dir=str(tmp_path)
    )
    # The corpus file targets the river oracle, which was not selected.
    assert summary["corpus"]["replayed"] == 0
    summary = run_fuzz(
        seed=0, cases=1, oracles=["river"], corpus_dir=str(tmp_path),
        shrink=False,
    )
    assert summary["corpus"]["replayed"] == 1
    assert summary["corpus"]["failures"]
    assert not summary["ok"]


def test_save_writes_reproducers(tmp_path, monkeypatch):
    monkeypatch.setattr(river_mod, "_assign_tracks", buggy_assign_tracks)
    out = tmp_path / "found"
    summary = run_fuzz(
        seed=0, cases=10, oracles=["river"], corpus_dir=None,
        save_dir=str(out),
    )
    assert not summary["ok"]
    written = sorted(os.listdir(out))
    assert written
    payload = json.loads((out / written[0]).read_text())
    assert payload["oracle"] == "river"
    assert payload["case"]["wires"]


def _run_cli(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro", "fuzz", *args],
        capture_output=True,
        text=True,
        env=env,
    )


def test_cli_byte_identical_and_exit_zero():
    args = ("--seed", "0", "--cases", "15", "--corpus", os.devnull)
    first = _run_cli(*args)
    second = _run_cli(*args)
    assert first.returncode == 0, first.stderr
    assert first.stdout == second.stdout
    summary = json.loads(first.stdout)
    assert summary["ok"] is True
    assert sorted(summary["oracles"]) == [
        "abut", "floorplan", "pipeline", "river", "stretch", "wal",
    ]


def test_cli_unknown_oracle_exit_two():
    result = _run_cli("--seed", "0", "--cases", "1", "--oracle", "bogus")
    assert result.returncode == 2
    assert "unknown oracle" in result.stderr


def test_cli_writes_out_file(tmp_path):
    out = tmp_path / "summary.json"
    result = _run_cli(
        "--seed", "1", "--cases", "5", "--oracle", "river",
        "--corpus", os.devnull, "--out", str(out),
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout == ""
    assert json.loads(out.read_text())["ok"] is True
