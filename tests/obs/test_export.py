"""Exporters: JSONL and Chrome trace-event, determinism, validation."""

import json

from repro.obs import export
from repro.obs.clock import FixedClock
from repro.obs.trace import Tracer


def sample_tracer() -> Tracer:
    tracer = Tracer(clock=FixedClock(step=0.001))
    with tracer.span("command.do_route", category="command", wal_seq=3):
        with tracer.span("river.plan", wires=2) as inner:
            inner.set("tracks", 1)
    return tracer


class TestJsonl:
    def test_round_trip(self):
        tracer = sample_tracer()
        text = "\n".join(
            export.jsonl_lines(tracer.finished(), {"wal.appends": 4})
        )
        spans, metrics = export.read_jsonl(text)
        assert [s["name"] for s in spans] == ["command.do_route", "river.plan"]
        assert metrics == {"wal.appends": 4}

    def test_meta_line_first(self):
        lines = export.jsonl_lines([])
        meta = json.loads(lines[0])
        assert meta == {
            "type": "meta",
            "format": export.JSONL_FORMAT,
            "version": export.JSONL_VERSION,
        }

    def test_parentage_survives_round_trip(self):
        tracer = sample_tracer()
        spans, _ = export.read_jsonl(
            "\n".join(export.jsonl_lines(tracer.finished()))
        )
        by_name = {s["name"]: s for s in spans}
        assert by_name["river.plan"]["parent"] == by_name["command.do_route"]["id"]
        assert by_name["command.do_route"]["parent"] is None

    def test_write_and_read_file(self, tmp_path):
        tracer = sample_tracer()
        path = tmp_path / "trace.jsonl"
        export.write_jsonl(path, tracer.finished(), {"c": 1})
        spans, metrics = export.read_jsonl(path.read_text())
        assert len(spans) == 2
        assert metrics == {"c": 1}

    def test_unknown_event_type_rejected(self):
        try:
            export.read_jsonl('{"type":"mystery"}')
        except ValueError as exc:
            assert "mystery" in str(exc)
        else:
            raise AssertionError("expected ValueError")


class TestChrome:
    def test_events_are_complete_phase(self):
        tracer = sample_tracer()
        events = export.chrome_events(tracer.finished())
        assert [e["ph"] for e in events] == ["X", "X"]
        assert all(e["pid"] == export.PID for e in events)
        # Microsecond integers from the fixed clock.
        route = next(e for e in events if e["name"] == "command.do_route")
        assert isinstance(route["ts"], int)
        assert route["dur"] > 0

    def test_attrs_and_parent_ride_in_args(self):
        tracer = sample_tracer()
        events = export.chrome_events(tracer.finished())
        by_name = {e["name"]: e for e in events}
        route, plan = by_name["command.do_route"], by_name["river.plan"]
        assert route["args"]["wal_seq"] == 3
        assert "parent_id" not in route["args"]
        assert plan["args"]["parent_id"] == route["args"]["span_id"]
        assert plan["args"]["tracks"] == 1

    def test_document_round_trip(self, tmp_path):
        tracer = sample_tracer()
        path = tmp_path / "trace.json"
        export.write_chrome(
            path, tracer.finished(), {"wal.appends": 4}, unclosed=0
        )
        doc = export.read_chrome(path.read_text())
        assert export.validate_chrome(doc) == []
        assert doc["riot"]["metrics"] == {"wal.appends": 4}
        assert doc["riot"]["unclosed_spans"] == 0

    def test_exotic_attrs_are_stringified(self):
        tracer = Tracer(clock=FixedClock())
        with tracer.span("op", where=object()):
            pass
        (event,) = export.chrome_events(tracer.finished())
        assert isinstance(event["args"]["where"], str)


class TestValidateChrome:
    def test_rejects_non_object(self):
        assert export.validate_chrome([]) != []

    def test_rejects_missing_trace_events(self):
        assert export.validate_chrome({}) == ["missing traceEvents list"]

    def test_rejects_missing_keys_and_bad_dur(self):
        doc = {
            "traceEvents": [
                {"ph": "X", "ts": 0, "pid": 1, "tid": 0, "dur": -5},
            ]
        }
        problems = export.validate_chrome(doc)
        assert any("missing 'name'" in p for p in problems)
        assert any("bad dur" in p for p in problems)

    def test_rejects_unclosed_spans(self):
        doc = export.chrome_document([], unclosed=2)
        assert export.validate_chrome(doc) == ["2 span(s) unclosed at exit"]


class TestDeterminism:
    def run_once(self) -> tuple[str, str]:
        """One traced 'session' under a fixed clock; returns both export
        texts."""
        tracer = Tracer(clock=FixedClock(step=0.001))
        with tracer.span("command.create", category="command", wal_seq=0):
            pass
        with tracer.span("command.do_abut", category="command", wal_seq=1):
            with tracer.span("abut.solve", connections=1):
                pass
        jsonl = "\n".join(export.jsonl_lines(tracer.finished(), {"n": 1}))
        chrome = export.chrome_text(tracer.finished(), {"n": 1})
        return jsonl, chrome

    def test_two_runs_are_byte_identical(self):
        assert self.run_once() == self.run_once()
