"""End-to-end: ``python -m repro --trace --metrics`` in a subprocess.

Runs the committed example session (`examples/obs_session.txt`) the
way the CI obs-smoke job does and checks the acceptance criteria: a
valid Chrome trace-event document with nested spans for ABUT, ROUTE,
STRETCH, WAL appends and pipeline verify tasks, command spans carrying
their WAL sequence numbers, and a metrics dump on stdout.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs.export import validate_chrome

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src"
SESSION_SCRIPT = REPO / "examples" / "obs_session.txt"
SUBPROCESS_ENV = {
    **os.environ,
    "PYTHONPATH": str(SRC) + os.pathsep + os.environ.get("PYTHONPATH", ""),
}


@pytest.fixture(scope="module")
def traced_session(tmp_path_factory):
    workdir = tmp_path_factory.mktemp("obs-cli")
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro",
            str(SESSION_SCRIPT),
            "--journal",
            "demo.rpl",
            "--trace",
            "trace.json",
            "--metrics",
        ],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=str(workdir),
        env=SUBPROCESS_ENV,
    )
    return workdir, result


class TestTracedSession:
    def test_session_succeeds(self, traced_session):
        _, result = traced_session
        assert result.returncode == 0, result.stdout + result.stderr

    def test_trace_file_validates(self, traced_session):
        workdir, _ = traced_session
        doc = json.loads((workdir / "trace.json").read_text())
        assert validate_chrome(doc) == []
        assert doc["riot"]["unclosed_spans"] == 0

    def test_acceptance_spans_present_and_nested(self, traced_session):
        workdir, _ = traced_session
        doc = json.loads((workdir / "trace.json").read_text())
        events = doc["traceEvents"]
        by_id = {e["args"]["span_id"]: e for e in events}
        names = {e["name"] for e in events}
        for required in (
            "command.do_abut",
            "command.do_route",
            "command.do_stretch",
            "command.verify",
            "abut.solve",
            "river.route_channel",
            "rest.solve_axis",
            "wal.append",
            "pipeline.task",
        ):
            assert required in names, required
        # Engine spans nest under commands; a verify task nests under
        # the verify command.
        task = next(e for e in events if e["name"] == "pipeline.task")
        assert by_id[task["args"]["parent_id"]]["name"] == "command.verify"
        append = next(e for e in events if e["name"] == "wal.append")
        parent = by_id[append["args"]["parent_id"]]
        assert parent["name"].startswith("command.")

    def test_command_spans_carry_wal_seq(self, traced_session):
        workdir, _ = traced_session
        doc = json.loads((workdir / "trace.json").read_text())
        seqs = [
            e["args"]["wal_seq"]
            for e in doc["traceEvents"]
            if e["name"].startswith("command.") and "wal_seq" in e["args"]
        ]
        assert seqs == sorted(seqs)
        assert len(seqs) >= 10
        # The WAL seq is the entry's line index in the journal file.
        journal_lines = [
            line
            for line in (workdir / "demo.rpl").read_text().splitlines()
            if line and not line.startswith("#")
        ]
        assert len(journal_lines) == len(seqs)

    def test_metrics_dump_on_stdout(self, traced_session):
        _, result = traced_session
        assert "wal.appends" in result.stdout
        assert "river.routes" in result.stdout
        assert "abut.solved" in result.stdout

    def test_trace_command_in_session_writes_from_cwd(self, traced_session):
        workdir, _ = traced_session
        # The session's own `savereplay` wrote relative to the cwd.
        assert (workdir / "demo.replay").exists()
