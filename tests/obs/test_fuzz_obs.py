"""Fuzzing under observability: metrics wiring and trace determinism.

The fuzz runner's JSON summary stays a pure function of (seed, budget,
oracles) — timings live in the metrics registry and the trace.  Under
a fixed clock and a fixed seed the trace itself is deterministic too:
two runs export byte-identical JSONL.
"""

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.clock import FixedClock, set_clock
from repro.obs.export import jsonl_lines
from repro.proptest.runner import run_fuzz


def traced_run(seed: int = 0, cases: int = 5) -> tuple[str, dict]:
    """One fuzz run under fixed clock + fresh tracer/registry; returns
    (JSONL export text, summary)."""
    previous_registry = obs_metrics.set_registry(obs_metrics.MetricsRegistry())
    previous_clock = set_clock(FixedClock(step=0.001))
    tracer = obs_trace.enable(obs_trace.Tracer())
    try:
        summary = run_fuzz(
            seed=seed, cases=cases, corpus_dir=None, shrink=False
        )
    finally:
        obs_trace.disable()
        set_clock(previous_clock)
        snapshot = obs_metrics.registry().snapshot()
        obs_metrics.set_registry(previous_registry)
    text = "\n".join(jsonl_lines(tracer.finished(), snapshot))
    return text, summary


class TestFuzzMetrics:
    def test_per_oracle_wall_time_and_throughput_recorded(self):
        text, _ = traced_run()
        assert "fuzz.cases" in text
        assert "fuzz.oracle.abut.wall_s" in text
        assert "fuzz.oracle.abut.cases_per_s" in text

    def test_oracle_spans_closed_with_outcome_attrs(self):
        previous_clock = set_clock(FixedClock())
        tracer = obs_trace.enable(obs_trace.Tracer())
        try:
            run_fuzz(seed=0, cases=3, oracles=["abut"], corpus_dir=None)
        finally:
            obs_trace.disable()
            set_clock(previous_clock)
        assert tracer.open_count() == 0
        oracle_spans = [
            r for r in tracer.finished() if r.name == "fuzz.oracle"
        ]
        assert len(oracle_spans) == 1
        assert oracle_spans[0].attrs["oracle"] == "abut"
        assert "ok" in oracle_spans[0].attrs

    def test_summary_unpolluted_by_observability(self):
        _, summary = traced_run()
        text = str(summary)
        assert "wall_s" not in text
        assert "cases_per_s" not in text


class TestFuzzTraceDeterminism:
    def test_fixed_seed_fixed_clock_byte_identical(self):
        first, first_summary = traced_run(seed=0, cases=5)
        second, second_summary = traced_run(seed=0, cases=5)
        assert first == second
        assert first_summary == second_summary

    def test_different_seed_changes_the_trace(self):
        first, _ = traced_run(seed=0, cases=5)
        other, _ = traced_run(seed=7, cases=5)
        # Same structure is possible but the attrs (ok counts etc.)
        # essentially always differ across seeds; equality here would
        # suggest the clock or seed is not actually threading through.
        assert first != other
