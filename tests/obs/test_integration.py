"""Tracing through the real editor: commands, engines, WAL, pipeline.

The acceptance path of the observability subsystem: a session built
from the stock library produces a trace in which every transactional
command is a span carrying its WAL sequence number, the ABUT / ROUTE /
STRETCH engines nest under the command that invoked them, WAL appends
nest under their command, and pipeline verify tasks nest under
``command.verify``.
"""

import pytest

from repro.core.editor import RiotEditor
from repro.core.textual import MemoryStore, TextualInterface
from repro.core.wal import JournalWriter
from repro.library.stock import filter_library
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.clock import FixedClock
from repro.obs.export import chrome_document, validate_chrome


def session_interface(tmp_path=None) -> TextualInterface:
    editor = RiotEditor()
    editor.library = filter_library(editor.technology)
    interface = TextualInterface(editor, MemoryStore())
    if tmp_path is not None:
        editor.journal.attach(JournalWriter(tmp_path / "session.rpl"))
    return interface


SESSION = [
    "new demo",
    "create srcell 0 30000 nx=4 name=sr",
    "create nand 0 20000 name=n0",
    "connect n0 A sr TAP[0,0]",
    "abut",
    "create nand 4000 20000 name=n1",
    "connect n1 A sr TAP[1,0]",
    "route",
    "create nand 0 10000 name=m0",
    "connect m0 A n0 OUT",
    "connect m0 B n1 OUT",
    "stretch overlap",
    "verify demo",
]


@pytest.fixture()
def traced_session(tmp_path):
    tracer = obs_trace.enable(obs_trace.Tracer(clock=FixedClock()))
    interface = session_interface(tmp_path)
    for line in SESSION:
        response = interface.execute(line)
        assert not response.startswith("error"), f"{line}: {response}"
    obs_trace.disable()
    return tracer


class TestSessionTrace:
    def test_all_spans_closed(self, traced_session):
        assert traced_session.open_count() == 0

    def test_command_spans_carry_wal_seq(self, traced_session):
        commands = [
            r
            for r in traced_session.finished()
            if r.category == "command" and r.name != "command.verify"
        ]
        assert commands, "no command spans traced"
        seqs = [r.attrs["wal_seq"] for r in commands]
        # One span per journaled command, in journal order: the span's
        # wal_seq is its line index in the replay file.
        assert seqs == sorted(seqs)
        assert seqs[0] == 0

    def test_engines_nest_under_their_commands(self, traced_session):
        by_id = {r.span_id: r for r in traced_session.finished()}

        def parent_name(rec):
            return by_id[rec.parent_id].name if rec.parent_id else None

        expected = {
            "abut.solve": {"command.do_abut", "command.do_stretch"},
            "river.plan": {"command.do_route"},
            "rest.solve_axis": {"command.do_stretch"},
            "pipeline.task": {"command.verify"},
        }
        seen = set()
        for rec in traced_session.finished():
            if rec.name in expected:
                assert parent_name(rec) in expected[rec.name], rec.name
                seen.add(rec.name)
        assert seen == set(expected)

    def test_wal_appends_nest_under_commands(self, traced_session):
        by_id = {r.span_id: r for r in traced_session.finished()}
        appends = [
            r for r in traced_session.finished() if r.name == "wal.append"
        ]
        assert appends
        for rec in appends:
            assert by_id[rec.parent_id].category == "command"

    def test_route_channel_nests_under_plan(self, traced_session):
        by_id = {r.span_id: r for r in traced_session.finished()}
        (channel,) = [
            r
            for r in traced_session.finished()
            if r.name == "river.route_channel"
        ]
        assert by_id[channel.parent_id].name == "river.plan"

    def test_exported_document_validates(self, traced_session):
        doc = chrome_document(
            traced_session.finished(),
            obs_metrics.registry().snapshot(),
            unclosed=traced_session.open_count(),
        )
        assert validate_chrome(doc) == []

    def test_metrics_counted_the_session(self, traced_session):
        snap = obs_metrics.registry().snapshot()
        assert snap["editor.commands"] == 12  # everything but verify
        assert snap["abut.solved"] == 2  # abut + stretch's abutment
        assert snap["river.routes"] == 1
        assert snap["rest.solves"] == 1
        assert snap["wal.appends"] == 12
        assert snap["wal.fsyncs"] >= snap["wal.appends"]
        assert snap["pipeline.runs"] == 1
        assert snap["pipeline.tasks_executed"] > 0


class TestRollback:
    def test_failed_command_rolls_back_and_marks_span(self, tmp_path):
        tracer = obs_trace.enable(obs_trace.Tracer(clock=FixedClock()))
        interface = session_interface(tmp_path)
        interface.execute("new demo")
        assert interface.execute("create nosuch 0 0").startswith("error")
        obs_trace.disable()
        snap = obs_metrics.registry().snapshot()
        assert snap["editor.rollbacks"] == 1
        failed = [
            r
            for r in tracer.finished()
            if r.name == "command.create" and "error" in r.attrs
        ]
        assert len(failed) == 1
        assert "wal_seq" not in failed[0].attrs  # nothing was journaled


class TestDisabledByDefault:
    def test_session_without_tracing_records_no_spans(self):
        interface = session_interface()
        interface.execute("new demo")
        interface.execute("create srcell 0 0 name=sr")
        assert not obs_trace.enabled()
        # Metrics still count (they are always on).
        assert obs_metrics.registry().snapshot()["editor.commands"] == 2
