"""Isolation for observability tests.

Tracing, the metrics registry and the clock are process-wide; every
test here gets a fresh registry and a disabled tracer, and whatever it
installs is torn back down, so obs tests never leak state into (or
from) the rest of the suite.
"""

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.clock import set_clock


@pytest.fixture(autouse=True)
def fresh_obs():
    previous_registry = obs_metrics.set_registry(obs_metrics.MetricsRegistry())
    obs_trace.disable()
    previous_clock = set_clock(None)
    yield
    obs_trace.disable()
    set_clock(previous_clock)
    obs_metrics.set_registry(previous_registry)
