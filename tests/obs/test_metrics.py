"""The metrics registry."""

import pytest

from repro.obs import metrics
from repro.obs.metrics import MetricsRegistry


class TestInstruments:
    def test_counter_increments(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc()
        reg.counter("hits").inc(4)
        assert reg.snapshot() == {"hits": 5}

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("depth").set(3)
        reg.gauge("depth").set(7)
        assert reg.snapshot() == {"depth": 7}

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        for value in (2, 8, 5):
            reg.histogram("tracks").observe(value)
        assert reg.snapshot()["tracks"] == {
            "count": 3,
            "total": 15,
            "min": 2,
            "max": 8,
            "mean": 5.0,
        }

    def test_empty_histogram_summary(self):
        reg = MetricsRegistry()
        summary = reg.histogram("empty").summary()
        assert summary["count"] == 0
        assert summary["mean"] == 0


class TestRegistry:
    def test_same_name_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        with pytest.raises(TypeError, match="Counter"):
            reg.gauge("x")

    def test_snapshot_is_key_sorted(self):
        reg = MetricsRegistry()
        reg.counter("zebra").inc()
        reg.counter("apple").inc()
        assert list(reg.snapshot()) == ["apple", "zebra"]

    def test_render_text(self):
        reg = MetricsRegistry()
        reg.counter("wal.appends").inc(3)
        reg.histogram("river.tracks").observe(2)
        text = reg.render_text()
        assert "wal.appends 3" in text
        assert "river.tracks count=1 total=2 min=2 max=2 mean=2" in text

    def test_render_text_when_empty(self):
        assert MetricsRegistry().render_text() == "(no metrics recorded)"

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.reset()
        assert reg.snapshot() == {}


class TestModuleRegistry:
    def test_module_helpers_hit_the_default_registry(self):
        metrics.counter("m.c").inc(2)
        metrics.gauge("m.g").set(1.5)
        metrics.histogram("m.h").observe(10)
        snap = metrics.registry().snapshot()
        assert snap["m.c"] == 2
        assert snap["m.g"] == 1.5
        assert snap["m.h"]["count"] == 1

    def test_set_registry_swaps_and_restores(self):
        fresh = MetricsRegistry()
        previous = metrics.set_registry(fresh)
        try:
            metrics.counter("only.here").inc()
            assert "only.here" in fresh.snapshot()
            assert "only.here" not in previous.snapshot()
        finally:
            metrics.set_registry(previous)
