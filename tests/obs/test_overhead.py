"""The disabled-tracing overhead bound.

Instrumented hot paths pay one module-global check and a no-op call
when tracing is off.  This smoke test bounds that dispatch cost at
< 5% of real command cost: it times a workload of editor commands
(tracing disabled), then times the same *number* of no-op span
dispatches, and requires the dispatch total to be a small fraction of
the workload total.
"""

import time

import pytest

from repro.core.editor import RiotEditor
from repro.library.stock import filter_library
from repro.obs import trace
from repro.obs.trace import NULL_SPAN


def command_workload(repeats: int) -> tuple[int, float]:
    """Run a create/connect/abut-heavy session; returns (dispatch
    count, wall seconds)."""
    from repro.geometry.point import Point

    editor = RiotEditor()
    editor.library = filter_library(editor.technology)
    editor.new_cell("demo")
    t0 = time.perf_counter()
    commands = 1
    for i in range(repeats):
        editor.create(
            Point(0, 30000 * (i + 1)), cell_name="srcell", name=f"sr{i}"
        )
        editor.create(
            Point(0, 30000 * (i + 1) - 10000), cell_name="nand", name=f"n{i}"
        )
        editor.connect(f"n{i}", "A", f"sr{i}", "TAP")
        editor.do_abut()
        commands += 4
    return commands, time.perf_counter() - t0


@pytest.mark.slow
class TestDisabledOverhead:
    def test_noop_dispatch_under_five_percent_of_command_cost(self):
        assert not trace.enabled()
        commands, workload_wall = command_workload(repeats=25)

        # Per instrumented command there are a handful of span
        # dispatches (command wrapper, engine, WAL); bound generously.
        dispatches = commands * 8
        t0 = time.perf_counter()
        for _ in range(dispatches):
            span = trace.span("noop.op", category="command", arg=1)
            span.set("k", 2)
            span.close()
        dispatch_wall = time.perf_counter() - t0

        assert dispatch_wall < 0.05 * workload_wall, (
            f"no-op tracing dispatch took {dispatch_wall * 1000:.2f}ms "
            f"for {dispatches} dispatches vs {workload_wall * 1000:.2f}ms "
            f"of workload — over the 5% budget"
        )

    def test_disabled_span_allocates_nothing(self):
        assert not trace.enabled()
        spans = {id(trace.span(f"op{i}")) for i in range(100)}
        assert spans == {id(NULL_SPAN)}
