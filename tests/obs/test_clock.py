"""The injectable clock."""

import pytest

from repro.obs.clock import FixedClock, MonotonicClock, get_clock, set_clock


class TestMonotonicClock:
    def test_wall_is_monotone(self):
        clock = MonotonicClock()
        assert clock.wall() <= clock.wall()

    def test_cpu_is_monotone(self):
        clock = MonotonicClock()
        assert clock.cpu() <= clock.cpu()


class TestFixedClock:
    def test_each_reading_advances_by_step(self):
        clock = FixedClock(start=10.0, step=0.5)
        assert clock.wall() == 10.0
        assert clock.wall() == 10.5
        assert clock.wall() == 11.0

    def test_cpu_ticks_independently(self):
        clock = FixedClock(step=1.0, cpu_step=0.25)
        assert clock.wall() == 0.0
        assert clock.cpu() == 0.0
        assert clock.cpu() == 0.25
        assert clock.wall() == 1.0

    def test_cpu_step_defaults_to_half_wall_step(self):
        clock = FixedClock(step=2.0)
        clock.cpu()
        assert clock.cpu() == 1.0

    def test_two_identically_configured_clocks_agree(self):
        a, b = FixedClock(step=0.01), FixedClock(step=0.01)
        assert [a.wall() for _ in range(5)] == [b.wall() for _ in range(5)]

    def test_step_must_be_positive(self):
        with pytest.raises(ValueError):
            FixedClock(step=0)


class TestProcessClock:
    def test_set_clock_installs_and_returns_previous(self):
        fixed = FixedClock()
        previous = set_clock(fixed)
        try:
            assert get_clock() is fixed
        finally:
            set_clock(previous)
        assert get_clock() is previous

    def test_set_clock_none_restores_a_monotonic_default(self):
        set_clock(FixedClock())
        set_clock(None)
        assert isinstance(get_clock(), MonotonicClock)
