"""The stitched-trace validator (``tools/check_trace.py``).

Single-file mode must keep working exactly as the obs-smoke CI job
uses it; multi-file mode must resolve every cross-process ``xparent``
reference against the union of the given files and walk every traced
span's parent chain back to a root.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent

_spec = importlib.util.spec_from_file_location(
    "check_trace", REPO_ROOT / "tools" / "check_trace.py"
)
check_trace = importlib.util.module_from_spec(_spec)
sys.modules["check_trace"] = check_trace
_spec.loader.exec_module(check_trace)


def event(name, span_id, *, xparent=None, trace_id=None):
    args = {"span_id": span_id, "parent_id": None}
    if xparent is not None:
        args["xparent"] = xparent
    if trace_id is not None:
        args["trace_id"] = trace_id
    return {
        "name": name, "cat": "riot", "ph": "X",
        "ts": span_id * 10, "dur": 5, "pid": 1, "tid": 1, "args": args,
    }


def write_doc(path: Path, label: str | None, *events) -> str:
    doc = {"traceEvents": list(events)}
    if label is not None:
        doc["riot"] = {"process": label}
    path.write_text(json.dumps(doc))
    return str(path)


def stitched_run(tmp_path: Path) -> list[str]:
    """A healthy 3-process run: client -> supervisor -> shard0."""
    client = write_doc(
        tmp_path / "client.json", "client",
        event("client.request", 1, trace_id="t-1"),
    )
    supervisor = write_doc(
        tmp_path / "supervisor.json", "supervisor",
        event("supervisor.request", 1, xparent="client:1", trace_id="t-1"),
        event("relay.hop", 2, xparent="supervisor:1", trace_id="t-1"),
    )
    shard = write_doc(
        tmp_path / "shard0.json", "shard0",
        event("shard.request", 1, xparent="supervisor:2", trace_id="t-1"),
        event("handler.execute", 2, xparent="shard0:1", trace_id="t-1"),
    )
    return [client, supervisor, shard]


class TestSingleFile:
    def test_valid_file_passes(self, tmp_path, capsys):
        path = write_doc(
            tmp_path / "t.json", None, event("command.do_abut", 1)
        )
        assert check_trace.main([path]) == 0
        assert "ok" in capsys.readouterr().out

    def test_required_span_missing_fails(self, tmp_path, capsys):
        path = write_doc(tmp_path / "t.json", None, event("other", 1))
        assert check_trace.main([path, "--require", "command.do_abut"]) == 1
        assert "required span" in capsys.readouterr().out

    def test_malformed_event_fails(self, tmp_path, capsys):
        bad = event("x", 1)
        del bad["dur"]
        path = write_doc(tmp_path / "t.json", None, bad)
        assert check_trace.main([path]) == 1

    def test_unreadable_file_is_its_own_exit_code(self, tmp_path, capsys):
        assert check_trace.main([str(tmp_path / "absent.json")]) == 2


class TestStitching:
    def test_healthy_multi_process_trace_passes(self, tmp_path, capsys):
        files = stitched_run(tmp_path)
        assert check_trace.main(files) == 0
        out = capsys.readouterr().out
        assert "5 traced span(s), 5 rooted" in out

    def test_require_root_accepts_the_client_origin(self, tmp_path):
        files = stitched_run(tmp_path)
        assert (
            check_trace.main(files + ["--require-root", "client.request"])
            == 0
        )

    def test_require_root_rejects_an_orphan_chain(self, tmp_path, capsys):
        files = stitched_run(tmp_path)
        # A shard span whose chain roots at the supervisor, not the
        # client: the supervisor started tracing but the client did
        # not propagate context.
        orphan = write_doc(
            tmp_path / "shard1.json", "shard1",
            event("shard.request", 1, trace_id="t-2"),
        )
        code = check_trace.main(
            files + [orphan, "--require-root", "client.request"]
        )
        assert code == 1
        assert "roots at" in capsys.readouterr().out

    def test_unresolvable_xparent_fails(self, tmp_path, capsys):
        files = stitched_run(tmp_path)[:2]  # drop the shard file
        supervisor_only = write_doc(
            tmp_path / "extra.json", "shard9",
            event("shard.request", 1, xparent="supervisor:99"),
        )
        assert check_trace.main(files + [supervisor_only]) == 1
        assert "unresolvable" in capsys.readouterr().out

    def test_xparent_cycle_is_reported_not_hung(self, tmp_path, capsys):
        a = write_doc(
            tmp_path / "a.json", "a",
            event("x", 1, xparent="b:1", trace_id="t-c"),
        )
        b = write_doc(
            tmp_path / "b.json", "b",
            event("y", 1, xparent="a:1"),
        )
        assert check_trace.main([a, b]) == 1
        assert "cycle" in capsys.readouterr().out

    def test_duplicate_process_labels_are_rejected(self, tmp_path, capsys):
        one = write_doc(tmp_path / "one.json", "shard0", event("x", 1))
        two = write_doc(tmp_path / "two.json", "shard0", event("y", 1))
        assert check_trace.main([one, two]) == 1
        assert "duplicate span reference" in capsys.readouterr().out

    def test_unlabelled_docs_default_to_main(self, tmp_path):
        parent = write_doc(tmp_path / "p.json", None, event("root", 1))
        child = write_doc(
            tmp_path / "c.json", "child",
            event("leaf", 1, xparent="main:1", trace_id="t-3"),
        )
        assert check_trace.main([parent, child]) == 0
