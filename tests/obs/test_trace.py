"""The tracing substrate: spans, nesting, the no-op fast path."""

import threading

from repro.obs import trace
from repro.obs.clock import FixedClock
from repro.obs.trace import NULL_SPAN, Tracer


class TestTracer:
    def test_span_measures_wall_and_cpu(self):
        tracer = Tracer(clock=FixedClock(step=1.0, cpu_step=0.5))
        with tracer.span("op"):
            pass
        (rec,) = tracer.finished()
        assert rec.name == "op"
        assert rec.wall == 1.0
        assert rec.cpu == 0.5

    def test_nested_spans_record_parentage(self):
        tracer = Tracer(clock=FixedClock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        by_name = {r.name: r for r in tracer.finished()}
        assert by_name["outer"].parent_id is None
        assert by_name["inner"].parent_id == by_name["outer"].span_id

    def test_siblings_share_a_parent(self):
        tracer = Tracer(clock=FixedClock())
        with tracer.span("parent"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        by_name = {r.name: r for r in tracer.finished()}
        assert by_name["a"].parent_id == by_name["parent"].span_id
        assert by_name["b"].parent_id == by_name["parent"].span_id

    def test_attributes_via_kwargs_and_set(self):
        tracer = Tracer(clock=FixedClock())
        with tracer.span("op", wires=4) as span:
            span.set("tracks", 2).set("spilled", False)
        (rec,) = tracer.finished()
        assert rec.attrs == {"wires": 4, "tracks": 2, "spilled": False}

    def test_exception_marks_error_and_propagates(self):
        tracer = Tracer(clock=FixedClock())
        try:
            with tracer.span("op"):
                raise ValueError("boom")
        except ValueError:
            pass
        (rec,) = tracer.finished()
        assert rec.attrs["error"] == "ValueError"

    def test_explicit_close_is_idempotent(self):
        tracer = Tracer(clock=FixedClock())
        span = tracer.span("op")
        span.close()
        span.close()
        assert len(tracer.finished()) == 1
        assert tracer.open_count() == 0

    def test_open_count_tracks_unclosed_spans(self):
        tracer = Tracer(clock=FixedClock())
        span = tracer.span("op")
        assert tracer.open_count() == 1
        assert tracer.open_names() == ["op"]
        span.close()
        assert tracer.open_count() == 0

    def test_record_synthesizes_a_child_of_the_open_span(self):
        tracer = Tracer(clock=FixedClock())
        with tracer.span("verify") as outer:
            tracer.record("task", wall=2.0, cpu=1.0, task="drc:chip")
        by_name = {r.name: r for r in tracer.finished()}
        task = by_name["task"]
        assert task.parent_id == outer.record.span_id
        assert task.wall == 2.0
        assert task.cpu == 1.0
        assert task.attrs["task"] == "drc:chip"

    def test_threads_get_logical_ids_and_separate_stacks(self):
        tracer = Tracer(clock=FixedClock())
        done = threading.Event()

        def worker():
            with tracer.span("worker-op"):
                pass
            done.set()

        with tracer.span("main-op"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert done.is_set()
        by_name = {r.name: r for r in tracer.finished()}
        # The worker's span is not a child of the main thread's span,
        # and the two threads get distinct small logical ids.
        assert by_name["worker-op"].parent_id is None
        assert {by_name["main-op"].tid, by_name["worker-op"].tid} == {0, 1}

    def test_finished_is_sorted_by_start_then_id(self):
        tracer = Tracer(clock=FixedClock())
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        starts = [(r.start_wall, r.span_id) for r in tracer.finished()]
        assert starts == sorted(starts)


class TestModuleSwitch:
    def test_disabled_span_is_the_shared_null_span(self):
        assert not trace.enabled()
        span = trace.span("anything", wires=9)
        assert span is NULL_SPAN
        # All null-span operations are no-ops.
        with span as s:
            s.set("k", "v").close()

    def test_enable_then_span_records(self):
        tracer = trace.enable(Tracer(clock=FixedClock()))
        with trace.span("op"):
            pass
        assert [r.name for r in tracer.finished()] == ["op"]

    def test_disable_returns_the_tracer(self):
        tracer = trace.enable()
        assert trace.active() is tracer
        assert trace.disable() is tracer
        assert trace.active() is None

    def test_record_is_a_noop_while_disabled(self):
        assert trace.record("task", wall=1.0, cpu=0.5) is None

    def test_traced_decorator(self):
        @trace.traced("decorated.op")
        def add(a, b):
            return a + b

        assert add(1, 2) == 3  # disabled: plain call
        tracer = trace.enable(Tracer(clock=FixedClock()))
        assert add(3, 4) == 7
        assert [r.name for r in tracer.finished()] == ["decorated.op"]

    def test_traced_decorator_defaults_to_qualname(self):
        @trace.traced()
        def solo():
            return 42

        tracer = trace.enable(Tracer(clock=FixedClock()))
        solo()
        (rec,) = tracer.finished()
        assert "solo" in rec.name
