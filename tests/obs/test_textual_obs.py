"""The observability surface of the textual interface.

``stats``, ``trace on|off|status|save``, and the regression pinning
``verify --timing`` threading: the session-wide ``--timing`` default
and the per-invocation flag must both append the pipeline timing
report to the verify response.
"""

import json

from repro.obs import trace as obs_trace
from repro.obs.export import validate_chrome

from tests.obs.test_integration import session_interface


def build_demo(interface):
    for line in (
        "new demo",
        "create srcell 0 30000 nx=2 name=sr",
        "create nand 0 20000 name=n0",
        "connect n0 A sr TAP[0,0]",
        "abut",
    ):
        response = interface.execute(line)
        assert not response.startswith("error"), f"{line}: {response}"


class TestStatsCommand:
    def test_stats_reports_session_counters(self):
        interface = session_interface()
        build_demo(interface)
        stats = interface.execute("stats")
        assert "editor.commands 5" in stats
        assert "abut.solved 1" in stats

    def test_stats_takes_no_arguments(self):
        interface = session_interface()
        assert interface.execute("stats everything").startswith("error")

    def test_stats_reports_pipeline_cache_counters(self, tmp_path):
        interface = session_interface()
        build_demo(interface)
        for _ in range(2):  # cold run misses, warm run hits
            response = interface.execute(f"verify demo --cache {tmp_path}")
            assert not response.startswith("error"), response
        stats = interface.execute("stats")
        counters = {
            line.split()[0]: int(line.split()[1])
            for line in stats.splitlines()
            if line.startswith("pipeline.cache.")
        }
        assert counters["pipeline.cache.misses"] > 0
        assert counters["pipeline.cache.hits"] > 0


class TestTraceCommand:
    def test_on_off_status_save_cycle(self):
        interface = session_interface()
        assert interface.execute("trace status") == (
            "tracing off (no spans collected)"
        )
        assert interface.execute("trace on") == "tracing on"
        build_demo(interface)
        status = interface.execute("trace status")
        assert status.startswith("tracing on:")
        assert interface.execute("trace off") == "tracing off"
        assert not obs_trace.enabled()
        saved = interface.execute("trace save session-trace.json")
        assert "Chrome trace-event" in saved
        doc = json.loads(interface.store.read("session-trace.json"))
        assert validate_chrome(doc) == []
        names = {e["name"] for e in doc["traceEvents"]}
        assert "command.do_abut" in names

    def test_save_without_tracing_is_an_error(self):
        interface = session_interface()
        assert interface.execute("trace save out.json").startswith("error")

    def test_usage_errors(self):
        interface = session_interface()
        assert interface.execute("trace").startswith("error")
        assert interface.execute("trace sideways").startswith("error")
        assert interface.execute("trace save").startswith("error")

    def test_off_preserves_spans_for_a_later_save(self):
        interface = session_interface()
        interface.execute("trace on")
        build_demo(interface)
        interface.execute("trace off")
        # More (untraced) work, then save: the earlier spans are intact.
        interface.execute("cells")
        interface.execute("trace save late.json")
        doc = json.loads(interface.store.read("late.json"))
        assert len(doc["traceEvents"]) > 0


class TestVerifyTimingRegression:
    def test_per_invocation_timing_flag(self):
        interface = session_interface()
        build_demo(interface)
        plain = interface.execute("verify demo")
        timed = interface.execute("verify demo --timing")
        assert "pipeline:" not in plain
        assert "pipeline: jobs=1" in timed
        assert "counters:" in timed

    def test_session_default_threads_through(self):
        interface = session_interface()
        interface.verify_defaults["timing"] = True  # what --timing sets
        build_demo(interface)
        timed = interface.execute("verify demo")
        assert "pipeline: jobs=1" in timed

    def test_invocation_overrides_session_jobs_default(self):
        interface = session_interface()
        interface.verify_defaults["timing"] = True
        interface.verify_defaults["jobs"] = 1
        build_demo(interface)
        response = interface.execute("verify demo --jobs 2")
        assert "pipeline: jobs=2" in response
