"""Tests for the worked example's leaf-cell stock (paper figure 8)."""

import pytest

from repro.geometry.layers import nmos_technology
from repro.library.fittings import FIT_SIZE, fittings_sticks_text
from repro.library.gates import GND_Y, ROW_HEIGHT, VDD_Y, logic_sticks_text
from repro.library.pads import PAD_SIZE, pads_cif_text
from repro.library.stock import filter_library

TECH = nmos_technology()


@pytest.fixture(scope="module")
def lib():
    return filter_library(TECH)


class TestPads:
    def test_both_pads_load(self, lib):
        assert "inpad" in lib
        assert "outpad" in lib

    def test_pads_are_rigid(self, lib):
        # "the pads cannot be stretched by Riot".
        assert not lib.get("inpad").is_stretchable
        assert not lib.get("outpad").is_stretchable

    def test_pad_connector_positions(self, lib):
        inpad = lib.get("inpad")
        assert inpad.connector("PAD").position.x == PAD_SIZE
        outpad = lib.get("outpad")
        assert outpad.connector("PAD").position.x == 0

    def test_pad_connector_opposition(self, lib):
        # inpad drives rightward, outpad receives from the left.
        inbox = lib.get("inpad").bounding_box()
        assert lib.get("inpad").connector("PAD").side(inbox) == "right"
        outbox = lib.get("outpad").bounding_box()
        assert lib.get("outpad").connector("PAD").side(outbox) == "left"

    def test_pad_has_glass_opening(self, lib):
        layers = {layer.name for layer, _ in lib.get("inpad").cif_cell.geometry.boxes}
        assert "glass" in layers


class TestLogicCells:
    def test_all_cells_load(self, lib):
        for name in ("srcell", "nand", "or2"):
            assert name in lib

    def test_logic_is_stretchable(self, lib):
        # "connections to the other cells can be made by stretching".
        for name in ("srcell", "nand", "or2"):
            assert lib.get(name).is_stretchable

    def test_shared_row_discipline(self, lib):
        # Power/ground rails at the same heights on every logic cell,
        # so rows abut with rails connected.
        for name in ("srcell", "nand", "or2"):
            cell = lib.get(name)
            assert cell.connector("PWRL").position.y == VDD_Y
            assert cell.connector("PWRR").position.y == VDD_Y
            assert cell.connector("GNDL").position.y == GND_Y
            assert cell.bounding_box().height == ROW_HEIGHT

    def test_srcell_abuts_into_chain(self, lib):
        # "The array elements abut, making the shift register chain
        # connections as well as power and ground connections."
        srcell = lib.get("srcell")
        width = srcell.bounding_box().width
        left = {c.name: c.position for c in srcell.connectors}
        assert left["OUT"].x - left["IN"].x == width
        assert left["OUT"].y == left["IN"].y
        assert left["PWRR"].x - left["PWRL"].x == width

    def test_gate_inputs_on_top(self, lib):
        # Data flows downward: gate rows stack below the SR row, so
        # inputs face up toward the previous stage.
        for name in ("nand", "or2"):
            cell = lib.get(name)
            box = cell.bounding_box()
            for pin in ("A", "B"):
                assert cell.connector(pin).side(box) == "top"
                assert cell.connector(pin).layer.name == "poly"

    def test_gate_output_on_bottom(self, lib):
        for name in ("nand", "or2"):
            cell = lib.get(name)
            out = cell.connector("OUT")
            assert out.side(cell.bounding_box()) == "bottom"
            assert out.layer.name == "poly"

    def test_srcell_tap_on_bottom(self, lib):
        srcell = lib.get("srcell")
        tap = srcell.connector("TAP")
        assert tap.side(srcell.bounding_box()) == "bottom"
        assert tap.layer.name == "poly"

    def test_cells_expand_to_mask(self, lib):
        from repro.sticks.expand import expand_to_cif

        for name in ("srcell", "nand", "or2"):
            cif = expand_to_cif(lib.get(name).sticks_cell, TECH)
            layers = {layer.name for layer, _ in cif.geometry.boxes}
            assert "contact" in layers
            assert "implant" in layers  # the depletion pullup

    def test_cells_compact_without_error(self, lib):
        from repro.rest.compactor import compact

        for name in ("srcell", "nand", "or2"):
            packed = compact(lib.get(name).sticks_cell, TECH)
            assert packed.component_count == lib.get(name).sticks_cell.component_count

    def test_nand_is_stretch_compatible_with_or(self, lib):
        # The figure 9b flow stretches gates so their pins line up; the
        # pins must be individually movable.
        from repro.rest.stretch import stretch_pins

        nand = lib.get("nand").sticks_cell
        stretched = stretch_pins(nand, "x", {"A": 1000, "B": 5000}, TECH)
        assert stretched.pin("A").point.x == 1000
        assert stretched.pin("B").point.x == 5000


class TestFittings:
    def test_all_fittings_load(self, lib):
        for name in ("fit_corner", "fit_tee", "fit_cross", "fit_strap"):
            assert name in lib

    def test_fitting_pins_on_edges(self, lib):
        cross = lib.get("fit_cross")
        box = cross.bounding_box()
        sides = {c.name: c.side(box) for c in cross.connectors}
        assert sides == {"W": "left", "E": "right", "N": "top", "S": "bottom"}

    def test_fittings_are_stretchable(self, lib):
        assert lib.get("fit_strap").is_stretchable

    def test_fitting_size(self, lib):
        assert lib.get("fit_corner").bounding_box().width == FIT_SIZE


class TestTextGenerators:
    def test_pads_cif_parses_standalone(self):
        from repro.cif.parser import parse_cif

        parsed = parse_cif(pads_cif_text())
        assert len(parsed.symbols) == 2

    def test_logic_sticks_parses_standalone(self):
        from repro.sticks.parser import parse_sticks

        assert len(parse_sticks(logic_sticks_text())) == 4  # + the p2m converter

    def test_fittings_parse_standalone(self):
        from repro.sticks.parser import parse_sticks

        assert len(parse_sticks(fittings_sticks_text())) == 4
