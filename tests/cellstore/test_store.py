"""CellStore semantics: publish/resolve/deprecate, optimistic
concurrency, durability of the refs log, and cross-instance (stand-in
for cross-process) visibility."""

from __future__ import annotations

import pytest

from repro.cellstore import (
    CellStore,
    Conflict,
    Corrupt,
    Deprecated,
    NotFound,
)
from repro.cellstore.store import text_digest


def publish(store, name, payload, **kwargs):
    return store.publish(
        name, "sticks", payload, content_hash=text_digest(payload), **kwargs
    )


class TestPublishResolve:
    def test_versions_count_up_from_one(self, store):
        assert publish(store, "nand", "v1").version == 1
        assert publish(store, "nand", "v2").version == 2

    def test_bare_ref_resolves_latest(self, store):
        publish(store, "nand", "v1")
        publish(store, "nand", "v2")
        assert store.resolve("nand").version == 2
        assert store.resolve("nand@latest").version == 2

    def test_pinned_ref_survives_newer_versions(self, store):
        publish(store, "nand", "v1")
        publish(store, "nand", "v2")
        record = store.resolve("nand@1")
        assert (record.version, store.payload(record)) == (1, "v1")

    def test_payload_round_trips_exactly(self, store):
        payload = "line one\nline two\n# comment\n"
        record = publish(store, "nand", payload)
        assert store.payload(record) == payload

    def test_unknown_name_raises_not_found(self, store):
        with pytest.raises(NotFound) as excinfo:
            store.resolve("ghost")
        assert excinfo.value.code == "library.not_found"

    def test_unknown_version_raises_not_found(self, store):
        publish(store, "nand", "v1")
        with pytest.raises(NotFound):
            store.resolve("nand@9")

    def test_identical_payloads_share_one_blob(self, store):
        a = publish(store, "nand", "same text")
        b = publish(store, "or2", "same text")
        assert a.blob == b.blob
        assert a.blob == text_digest("same text")

    def test_unknown_kind_rejected(self, store):
        with pytest.raises(ValueError):
            store.publish(
                "nand", "netlist", "p", content_hash=text_digest("p")
            )

    def test_versioned_ref_rejected_as_publish_name(self, store):
        with pytest.raises(ValueError):
            publish(store, "nand@2", "p")


class TestOptimisticConcurrency:
    def test_expected_version_zero_means_create(self, store):
        assert publish(store, "nand", "v1", expected_version=0).version == 1

    def test_cas_succeeds_against_current_head(self, store):
        publish(store, "nand", "v1")
        assert publish(store, "nand", "v2", expected_version=1).version == 2

    def test_stale_expectation_conflicts_with_head(self, store):
        publish(store, "nand", "v1")
        publish(store, "nand", "v2")
        with pytest.raises(Conflict) as excinfo:
            publish(store, "nand", "v3", expected_version=1)
        assert excinfo.value.code == "library.conflict"
        assert excinfo.value.head == 2

    def test_conflict_leaves_store_unchanged(self, store):
        publish(store, "nand", "v1")
        with pytest.raises(Conflict):
            publish(store, "nand", "v2", expected_version=0)
        assert store.resolve("nand").version == 1
        assert [r.version for r in store.versions("nand")] == [1]


class TestDeprecation:
    def test_latest_skips_tombstoned_versions(self, store):
        publish(store, "nand", "v1")
        publish(store, "nand", "v2")
        store.deprecate("nand", 2)
        assert store.resolve("nand").version == 1

    def test_pinned_ref_to_tombstone_raises_deprecated(self, store):
        publish(store, "nand", "v1")
        publish(store, "nand", "v2")
        store.deprecate("nand", 1)
        with pytest.raises(Deprecated) as excinfo:
            store.resolve("nand@1")
        assert excinfo.value.code == "library.deprecated"

    def test_all_versions_tombstoned_raises_deprecated(self, store):
        publish(store, "nand", "v1")
        store.deprecate("nand", 1)
        with pytest.raises(Deprecated):
            store.resolve("nand")

    def test_deprecate_is_idempotent(self, store):
        publish(store, "nand", "v1")
        store.deprecate("nand", 1)
        store.deprecate("nand", 1)
        assert store.is_deprecated("nand", 1)

    def test_next_publish_resurrects_the_name(self, store):
        publish(store, "nand", "v1")
        store.deprecate("nand", 1)
        publish(store, "nand", "v2")
        assert store.resolve("nand").version == 2


class TestDurability:
    def test_second_instance_sees_existing_records(self, store):
        publish(store, "nand", "v1")
        other = CellStore(store.root)
        record = other.resolve("nand@1")
        assert other.payload(record) == "v1"

    def test_writes_propagate_between_live_instances(self, store):
        other = CellStore(store.root)
        publish(store, "nand", "v1")
        assert other.resolve("nand").version == 1
        publish(other, "nand", "v2")
        assert store.resolve("nand").version == 2

    def test_torn_tail_is_tolerated_and_truncated(self, store):
        publish(store, "nand", "v1")
        with open(store.root / "refs.wal", "a") as f:
            f.write('{"interrupted mid-append')
        # A fresh instance reads past the torn tail...
        other = CellStore(store.root)
        assert other.resolve("nand").version == 1
        # ...and the next publish truncates it rather than corrupting.
        publish(other, "nand", "v2")
        assert CellStore(store.root).resolve("nand").version == 2

    def test_mid_file_damage_raises_corrupt(self, store):
        publish(store, "nand", "v1")
        publish(store, "nand", "v2")
        path = store.root / "refs.wal"
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:-5] + "XXXXX"  # break the first record's CRC
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(Corrupt) as excinfo:
            CellStore(store.root).resolve("nand")
        assert "fsck" in str(excinfo.value)

    def test_blob_tamper_detected_on_read(self, store):
        record = publish(store, "nand", "v1")
        blob = store.root / "blobs" / record.blob[:2] / record.blob[2:]
        blob.write_text("tampered")
        with pytest.raises(Corrupt):
            CellStore(store.root).payload(record)


class TestCounters:
    def test_publish_conflict_and_resolve_counters(self, store):
        publish(store, "nand", "v1")
        with pytest.raises(Conflict):
            publish(store, "nand", "v2", expected_version=0)
        store.resolve("nand")
        assert store.counters["publishes"] == 1
        assert store.counters["conflicts"] == 1
        assert store.counters["resolves"] == 1
