"""Store integrity checking: deterministic damage first, then the
real thing — a publisher SIGKILLed mid-stream, with ``fsck`` required
to bring the store back to a publishable state."""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.cellstore import CellStore, fsck
from repro.cellstore.store import text_digest


def publish(store, name, payload, **kwargs):
    return store.publish(
        name, "sticks", payload, content_hash=text_digest(payload), **kwargs
    )


class TestDeterministicDamage:
    def test_clean_store_is_clean(self, store):
        publish(store, "nand", "v1")
        report = fsck(store.root)
        assert report.clean
        assert report.records == 1
        assert not report.repaired

    def test_missing_store_is_vacuously_clean(self, tmp_path):
        assert fsck(tmp_path / "never-created").clean

    def test_torn_tail_detected_then_repaired(self, store):
        publish(store, "nand", "v1")
        with open(store.root / "refs.wal", "a") as f:
            f.write('{"torn')
        report = fsck(store.root)
        assert not report.clean
        assert report.torn_tail
        repaired = fsck(store.root, repair=True)
        assert repaired.repaired
        assert fsck(store.root).clean
        assert CellStore(store.root).resolve("nand").version == 1

    def test_missing_blob_reported(self, store):
        record = publish(store, "nand", "v1")
        (store.root / "blobs" / record.blob[:2] / record.blob[2:]).unlink()
        report = fsck(store.root)
        assert not report.clean
        assert any(i.kind == "missing-blob" for i in report.issues)

    def test_corrupt_blob_reported(self, store):
        record = publish(store, "nand", "v1")
        blob = store.root / "blobs" / record.blob[:2] / record.blob[2:]
        blob.write_text("not the payload")
        report = fsck(store.root)
        assert any(i.kind == "corrupt-blob" for i in report.issues)

    def test_damaged_line_repairable_keeping_prior_records(self, store):
        publish(store, "nand", "v1")
        publish(store, "or2", "v1")
        path = store.root / "refs.wal"
        lines = path.read_text().splitlines()
        lines[2] = lines[2][:-5] + "XXXXX"  # corrupt or2's CRC
        path.write_text("\n".join(lines) + "\n")
        report = fsck(store.root, repair=True)
        assert report.repaired
        after = CellStore(store.root)
        # Salvage keeps everything before the damage, drops the rest.
        assert after.resolve("nand").version == 1
        assert after.names() == ["nand"]


#: Child process: hammer publishes until killed.  Big-ish payloads and
#: many iterations make the SIGKILL land mid-append often enough to
#: exercise the torn-tail path across runs.
PUBLISHER = """
import sys
from repro.cellstore import CellStore
from repro.cellstore.store import text_digest

store = CellStore(sys.argv[1])
i = 0
while True:
    payload = ("# filler %d\\n" % i) * 200
    store.publish(
        "cell%d" % (i % 50), "sticks", payload,
        content_hash=text_digest(payload),
    )
    i += 1
    if i == 1:
        print("started", flush=True)
"""


class TestSigkillDuringPublish:
    def test_store_recoverable_after_publisher_killed(self, tmp_path):
        root = tmp_path / "lib"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (env.get("PYTHONPATH"), "src") if p
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", PUBLISHER, str(root)],
            stdout=subprocess.PIPE,
            env=env,
        )
        try:
            # Wait for the first publish so the kill hits a busy store.
            assert proc.stdout.readline().strip() == b"started"
            time.sleep(0.2)
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=10)

        # fsck --repair must always converge to a clean store...
        report = fsck(root, repair=True)
        assert fsck(root).clean
        # ...that a fresh process can keep publishing to.
        store = CellStore(root)
        survivors = len(store.records())
        assert survivors >= 1  # the first publish completed pre-kill
        publish(store, "afterlife", "back in business")
        assert store.resolve("afterlife").version == 1
        assert len(store.records()) == survivors + 1
