"""Ref parsing: the ``name@version`` grammar and its rejections."""

from __future__ import annotations

import pytest

from repro.cellstore import BadRef, Ref, format_ref, parse_ref


class TestParse:
    def test_bare_name_is_latest(self):
        assert parse_ref("nand") == Ref("nand", None)

    def test_explicit_latest(self):
        assert parse_ref("nand@latest") == Ref("nand", None)

    def test_pinned_version(self):
        assert parse_ref("nand@3") == Ref("nand", 3)

    def test_names_allow_dots_dashes_underscores(self):
        assert parse_ref("fit_corner-v2.1@7").name == "fit_corner-v2.1"

    def test_format_round_trip(self):
        assert parse_ref(format_ref("alu", 12)) == Ref("alu", 12)

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "@1",
            "nand@0",
            "nand@-1",
            "nand@1.5",
            "nand@one",
            "nand@1@2",
            "has space",
            "../escape",
            ".hidden",
            "x" * 65,
        ],
    )
    def test_rejects(self, bad):
        with pytest.raises(BadRef) as excinfo:
            parse_ref(bad)
        assert excinfo.value.code == "library.bad_ref"
