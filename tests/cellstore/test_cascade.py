"""The invalidation cascade: publishing a new leaf version replays
every stored dependent composition's REPLAY journal against it and
reports, per dependent, survival or the exact command + error code
that broke.

The headline scenario pins the acceptance contract: one dependent
that survives a connector rename and one that breaks on it, the break
carrying a structured (stable) error code."""

from __future__ import annotations

import pytest

from repro.api import types as t
from repro.cellstore import (
    MissingDep,
    assess_impact,
    journal_dependencies,
)
from repro.cellstore.store import text_digest


def publish_nand(session) -> None:
    """nand@1 from the stock library, via the typed API."""
    result = session.dispatch(t.LibraryPublishRequest(name="nand"))
    assert (result.name, result.version, result.kind) == ("nand", 1, "sticks")


def publish_ok_pair(session) -> None:
    """A dependent that only instantiates nand — survives any version
    that still parses."""
    session.dispatch(t.LibraryGetRequest(ref="nand@1"))
    session.dispatch(t.NewCellRequest(name="ok_pair"))
    session.dispatch(t.CreateRequest(at=(0, 20000), cell_name="nand", name="n0"))
    session.dispatch(
        t.CreateRequest(at=(8000, 20000), cell_name="nand", name="n1")
    )
    result = session.dispatch(t.LibraryPublishRequest(name="ok_pair"))
    assert result.deps == ("nand@1",)


def publish_breaker(session) -> None:
    """A dependent wired through nand's connector ``A`` — breaks when
    a new nand version renames it."""
    session.dispatch(t.LibraryGetRequest(ref="nand@1"))
    session.dispatch(t.NewCellRequest(name="breaker"))
    session.dispatch(t.CreateRequest(at=(0, 20000), cell_name="nand", name="n0"))
    session.dispatch(
        t.CreateRequest(at=(0, 30000), cell_name="srcell", nx=4, name="sr")
    )
    session.dispatch(
        t.ConnectRequest(
            from_instance="n0",
            from_connector="A",
            to_instance="sr",
            to_connector="TAP[0,0]",
        )
    )
    session.dispatch(t.AbutRequest())
    session.dispatch(t.LibraryPublishRequest(name="breaker"))


def renamed_pin_payload(store) -> str:
    """nand's sticks source with connector A renamed — the breaking
    candidate version."""
    v1 = store.payload(store.resolve("nand@1"))
    v2 = v1.replace("PIN A poly", "PIN Q poly")
    assert v2 != v1
    return v2


@pytest.fixture
def populated(store, session_for):
    """nand@1 plus both dependents, each published from its own
    session the way distinct users would."""
    publish_nand(session_for())
    publish_ok_pair(session_for())
    publish_breaker(session_for())
    return store


class TestJournalDependencies:
    def test_created_and_selected_cells_minus_own_definitions(self):
        from repro.core.wal import JournalEntry, journal_text

        text = journal_text(
            [
                JournalEntry("new_cell", {"name": "top"}),
                JournalEntry("select", {"cell_name": "nand"}),
                JournalEntry("create", {"cell_name": "srcell"}),
                JournalEntry("create", {"cell_name": "top"}),
            ]
        )
        assert journal_dependencies(text) == ("nand", "srcell")


class TestImpact:
    def test_survivor_and_failure_with_structured_code(self, populated):
        entries = assess_impact(
            populated, "nand", renamed_pin_payload(populated), "sticks"
        )
        by_name = {e.composition: e for e in entries}
        assert set(by_name) == {"ok_pair", "breaker"}

        survivor = by_name["ok_pair"]
        assert survivor.survived
        assert survivor.executed == survivor.total
        assert survivor.failures == ()
        assert survivor.dependency == "nand@1"

        broken = by_name["breaker"]
        assert not broken.survived
        assert broken.executed < broken.total
        failure = broken.failures[0]
        assert failure.command == "connect"
        assert failure.code == "args.key"
        assert "A" in failure.error

    def test_compatible_candidate_breaks_nothing(self, populated):
        v1 = populated.payload(populated.resolve("nand@1"))
        entries = assess_impact(populated, "nand", v1, "sticks")
        assert all(e.survived for e in entries)

    def test_leaf_with_no_dependents_has_empty_impact(self, store, session_for):
        publish_nand(session_for())
        payload = store.payload(store.resolve("nand@1"))
        assert assess_impact(store, "nand", payload, "sticks") == []

    def test_missing_journal_reports_missing_dep_code(self, populated):
        # A composition published without its REPLAY journal cannot be
        # re-validated: the cascade reports that as a structured
        # failure rather than guessing.
        comp = "a A b\n"
        populated.publish(
            "opaque",
            "composition",
            comp,
            content_hash=text_digest(comp),
            deps=("nand@1",),
        )
        entries = assess_impact(
            populated, "nand", renamed_pin_payload(populated), "sticks"
        )
        by_name = {e.composition: e for e in entries}
        opaque = by_name["opaque"]
        assert not opaque.survived
        assert opaque.failures[0].code == MissingDep("x").code


class TestImpactOverTypedApi:
    def test_publish_cascades_and_reports(self, populated, session_for):
        session = session_for()
        # Stage the breaking nand in this session's editor library,
        # then publish it through the same command every transport
        # uses — the result carries the impact report.
        from repro.cellstore.cascade import overlay_payload

        overlay_payload(
            session.editor.library, "sticks", renamed_pin_payload(populated)
        )
        result = session.dispatch(
            t.LibraryPublishRequest(name="nand", expected_version=1)
        )
        assert result.version == 2
        by_name = {e.composition: e for e in result.impact}
        assert by_name["ok_pair"].survived
        assert not by_name["breaker"].survived
        assert by_name["breaker"].failures[0].code == "args.key"
        # The publish went through first: impact describes what the
        # now-current version breaks.
        assert populated.resolve("nand").version == 2

    def test_impact_command_replays_existing_version(self, populated, session_for):
        v2 = renamed_pin_payload(populated)
        populated.publish(
            "nand", "sticks", v2, content_hash=text_digest(v2)
        )
        result = session_for().dispatch(t.LibraryImpactRequest(ref="nand@2"))
        assert result.ref == "nand@2"
        by_name = {e.composition: e for e in result.impact}
        assert by_name["ok_pair"].survived
        assert not by_name["breaker"].survived

    def test_no_cascade_flag_skips_assessment(self, populated, session_for):
        session = session_for()
        result = session.dispatch(
            t.LibraryPublishRequest(name="nand", cascade=False)
        )
        assert result.version == 2
        assert result.impact == ()
