"""Shared fixtures for the cell-store suite: a store on disk and
sessions wired to it the way every transport wires them."""

from __future__ import annotations

import pytest

from repro.api.session import Session
from repro.cellstore import CellStore
from repro.core.editor import RiotEditor
from repro.library.stock import filter_library


@pytest.fixture
def store(tmp_path) -> CellStore:
    return CellStore(tmp_path / "lib")


@pytest.fixture
def session_for(store):
    """Factory: a fresh editor + session sharing the test's store —
    each call simulates another user of the shared library."""

    def make(cellstore: CellStore | None = None) -> Session:
        editor = RiotEditor()
        editor.library = filter_library(editor.technology)
        return Session(editor=editor, cellstore=cellstore or store)

    return make
