"""Semantic elaboration tests: layers, scaling, calls, connectors."""

import pytest

from repro.cif.errors import CifError
from repro.cif.nodes import TransformElement
from repro.cif.parser import parse_cif
from repro.cif.semantics import elaborate, transform_from_elements
from repro.geometry.box import Box
from repro.geometry.layers import nmos_technology
from repro.geometry.point import Point

TECH = nmos_technology()


def load(text):
    return elaborate(parse_cif(text), TECH)


class TestGeometry:
    def test_box_binding(self):
        d = load("DS 1; L NM; B 10 20 5 10; DF; E")
        cell = d.cell(1)
        layer, box = cell.geometry.boxes[0]
        assert layer.name == "metal"
        assert box == Box(0, 0, 10, 20)

    def test_box_direction_rotates(self):
        d = load("DS 1; L NM; B 10 20 0 0 0 1; DF; E")
        _, box = d.cell(1).geometry.boxes[0]
        # Length axis now vertical: 20 wide, 10 tall becomes 20 tall, 10... no:
        # B length width -> direction (0,1) swaps axes.
        assert box == Box(-10, -5, 10, 5)

    def test_geometry_before_layer_rejected(self):
        with pytest.raises(CifError, match="before any L"):
            load("DS 1; B 2 2 0 0; DF; E")

    def test_unknown_layer(self):
        with pytest.raises(KeyError, match="unknown CIF layer"):
            load("DS 1; L QQ; B 2 2 0 0; DF; E")

    def test_wire_elaboration(self):
        d = load("DS 1; L NM; W 40 0 0 100 0; DF; E")
        path = d.cell(1).geometry.paths[0]
        assert path.width == 40
        assert path.points == (Point(0, 0), Point(100, 0))

    def test_zero_width_wire_rejected(self):
        with pytest.raises(CifError, match="width must be positive"):
            load("DS 1; L NM; W 0 0 0 100 0; DF; E")

    def test_polygon_elaboration(self):
        d = load("DS 1; L ND; P 0 0 10 0 10 10 0 10; DF; E")
        poly = d.cell(1).geometry.polygons[0]
        assert poly.area == 100

    def test_roundflash_becomes_square(self):
        d = load("DS 1; L NM; R 30 5 5; DF; E")
        _, box = d.cell(1).geometry.boxes[0]
        assert box == Box(-10, -10, 20, 20)  # diameter 30 rounded up to 30->30? see below

    def test_bounding_box(self):
        d = load("DS 1; L NM; B 10 10 5 5; B 10 10 25 5; DF; E")
        assert d.cell(1).bounding_box() == Box(0, 0, 30, 10)

    def test_empty_symbol_has_no_bbox(self):
        d = load("DS 1; L NM; DF; E")
        with pytest.raises(CifError, match="is empty"):
            d.cell(1).bounding_box()


class TestScaling:
    def test_ds_scale_applies(self):
        d = load("DS 1 100 2; L NM; B 2 2 1 1; DF; E")
        _, box = d.cell(1).geometry.boxes[0]
        assert box == Box(0, 0, 100, 100)

    def test_scale_nonintegral_rejected(self):
        with pytest.raises(CifError, match="not an integer"):
            load("DS 1 1 3; L NM; B 2 2 1 1; DF; E")

    def test_scale_applies_to_calls(self):
        d = load("DS 1; L NM; B 2 2 0 0; DF; DS 2 10 1; C 1 T 5 5; DF; E")
        cell = d.cell(2)
        _, transform = cell.calls[0]
        assert transform.translation == Point(50, 50)


class TestCalls:
    def test_forward_reference(self):
        d = load("DS 2; C 1 T 10 0; DF; DS 1; L NM; B 2 2 0 0; DF; E")
        assert d.cell(2).calls[0][0] is d.cell(1)

    def test_undefined_callee(self):
        with pytest.raises(CifError, match="undefined symbol 9"):
            load("DS 2; C 9; DF; E")

    def test_top_level_call(self):
        d = load("DS 1; L NM; B 2 2 0 0; DF; C 1 T 100 0; E")
        assert len(d.top_calls) == 1
        cell, transform = d.top_calls[0]
        assert cell.number == 1
        assert transform.translation == Point(100, 0)

    def test_top_level_undefined_call(self):
        with pytest.raises(CifError, match="top level calls undefined"):
            load("C 3; E")

    def test_recursion_detected(self):
        d = load("DS 1; C 2; DF; DS 2; C 1; DF; E")
        with pytest.raises(CifError, match="recursive"):
            d.cell(1).bounding_box()

    def test_flatten_applies_transforms(self):
        d = load(
            "DS 1; L NM; B 10 10 5 5; DF;"
            "DS 2; C 1 T 100 0; C 1 MX T 0 100; DF; E"
        )
        flat = d.cell(2).flatten()
        boxes = sorted((b for _, b in flat.boxes), key=lambda b: (b.llx, b.lly))
        assert boxes == [Box(-10, 100, 0, 110), Box(100, 0, 110, 10)]

    def test_delete_definitions(self):
        d = load("DS 1; L NM; B 2 2 0 0; DF; DS 2; L NM; B 2 2 0 0; DF; DD 2; E")
        assert 1 in d.cells_by_number
        assert 2 not in d.cells_by_number


class TestTransformElements:
    def test_translation(self):
        t = transform_from_elements((TransformElement("T", Point(3, 4)),))
        assert t.apply(Point(0, 0)) == Point(3, 4)

    def test_mirror_then_translate(self):
        t = transform_from_elements(
            (TransformElement("MX"), TransformElement("T", Point(10, 0)))
        )
        assert t.apply(Point(1, 0)) == Point(9, 0)

    def test_translate_then_mirror(self):
        t = transform_from_elements(
            (TransformElement("T", Point(10, 0)), TransformElement("MX"))
        )
        assert t.apply(Point(1, 0)) == Point(-11, 0)

    def test_rotation_non_unit_vector(self):
        t = transform_from_elements((TransformElement("R", Point(0, 5)),))
        assert t.apply(Point(1, 0)) == Point(0, 1)

    def test_non_manhattan_rotation_rejected(self):
        with pytest.raises(CifError, match="non-Manhattan"):
            transform_from_elements((TransformElement("R", Point(1, 1)),))


class TestUserExtensions:
    def test_cell_name(self):
        d = load("DS 1; 9 shiftcell; L NM; B 2 2 0 0; DF; E")
        assert d.cell(1).name == "shiftcell"
        assert d.cell("shiftcell") is d.cell(1)

    def test_default_name(self):
        d = load("DS 7; L NM; B 2 2 0 0; DF; E")
        assert d.cell(7).name == "cif7"

    def test_connector(self):
        d = load("DS 1; L NM; B 100 100 50 50; 94 IN 0 50 NM 40; DF; E")
        conn = d.cell(1).connector("IN")
        assert conn.position == Point(0, 50)
        assert conn.layer.name == "metal"
        assert conn.width == 40

    def test_connector_default_width(self):
        d = load("DS 1; L NP; B 100 100 50 50; 94 A 0 50 NP; DF; E")
        assert d.cell(1).connector("A").width == TECH.min_width("poly")

    def test_connector_malformed(self):
        with pytest.raises(CifError, match="malformed connector"):
            load("DS 1; 94 IN 0; DF; E")

    def test_connector_bad_coordinate(self):
        with pytest.raises(CifError, match="integers"):
            load("DS 1; 94 IN x y NM 40; DF; E")

    def test_missing_connector_lookup(self):
        d = load("DS 1; L NM; B 2 2 0 0; DF; E")
        with pytest.raises(KeyError, match="no connector"):
            d.cell(1).connector("OUT")

    def test_other_user_commands_ignored(self):
        d = load("DS 1; 5 random stuff; L NM; B 2 2 0 0; DF; E")
        assert d.cell(1).geometry.shape_count == 1

    def test_cell_lookup_by_missing_name(self):
        d = load("E")
        with pytest.raises(KeyError):
            d.cell("nope")
