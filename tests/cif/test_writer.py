"""Round-trip tests for the CIF writer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cif.errors import CifError
from repro.cif.parser import parse_cif
from repro.cif.semantics import CifCell, CifConnector, elaborate
from repro.cif.writer import write_cif
from repro.geometry.box import Box
from repro.geometry.layers import nmos_technology
from repro.geometry.orientation import ALL_ORIENTATIONS
from repro.geometry.point import Point
from repro.geometry.transform import Transform

TECH = nmos_technology()
METAL = TECH.layer("metal")


def make_leaf(name="leaf", number=1):
    cell = CifCell(number, name)
    cell.geometry.boxes.append((METAL, Box(0, 0, 100, 40)))
    cell.connectors.append(CifConnector("IN", Point(0, 20), METAL, 40))
    return cell


def roundtrip(cells):
    text = write_cif(cells)
    return elaborate(parse_cif(text), TECH)


class TestRoundTrip:
    def test_leaf_geometry_survives(self):
        d = roundtrip([make_leaf()])
        cell = d.cell("leaf")
        assert cell.geometry.boxes[0][1] == Box(0, 0, 100, 40)

    def test_connector_survives(self):
        d = roundtrip([make_leaf()])
        conn = d.cell("leaf").connector("IN")
        assert conn.position == Point(0, 20)
        assert conn.width == 40
        assert conn.layer.name == "metal"

    def test_hierarchy_survives(self):
        leaf = make_leaf()
        parent = CifCell(2, "parent")
        parent.calls.append((leaf, Transform.translate(200, 0)))
        parent.calls.append((leaf, Transform.translate(400, 0)))
        d = roundtrip([parent])
        got = d.cell("parent")
        assert len(got.calls) == 2
        assert got.calls[0][1].translation == Point(200, 0)

    def test_shared_subcell_written_once(self):
        leaf = make_leaf()
        a = CifCell(2, "a")
        b = CifCell(3, "b")
        a.calls.append((leaf, Transform.identity()))
        b.calls.append((leaf, Transform.identity()))
        text = write_cif([a, b])
        assert text.count("9 leaf;") == 1

    def test_top_instantiated(self):
        text = write_cif([make_leaf()])
        lines = [line for line in text.splitlines() if line.startswith("C ")]
        assert len(lines) == 1

    def test_no_top_instantiation(self):
        text = write_cif([make_leaf()], instantiate_top=False)
        assert not any(line.startswith("C ") for line in text.splitlines())

    def test_flattened_geometry_identical(self):
        leaf = make_leaf()
        parent = CifCell(2, "parent")
        parent.calls.append((leaf, Transform.translate(200, 100)))
        before = parent.flatten()
        d = roundtrip([parent])
        after = d.cell("parent").flatten()
        assert [b for _, b in before.boxes] == [b for _, b in after.boxes]

    @given(st.sampled_from(ALL_ORIENTATIONS))
    def test_all_orientations_roundtrip(self, orientation):
        leaf = make_leaf()
        parent = CifCell(2, "parent")
        parent.calls.append((leaf, Transform(orientation, Point(500, 700))))
        d = roundtrip([parent])
        got = d.cell("parent").calls[0][1]
        assert got.orientation == orientation
        assert got.translation == Point(500, 700)

    def test_wires_and_polygons_roundtrip(self):
        from repro.geometry.path import Path
        from repro.geometry.polygon import Polygon

        cell = CifCell(1, "mix")
        cell.geometry.paths.append(
            Path(METAL, 40, (Point(0, 0), Point(100, 0), Point(100, 100)))
        )
        cell.geometry.polygons.append(
            Polygon(
                TECH.layer("diffusion"),
                (Point(0, 0), Point(50, 0), Point(50, 50)),
            )
        )
        d = roundtrip([cell])
        got = d.cell("mix")
        assert got.geometry.paths[0].points == (
            Point(0, 0),
            Point(100, 0),
            Point(100, 100),
        )
        assert got.geometry.polygons[0].area == 1250


class TestErrors:
    def test_recursive_hierarchy_rejected(self):
        a = CifCell(1, "a")
        b = CifCell(2, "b")
        a.calls.append((b, Transform.identity()))
        b.calls.append((a, Transform.identity()))
        with pytest.raises(CifError, match="recursive"):
            write_cif([a])

    def test_odd_box_rejected(self):
        cell = CifCell(1, "odd")
        cell.geometry.boxes.append((METAL, Box(0, 0, 5, 4)))
        with pytest.raises(CifError, match="odd dimensions"):
            write_cif([cell])
