"""Syntax-level tests for the CIF parser."""

import pytest

from repro.cif.errors import CifError
from repro.cif.nodes import (
    BoxCommand,
    CallCommand,
    DeleteCommand,
    LayerCommand,
    PolygonCommand,
    RoundFlashCommand,
    UserCommand,
    WireCommand,
)
from repro.cif.parser import parse_cif
from repro.geometry.point import Point


class TestBasicCommands:
    def test_empty_file(self):
        f = parse_cif("E")
        assert f.symbols == []
        assert f.commands == []

    def test_missing_end(self):
        with pytest.raises(CifError, match="missing final E"):
            parse_cif("L NM;")

    def test_box(self):
        f = parse_cif("L NM; B 10 20 5 5; E")
        assert f.commands == [
            LayerCommand("NM"),
            BoxCommand(10, 20, Point(5, 5)),
        ]

    def test_box_with_direction(self):
        f = parse_cif("L NM; B 10 20 5 5 0 1; E")
        assert f.commands[1] == BoxCommand(10, 20, Point(5, 5), Point(0, 1))

    def test_box_zero_direction_rejected(self):
        with pytest.raises(CifError, match="zero vector"):
            parse_cif("L NM; B 10 20 5 5 0 0; E")

    def test_negative_coordinates(self):
        f = parse_cif("L NM; B 10 20 -5 -15; E")
        assert f.commands[1] == BoxCommand(10, 20, Point(-5, -15))

    def test_polygon(self):
        f = parse_cif("L ND; P 0 0 10 0 10 10; E")
        assert f.commands[1] == PolygonCommand((Point(0, 0), Point(10, 0), Point(10, 10)))

    def test_polygon_too_few_points(self):
        with pytest.raises(CifError, match="at least 3"):
            parse_cif("L ND; P 0 0 10 0; E")

    def test_wire(self):
        f = parse_cif("L NM; W 40 0 0 100 0 100 100; E")
        assert f.commands[1] == WireCommand(
            40, (Point(0, 0), Point(100, 0), Point(100, 100))
        )

    def test_roundflash(self):
        f = parse_cif("L NM; R 30 5 5; E")
        assert f.commands[1] == RoundFlashCommand(30, Point(5, 5))

    def test_layer_shortname_with_digit(self):
        f = parse_cif("L NM2; E")
        assert f.commands[0] == LayerCommand("NM2")

    def test_layer_must_start_with_letter(self):
        with pytest.raises(CifError, match="start with a letter"):
            parse_cif("L 2M; E")

    def test_null_commands_ignored(self):
        f = parse_cif(";;; L NM;; E")
        assert f.commands == [LayerCommand("NM")]


class TestLexicalOddities:
    def test_lowercase_is_blank(self):
        # Per the CIF spec, lowercase letters are separator characters.
        f = parse_cif("Box 10 20 5 5 was here; E")
        # 'B' then 'ox' (blank) then integers; trailing words are blanks.
        assert f.commands == [BoxCommand(10, 20, Point(5, 5))]

    def test_commas_are_blanks(self):
        f = parse_cif("B 10,20 5,5; E")
        assert f.commands == [BoxCommand(10, 20, Point(5, 5))]

    def test_comments_skipped(self):
        f = parse_cif("(a comment) B 2 2 0 0; (another) E")
        assert f.commands == [BoxCommand(2, 2, Point(0, 0))]

    def test_nested_comments(self):
        f = parse_cif("(outer (inner) outer) B 2 2 0 0; E")
        assert len(f.commands) == 1

    def test_unterminated_comment(self):
        with pytest.raises(CifError, match="unterminated comment"):
            parse_cif("(oops B 2 2 0 0; E")

    def test_comment_between_numbers(self):
        f = parse_cif("B 2 (gap) 2 0 0; E")
        assert f.commands == [BoxCommand(2, 2, Point(0, 0))]

    def test_error_position_reported(self):
        with pytest.raises(CifError, match="line 2"):
            parse_cif("L NM;\nB xx;\nE")


class TestSymbols:
    def test_definition(self):
        f = parse_cif("DS 1; L NM; B 2 2 0 0; DF; E")
        assert len(f.symbols) == 1
        assert f.symbols[0].number == 1
        assert len(f.symbols[0].commands) == 2

    def test_definition_with_scale(self):
        f = parse_cif("DS 3 100 2; DF; E")
        assert f.symbols[0].scale_num == 100
        assert f.symbols[0].scale_den == 2

    def test_zero_denominator(self):
        with pytest.raises(CifError, match="denominator"):
            parse_cif("DS 3 100 0; DF; E")

    def test_nested_ds_rejected(self):
        with pytest.raises(CifError, match="nested DS"):
            parse_cif("DS 1; DS 2; DF; DF; E")

    def test_df_without_ds(self):
        with pytest.raises(CifError, match="DF without"):
            parse_cif("DF; E")

    def test_unterminated_ds(self):
        with pytest.raises(CifError, match="unterminated symbol"):
            parse_cif("DS 1; L NM; E")

    def test_last_definition_wins(self):
        f = parse_cif("DS 1; L NM; B 2 2 0 0; DF; DS 1; L ND; B 4 4 0 0; DF; E")
        sym = f.symbol(1)
        assert sym.commands[0] == LayerCommand("ND")

    def test_symbol_lookup_missing(self):
        f = parse_cif("E")
        with pytest.raises(KeyError):
            f.symbol(7)

    def test_delete_command(self):
        f = parse_cif("DS 1; DF; DD 1; E")
        assert DeleteCommand(1) in f.commands

    def test_delete_inside_symbol_rejected(self):
        with pytest.raises(CifError, match="DD"):
            parse_cif("DS 1; DD 1; DF; E")


class TestCalls:
    def test_plain_call(self):
        f = parse_cif("C 5; E")
        assert f.commands == [CallCommand(5)]

    def test_call_with_translation(self):
        f = parse_cif("C 5 T 100 200; E")
        cmd = f.commands[0]
        assert cmd.elements[0].kind == "T"
        assert cmd.elements[0].point == Point(100, 200)

    def test_call_with_mirror_and_rotation(self):
        f = parse_cif("C 5 MX R 0 1 T 10 0; E")
        kinds = [e.kind for e in f.commands[0].elements]
        assert kinds == ["MX", "R", "T"]

    def test_call_bad_mirror(self):
        with pytest.raises(CifError, match="MX or MY"):
            parse_cif("C 5 M Z; E")

    def test_call_zero_rotation(self):
        with pytest.raises(CifError, match="zero vector"):
            parse_cif("C 5 R 0 0; E")

    def test_call_unknown_element(self):
        with pytest.raises(CifError, match="unknown transform element"):
            parse_cif("C 5 Q; E")


class TestUserCommands:
    def test_user_command_kept_verbatim(self):
        f = parse_cif("92 anything goes 123 -x; E")
        assert f.commands == [UserCommand(9, "2 anything goes 123 -x")]

    def test_cell_name_command(self):
        f = parse_cif("DS 1; 9 mycell; L NM; B 2 2 0 0; DF; E")
        assert f.symbols[0].commands[0] == UserCommand(9, "mycell")

    def test_connector_command(self):
        f = parse_cif("94 IN 0 300 NM 400; E")
        assert f.commands == [UserCommand(9, "4 IN 0 300 NM 400")]

    def test_unknown_command_letter(self):
        with pytest.raises(CifError, match="unknown command letter"):
            parse_cif("Z 1 2; E")

    def test_unknown_d_command(self):
        with pytest.raises(CifError, match="unknown command DQ"):
            parse_cif("DQ 1; E")
