"""Property-based round-trip tests for the whole CIF pipeline.

Hypothesis generates random (but well-formed) cell hierarchies; the
writer serialises them; the parser and elaborator read them back; the
flattened mask geometry must be identical.  This exercises every
corner the hand-written tests might miss: negative coordinates, deep
nesting, shared subcells, every orientation, mixed shape kinds.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cif.parser import parse_cif
from repro.cif.semantics import CifCell, CifConnector, elaborate
from repro.cif.writer import write_cif
from repro.geometry.box import Box
from repro.geometry.layers import nmos_technology
from repro.geometry.orientation import ALL_ORIENTATIONS
from repro.geometry.path import Path
from repro.geometry.point import Point
from repro.geometry.transform import Transform

TECH = nmos_technology()
LAYERS = [TECH.layer(n) for n in ("metal", "poly", "diffusion")]

# Even coordinates keep CIF's centre-specified boxes exact.
even = st.integers(min_value=-5000, max_value=5000).map(lambda v: v * 2)
positive_even = st.integers(min_value=1, max_value=2000).map(lambda v: v * 2)


@st.composite
def boxes(draw):
    x = draw(even)
    y = draw(even)
    w = draw(positive_even)
    h = draw(positive_even)
    return Box(x, y, x + w, y + h)


@st.composite
def wires(draw):
    layer = draw(st.sampled_from(LAYERS))
    width = draw(positive_even)
    start = Point(draw(even), draw(even))
    points = [start]
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        if draw(st.booleans()):
            points.append(Point(draw(even), points[-1].y))
        else:
            points.append(Point(points[-1].x, draw(even)))
    return Path(layer, width, tuple(points))


@st.composite
def leaf_cells(draw, number):
    cell = CifCell(number, f"leaf{number}")
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        layer = draw(st.sampled_from(LAYERS))
        cell.geometry.boxes.append((layer, draw(boxes())))
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        cell.geometry.paths.append(draw(wires()))
    box = cell.bounding_box()
    if draw(st.booleans()):
        cell.connectors.append(
            CifConnector(
                "C0", Point(box.llx, box.center.y), draw(st.sampled_from(LAYERS)), 400
            )
        )
    return cell


@st.composite
def hierarchies(draw):
    leaf_count = draw(st.integers(min_value=1, max_value=3))
    leaves = [draw(leaf_cells(i + 1)) for i in range(leaf_count)]
    parent = CifCell(100, "parent")
    for i in range(draw(st.integers(min_value=1, max_value=5))):
        child = draw(st.sampled_from(leaves))
        orientation = draw(st.sampled_from(ALL_ORIENTATIONS))
        translation = Point(draw(even), draw(even))
        parent.calls.append((child, Transform(orientation, translation)))
    top = CifCell(200, "top")
    top.calls.append((parent, Transform.translate(draw(even), draw(even))))
    if draw(st.booleans()):
        top.calls.append((leaves[0], Transform.identity()))
    return top


def box_multiset(flat):
    return sorted((layer.name, b.llx, b.lly, b.urx, b.ury) for layer, b in flat.boxes)


def path_multiset(flat):
    return sorted(
        (p.layer.name, p.width, tuple((q.x, q.y) for q in p.points))
        for p in flat.paths
    )


class TestRoundTripProperties:
    @settings(max_examples=60, deadline=None)
    @given(hierarchies())
    def test_flattened_geometry_survives(self, top):
        text = write_cif([top])
        design = elaborate(parse_cif(text), TECH)
        again = design.cell("top")
        assert box_multiset(top.flatten()) == box_multiset(again.flatten())
        assert path_multiset(top.flatten()) == path_multiset(again.flatten())

    @settings(max_examples=60, deadline=None)
    @given(hierarchies())
    def test_bounding_box_survives(self, top):
        text = write_cif([top])
        design = elaborate(parse_cif(text), TECH)
        assert design.cell("top").bounding_box() == top.bounding_box()

    @settings(max_examples=40, deadline=None)
    @given(hierarchies())
    def test_double_roundtrip_is_fixed_point(self, top):
        once = write_cif([top])
        design = elaborate(parse_cif(once), TECH)
        twice = write_cif([design.cell("top")])
        assert once == twice

    @settings(max_examples=40, deadline=None)
    @given(leaf_cells(7))
    def test_connectors_survive(self, leaf):
        text = write_cif([leaf])
        design = elaborate(parse_cif(text), TECH)
        again = design.cell(leaf.name)
        assert [
            (c.name, c.position, c.layer.name, c.width) for c in again.connectors
        ] == [
            (c.name, c.position, c.layer.name, c.width) for c in leaf.connectors
        ]
