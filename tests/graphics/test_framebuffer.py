"""Tests for the framebuffer primitives."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graphics.framebuffer import FrameBuffer


@pytest.fixture()
def fb():
    return FrameBuffer(64, 48)


class TestBasics:
    def test_size_validation(self):
        with pytest.raises(ValueError):
            FrameBuffer(0, 10)

    def test_starts_clear(self, fb):
        assert fb.count_color(0) == 64 * 48

    def test_set_get(self, fb):
        fb.set_pixel(3, 4, 5)
        assert fb.get_pixel(3, 4) == 5

    def test_out_of_bounds_set_ignored(self, fb):
        fb.set_pixel(-1, 0, 5)
        fb.set_pixel(64, 0, 5)
        fb.set_pixel(0, 48, 5)
        assert fb.count_color(5) == 0

    def test_out_of_bounds_get_raises(self, fb):
        with pytest.raises(IndexError):
            fb.get_pixel(64, 0)

    def test_clear_to_color(self, fb):
        fb.clear(3)
        assert fb.count_color(3) == 64 * 48

    def test_snapshot_immutable(self, fb):
        snap = fb.snapshot()
        fb.set_pixel(0, 0, 9)
        assert snap[0] == 0


class TestLines:
    def test_hline(self, fb):
        fb.hline(10, 20, 5, 7)
        assert fb.count_color(7) == 11
        assert fb.get_pixel(10, 5) == 7
        assert fb.get_pixel(20, 5) == 7

    def test_hline_swapped_endpoints(self, fb):
        fb.hline(20, 10, 5, 7)
        assert fb.count_color(7) == 11

    def test_hline_clipped(self, fb):
        fb.hline(-5, 5, 0, 7)
        assert fb.count_color(7) == 6

    def test_hline_offscreen(self, fb):
        fb.hline(0, 10, 99, 7)
        assert fb.count_color(7) == 0

    def test_vline(self, fb):
        fb.vline(5, 10, 20, 7)
        assert fb.count_color(7) == 11

    def test_diagonal_line(self, fb):
        fb.line(0, 0, 10, 10, 7)
        for i in range(11):
            assert fb.get_pixel(i, i) == 7

    def test_line_endpoints_always_drawn(self, fb):
        fb.line(3, 7, 40, 30, 6)
        assert fb.get_pixel(3, 7) == 6
        assert fb.get_pixel(40, 30) == 6

    def test_axis_aligned_line_dispatch(self, fb):
        fb.line(0, 5, 10, 5, 7)
        fb.line(5, 0, 5, 10, 7)
        assert fb.get_pixel(10, 5) == 7
        assert fb.get_pixel(5, 10) == 7

    @given(
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=0, max_value=47),
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=0, max_value=47),
    )
    def test_line_connectivity(self, x0, y0, x1, y1):
        """Bresenham lines are 8-connected: successive pixels adjacent."""
        fb = FrameBuffer(64, 48)
        fb.line(x0, y0, x1, y1, 1)
        lit = {
            (x, y)
            for x in range(64)
            for y in range(48)
            if fb.get_pixel(x, y) == 1
        }
        assert (x0, y0) in lit
        assert (x1, y1) in lit
        expected = max(abs(x1 - x0), abs(y1 - y0)) + 1
        assert len(lit) == expected


class TestShapes:
    def test_rect_outline(self, fb):
        fb.rect(10, 10, 20, 15, 7)
        assert fb.get_pixel(10, 10) == 7
        assert fb.get_pixel(20, 15) == 7
        assert fb.get_pixel(15, 12) == 0  # interior untouched

    def test_fill_rect(self, fb):
        fb.fill_rect(10, 10, 19, 14, 7)
        assert fb.count_color(7) == 10 * 5

    def test_cross(self, fb):
        fb.cross(32, 24, 3, 7)
        assert fb.count_color(7) == 13  # 7 + 7 - shared centre
        assert fb.get_pixel(32, 24) == 7
        assert fb.get_pixel(29, 24) == 7
        assert fb.get_pixel(32, 27) == 7


class TestText:
    def test_text_draws_pixels(self, fb):
        end = fb.text(2, 2, "RIOT", 7)
        assert fb.count_color(7) > 20
        assert end == 2 + 4 * 6

    def test_lowercase_same_as_upper(self, fb):
        fb.text(2, 2, "abc", 7)
        lower = fb.snapshot()
        fb.clear()
        fb.text(2, 2, "ABC", 7)
        assert lower == fb.snapshot()

    def test_unknown_glyph_is_box(self, fb):
        fb.text(2, 2, "~", 7)
        assert fb.count_color(7) == 20  # box outline of 5x7 glyph

    def test_ascii_export(self):
        fb = FrameBuffer(4, 2)
        fb.set_pixel(0, 1, 1)
        art = fb.to_ascii(" #")
        assert art == "#   \n    "
