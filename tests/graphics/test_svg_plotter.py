"""Tests for the SVG and pen-plotter hardcopy backends."""

import pytest

from repro.cif.semantics import FlatGeometry
from repro.composition.cell import CompositionCell
from repro.composition.instance import Instance
from repro.geometry.box import Box
from repro.geometry.layers import nmos_technology
from repro.geometry.path import Path
from repro.geometry.point import Point
from repro.graphics.plotter import PenPlotter, plot_mask
from repro.graphics.svg import SvgCanvas, render_mask, render_symbolic

from tests.composition.conftest import make_cif_leaf

TECH = nmos_technology()
METAL = TECH.layer("metal")
POLY = TECH.layer("poly")


def sample_geometry():
    g = FlatGeometry()
    g.boxes.append((METAL, Box(0, 0, 1000, 500)))
    g.boxes.append((POLY, Box(200, 0, 400, 900)))
    g.paths.append(Path(METAL, 100, (Point(0, 700), Point(1000, 700))))
    return g


class TestSvgCanvas:
    def test_valid_document(self):
        canvas = SvgCanvas(Box(0, 0, 1000, 1000))
        canvas.rect(Box(0, 0, 100, 100), 4)
        text = canvas.to_svg()
        assert text.startswith('<?xml version="1.0"')
        assert "<svg" in text and "</svg>" in text

    def test_element_count(self):
        canvas = SvgCanvas(Box(0, 0, 100, 100))
        canvas.rect(Box(0, 0, 10, 10), 1)
        canvas.line(Point(0, 0), Point(10, 10), 2)
        canvas.cross(Point(5, 5), 2, 3)
        assert canvas.element_count == 4  # rect + line + 2 cross lines

    def test_text_escaped(self):
        canvas = SvgCanvas(Box(0, 0, 100, 100))
        canvas.text(Point(0, 0), "<A&B>", 7)
        assert "&lt;A&amp;B&gt;" in canvas.to_svg()

    def test_y_flip(self):
        canvas = SvgCanvas(Box(0, 0, 100, 100))
        canvas.rect(Box(0, 90, 10, 100), 1)
        # World-top rectangle must be near the SVG top (small y).
        text = canvas.to_svg()
        assert 'y="0"' in text

    def test_degenerate_world_box(self):
        canvas = SvgCanvas(Box(5, 5, 5, 5))
        assert canvas.world.width > 0


class TestRenderers:
    def test_render_mask(self):
        svg = render_mask(sample_geometry())
        assert svg.count("<rect") >= 4  # background + 2 boxes + path box

    def test_render_symbolic(self):
        comp = CompositionCell("top")
        comp.add_instance(Instance("u1", make_cif_leaf()))
        svg = render_symbolic(comp)
        assert "<line" in svg  # connector crosses
        assert "<text" in svg  # instance label

    def test_mask_uses_layer_colors(self):
        svg = render_mask(sample_geometry())
        from repro.graphics.color import color_rgb

        assert color_rgb(METAL.color) in svg
        assert color_rgb(POLY.color) in svg


class TestPenPlotter:
    def test_pen_selection(self):
        p = PenPlotter()
        p.select_pen(2)
        assert p.output() == "SP2;"
        assert p.pen_changes == 1

    def test_pen_validation(self):
        p = PenPlotter()
        with pytest.raises(ValueError, match="pen must be"):
            p.select_pen(5)

    def test_draw_requires_pen(self):
        p = PenPlotter()
        with pytest.raises(ValueError, match="no pen selected"):
            p.draw_to(Point(10, 10))

    def test_reselecting_same_pen_free(self):
        p = PenPlotter()
        p.select_pen(1)
        p.select_pen(1)
        assert p.pen_changes == 1

    def test_distances_tracked(self):
        p = PenPlotter()
        p.select_pen(1)
        p.move_to(Point(10, 0))
        p.draw_to(Point(10, 20))
        assert p.pen_up_distance == 10
        assert p.pen_down_distance == 20

    def test_rect_is_closed(self):
        p = PenPlotter()
        p.select_pen(1)
        p.rect(Box(0, 0, 10, 10))
        assert p.pen_down_distance == 40

    def test_polyline_empty(self):
        p = PenPlotter()
        p.polyline([])
        assert p.command_count == 0

    def test_cross(self):
        p = PenPlotter()
        p.select_pen(1)
        p.cross(Point(0, 0), 5)
        assert p.pen_down_distance == 20

    def test_plot_mask_groups_pens(self):
        plotter = plot_mask(sample_geometry())
        # Two layers -> exactly two pen changes despite three shapes.
        assert plotter.pen_changes == 2
        assert plotter.pen_down_distance > 0

    def test_output_format(self):
        p = PenPlotter()
        p.select_pen(1)
        p.polyline([Point(0, 0), Point(5, 0)])
        assert p.output() == "SP1;PU0,0;PD5,0;"
