"""Tests for zoom/pan viewport mapping."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.box import Box
from repro.geometry.point import Point
from repro.graphics.viewport import Viewport


@pytest.fixture()
def vp():
    return Viewport(
        screen=Box(0, 0, 400, 300),
        world_center=Point(0, 0),
        scale_num=1,
        scale_den=100,
    )


class TestMapping:
    def test_center_maps_to_center(self, vp):
        assert vp.to_screen(Point(0, 0)) == Point(200, 150)

    def test_scale(self, vp):
        assert vp.to_screen(Point(1000, 0)) == Point(210, 150)

    def test_roundtrip_at_scale_points(self, vp):
        p = Point(5000, -3000)
        assert vp.to_world(vp.to_screen(p)) == p

    def test_screen_box(self, vp):
        box = vp.to_screen_box(Box(-1000, -1000, 1000, 1000))
        assert box == Box(190, 140, 210, 160)

    def test_screen_length(self, vp):
        assert vp.screen_length(2500) == 25

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            Viewport(Box(0, 0, 10, 10), Point(0, 0), scale_num=0)


class TestNavigation:
    def test_pan(self, vp):
        vp.pan(1000, 0)
        assert vp.to_screen(Point(1000, 0)) == Point(200, 150)

    def test_zoom_in(self, vp):
        vp.zoom(2)
        assert vp.to_screen(Point(1000, 0)) == Point(220, 150)

    def test_zoom_out(self, vp):
        vp.zoom(1, 2)
        assert vp.to_screen(Point(1000, 0)) == Point(205, 150)

    def test_zoom_validation(self, vp):
        with pytest.raises(ValueError):
            vp.zoom(0)

    def test_zoom_reduces_fraction(self, vp):
        vp.zoom(2)
        vp.zoom(1, 2)
        assert (vp.scale_num, vp.scale_den) == (1, 100)

    def test_fit_centers(self, vp):
        vp.fit(Box(0, 0, 10000, 10000))
        assert vp.world_center == Point(5000, 5000)

    def test_fit_contains_box(self, vp):
        target = Box(0, 0, 50000, 10000)
        vp.fit(target)
        visible = vp.visible_world()
        assert visible.contains_box(target)

    def test_fit_degenerate_box(self, vp):
        vp.fit(Box(100, 100, 100, 100))
        assert vp.world_center == Point(100, 100)

    def test_visible_world_tracks_zoom(self, vp):
        before = vp.visible_world()
        vp.zoom(2)
        after = vp.visible_world()
        assert after.width == before.width // 2

    @given(st.integers(min_value=-10**6, max_value=10**6),
           st.integers(min_value=-10**6, max_value=10**6))
    def test_fit_never_clips(self, w, h):
        vp = Viewport(Box(0, 0, 400, 300), Point(0, 0))
        box = Box(0, 0, abs(w) + 1, abs(h) + 1)
        vp.fit(box)
        assert vp.visible_world().contains_box(box)
