"""Unit tests for the palette and the bitmap font."""

from repro.graphics import font
from repro.graphics.color import PALETTE, color_name, color_rgb, layer_color
from repro.geometry.layers import nmos_technology

TECH = nmos_technology()


class TestPalette:
    def test_known_names(self):
        assert color_name(0) == "black"
        assert color_name(4) == "blue"
        assert color_name(7) == "white"

    def test_unknown_name(self):
        assert color_name(42) == "color42"

    def test_rgb_format(self):
        for index in PALETTE:
            rgb = color_rgb(index)
            assert rgb.startswith("#")
            assert len(rgb) == 7
            int(rgb[1:], 16)  # parses as hex

    def test_unknown_rgb_is_magenta_flag(self):
        assert color_rgb(99) == "#ff00ff"

    def test_mead_conway_layer_colors(self):
        # The plotting conventions: green diffusion, red poly, blue metal.
        assert color_name(layer_color(TECH.layer("diffusion"))) == "green"
        assert color_name(layer_color(TECH.layer("poly"))) == "red"
        assert color_name(layer_color(TECH.layer("metal"))) == "blue"

    def test_layers_have_distinct_colors(self):
        colors = [layer_color(l) for l in TECH.layers]
        assert len(set(colors)) == len(colors)


class TestFont:
    def test_glyph_shape(self):
        for ch in "ABZ09-[]":
            rows = font.glyph(ch)
            assert len(rows) == font.GLYPH_HEIGHT
            assert all(0 <= row < 2**font.GLYPH_WIDTH for row in rows)

    def test_lowercase_maps_to_uppercase(self):
        assert font.glyph("a") == font.glyph("A")

    def test_unknown_is_filled_box(self):
        rows = font.glyph("~")
        assert rows[0] == 0b11111
        assert rows[-1] == 0b11111

    def test_space_is_empty(self):
        assert all(row == 0 for row in font.glyph(" "))

    def test_distinct_glyphs(self):
        # Sanity: the alphabet renders distinctly.
        glyphs = {font.glyph(c) for c in "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"}
        assert len(glyphs) == 36

    def test_text_width(self):
        assert font.text_width("") == 0
        assert font.text_width("A") == font.GLYPH_WIDTH
        assert font.text_width("AB") == 2 * font.GLYPH_WIDTH + font.GLYPH_SPACING

    def test_every_connector_name_char_covered(self):
        # The names the display renders must not fall back to boxes.
        for ch in "PWRLGNDIOUTACLKB0123456789[],.":
            assert font.glyph(ch) != font.glyph("~") or ch == "~"
