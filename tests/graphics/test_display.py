"""Tests for the three-area Riot display (paper figure 2)."""

import pytest

from repro.composition.cell import CompositionCell
from repro.composition.instance import Instance
from repro.geometry.point import Point
from repro.geometry.transform import Transform
from repro.graphics.display import MENU_ROW_HEIGHT, Display

from tests.composition.conftest import make_cif_leaf

COMMANDS = ("CREATE", "MOVE", "ABUT", "ROUTE", "STRETCH")


@pytest.fixture()
def display():
    return Display(512, 390, commands=COMMANDS)


@pytest.fixture()
def cell():
    leaf = make_cif_leaf()
    comp = CompositionCell("top")
    comp.add_instance(Instance("u1", leaf))
    comp.add_instance(Instance("u2", leaf, Transform.translate(3000, 0)))
    return comp


class TestLayout:
    def test_three_disjoint_areas(self, display):
        areas = [
            display.editing_area,
            display.cell_menu_area,
            display.command_menu_area,
        ]
        for i, a in enumerate(areas):
            for b in areas[i + 1 :]:
                assert not a.overlaps(b)

    def test_editing_area_is_largest(self, display):
        assert display.editing_area.area > display.cell_menu_area.area
        assert display.editing_area.area > display.command_menu_area.area

    def test_menus_on_right_edge(self, display):
        assert display.cell_menu_area.urx == 511
        assert display.command_menu_area.urx == 511

    def test_cell_menu_above_command_menu(self, display):
        assert display.cell_menu_area.lly >= display.command_menu_area.ury


class TestRender:
    def test_render_draws_something(self, display, cell):
        display.viewport.fit(cell.bounding_box())
        display.render(cell, cell_menu=["leaf", "top"])
        fb = display.framebuffer
        assert fb.count_color(0) < fb.width * fb.height

    def test_render_empty_cell(self, display):
        display.render(None, cell_menu=[])
        # Just the frame should be drawn.
        assert display.framebuffer.count_color(7) > 0

    def test_connector_crosses_use_layer_color(self, display, cell):
        display.viewport.fit(cell.bounding_box())
        display.render(cell, cell_menu=[])
        metal_color = cell.instances[0].connectors()[0].layer.color
        assert display.framebuffer.count_color(metal_color) > 0

    def test_show_names_adds_pixels(self, display, cell):
        display.viewport.fit(cell.bounding_box())
        display.render(cell, cell_menu=[])
        plain = display.framebuffer.count_color(8)
        display.render(cell, cell_menu=[], show_names=True)
        named = display.framebuffer.count_color(8)
        assert named > plain

    def test_array_shows_gridding(self, display):
        # A 4-element array vs a single cell of the same overall size,
        # rendered through the same viewport: the array draws the
        # element grid lines on top of the outer box.
        leaf = make_cif_leaf()
        wide = make_cif_leaf(
            name="wide",
            width=8000,
            connectors=(
                ("IN", 0, 500, "metal", 400),
                ("OUT", 8000, 500, "metal", 400),
            ),
        )
        comp = CompositionCell("top")
        comp.add_instance(Instance("a", leaf, nx=4))
        display.viewport.fit(comp.bounding_box())
        display.render(comp, cell_menu=[])
        with_grid = display.framebuffer.count_color(7)
        comp2 = CompositionCell("top2")
        comp2.add_instance(Instance("a", wide))
        display.render(comp2, cell_menu=[])
        without = display.framebuffer.count_color(7)
        assert with_grid > without

    def test_pending_list_rendered(self, display, cell):
        display.render(cell, cell_menu=[], pending=["U1.OUT - U2.IN"])
        assert display.framebuffer.count_color(8) > 0

    def test_render_deterministic(self, display, cell):
        display.viewport.fit(cell.bounding_box())
        display.render(cell, cell_menu=["leaf"], selected_cell="leaf")
        first = display.framebuffer.snapshot()
        display.render(cell, cell_menu=["leaf"], selected_cell="leaf")
        assert display.framebuffer.snapshot() == first


class TestHitTest:
    def test_editing_area_returns_world(self, display, cell):
        display.render(cell, cell_menu=["leaf"])
        center = display.editing_area.center
        hit = display.hit_test(center)
        assert hit.kind == "editing"
        assert hit.world == display.viewport.to_world(center)

    def test_cell_menu_hit(self, display, cell):
        display.render(cell, cell_menu=["leaf", "top"])
        p = display.menu_point("cell-menu", "top")
        hit = display.hit_test(p)
        assert hit.kind == "cell-menu"
        assert hit.name == "top"

    def test_command_menu_hit(self, display, cell):
        display.render(cell, cell_menu=["leaf"])
        p = display.menu_point("command-menu", "ROUTE")
        hit = display.hit_test(p)
        assert hit.kind == "command-menu"
        assert hit.name == "ROUTE"

    def test_empty_menu_row_returns_none(self, display, cell):
        display.render(cell, cell_menu=["leaf"])
        area = display.cell_menu_area
        p = Point(area.llx + 5, area.ury - 15 * MENU_ROW_HEIGHT)
        hit = display.hit_test(p)
        assert hit.kind == "cell-menu"
        assert hit.name is None

    def test_menu_point_unknown_entry(self, display, cell):
        display.render(cell, cell_menu=["leaf"])
        with pytest.raises(KeyError):
            display.menu_point("cell-menu", "ghost")

    def test_menu_point_bad_kind(self, display):
        with pytest.raises(ValueError):
            display.menu_point("nowhere", "x")

    def test_every_command_hittable(self, display, cell):
        display.render(cell, cell_menu=["leaf"])
        for command in COMMANDS:
            hit = display.hit_test(display.menu_point("command-menu", command))
            assert hit.name == command
