"""Unit tests for the verification facade itself."""

import pytest

from repro.core.editor import RiotEditor
from repro.core.verify import verify_cell
from repro.geometry.layers import nmos_technology
from repro.geometry.point import Point
from repro.library.stock import filter_library

TECH = nmos_technology()


@pytest.fixture(scope="module")
def verified():
    editor = RiotEditor(TECH)
    editor.library = filter_library(TECH)
    editor.new_cell("pair")
    editor.create(at=Point(0, 0), cell_name="srcell", name="a")
    editor.create(at=Point(9000, 0), cell_name="srcell", name="b")
    editor.connect("b", "IN", "a", "OUT")
    editor.do_abut()
    editor.finish()
    return editor.cell, verify_cell(editor.cell, TECH)


class TestReportFields:
    def test_cell_name(self, verified):
        _, r = verified
        assert r.cell_name == "pair"

    def test_flags(self, verified):
        _, r = verified
        assert r.positional_ok
        assert r.drc_ok

    def test_shape_count_positive(self, verified):
        _, r = verified
        assert r.shape_count > 20

    def test_connections_counted(self, verified):
        _, r = verified
        assert r.connections.made_count == 3  # data + both rails


class TestProbes:
    def test_probe_true_recorded(self, verified):
        cell, r = verified
        assert r.probe("IN", "OUT", cell) is True
        assert ("IN", "OUT", True) in r.probes

    def test_probe_false_recorded(self, verified):
        cell, r = verified
        pwr = next(c.name for c in cell.connectors if "PWR" in c.name)
        assert r.probe("IN", pwr, cell) is False
        assert any(ok is False for _, _, ok in r.probes)

    def test_probe_unknown_connector(self, verified):
        cell, r = verified
        with pytest.raises(KeyError):
            r.probe("IN", "GHOST", cell)

    def test_summary_format(self, verified):
        _, r = verified
        text = r.summary()
        assert text.startswith("pair:")
        for token in ("positional", "near misses", "DRC", "mask nodes"):
            assert token in text
