"""Integration tests: the full checking pass over assembled designs.

These cross every module boundary: editor commands build the
composition, the converter generates CIF, the CIF semantics flatten
it, the DRC engine and extractor verify the mask, and the netcheck
verifies the composition — the whole 1982 sign-off loop.
"""

import pytest

from repro.chip.filterchip import ROUTED, STRETCHED, assemble_chip, assemble_logic
from repro.core.editor import RiotEditor
from repro.core.textual import TextualInterface
from repro.core.verify import verify_cell
from repro.geometry.layers import nmos_technology
from repro.geometry.point import Point
from repro.library.stock import filter_library

TECH = nmos_technology()


def fresh_editor():
    editor = RiotEditor(TECH)
    editor.library = filter_library(TECH)
    return editor


class TestAbuttedRowVerification:
    @pytest.fixture(scope="class")
    def report(self):
        editor = fresh_editor()
        editor.new_cell("row")
        editor.create(at=Point(0, 0), cell_name="srcell", nx=4, name="sr")
        editor.finish()
        return editor.cell, verify_cell(editor.cell, TECH)

    def test_drc_clean(self, report):
        _, r = report
        assert r.drc_ok, "; ".join(str(v) for v in r.drc.violations)

    def test_no_near_misses(self, report):
        _, r = report
        assert r.positional_ok

    def test_chain_continuous_on_mask(self, report):
        cell, r = report
        assert r.probe("IN[0,0]", "OUT[3,0]", cell)

    def test_rails_continuous_on_mask(self, report):
        cell, r = report
        assert r.probe("PWRL[0,0]", "PWRR[3,0]", cell)
        assert r.probe("GNDL[0,0]", "GNDR[3,0]", cell)

    def test_power_and_data_distinct(self, report):
        cell, r = report
        assert not r.probe("IN[0,0]", "PWRL[0,0]", cell)
        assert not r.probe("PWRL[0,0]", "GNDL[0,0]", cell)

    def test_summary_mentions_everything(self, report):
        _, r = report
        text = r.summary()
        assert "positional connections" in text
        assert "DRC violations" in text
        assert "mask nodes" in text


class TestStretchedLogicVerification:
    @pytest.fixture(scope="class")
    def verified(self):
        editor = fresh_editor()
        assemble_logic(editor, STRETCHED, bring_out_constants=False)
        return editor.cell, verify_cell(editor.cell, TECH)

    def test_stretched_block_is_drc_clean(self, verified):
        """The whole stretched assembly — stretched cells included,
        and every abutment seam between rows and between cells — holds
        the full rule set.  The leaf cells' rails and contacts are
        inset specifically so abutted rows stay legal."""
        _, r = verified
        assert r.drc_ok, "; ".join(str(v) for v in r.drc.violations[:8])

    def test_data_path_continuous(self, verified):
        """The serial input is electrically continuous with the first
        tap's gate — across the abutted cells and the stretch."""
        cell, r = verified
        sr = cell.instance("sr")
        n0 = cell.instance("n0")
        assert r.netlist.connected(
            sr.connector("TAP[0,0]").position,
            "poly",
            n0.connector("A").position,
            "poly",
        )

    def test_stage_interface_continuous(self, verified):
        cell, r = verified
        n0 = cell.instance("n0")
        m0 = cell.instance("m0")
        assert r.netlist.connected(
            n0.connector("OUT").position,
            "poly",
            m0.connector("A").position,
            "poly",
        )


class TestIgnoredObstacleDetection:
    """The paper: "The Riot river router ... ignores objects in the
    path of the route."  Bringing the constant inputs straight out to
    the cell edge sends poly wires over the lower gate rows; at mask
    level those wires short to everything they cross.  Riot itself
    never warns — "no warning message will be generated" — but the
    checking pass catches both the spacing damage and the shorts."""

    @pytest.fixture(scope="class")
    def verified(self):
        editor = fresh_editor()
        assemble_logic(editor, STRETCHED, bring_out_constants=True)
        return editor.cell, verify_cell(editor.cell, TECH)

    def test_drc_flags_the_crossings(self, verified):
        _, r = verified
        assert not r.drc_ok
        assert all(
            v.rule == "spacing" and v.layer == "poly"
            for v in r.drc.violations
        )

    def test_extraction_finds_the_shorts(self, verified):
        cell, r = verified
        constants = [c for c in cell.connectors if c.name.endswith(".B")]
        assert len(constants) == 4
        shorted_pairs = sum(
            1
            for i, a in enumerate(constants)
            for b in constants[i + 1 :]
            if r.netlist.connected(a.position, "poly", b.position, "poly")
        )
        # The bring-out wires cross shared gate structures and merge.
        assert shorted_pairs > 0

    def test_clean_variant_has_no_shorts(self):
        editor = fresh_editor()
        assemble_logic(editor, STRETCHED, bring_out_constants=False)
        r = verify_cell(editor.cell, TECH)
        cell = editor.cell
        taps = [
            cell.instance(f"n{i}").connector("B").position for i in range(4)
        ]
        for i, a in enumerate(taps):
            for b in taps[i + 1 :]:
                assert not r.netlist.connected(a, "poly", b, "poly")


class TestRoutedLogicVerification:
    @pytest.fixture(scope="class")
    def verified(self):
        editor = fresh_editor()
        assemble_logic(editor, ROUTED)
        return editor.cell, verify_cell(editor.cell, TECH)

    def test_route_is_electrically_real(self, verified):
        """The river route's wires actually join the instances it was
        asked to connect."""
        cell, r = verified
        sr = cell.instance("sr")
        n0 = cell.instance("n0")
        assert r.netlist.connected(
            sr.connector("TAP[0,0]").position,
            "poly",
            n0.connector("A").position,
            "poly",
        )

    def test_or_stage_connected_through_route(self, verified):
        cell, r = verified
        m0 = cell.instance("m0")
        o = cell.instance("o")
        assert r.netlist.connected(
            m0.connector("OUT").position,
            "poly",
            o.connector("A").position,
            "poly",
        )

    def test_only_violations_are_ignored_obstacles(self, verified):
        """The routed block's only rule violations come from the
        constant bring-out wires passing gate rows on their way to the
        cell edge — the paper's router "ignores objects in the path of
        the route", and the checker is what surfaces the consequences."""
        _, r = verified
        assert len(r.drc.violations) <= 4
        assert all(
            v.rule == "spacing" and v.layer == "poly"
            for v in r.drc.violations
        )


class TestChipVerification:
    @pytest.fixture(scope="class")
    def verified(self):
        editor = fresh_editor()
        assemble_chip(editor, STRETCHED)
        chip = editor.library.get("chip")
        return editor, chip, verify_cell(chip, TECH)

    def test_input_pad_reaches_register(self, verified):
        """End to end: the bond pad's metal is electrically continuous
        with the shift register's data input, through the river route."""
        editor, chip, r = verified
        xpad = chip.instance("xpad")
        logic = chip.instance("L")
        in_conn = next(
            c for c in logic.connectors() if c.name.startswith("IN[")
        )
        assert r.netlist.connected(
            xpad.connector("PAD").position,
            "metal",
            in_conn.position,
            "metal",
        )

    def test_power_pad_reaches_rail(self, verified):
        editor, chip, r = verified
        vddpad = chip.instance("vddpad")
        logic = chip.instance("L")
        pwr = next(c for c in logic.connectors() if "PWRL" in c.name)
        assert r.netlist.connected(
            vddpad.connector("PAD").position, "metal", pwr.position, "metal"
        )

    def test_vdd_gnd_not_shorted(self, verified):
        editor, chip, r = verified
        vdd = chip.instance("vddpad").connector("PAD").position
        gnd = chip.instance("gndpad").connector("PAD").position
        assert not r.netlist.connected(vdd, "metal", gnd, "metal")

    def test_clock_pad_reaches_converter(self, verified):
        editor, chip, r = verified
        clkpad = chip.instance("clkpad")
        cv = chip.instance("cv_clk")
        assert r.netlist.connected(
            clkpad.connector("PAD").position,
            "metal",
            cv.connector("M").position,
            "metal",
        )


class TestTextualVerify:
    def test_verify_command(self):
        editor = fresh_editor()
        tui = TextualInterface(editor)
        editor.new_cell("row")
        editor.create(at=Point(0, 0), cell_name="srcell", nx=2, name="sr")
        editor.finish()
        out = tui.execute("verify row")
        assert "row:" in out
        assert "DRC violations" in out

    def test_verify_usage(self):
        tui = TextualInterface(fresh_editor())
        assert "usage" in tui.execute("verify")

    def test_verify_leaf_rejected(self):
        tui = TextualInterface(fresh_editor())
        assert "error" in tui.execute("verify srcell")
