"""Every example must run clean — they are the front door.

Each script executes in a subprocess with a temporary working
directory (several write SVG/CIF artifacts); a non-zero exit or a
traceback fails the build.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).parent.parent.parent / "examples").glob("*.py")
)

#: Examples must resolve ``repro`` regardless of install state, so the
#: repo's src/ rides along on PYTHONPATH.
SRC = Path(__file__).resolve().parents[2] / "src"
SUBPROCESS_ENV = {
    **os.environ,
    "PYTHONPATH": str(SRC) + os.pathsep + os.environ.get("PYTHONPATH", ""),
}


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(script, tmp_path):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=str(tmp_path),
        env=SUBPROCESS_ENV,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert "Traceback" not in result.stderr
    assert result.stdout.strip(), "examples must narrate what they do"


def test_example_inventory():
    names = {p.name for p in EXAMPLES}
    assert {
        "quickstart.py",
        "logical_filter.py",
        "replay_recovery.py",
        "scripted_session.py",
        "array_datapath.py",
        "signoff.py",
    } <= names


def test_quickstart_writes_svg(tmp_path):
    subprocess.run(
        [sys.executable, str(EXAMPLES[0].parent / "quickstart.py")],
        capture_output=True,
        timeout=300,
        cwd=str(tmp_path),
        env=SUBPROCESS_ENV,
    )
    assert (tmp_path / "quickstart.svg").exists()


def test_logical_filter_writes_artifacts(tmp_path):
    subprocess.run(
        [sys.executable, str(EXAMPLES[0].parent / "logical_filter.py")],
        capture_output=True,
        timeout=300,
        cwd=str(tmp_path),
        env=SUBPROCESS_ENV,
    )
    for artifact in (
        "filter_logic_routed.svg",
        "filter_logic_stretched.svg",
        "filter_chip.cif",
        "filter_chip_mask.svg",
    ):
        assert (tmp_path / artifact).exists()
