"""Tests for the worked example (paper figures 7, 9a/9b, 10)."""

import pytest

from repro.core.editor import RiotEditor
from repro.core.errors import RiotError
from repro.chip.filterchip import ROUTED, STRETCHED, assemble_chip, assemble_logic
from repro.chip.floorplan import filter_floorplan
from repro.library.stock import filter_library


def fresh_editor():
    editor = RiotEditor()
    editor.library = filter_library(editor.technology)
    return editor


@pytest.fixture(scope="module")
def routed():
    editor = fresh_editor()
    return editor, assemble_logic(editor, ROUTED)


@pytest.fixture(scope="module")
def stretched():
    editor = fresh_editor()
    return editor, assemble_logic(editor, STRETCHED)


class TestFloorplan:
    def test_regions_present(self):
        plan = filter_floorplan()
        for name in ("sr_row", "nand_row", "nand2_row", "or_row", "pads_bottom"):
            assert name in plan.regions

    def test_cells_needed(self):
        needed = filter_floorplan().cells_needed()
        assert {"srcell", "nand", "or2", "inpad", "outpad"} <= needed

    def test_rows_disjoint(self):
        plan = filter_floorplan()
        rows = ("sr_row", "nand_row", "nand2_row", "or_row")
        overlapping = {
            pair
            for pair in plan.overlapping_regions()
            if pair[0] in rows and pair[1] in rows
        }
        assert overlapping == set()

    def test_library_covers_floorplan(self):
        lib = filter_library()
        for cell_name in filter_floorplan().cells_needed():
            assert cell_name in lib

    def test_duplicate_region_rejected(self):
        plan = filter_floorplan()
        from repro.geometry.box import Box

        with pytest.raises(ValueError, match="already has"):
            plan.add_region("sr_row", Box(0, 0, 1, 1))

    def test_unknown_region(self):
        with pytest.raises(KeyError):
            filter_floorplan().region("moat")


class TestRoutedLogic:
    def test_route_cells_created(self, routed):
        _, stats = routed
        assert stats.route_cell_count == 7  # 4 taps + 2 pairings + 1 OR

    def test_positive_routing_area(self, routed):
        _, stats = routed
        assert stats.route_area > 0

    def test_all_stage_connections_made(self, routed):
        editor, stats = routed
        # Each of the 7 routes makes >= 1 wire with both ends touching.
        assert stats.connections_made >= 14

    def test_sr_chain_by_abutment(self, routed):
        editor, _ = routed
        sr = editor.library.get("logic_routed").instance("sr")
        assert sr.is_array
        assert sr.nx == 4

    def test_no_stretching_in_routed_mode(self, routed):
        editor, stats = routed
        assert stats.stretch_count == 0
        assert not any(n.startswith("nand_s") for n in editor.library.names)


class TestStretchedLogic:
    def test_no_route_cells(self, stretched):
        _, stats = stretched
        assert stats.route_cell_count == 0
        assert stats.route_area == 0

    def test_stretched_cells_created(self, stretched):
        editor, stats = stretched
        assert stats.stretch_count == 3  # m0, m1, o
        stretched_names = [
            n for n in editor.library.names if n.endswith("_s") or n.endswith("_s2")
        ]
        assert stretched_names == ["nand_s", "nand_s2", "or2_s"]

    def test_gates_abut_directly(self, stretched):
        editor, _ = stretched
        cell = editor.library.get("logic_stretched")
        m0 = cell.instance("m0")
        n0 = cell.instance("n0")
        assert m0.connector("A").position == n0.connector("OUT").position

    def test_connections_made(self, stretched):
        _, stats = stretched
        assert stats.connections_made >= 10


class TestFigure9Comparison:
    """The headline claim: stretching eliminates the routing channels,
    saving area in the vertical direction."""

    def test_stretched_is_shorter(self, routed, stretched):
        _, r = routed
        _, s = stretched
        assert s.height < r.height

    def test_vertical_saving_matches_channels(self, routed, stretched):
        _, r = routed
        _, s = stretched
        # The rows are identical; the extra height of the routed block
        # is exactly its channels' heights.
        assert r.height - s.height > 0
        assert r.route_cell_count > 0

    def test_routed_has_routing_area_stretched_none(self, routed, stretched):
        _, r = routed
        _, s = stretched
        assert r.route_area > 0
        assert s.route_area == 0

    def test_widths_comparable(self, routed, stretched):
        # Stretching trades internal cell area, not block width.
        _, r = routed
        _, s = stretched
        assert abs(r.width - s.width) <= 2000


class TestLogicInterface:
    def test_bad_mode_rejected(self):
        with pytest.raises(RiotError, match="mode"):
            assemble_logic(fresh_editor(), "magic")

    def test_connectors_promoted(self, stretched):
        editor, _ = stretched
        cell = editor.library.get("logic_stretched")
        names = {c.name for c in cell.connectors}
        assert "IN[0,0]" in names  # serial input, left edge
        assert "OUT" in names  # filter output, bottom edge
        assert any("CLKT" in n for n in names)  # clock, top edge
        assert sum(1 for n in names if n.endswith(".B") or n == "B") == 4

    def test_constant_inputs_on_bottom_edge(self, stretched):
        editor, _ = stretched
        cell = editor.library.get("logic_stretched")
        box = cell.bounding_box()
        for conn in cell.connectors:
            if conn.name.endswith(".B"):
                assert conn.position.y == box.lly


class TestChip:
    @pytest.fixture(scope="class")
    def chip(self):
        editor = fresh_editor()
        return editor, assemble_chip(editor, STRETCHED)

    def test_all_pads_connected(self, chip):
        _, stats = chip
        assert stats.pad_count == 9
        assert stats.pads_connected == 9

    def test_pad_routing_in_pieces(self, chip):
        # One route per pad connection: x-input, vdd, gnd, clock, four
        # constants, output.
        _, stats = chip
        assert stats.route_cell_count == 9

    def test_chip_bigger_than_logic(self, chip):
        _, stats = chip
        assert stats.area > stats.logic.area

    def test_fittings_used(self, chip):
        editor, _ = chip
        chip_cell = editor.library.get("chip")
        fitting_instances = [
            inst
            for inst in chip_cell.instances
            if inst.cell.name.startswith("fit_")
        ]
        assert len(fitting_instances) == 2  # vdd and gnd straps

    def test_converters_used(self, chip):
        editor, _ = chip
        chip_cell = editor.library.get("chip")
        converters = [
            inst for inst in chip_cell.instances if inst.cell.name == "p2m"
        ]
        assert len(converters) == 6  # clock + 4 constants + output

    def test_chip_writes_cif(self, chip):
        editor, _ = chip
        from repro.core.convert import composition_to_cif
        from repro.cif.parser import parse_cif
        from repro.cif.semantics import elaborate

        text = composition_to_cif(editor.library.get("chip"), editor.technology)
        design = elaborate(parse_cif(text), editor.technology)
        flat = design.cell("chip").flatten()
        assert flat.shape_count > 100

    def test_chip_session_replayable(self):
        editor = fresh_editor()
        assemble_chip(editor, STRETCHED)
        journal = editor.journal.to_text()
        again = fresh_editor()
        again.replay_from(journal)
        again.edit("chip")
        assert again.cell.bounding_box() == editor.library.get("chip").bounding_box()

    def test_routed_chip_also_assembles(self):
        editor = fresh_editor()
        stats = assemble_chip(editor, ROUTED)
        assert stats.pads_connected == 9
