#!/usr/bin/env python3
"""Validate Chrome trace-event files produced by ``--trace``.

Each file is shape-checked with :func:`repro.obs.export.validate_chrome`
(every event needs name/ph/ts/pid/tid, complete events a non-negative
``dur``, and no span may be left unclosed at exit); specific span names
can be required — the CI obs-smoke job requires the paper's connection
commands and the pipeline to show up::

    PYTHONPATH=src python tools/check_trace.py trace.json \\
        --require command.do_abut --require pipeline.task

Given *several* files — one per process of a sharded run (client,
supervisor, ``shard<i>``) — the checker also stitches them: every
cross-process parent reference (``args.xparent``, of the form
``"<process label>:<span id>"``) must resolve to a span in one of the
given files, and every span carrying a ``trace_id`` must reach, by
following ``xparent`` links, a root span with no parent of its own —
the client-side origin of the request.  ``--require-root NAME``
additionally demands that every such chain terminates in a span with
that name (the telemetry smoke uses ``client.request``).

Exits non-zero with one problem per line on failure; on success prints
a one-line summary per file plus the stitching totals.

Usage: python tools/check_trace.py FILE... [--require NAME]...
       [--require-root NAME]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.export import validate_chrome  # noqa: E402


def load(path: str):
    return json.loads(Path(path).read_text(encoding="utf-8"))


def span_events(doc) -> list[dict]:
    events = doc.get("traceEvents", []) if isinstance(doc, dict) else []
    return [
        e
        for e in events
        if isinstance(e, dict) and e.get("ph") == "X"
    ]


def process_of(doc, path: str) -> str:
    riot = doc.get("riot", {}) if isinstance(doc, dict) else {}
    label = riot.get("process")
    if isinstance(label, str) and label:
        return label
    # Unlabelled single-process exports use the default label.
    return "main"


def stitch(docs: dict[str, dict], require_root: str | None) -> list[str]:
    """Cross-process link validation over a set of trace documents.

    Returns problems; empty means every ``xparent`` resolved and every
    traced span reached a rootward span with no parent."""
    problems: list[str] = []
    # ref "label:span_id" -> event, across every file.
    by_ref: dict[str, dict] = {}
    for path, doc in docs.items():
        label = process_of(doc, path)
        for event in span_events(doc):
            span_id = event.get("args", {}).get("span_id")
            if span_id is None:
                continue
            ref = f"{label}:{span_id}"
            if ref in by_ref:
                problems.append(
                    f"duplicate span reference {ref!r} "
                    f"(process labels must be unique per run)"
                )
            by_ref[ref] = event
    traced = 0
    rooted = 0
    for path, doc in docs.items():
        label = process_of(doc, path)
        for event in span_events(doc):
            args = event.get("args", {})
            xparent = args.get("xparent")
            if xparent is not None and xparent not in by_ref:
                problems.append(
                    f"{path}: span {label}:{args.get('span_id')} "
                    f"({event.get('name')}) has unresolvable "
                    f"xparent {xparent!r}"
                )
            if args.get("trace_id") is None:
                continue
            traced += 1
            # Follow the xparent chain to its root.
            seen: set[str] = set()
            current = event
            current_ref = f"{label}:{args.get('span_id')}"
            while True:
                if current_ref in seen:
                    problems.append(
                        f"{path}: xparent cycle at {current_ref!r}"
                    )
                    break
                seen.add(current_ref)
                parent_ref = current.get("args", {}).get("xparent")
                if parent_ref is None:
                    if (
                        require_root is not None
                        and current.get("name") != require_root
                    ):
                        problems.append(
                            f"{path}: span {event.get('name')!r} "
                            f"(trace {args.get('trace_id')!r}) roots at "
                            f"{current.get('name')!r}, "
                            f"not {require_root!r}"
                        )
                    else:
                        rooted += 1
                    break
                nxt = by_ref.get(parent_ref)
                if nxt is None:
                    # Already reported as unresolvable above (for this
                    # span or for an ancestor in another file).
                    break
                current = nxt
                current_ref = parent_ref
    stitch.summary = f"{traced} traced span(s), {rooted} rooted"  # type: ignore[attr-defined]
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "traces",
        nargs="+",
        metavar="FILE",
        help="Chrome trace-event JSON file(s) — one per process to "
        "validate a stitched multi-process trace",
    )
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="NAME",
        help="fail unless a span with this name is present in the "
        "union of the given files (repeatable)",
    )
    parser.add_argument(
        "--require-root",
        default=None,
        metavar="NAME",
        help="every span carrying a trace_id must chain (via xparent) "
        "to a root span with this name",
    )
    args = parser.parse_args(argv)

    docs: dict[str, dict] = {}
    problems: list[str] = []
    for path in args.traces:
        try:
            docs[path] = load(path)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"check_trace: cannot read {path}: {exc}")
            return 2
        problems.extend(
            f"{path}: {problem}" for problem in validate_chrome(docs[path])
        )

    names = {
        e.get("name")
        for doc in docs.values()
        for e in doc.get("traceEvents", [])
        if isinstance(e, dict)
    }
    for required in args.require:
        if required not in names:
            problems.append(f"required span {required!r} not in trace(s)")

    problems.extend(stitch(docs, args.require_root))

    if problems:
        for problem in problems:
            print(f"check_trace: {problem}")
        return 1
    total = 0
    for path, doc in docs.items():
        events = doc.get("traceEvents", [])
        total += len(events)
        print(
            f"check_trace: {path}: {process_of(doc, path)} — "
            f"{len(events)} event(s)"
        )
    summary = getattr(stitch, "summary", "0 traced span(s), 0 rooted")
    print(
        f"check_trace: ok — {total} event(s), "
        f"{len(names)} distinct span name(s), {summary}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
