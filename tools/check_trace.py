#!/usr/bin/env python3
"""Validate a Chrome trace-event file produced by ``--trace``.

Shape-checks the document with :func:`repro.obs.export.validate_chrome`
(every event needs name/ph/ts/pid/tid, complete events a non-negative
``dur``, and no span may be left unclosed at exit), then optionally
asserts that specific span names are present — the CI obs-smoke job
requires the paper's connection commands and the pipeline to show up::

    PYTHONPATH=src python tools/check_trace.py trace.json \\
        --require command.do_abut --require pipeline.task

Exits non-zero with one problem per line on failure; on success prints
a one-line summary (event count, distinct names).

Usage: python tools/check_trace.py FILE [--require NAME]...
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.export import validate_chrome  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="NAME",
        help="fail unless a span with this name is present (repeatable)",
    )
    args = parser.parse_args(argv)

    try:
        doc = json.loads(Path(args.trace).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        print(f"check_trace: cannot read {args.trace}: {exc}")
        return 2

    problems = validate_chrome(doc)
    events = doc.get("traceEvents", []) if isinstance(doc, dict) else []
    names = {e.get("name") for e in events if isinstance(e, dict)}
    for required in args.require:
        if required not in names:
            problems.append(f"required span {required!r} not in trace")

    if problems:
        for problem in problems:
            print(f"check_trace: {problem}")
        return 1
    print(
        f"check_trace: ok — {len(events)} event(s), "
        f"{len(names)} distinct span name(s)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
