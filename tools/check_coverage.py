#!/usr/bin/env python3
"""Enforce the ratcheted coverage baseline.

Reads the total line-rate from a Cobertura ``coverage.xml`` (as
written by ``coverage xml``) and compares it against the floor
recorded in ``pyproject.toml`` under ``[tool.repro.coverage]``.
Exits non-zero when coverage has dropped below the baseline, printing
both numbers so the CI log shows the ratchet.

Usage: python tools/check_coverage.py [coverage.xml]
"""

from __future__ import annotations

import sys
import xml.etree.ElementTree as ET
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def read_baseline() -> float:
    text = (ROOT / "pyproject.toml").read_bytes()
    try:
        import tomllib

        data = tomllib.loads(text.decode())
        return float(data["tool"]["repro"]["coverage"]["baseline"])
    except ModuleNotFoundError:  # Python 3.10: no tomllib
        for line in text.decode().splitlines():
            if line.strip().startswith("baseline"):
                return float(line.split("=", 1)[1].strip())
        raise SystemExit("no coverage baseline found in pyproject.toml")


def read_line_rate(path: Path) -> float:
    root = ET.parse(path).getroot()
    rate = root.get("line-rate")
    if rate is None:
        raise SystemExit(f"{path}: no line-rate attribute on <coverage>")
    return float(rate) * 100.0


def main(argv: list[str]) -> int:
    report = Path(argv[1]) if len(argv) > 1 else Path("coverage.xml")
    if not report.exists():
        print(f"coverage report {report} not found", file=sys.stderr)
        return 2
    baseline = read_baseline()
    actual = read_line_rate(report)
    print(f"coverage: {actual:.2f}% (baseline {baseline:.2f}%)")
    if actual < baseline:
        print(
            f"coverage dropped below the ratcheted baseline by "
            f"{baseline - actual:.2f} points",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
