"""``python -m repro`` — the textual command interface as a REPL.

The closest thing to sitting at the Caltech text terminal: type the
textual commands (``help`` lists them) against a live editor with the
worked example's cell library preloaded.  Files read and written by
commands live under the current directory.

Also usable non-interactively:

```sh
echo "cells" | python -m repro
python -m repro script.txt        # one command per line
```

Crash-safe sessions:

``--journal FILE``
    record the session to a write-ahead journal: every editor command
    is appended (flushed + fsynced) to FILE *before* it executes, so an
    abnormally-terminated session — power loss, ``kill -9`` — loses at
    most the command in flight.

``--recover FILE``
    before reading input, salvage FILE (stopping at any corrupt tail a
    crash left behind), replay it into the fresh session, and print the
    resulting recovery report.  ``--recover-mode strict`` aborts on the
    first entry that no longer executes; the default ``skip`` carries
    on past it, which is what survives leaf-cell redesigns.

The two compose: ``python -m repro --recover s.rpl --journal s.rpl``
resumes a crashed session and keeps journaling to the same file
(compacting away the corrupt tail).

Verification pipeline defaults:

``--jobs N`` / ``--cache DIR`` / ``--timing``
    session-wide defaults for the ``verify`` textual command: fan the
    verification task DAG out over N worker processes, cache every
    intermediate artifact (leaf expansion, CIF, flat geometry, DRC,
    netlist) by content under DIR, and print the per-stage timing and
    cache-counter report.  Each ``verify`` invocation can override
    them with the same flags.

Observability:

``--trace FILE``
    trace the whole session — a span per editor command (linked to its
    WAL sequence number when journaling), nested engine spans (ABUT,
    ROUTE, STRETCH, REST, WAL appends, pipeline tasks) — and write FILE
    in Chrome trace-event format at exit (open it in Perfetto or
    ``chrome://tracing``).  The ``trace on|off|save`` textual commands
    control the same machinery from inside a session.

``--metrics [FILE]``
    report the session's metrics counters (river tracks used, channels
    spilled, abutment refusals, REST iterations, WAL appends/fsyncs,
    pipeline cache hits/misses, ...) at exit: bare, as text on stdout;
    with FILE, as a JSON snapshot.  Both flags mean the same thing on
    every subcommand (``fuzz``, ``serve``) — see :mod:`repro.cli`.

Long-lived service: ``python -m repro serve`` hosts many concurrent
sessions behind the same typed command API over a socket — see
:mod:`repro.service` — and ``python -m repro top`` renders a running
service's request telemetry (per-class and per-stage latency
quantiles, per-shard breakdown, ``--slow`` flight recorder).
"""

from __future__ import annotations

import argparse
import sys

from repro.core.editor import RiotEditor
from repro.core.textual import DiskStore, TextualInterface
from repro.library.stock import filter_library


def build_interface(
    root: str = ".", journal: str | None = None, library: str | None = None
) -> TextualInterface:
    editor = RiotEditor()
    editor.library = filter_library(editor.technology)
    cellstore = None
    if library is not None:
        from repro.cellstore import CellStore

        cellstore = CellStore(library)
    interface = TextualInterface(editor, DiskStore(root), cellstore=cellstore)
    if journal is not None:
        from repro.core.wal import JournalWriter

        editor.journal.attach(JournalWriter(journal))
    return interface


def run(lines, interface: TextualInterface | None = None, echo=print) -> int:
    """Execute command lines; returns the count of failed commands."""
    interface = interface or build_interface()
    failures = 0
    for raw in lines:
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line in ("quit", "exit"):
            break
        response = interface.execute(line)
        if response:
            echo(response)
        if response.startswith("error"):
            failures += 1
    return failures


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "fuzz":
        from repro.proptest.runner import main as fuzz_main

        return fuzz_main(argv[1:])
    if argv and argv[0] == "serve":
        from repro.service.server import main as serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "top":
        from repro.service.top import main as top_main

        return top_main(argv[1:])
    if argv and argv[0] == "cellstore":
        from repro.cellstore.cli import main as cellstore_main

        return cellstore_main(argv[1:])
    if argv and argv[0] == "floorplan":
        from repro.floorplan.cli import main as floorplan_main

        return floorplan_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Riot textual command interface",
    )
    parser.add_argument(
        "script", nargs="?", help="command script (one textual command per line)"
    )
    parser.add_argument(
        "--journal",
        metavar="FILE",
        help="record the session to a crash-safe write-ahead journal",
    )
    parser.add_argument(
        "--recover",
        metavar="FILE",
        help="replay a (possibly crash-damaged) journal before reading input",
    )
    parser.add_argument(
        "--recover-mode",
        choices=("strict", "skip"),
        default="skip",
        help="strict: abort on the first failing entry; skip (default): continue past it",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        metavar="N",
        help="default worker count for the verify command's pipeline",
    )
    parser.add_argument(
        "--cache",
        metavar="DIR",
        help="default content-addressed artifact cache for verify",
    )
    parser.add_argument(
        "--timing",
        action="store_true",
        help="have verify print its per-stage timing and cache-counter report",
    )
    parser.add_argument(
        "--library",
        metavar="DIR",
        help="shared cell store directory for the 'library' textual commands",
    )
    from repro.cli import add_obs_flags

    add_obs_flags(parser)
    args = parser.parse_args(argv)

    interface = build_interface(library=args.library)
    if args.jobs is not None:
        if args.jobs < 1:
            print("error: --jobs must be >= 1")
            return 1
        interface.verify_defaults["jobs"] = args.jobs
    if args.cache:
        interface.verify_defaults["cache"] = args.cache
    if args.timing:
        interface.verify_defaults["timing"] = True
    if args.recover:
        from repro.core import wal
        from repro.core.errors import RiotError

        try:
            report = wal.recover(
                interface.editor, wal.load_path(args.recover), mode=args.recover_mode
            )
        except (RiotError, OSError) as exc:
            print(f"error: recovery failed: {exc}")
            return 1
        print(report.to_text())
    if args.journal:
        from repro.core.wal import JournalWriter

        interface.editor.journal.attach(JournalWriter(args.journal))

    from repro.cli import obs_from_flags

    failures = 0
    with obs_from_flags(args.trace, args.metrics) as tracer:
        if tracer is not None:
            interface.tracer = tracer
        if args.script:
            with open(args.script) as f:
                failures = run(f, interface)
        else:
            if sys.stdin.isatty():
                print(
                    "riot-repro textual interface; "
                    "'help' lists commands, 'quit' leaves."
                )
            # Interactive/pipe mode keeps exit code 0: errors were
            # already reported inline, the way a REPL does.
            run(sys.stdin, interface)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
