"""``python -m repro`` — the textual command interface as a REPL.

The closest thing to sitting at the Caltech text terminal: type the
textual commands (``help`` lists them) against a live editor with the
worked example's cell library preloaded.  Files read and written by
commands live under the current directory.

Also usable non-interactively:

```sh
echo "cells" | python -m repro
python -m repro script.txt        # one command per line
```
"""

from __future__ import annotations

import sys

from repro.core.editor import RiotEditor
from repro.core.textual import DiskStore, TextualInterface
from repro.library.stock import filter_library


def build_interface(root: str = ".") -> TextualInterface:
    editor = RiotEditor()
    editor.library = filter_library(editor.technology)
    return TextualInterface(editor, DiskStore(root))


def run(lines, interface: TextualInterface | None = None, echo=print) -> int:
    """Execute command lines; returns the count of failed commands."""
    interface = interface or build_interface()
    failures = 0
    for raw in lines:
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line in ("quit", "exit"):
            break
        response = interface.execute(line)
        if response:
            echo(response)
        if response.startswith("error"):
            failures += 1
    return failures


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    interface = build_interface()
    if argv:
        with open(argv[0]) as f:
            return 1 if run(f, interface) else 0
    if sys.stdin.isatty():
        print("riot-repro textual interface; 'help' lists commands, 'quit' leaves.")
    run(sys.stdin, interface)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
