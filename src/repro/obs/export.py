"""Trace and metrics export: JSONL events and Chrome trace-event JSON.

Two formats over the same span records:

* **JSONL** — one JSON object per line (``meta`` header, then ``span``
  and ``metric`` events), compact and key-sorted.  The round-trippable
  interchange format; golden tests compare it byte-for-byte under a
  fixed clock.
* **Chrome trace-event** — a ``{"traceEvents": [...]}`` document of
  complete ("ph": "X") events, microsecond timestamps, that opens
  directly in Perfetto or ``chrome://tracing``.  Span attributes ride
  in ``args``; the document also carries the metrics snapshot and the
  count of spans left unclosed at export (the CI smoke job fails when
  that is non-zero).

Determinism: spans are ordered by (start time, span id), json dumps
are key-sorted, and no real pid/tid/timestamp ever enters the output —
the logical pid is always 1.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.trace import SpanRecord

#: The logical process id used in exports (traces are per-session).
PID = 1

JSONL_FORMAT = "riot-trace"
JSONL_VERSION = 1

#: Keys every Chrome trace event must carry, and per-phase extras.
_CHROME_REQUIRED = ("name", "ph", "ts", "pid", "tid")


def _us(seconds: float) -> int:
    return int(round(seconds * 1_000_000))


def _json_attr(value):
    """Attributes must survive JSON; anything exotic is stringified."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_json_attr(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_attr(v) for k, v in value.items()}
    return str(value)


def _span_sort_key(rec: SpanRecord):
    return (rec.start_wall, rec.span_id)


# -- JSONL ----------------------------------------------------------------


def jsonl_lines(spans, metrics: dict | None = None) -> list[str]:
    """The JSONL document as a list of lines (no trailing newlines)."""
    lines = [
        json.dumps(
            {"type": "meta", "format": JSONL_FORMAT, "version": JSONL_VERSION},
            sort_keys=True,
            separators=(",", ":"),
        )
    ]
    for rec in sorted(spans, key=_span_sort_key):
        data = {
            "type": "span",
            "id": rec.span_id,
            "parent": rec.parent_id,
            "name": rec.name,
            "cat": rec.category,
            "tid": rec.tid,
            "start_us": _us(rec.start_wall),
            "dur_us": _us(rec.wall),
            "cpu_us": _us(rec.cpu),
            "attrs": _json_attr(rec.attrs),
        }
        if rec.trace_id is not None:
            data["trace_id"] = rec.trace_id
        if rec.remote_parent is not None:
            data["xparent"] = rec.remote_parent
        lines.append(json.dumps(data, sort_keys=True, separators=(",", ":")))
    for name, value in sorted((metrics or {}).items()):
        lines.append(
            json.dumps(
                {"type": "metric", "name": name, "value": _json_attr(value)},
                sort_keys=True,
                separators=(",", ":"),
            )
        )
    return lines


def write_jsonl(path, spans, metrics: dict | None = None) -> None:
    Path(path).write_text(
        "\n".join(jsonl_lines(spans, metrics)) + "\n", encoding="utf-8"
    )


def read_jsonl(text: str) -> tuple[list[dict], dict]:
    """Parse a JSONL export back into (span dicts, metrics dict)."""
    spans: list[dict] = []
    metrics: dict = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        data = json.loads(line)
        kind = data.get("type")
        if kind == "span":
            spans.append(data)
        elif kind == "metric":
            metrics[data["name"]] = data["value"]
        elif kind != "meta":
            raise ValueError(f"line {lineno}: unknown event type {kind!r}")
    return spans, metrics


# -- Chrome trace-event format --------------------------------------------


def chrome_events(spans, pid: int = PID) -> list[dict]:
    """Complete ("X") events, one per span, Perfetto-ready."""
    events = []
    for rec in sorted(spans, key=_span_sort_key):
        args = {"span_id": rec.span_id, "cpu_us": _us(rec.cpu)}
        if rec.parent_id is not None:
            args["parent_id"] = rec.parent_id
        if rec.trace_id is not None:
            args["trace_id"] = rec.trace_id
        if rec.remote_parent is not None:
            args["xparent"] = rec.remote_parent
        for key, value in rec.attrs.items():
            args[key] = _json_attr(value)
        events.append(
            {
                "name": rec.name,
                "cat": rec.category,
                "ph": "X",
                "ts": _us(rec.start_wall),
                "dur": _us(rec.wall),
                "pid": pid,
                "tid": rec.tid,
                "args": args,
            }
        )
    return events


def chrome_document(
    spans,
    metrics: dict | None = None,
    unclosed: int = 0,
    *,
    pid: int | None = None,
    process_name: str | None = None,
) -> dict:
    """The trace-event document.

    Single-process exports keep the fixed logical ``pid`` 1 so fixed-
    clock traces stay byte-identical.  Multi-process (service) exports
    pass the *real* ``pid`` plus a ``process_name`` — the process
    label used in cross-process span references — so stitched
    supervisor+shard traces open as separate, labelled process lanes
    in ``chrome://tracing`` and :mod:`tools.check_trace` can resolve
    ``xparent`` references across files.
    """
    real_pid = PID if pid is None else pid
    events = chrome_events(spans, pid=real_pid)
    if process_name is not None:
        events.insert(
            0,
            {
                "name": "process_name",
                "ph": "M",
                "ts": 0,
                "pid": real_pid,
                "tid": 0,
                "args": {"name": process_name},
            },
        )
    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "riot": {
            "format": JSONL_FORMAT,
            "version": JSONL_VERSION,
            "unclosed_spans": unclosed,
            "metrics": _json_attr(metrics or {}),
        },
    }
    if process_name is not None:
        doc["riot"]["process"] = process_name
        doc["riot"]["pid"] = real_pid
    return doc


def chrome_text(
    spans,
    metrics: dict | None = None,
    unclosed: int = 0,
    *,
    pid: int | None = None,
    process_name: str | None = None,
) -> str:
    return (
        json.dumps(
            chrome_document(
                spans, metrics, unclosed, pid=pid, process_name=process_name
            ),
            sort_keys=True,
            indent=1,
        )
        + "\n"
    )


def write_chrome(
    path,
    spans,
    metrics: dict | None = None,
    unclosed: int = 0,
    *,
    pid: int | None = None,
    process_name: str | None = None,
) -> None:
    Path(path).write_text(
        chrome_text(spans, metrics, unclosed, pid=pid, process_name=process_name),
        encoding="utf-8",
    )


def read_chrome(text: str) -> dict:
    return json.loads(text)


def validate_chrome(doc) -> list[str]:
    """Shape-check a Chrome trace-event document.

    Returns a list of problems (empty means valid): the top level must
    hold a ``traceEvents`` list, every event needs name/ph/ts/pid/tid,
    complete events need a non-negative ``dur`` (metadata "M" events —
    process names in multi-process traces — need none), and the
    session must have closed every span it opened.
    """
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"top level must be an object, got {type(doc).__name__}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing traceEvents list"]
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {index}: not an object")
            continue
        for key in _CHROME_REQUIRED:
            if key not in event:
                problems.append(f"event {index}: missing {key!r}")
        ph = event.get("ph")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"event {index}: bad dur {dur!r}")
        if not isinstance(event.get("ts"), (int, float)):
            problems.append(f"event {index}: bad ts {event.get('ts')!r}")
    riot = doc.get("riot", {})
    unclosed = riot.get("unclosed_spans", 0)
    if unclosed:
        problems.append(f"{unclosed} span(s) unclosed at exit")
    return problems
