"""Observability: tracing, metrics, and the performance journal.

The REPLAY journal records *what* a session did; this package records
*how* — where the time went inside ABUT/ROUTE/STRETCH, how often the
river router spilled into extra channels, whether a verify run hit its
cache.  Dependency-free, and built around two rules:

* **Off means off.**  With tracing disabled (the default) every
  instrumented call site dispatches through a shared no-op span, so
  the hot paths pay a predicate check and nothing else.
* **Deterministic under a fixed clock.**  All timestamps come from the
  injectable clock in :mod:`repro.obs.clock`; with a
  :class:`~repro.obs.clock.FixedClock` installed, two identical runs
  export byte-identical traces and metrics — which is how the golden
  tests pin the format and how fuzz/replay keep their determinism
  guarantee.

Modules:

* :mod:`repro.obs.clock` — injectable wall/CPU clock.
* :mod:`repro.obs.trace` — hierarchical spans (context manager and
  decorator), thread-safe ids, module-level on/off switch.
* :mod:`repro.obs.metrics` — process-wide counters/gauges/histograms.
* :mod:`repro.obs.export` — JSONL event export and Chrome trace-event
  format (opens directly in Perfetto / ``chrome://tracing``).
"""

from repro.obs import clock, export, metrics, trace

__all__ = ["clock", "export", "metrics", "trace"]
