"""Process-wide counters, gauges and histograms.

A flat registry of named instruments, cheap enough to leave on
permanently (a counter bump is a dict lookup and an add under one
lock).  The registry is the single source the ``stats`` textual
command, the ``--metrics`` session flag and the exporters all read.

Naming convention: dotted paths, subsystem first —
``river.tracks_used``, ``wal.fsyncs``, ``pipeline.cache.hits``.
Snapshots are key-sorted, so exports are deterministic.

Two histogram shapes coexist:

* :class:`Histogram` — bucket-free count/total/min/max, for report
  summaries where four scalars are enough.
* :class:`QuantileHistogram` — log-bucketed with *fixed* boundaries
  (ten per decade from 1 µs to 100 s), so p50/p90/p99/p99.9 come out
  deterministic: the same observations always land in the same
  buckets and a quantile is always a boundary value (or the exact
  max), never an interpolation over noisy floats.  Snapshots carry
  the sparse bucket counts, so two processes' snapshots merge exactly
  (:func:`merge_snapshots`) — that is how shard telemetry aggregates.
"""

from __future__ import annotations

import bisect
import contextlib
import contextvars
import threading


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value", "_lock")

    def __init__(self, lock: threading.Lock) -> None:
        self.value = 0
        self._lock = lock

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self.value += n


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("value", "_lock")

    def __init__(self, lock: threading.Lock) -> None:
        self.value = 0
        self._lock = lock

    def set(self, value) -> None:
        with self._lock:
            self.value = value


class Histogram:
    """Summary statistics of observed values: count/total/min/max.

    Deliberately bucket-free — the repo's consumers want distribution
    summaries in reports and benchmarks, not quantile estimation, and
    four scalars stay deterministic and dependency-free.
    """

    __slots__ = ("count", "total", "min", "max", "_lock")

    def __init__(self, lock: threading.Lock) -> None:
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None
        self._lock = lock

    def observe(self, value) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    def summary(self) -> dict:
        with self._lock:
            mean = self.total / self.count if self.count else 0
            return {
                "count": self.count,
                "total": self.total,
                "min": self.min,
                "max": self.max,
                "mean": mean,
            }


#: Fixed log-spaced bucket boundaries shared by every
#: :class:`QuantileHistogram`: ten per decade, 1e-6 .. 1e2 (seconds).
#: Bucket *i* holds values in ``(BOUNDS[i-1], BOUNDS[i]]``; the last
#: bucket (index ``len(BOUNDS)``) is the overflow.
QUANTILE_BOUNDS: tuple[float, ...] = tuple(
    10.0 ** (k / 10.0) for k in range(-60, 21)
)

#: The quantiles every summary reports, as (key, fraction).
QUANTILE_POINTS: tuple[tuple[str, float], ...] = (
    ("p50", 0.50),
    ("p90", 0.90),
    ("p99", 0.99),
    ("p999", 0.999),
)


def quantile_from_buckets(
    buckets: dict, count: int, lo, hi, q: float
):
    """The q-quantile a sparse ``{bucket index: count}`` map implies.

    Deterministic by construction: the answer is the upper boundary of
    the bucket the rank lands in, clamped to the exact observed
    ``[lo, hi]`` range.  Works on snapshot dicts (str or int keys), so
    merged cross-process snapshots re-derive their percentiles.
    """
    if not count:
        return None
    rank = max(1, int(q * count) + (0 if (q * count).is_integer() else 1))
    seen = 0
    for index in sorted(int(k) for k in buckets):
        seen += buckets[str(index)] if str(index) in buckets else buckets[index]
        if seen >= rank:
            if index >= len(QUANTILE_BOUNDS):
                return hi
            value = QUANTILE_BOUNDS[index]
            if hi is not None and value > hi:
                value = hi
            if lo is not None and value < lo:
                value = lo
            return value
    return hi


class QuantileHistogram:
    """Log-bucketed distribution with deterministic quantiles.

    Boundaries are the fixed :data:`QUANTILE_BOUNDS` (tuned for
    latencies in seconds); values outside the range land in the under-
    or overflow bucket and quantiles clamp to the exact min/max, so no
    observation is ever lost, only coarsened.
    """

    __slots__ = ("count", "total", "min", "max", "_buckets", "_lock")

    def __init__(self, lock: threading.Lock) -> None:
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        self._buckets: dict[int, int] = {}
        self._lock = lock

    def observe(self, value) -> None:
        index = bisect.bisect_left(QUANTILE_BOUNDS, value)
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            self._buckets[index] = self._buckets.get(index, 0) + 1

    def quantile(self, q: float):
        with self._lock:
            return quantile_from_buckets(
                dict(self._buckets), self.count, self.min, self.max, q
            )

    def summary(self) -> dict:
        """Snapshot dict: scalars, the standard quantile points, and
        the sparse bucket counts (string keys, JSON-ready) that make
        two snapshots mergeable."""
        with self._lock:
            buckets = dict(self._buckets)
            count, total = self.count, self.total
            lo, hi = self.min, self.max
        out = {
            "count": count,
            "total": total,
            "min": lo,
            "max": hi,
            "mean": total / count if count else 0,
        }
        for key, q in QUANTILE_POINTS:
            out[key] = quantile_from_buckets(buckets, count, lo, hi, q)
        out["buckets"] = {str(i): n for i, n in sorted(buckets.items())}
        return out


def _merge_histogram_summaries(a: dict, b: dict) -> dict:
    """Merge two histogram summary dicts (bucket-free or quantile)."""
    count = a.get("count", 0) + b.get("count", 0)
    total = a.get("total", 0) + b.get("total", 0)
    mins = [v for v in (a.get("min"), b.get("min")) if v is not None]
    maxs = [v for v in (a.get("max"), b.get("max")) if v is not None]
    lo = min(mins) if mins else None
    hi = max(maxs) if maxs else None
    out = {
        "count": count,
        "total": total,
        "min": lo,
        "max": hi,
        "mean": total / count if count else 0,
    }
    if "buckets" in a or "buckets" in b:
        buckets: dict[str, int] = {}
        for src in (a.get("buckets") or {}, b.get("buckets") or {}):
            for key, n in src.items():
                buckets[key] = buckets.get(key, 0) + n
        for key, q in QUANTILE_POINTS:
            out[key] = quantile_from_buckets(buckets, count, lo, hi, q)
        out["buckets"] = {k: buckets[k] for k in sorted(buckets, key=int)}
    return out


def merge_snapshots(*snapshots: dict) -> dict:
    """Merge metric snapshots from several registries (or processes).

    Numbers sum, histogram summaries merge (quantiles re-derived from
    the combined buckets), and mismatched shapes keep the first value
    seen — the deterministic choice when processes disagree.
    """
    merged: dict = {}
    for snap in snapshots:
        for name in sorted(snap):
            value = snap[name]
            if name not in merged:
                merged[name] = (
                    _merge_histogram_summaries({}, value)
                    if isinstance(value, dict) and "count" in value
                    else value
                )
            else:
                have = merged[name]
                if isinstance(have, dict) and isinstance(value, dict):
                    merged[name] = _merge_histogram_summaries(have, value)
                elif isinstance(have, (int, float)) and isinstance(
                    value, (int, float)
                ) and not isinstance(have, bool) and not isinstance(value, bool):
                    merged[name] = have + value
    return {name: merged[name] for name in sorted(merged)}


class MetricsRegistry:
    """Named instruments, created on first use, type-checked on reuse."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, object] = {}

    def _get(self, name: str, kind):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = kind(self._lock)
                return metric
        if not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def quantile_histogram(self, name: str) -> QuantileHistogram:
        return self._get(name, QuantileHistogram)

    def snapshot(self) -> dict:
        """All current values, key-sorted; histograms as summary dicts."""
        with self._lock:
            items = list(self._metrics.items())
        out: dict = {}
        for name, metric in sorted(items):
            if isinstance(metric, (Histogram, QuantileHistogram)):
                out[name] = metric.summary()
            else:
                out[name] = metric.value
        return out

    def render_text(self) -> str:
        """The ``stats`` command's live dump: one ``name value`` line each."""
        return render_snapshot_text(self.snapshot())

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def render_snapshot_text(snapshot: dict) -> str:
    """A snapshot dict as ``name value`` text, one line per metric."""
    lines = []
    for name, value in snapshot.items():
        if isinstance(value, dict) and "buckets" in value:
            detail = " ".join(
                f"{k}={_fmt(value[k])}"
                for k in ("count", "mean", "p50", "p90", "p99", "max")
            )
            lines.append(f"{name} {detail}")
        elif isinstance(value, dict):
            detail = " ".join(
                f"{k}={_fmt(value[k])}"
                for k in ("count", "total", "min", "max", "mean")
                if k in value
            )
            lines.append(f"{name} {detail}")
        else:
            lines.append(f"{name} {_fmt(value)}")
    return "\n".join(lines) if lines else "(no metrics recorded)"


_registry = MetricsRegistry()

#: A context-local override of the process-wide registry.  The service
#: hosts many sessions in one process; wrapping each session's command
#: execution in :func:`scope` routes its counters to its own registry,
#: so ``stats`` in one session never shows another's work.
#: ``asyncio.to_thread`` copies the caller's context, so a scope set
#: around the thread call travels with it.
_scoped: contextvars.ContextVar[MetricsRegistry | None] = contextvars.ContextVar(
    "repro.obs.metrics.scoped", default=None
)


@contextlib.contextmanager
def scope(reg: MetricsRegistry):
    """Route instrument lookups in this context to ``reg``, shadowing
    the process-wide registry."""
    token = _scoped.set(reg)
    try:
        yield reg
    finally:
        _scoped.reset(token)


def registry() -> MetricsRegistry:
    """The registry instrument lookups currently resolve to: the
    context-local override when one is active, the process-wide default
    otherwise."""
    return _scoped.get() or _registry


def set_registry(reg: MetricsRegistry | None) -> MetricsRegistry:
    """Swap the default registry (tests); returns the previous one."""
    global _registry
    previous = _registry
    _registry = reg if reg is not None else MetricsRegistry()
    return previous


def counter(name: str) -> Counter:
    return registry().counter(name)


def gauge(name: str) -> Gauge:
    return registry().gauge(name)


def histogram(name: str) -> Histogram:
    return registry().histogram(name)


def quantile_histogram(name: str) -> QuantileHistogram:
    return registry().quantile_histogram(name)


# -- export providers -------------------------------------------------------

#: Callables contributing extra entries to the ``--metrics`` export.
#: The supervisor registers one that flattens the metric snapshots its
#: shards piggybacked on heartbeats (``shard<i>.`` prefix), so a
#: sharded run's export covers every process, not just the one holding
#: the flag.  Providers run only at export time and must return a flat
#: ``{name: value}`` dict.
_export_providers: list = []


def register_export_provider(provider) -> None:
    _export_providers.append(provider)


def unregister_export_provider(provider) -> None:
    with contextlib.suppress(ValueError):
        _export_providers.remove(provider)


def export_snapshot() -> dict:
    """The registry snapshot plus every export provider's entries,
    key-sorted — what ``--metrics FILE`` actually writes."""
    out = dict(registry().snapshot())
    for provider in list(_export_providers):
        try:
            extra = provider()
        except Exception:  # pragma: no cover - a dead provider never
            continue  # blocks the export of everything else
        for name, value in (extra or {}).items():
            out.setdefault(name, value)
    return {name: out[name] for name in sorted(out)}
