"""Process-wide counters, gauges and histograms.

A flat registry of named instruments, cheap enough to leave on
permanently (a counter bump is a dict lookup and an add under one
lock).  The registry is the single source the ``stats`` textual
command, the ``--metrics`` session flag and the exporters all read.

Naming convention: dotted paths, subsystem first —
``river.tracks_used``, ``wal.fsyncs``, ``pipeline.cache.hits``.
Snapshots are key-sorted, so exports are deterministic.
"""

from __future__ import annotations

import contextlib
import contextvars
import threading


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value", "_lock")

    def __init__(self, lock: threading.Lock) -> None:
        self.value = 0
        self._lock = lock

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self.value += n


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("value", "_lock")

    def __init__(self, lock: threading.Lock) -> None:
        self.value = 0
        self._lock = lock

    def set(self, value) -> None:
        with self._lock:
            self.value = value


class Histogram:
    """Summary statistics of observed values: count/total/min/max.

    Deliberately bucket-free — the repo's consumers want distribution
    summaries in reports and benchmarks, not quantile estimation, and
    four scalars stay deterministic and dependency-free.
    """

    __slots__ = ("count", "total", "min", "max", "_lock")

    def __init__(self, lock: threading.Lock) -> None:
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None
        self._lock = lock

    def observe(self, value) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    def summary(self) -> dict:
        with self._lock:
            mean = self.total / self.count if self.count else 0
            return {
                "count": self.count,
                "total": self.total,
                "min": self.min,
                "max": self.max,
                "mean": mean,
            }


class MetricsRegistry:
    """Named instruments, created on first use, type-checked on reuse."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, object] = {}

    def _get(self, name: str, kind):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = kind(self._lock)
                return metric
        if not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def snapshot(self) -> dict:
        """All current values, key-sorted; histograms as summary dicts."""
        with self._lock:
            items = list(self._metrics.items())
        out: dict = {}
        for name, metric in sorted(items):
            if isinstance(metric, Histogram):
                out[name] = metric.summary()
            else:
                out[name] = metric.value
        return out

    def render_text(self) -> str:
        """The ``stats`` command's live dump: one ``name value`` line each."""
        lines = []
        for name, value in self.snapshot().items():
            if isinstance(value, dict):
                detail = " ".join(
                    f"{k}={_fmt(value[k])}"
                    for k in ("count", "total", "min", "max", "mean")
                )
                lines.append(f"{name} {detail}")
            else:
                lines.append(f"{name} {_fmt(value)}")
        return "\n".join(lines) if lines else "(no metrics recorded)"

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


_registry = MetricsRegistry()

#: A context-local override of the process-wide registry.  The service
#: hosts many sessions in one process; wrapping each session's command
#: execution in :func:`scope` routes its counters to its own registry,
#: so ``stats`` in one session never shows another's work.
#: ``asyncio.to_thread`` copies the caller's context, so a scope set
#: around the thread call travels with it.
_scoped: contextvars.ContextVar[MetricsRegistry | None] = contextvars.ContextVar(
    "repro.obs.metrics.scoped", default=None
)


@contextlib.contextmanager
def scope(reg: MetricsRegistry):
    """Route instrument lookups in this context to ``reg``, shadowing
    the process-wide registry."""
    token = _scoped.set(reg)
    try:
        yield reg
    finally:
        _scoped.reset(token)


def registry() -> MetricsRegistry:
    """The registry instrument lookups currently resolve to: the
    context-local override when one is active, the process-wide default
    otherwise."""
    return _scoped.get() or _registry


def set_registry(reg: MetricsRegistry | None) -> MetricsRegistry:
    """Swap the default registry (tests); returns the previous one."""
    global _registry
    previous = _registry
    _registry = reg if reg is not None else MetricsRegistry()
    return previous


def counter(name: str) -> Counter:
    return registry().counter(name)


def gauge(name: str) -> Gauge:
    return registry().gauge(name)


def histogram(name: str) -> Histogram:
    return registry().histogram(name)
