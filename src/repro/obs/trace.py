"""Hierarchical tracing with a no-op fast path.

A span measures one operation: wall and CPU time from the injectable
clock, free-form attributes, and a parent — whatever span was open on
the same thread when it started.  The API is a context manager::

    with trace.span("river.plan", wires=4) as sp:
        ...
        sp.set("tracks", route.channels)

or a decorator::

    @trace.traced("rest.solve_axis")
    def solve_axis(...): ...

Tracing is off by default.  Disabled, :func:`span` returns a single
shared :data:`NULL_SPAN` whose methods do nothing — instrumented hot
paths pay one ``is None`` check and one call, which the overhead smoke
test bounds at < 5% of command cost.

Span ids are allocated per tracer under a lock and thread ids are
mapped to small logical indexes in order of first use, so a
single-threaded run under a :class:`~repro.obs.clock.FixedClock`
produces byte-identical traces — real thread idents and pids never
reach the export.
"""

from __future__ import annotations

import contextlib
import contextvars
import functools
import threading
from dataclasses import dataclass, field

from repro.obs.clock import get_clock


@dataclass
class SpanRecord:
    """One finished (or synthesized) span."""

    span_id: int
    parent_id: int | None
    name: str
    category: str
    tid: int
    start_wall: float
    end_wall: float
    start_cpu: float
    end_cpu: float
    attrs: dict = field(default_factory=dict)

    @property
    def wall(self) -> float:
        return self.end_wall - self.start_wall

    @property
    def cpu(self) -> float:
        return self.end_cpu - self.start_cpu


class Span:
    """An open span; closes (and is recorded) on ``__exit__``."""

    __slots__ = ("_tracer", "record", "_closed")

    def __init__(self, tracer: "Tracer", record: SpanRecord) -> None:
        self._tracer = tracer
        self.record = record
        self._closed = False

    def set(self, key: str, value) -> "Span":
        """Attach an attribute; chainable."""
        self.record.attrs[key] = value
        return self

    def close(self) -> None:
        """End the span explicitly (for non-``with`` call sites)."""
        self._tracer._close(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.record.attrs.setdefault("error", exc_type.__name__)
        self._tracer._close(self)
        return False


class _NullSpan:
    """The shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def set(self, key: str, value) -> "_NullSpan":
        return self

    def close(self) -> None:
        return None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans for one tracing session.

    Thread-safe: each thread keeps its own open-span stack (parentage
    never crosses threads), ids come from a shared locked counter, and
    finished records append under the same lock.
    """

    def __init__(self, clock=None) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_id = 1
        self._tids: dict[int, int] = {}
        self._finished: list[SpanRecord] = []
        self._open = 0

    def _clock_now(self):
        return self._clock if self._clock is not None else get_clock()

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _alloc(self) -> tuple[int, int]:
        """(span id, logical thread index) under the lock."""
        ident = threading.get_ident()
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            tid = self._tids.setdefault(ident, len(self._tids))
            self._open += 1
        return span_id, tid

    def span(self, name: str, category: str = "riot", **attrs) -> Span:
        """Open a span; use as a context manager."""
        span_id, tid = self._alloc()
        stack = self._stack()
        parent_id = stack[-1].record.span_id if stack else None
        clock = self._clock_now()
        record = SpanRecord(
            span_id=span_id,
            parent_id=parent_id,
            name=name,
            category=category,
            tid=tid,
            start_wall=clock.wall(),
            end_wall=0.0,
            start_cpu=clock.cpu(),
            end_cpu=0.0,
            attrs=dict(attrs),
        )
        span = Span(self, record)
        stack.append(span)
        return span

    def _close(self, span: Span) -> None:
        if span._closed:
            return
        span._closed = True
        clock = self._clock_now()
        span.record.end_wall = clock.wall()
        span.record.end_cpu = clock.cpu()
        stack = self._stack()
        if span in stack:
            # Close any children left open (abandoned generators etc.)
            # so nesting stays well-formed.
            while stack and stack[-1] is not span:
                stack.pop()._closed = True
            stack.pop()
        with self._lock:
            self._finished.append(span.record)
            self._open -= 1

    def record(
        self, name: str, wall: float, cpu: float, category: str = "riot", **attrs
    ) -> SpanRecord:
        """Synthesize an already-measured span (e.g. a task timed inside
        a worker process) as a child of the current open span, ending
        now."""
        span_id, tid = self._alloc()
        stack = self._stack()
        parent_id = stack[-1].record.span_id if stack else None
        clock = self._clock_now()
        end_wall = clock.wall()
        end_cpu = clock.cpu()
        rec = SpanRecord(
            span_id=span_id,
            parent_id=parent_id,
            name=name,
            category=category,
            tid=tid,
            start_wall=end_wall - wall,
            end_wall=end_wall,
            start_cpu=end_cpu - cpu,
            end_cpu=end_cpu,
            attrs=dict(attrs),
        )
        with self._lock:
            self._finished.append(rec)
            self._open -= 1
        return rec

    def finished(self) -> list[SpanRecord]:
        """Finished spans, in deterministic (start time, id) order."""
        with self._lock:
            records = list(self._finished)
        records.sort(key=lambda r: (r.start_wall, r.span_id))
        return records

    def open_count(self) -> int:
        with self._lock:
            return self._open

    def open_names(self) -> list[str]:
        """Names of spans still open (unclosed at exit is a bug)."""
        names = []
        stack = getattr(self._local, "stack", None) or []
        names.extend(s.record.name for s in stack)
        return names


# -- the module-level switch ----------------------------------------------

_active: Tracer | None = None

#: A context-local override of the process-wide switch.  The service
#: hosts many sessions in one process; wrapping each session's command
#: execution in :func:`scope` routes its spans to its own tracer
#: without touching (or seeing) the global one.  ``asyncio.to_thread``
#: copies the caller's context, so a scope set around the thread call
#: travels with it.
_scoped: contextvars.ContextVar[Tracer | None] = contextvars.ContextVar(
    "repro.obs.trace.scoped", default=None
)


@contextlib.contextmanager
def scope(tracer: Tracer):
    """Route spans opened in this context to ``tracer``, shadowing the
    process-wide switch."""
    token = _scoped.set(tracer)
    try:
        yield tracer
    finally:
        _scoped.reset(token)


def enabled() -> bool:
    return _active is not None


def active() -> Tracer | None:
    return _active


def enable(tracer: Tracer | None = None) -> Tracer:
    """Turn tracing on (idempotent); returns the active tracer."""
    global _active
    if tracer is not None:
        _active = tracer
    elif _active is None:
        _active = Tracer()
    return _active


def disable() -> Tracer | None:
    """Turn tracing off; returns the tracer that was active (so its
    spans can still be exported)."""
    global _active
    previous = _active
    _active = None
    return previous


def span(name: str, category: str = "riot", **attrs):
    """The instrumentation entry point: a real span when tracing is on,
    the shared :data:`NULL_SPAN` when it is off."""
    tracer = _scoped.get() or _active
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, category, **attrs)


def record(name: str, wall: float, cpu: float, category: str = "riot", **attrs):
    tracer = _scoped.get() or _active
    if tracer is None:
        return None
    return tracer.record(name, wall, cpu, category, **attrs)


def traced(name: str | None = None, category: str = "riot"):
    """Decorator form: wraps the function body in a span."""

    def decorate(func):
        span_name = name or func.__qualname__

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            tracer = _scoped.get() or _active
            if tracer is None:
                return func(*args, **kwargs)
            with tracer.span(span_name, category):
                return func(*args, **kwargs)

        return wrapper

    return decorate
