"""Hierarchical tracing with a no-op fast path.

A span measures one operation: wall and CPU time from the injectable
clock, free-form attributes, and a parent — whatever span was open on
the same thread when it started.  The API is a context manager::

    with trace.span("river.plan", wires=4) as sp:
        ...
        sp.set("tracks", route.channels)

or a decorator::

    @trace.traced("rest.solve_axis")
    def solve_axis(...): ...

Tracing is off by default.  Disabled, :func:`span` returns a single
shared :data:`NULL_SPAN` whose methods do nothing — instrumented hot
paths pay one ``is None`` check and one call, which the overhead smoke
test bounds at < 5% of command cost.

Span ids are allocated per tracer under a lock and thread ids are
mapped to small logical indexes in order of first use, so a
single-threaded run under a :class:`~repro.obs.clock.FixedClock`
produces byte-identical traces — real thread idents and pids never
reach the export.
"""

from __future__ import annotations

import contextlib
import contextvars
import functools
import threading
from dataclasses import dataclass, field

from repro.obs.clock import get_clock


@dataclass
class SpanRecord:
    """One finished (or synthesized) span."""

    span_id: int
    parent_id: int | None
    name: str
    category: str
    tid: int
    start_wall: float
    end_wall: float
    start_cpu: float
    end_cpu: float
    attrs: dict = field(default_factory=dict)
    #: Distributed-trace stitching: the request's trace id and, when
    #: the logical parent span lives in *another process* (or another
    #: thread's stack), its cross-process reference
    #: (``"<process label>:<span id>"``).  ``None`` for purely local
    #: spans, and then absent from every export — single-process
    #: traces are byte-identical to what they were before these fields
    #: existed.
    trace_id: str | None = None
    remote_parent: str | None = None

    @property
    def wall(self) -> float:
        return self.end_wall - self.start_wall

    @property
    def cpu(self) -> float:
        return self.end_cpu - self.start_cpu


class Span:
    """An open span; closes (and is recorded) on ``__exit__``."""

    __slots__ = ("_tracer", "record", "_closed")

    def __init__(self, tracer: "Tracer", record: SpanRecord) -> None:
        self._tracer = tracer
        self.record = record
        self._closed = False

    def set(self, key: str, value) -> "Span":
        """Attach an attribute; chainable."""
        self.record.attrs[key] = value
        return self

    def context(
        self, trace_id: str | None, remote_parent: str | None = None
    ) -> "Span":
        """Stitch this span into a distributed trace; chainable."""
        if trace_id is not None:
            self.record.trace_id = trace_id
        if remote_parent is not None:
            self.record.remote_parent = remote_parent
        return self

    @property
    def ref(self) -> str:
        """This span's cross-process reference (``"label:id"``) — what
        a child in another process carries as its ``remote_parent``."""
        return f"{process_label()}:{self.record.span_id}"

    def close(self) -> None:
        """End the span explicitly (for non-``with`` call sites)."""
        self._tracer._close(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.record.attrs.setdefault("error", exc_type.__name__)
        self._tracer._close(self)
        return False


class _NullSpan:
    """The shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def set(self, key: str, value) -> "_NullSpan":
        return self

    def context(self, trace_id, remote_parent=None) -> "_NullSpan":
        return self

    @property
    def ref(self) -> None:
        return None

    def close(self) -> None:
        return None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class DetachedSpan:
    """An open span that never touches the thread-local stack.

    The request path of the service opens spans that end on a
    different thread (shard worker) or interleave with other requests
    on one event loop (supervisor relay) — both would corrupt the
    parent stack a :class:`Span` relies on.  A detached span allocates
    its id eagerly (so children can reference it via :attr:`ref`
    before it closes), takes no implicit parent, and simply records
    itself when closed.
    """

    __slots__ = ("_tracer", "record", "_closed")

    def __init__(self, tracer: "Tracer", record: SpanRecord) -> None:
        self._tracer = tracer
        self.record = record
        self._closed = False

    def set(self, key: str, value) -> "DetachedSpan":
        self.record.attrs[key] = value
        return self

    def context(
        self, trace_id: str | None, remote_parent: str | None = None
    ) -> "DetachedSpan":
        if trace_id is not None:
            self.record.trace_id = trace_id
        if remote_parent is not None:
            self.record.remote_parent = remote_parent
        return self

    @property
    def ref(self) -> str:
        return f"{process_label()}:{self.record.span_id}"

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        clock = self._tracer._clock_now()
        self.record.end_wall = clock.wall()
        self.record.end_cpu = clock.cpu()
        with self._tracer._lock:
            self._tracer._finished.append(self.record)
            self._tracer._open -= 1

    def __enter__(self) -> "DetachedSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.record.attrs.setdefault("error", exc_type.__name__)
        self.close()
        return False


class Tracer:
    """Collects spans for one tracing session.

    Thread-safe: each thread keeps its own open-span stack (parentage
    never crosses threads), ids come from a shared locked counter, and
    finished records append under the same lock.
    """

    def __init__(self, clock=None) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_id = 1
        self._tids: dict[int, int] = {}
        self._finished: list[SpanRecord] = []
        self._open = 0

    def _clock_now(self):
        return self._clock if self._clock is not None else get_clock()

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _alloc(self) -> tuple[int, int]:
        """(span id, logical thread index) under the lock."""
        ident = threading.get_ident()
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            tid = self._tids.setdefault(ident, len(self._tids))
            self._open += 1
        return span_id, tid

    def span(self, name: str, category: str = "riot", **attrs) -> Span:
        """Open a span; use as a context manager."""
        span_id, tid = self._alloc()
        stack = self._stack()
        parent_id = stack[-1].record.span_id if stack else None
        clock = self._clock_now()
        record = SpanRecord(
            span_id=span_id,
            parent_id=parent_id,
            name=name,
            category=category,
            tid=tid,
            start_wall=clock.wall(),
            end_wall=0.0,
            start_cpu=clock.cpu(),
            end_cpu=0.0,
            attrs=dict(attrs),
        )
        span = Span(self, record)
        stack.append(span)
        return span

    def begin(
        self,
        name: str,
        category: str = "riot",
        *,
        trace_id: str | None = None,
        remote_parent: str | None = None,
        **attrs,
    ) -> DetachedSpan:
        """Open a :class:`DetachedSpan`: no stack parent, safe to close
        from another thread or an interleaved coroutine."""
        span_id, tid = self._alloc()
        clock = self._clock_now()
        record = SpanRecord(
            span_id=span_id,
            parent_id=None,
            name=name,
            category=category,
            tid=tid,
            start_wall=clock.wall(),
            end_wall=0.0,
            start_cpu=clock.cpu(),
            end_cpu=0.0,
            attrs=dict(attrs),
            trace_id=trace_id,
            remote_parent=remote_parent,
        )
        return DetachedSpan(self, record)

    def _close(self, span: Span) -> None:
        if span._closed:
            return
        span._closed = True
        clock = self._clock_now()
        span.record.end_wall = clock.wall()
        span.record.end_cpu = clock.cpu()
        stack = self._stack()
        if span in stack:
            # Close any children left open (abandoned generators etc.)
            # so nesting stays well-formed.
            while stack and stack[-1] is not span:
                stack.pop()._closed = True
            stack.pop()
        with self._lock:
            self._finished.append(span.record)
            self._open -= 1

    def record(
        self, name: str, wall: float, cpu: float, category: str = "riot", **attrs
    ) -> SpanRecord:
        """Synthesize an already-measured span (e.g. a task timed inside
        a worker process) as a child of the current open span, ending
        now."""
        span_id, tid = self._alloc()
        stack = self._stack()
        parent_id = stack[-1].record.span_id if stack else None
        clock = self._clock_now()
        end_wall = clock.wall()
        end_cpu = clock.cpu()
        rec = SpanRecord(
            span_id=span_id,
            parent_id=parent_id,
            name=name,
            category=category,
            tid=tid,
            start_wall=end_wall - wall,
            end_wall=end_wall,
            start_cpu=end_cpu - cpu,
            end_cpu=end_cpu,
            attrs=dict(attrs),
        )
        with self._lock:
            self._finished.append(rec)
            self._open -= 1
        return rec

    def finished(self) -> list[SpanRecord]:
        """Finished spans, in deterministic (start time, id) order."""
        with self._lock:
            records = list(self._finished)
        records.sort(key=lambda r: (r.start_wall, r.span_id))
        return records

    def open_count(self) -> int:
        with self._lock:
            return self._open

    def open_names(self) -> list[str]:
        """Names of spans still open (unclosed at exit is a bug)."""
        names = []
        stack = getattr(self._local, "stack", None) or []
        names.extend(s.record.name for s in stack)
        return names


# -- distributed-trace identity --------------------------------------------

#: The logical process label used in cross-process span references
#: (``"label:span_id"``) and Chrome exports.  Set once at startup by
#: whoever knows the process's role — ``"client"``, ``"supervisor"``,
#: ``"shard0"`` — and deliberately *not* a real pid, so fixed-clock
#: traces stay reproducible.
_process_label: str | None = None
_trace_seq = 0
_trace_seq_lock = threading.Lock()


def set_process_label(label: str | None) -> str | None:
    """Name this process for cross-process span references; returns
    the previous label (tests restore it)."""
    global _process_label
    previous = _process_label
    _process_label = label
    return previous


def process_label() -> str:
    return _process_label or "main"


def process_label_explicit() -> str | None:
    """The label only if one was set — ``None`` keeps single-process
    exports byte-identical to the pre-distributed-tracing format."""
    return _process_label


def new_trace_id() -> str:
    """A fresh request-scoped trace id, unique across processes: the
    process label, the OS pid, and a process-local sequence number."""
    global _trace_seq
    import os

    with _trace_seq_lock:
        _trace_seq += 1
        seq = _trace_seq
    return f"{process_label()}-{os.getpid():x}-{seq}"


# -- the module-level switch ----------------------------------------------

_active: Tracer | None = None

#: A context-local override of the process-wide switch.  The service
#: hosts many sessions in one process; wrapping each session's command
#: execution in :func:`scope` routes its spans to its own tracer
#: without touching (or seeing) the global one.  ``asyncio.to_thread``
#: copies the caller's context, so a scope set around the thread call
#: travels with it.
_scoped: contextvars.ContextVar[Tracer | None] = contextvars.ContextVar(
    "repro.obs.trace.scoped", default=None
)


@contextlib.contextmanager
def scope(tracer: Tracer):
    """Route spans opened in this context to ``tracer``, shadowing the
    process-wide switch."""
    token = _scoped.set(tracer)
    try:
        yield tracer
    finally:
        _scoped.reset(token)


def enabled() -> bool:
    return _active is not None


def active() -> Tracer | None:
    return _active


def enable(tracer: Tracer | None = None) -> Tracer:
    """Turn tracing on (idempotent); returns the active tracer."""
    global _active
    if tracer is not None:
        _active = tracer
    elif _active is None:
        _active = Tracer()
    return _active


def disable() -> Tracer | None:
    """Turn tracing off; returns the tracer that was active (so its
    spans can still be exported)."""
    global _active
    previous = _active
    _active = None
    return previous


def span(name: str, category: str = "riot", **attrs):
    """The instrumentation entry point: a real span when tracing is on,
    the shared :data:`NULL_SPAN` when it is off."""
    tracer = _scoped.get() or _active
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, category, **attrs)


def record(name: str, wall: float, cpu: float, category: str = "riot", **attrs):
    tracer = _scoped.get() or _active
    if tracer is None:
        return None
    return tracer.record(name, wall, cpu, category, **attrs)


def begin(
    name: str,
    category: str = "riot",
    *,
    trace_id: str | None = None,
    remote_parent: str | None = None,
    **attrs,
):
    """Open a detached span (see :meth:`Tracer.begin`) — or the shared
    :data:`NULL_SPAN` when tracing is off, so call sites can use
    ``span.ref`` (``None``) and ``span.close()`` unconditionally."""
    tracer = _scoped.get() or _active
    if tracer is None:
        return NULL_SPAN
    return tracer.begin(
        name, category, trace_id=trace_id, remote_parent=remote_parent, **attrs
    )


def traced(name: str | None = None, category: str = "riot"):
    """Decorator form: wraps the function body in a span."""

    def decorate(func):
        span_name = name or func.__qualname__

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            tracer = _scoped.get() or _active
            if tracer is None:
                return func(*args, **kwargs)
            with tracer.span(span_name, category):
                return func(*args, **kwargs)

        return wrapper

    return decorate
