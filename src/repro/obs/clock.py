"""The injectable clock behind every trace timestamp.

Real sessions use :class:`MonotonicClock` (``perf_counter`` +
``process_time``).  Tests and the fuzz determinism guarantee swap in a
:class:`FixedClock`, which advances by a fixed step per reading, so a
run's trace is a pure function of the work it did — no wall-clock
noise, byte-identical exports across runs.
"""

from __future__ import annotations

import threading
import time


class MonotonicClock:
    """The production clock: monotonic wall time plus process CPU time."""

    def wall(self) -> float:
        return time.perf_counter()

    def cpu(self) -> float:
        return time.process_time()


class FixedClock:
    """A deterministic clock: each reading advances by a fixed step.

    ``wall`` and ``cpu`` tick independently (CPU usually advances more
    slowly than wall), so traces taken under a fixed clock still have
    distinct, ordered, reproducible timestamps.
    """

    def __init__(
        self,
        start: float = 0.0,
        step: float = 0.001,
        cpu_step: float | None = None,
    ) -> None:
        if step <= 0:
            raise ValueError(f"step must be positive, got {step}")
        self._wall = start
        self._cpu = start
        self._step = step
        self._cpu_step = cpu_step if cpu_step is not None else step / 2
        self._lock = threading.Lock()

    def wall(self) -> float:
        with self._lock:
            value = self._wall
            self._wall += self._step
            return value

    def cpu(self) -> float:
        with self._lock:
            value = self._cpu
            self._cpu += self._cpu_step
            return value


_clock = MonotonicClock()


def get_clock():
    """The process-wide clock every span and metric reads from."""
    return _clock


def set_clock(clock) -> object:
    """Install ``clock`` (or the default when None); returns the previous
    clock so tests can restore it."""
    global _clock
    previous = _clock
    _clock = clock if clock is not None else MonotonicClock()
    return previous
