"""The worked example: the four-bit sequential logical filter chip.

This package is the reproduction of the paper's RIOT EXAMPLE section
(figures 7 through 10): the rough floorplan, the logic block assembled
with routed connections (figure 9a) and with stretched connections
(figure 9b), and the completed chip with pads (figure 10).

The functions here drive the editor through exactly the command
sequences the paper describes, and return the measurements the
benchmarks report.
"""

from repro.chip.floorplan import Floorplan, filter_floorplan
from repro.chip.filterchip import (
    AssemblyStats,
    ChipStats,
    assemble_chip,
    assemble_logic,
)

__all__ = [
    "Floorplan",
    "filter_floorplan",
    "AssemblyStats",
    "ChipStats",
    "assemble_logic",
    "assemble_chip",
]
