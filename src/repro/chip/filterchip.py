"""Assembly of the four-bit sequential logical filter.

The paper's example chip computes ``f_n = OR_{i=1..4} c_i x_{n-i}``
(Boolean sums and products, constants from off chip).  The assembly
follows the paper step by step:

1. "The first step is to generate the shift register array.  The
   array elements abut, making the shift register chain connections as
   well as power and ground connections."
2. "Next, two stages of NAND gates provide the ANDing of the constant
   terms and the first level of ORs, then routing is done to the OR
   gate.  Connections to these gates are routed in figure 9a.
   Alternatively, the designer may save area by stretching the gates,
   eliminating the routing area (figure 9b)."
3. "The definition of the logic portion is finished by routing
   connections to the edge of the cell so they show as connectors on
   the larger cell."
4. "Pre-defined pipe fittings aid complex routes for power, ground
   and clock lines.  Pad routing is done in pieces with Riot's routing
   command" (figure 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.composition.cell import CompositionCell
from repro.core.editor import RiotEditor
from repro.core.errors import RiotError
from repro.geometry.box import Box
from repro.geometry.point import Point

ROUTED = "routed"
STRETCHED = "stretched"
MODES = (ROUTED, STRETCHED)

SR_ORIGIN = Point(0, 30000)
STAGE1_STAGING = Point(0, 20000)
STAGE2_STAGING = Point(0, 10000)
OR_STAGING = Point(0, 0)


@dataclass
class AssemblyStats:
    """Measurements of one logic-block assembly (figure 9a/9b)."""

    mode: str
    cell_name: str
    bounding_box: Box
    route_cell_count: int = 0
    route_area: int = 0
    channels_total: int = 0
    stretch_count: int = 0
    connections_made: int = 0
    near_misses: int = 0
    warnings: list[str] = field(default_factory=list)

    @property
    def width(self) -> int:
        return self.bounding_box.width

    @property
    def height(self) -> int:
        return self.bounding_box.height

    @property
    def area(self) -> int:
        return self.bounding_box.area


def assemble_logic(
    editor: RiotEditor,
    mode: str,
    name: str | None = None,
    bring_out_constants: bool = True,
) -> AssemblyStats:
    """Build the logic block with routed or stretched connections.

    The library must already hold the figure-8 stock (``srcell``,
    ``nand``, ``or2`` — see :func:`repro.library.filter_library`).
    Returns the stats the figure 9 comparison reports.

    ``bring_out_constants`` runs the paper's "routing connections to
    the edge of the cell" step for the four off-chip constant inputs.
    Those straight-line routes pass over the lower gate rows — Riot's
    router "ignores objects in the path of the route" — which shorts
    the constant wires to the gates they cross at mask level.  The
    verification pass detects exactly that (see the integration
    tests); pass ``False`` to build the electrically clean block
    without the constant bring-outs.
    """
    if mode not in MODES:
        raise RiotError(f"mode must be one of {MODES}, got {mode!r}")
    cell_name = name or f"logic_{mode}"
    editor.new_cell(cell_name)
    route_results = []
    stretch_count = 0

    # 1. The shift register array: elements connect by abutment.
    editor.create(at=SR_ORIGIN, cell_name="srcell", nx=4, name="sr")

    # 2a. First NAND stage, one gate under each tap.
    for i in range(4):
        editor.create(
            at=Point(4000 * i, STAGE1_STAGING.y), cell_name="nand", name=f"n{i}"
        )
        editor.connect(f"n{i}", "A", "sr", f"TAP[{i},0]")
        if mode == ROUTED:
            route_results.append(editor.do_route())
        else:
            editor.do_abut()

    # 2b. Second NAND stage, pairing the first stage's outputs.
    for m, (a, b) in (("m0", ("n0", "n1")), ("m1", ("n2", "n3"))):
        x = 0 if m == "m0" else 20000
        editor.create(at=Point(x, STAGE2_STAGING.y), cell_name="nand", name=m)
        editor.connect(m, "A", a, "OUT")
        editor.connect(m, "B", b, "OUT")
        if mode == ROUTED:
            route_results.append(editor.do_route())
        else:
            editor.do_stretch()
            stretch_count += 1

    # 2c. The OR gate combining the two halves.
    editor.create(at=OR_STAGING, cell_name="or2", name="o")
    editor.connect("o", "A", "m0", "OUT")
    editor.connect("o", "B", "m1", "OUT")
    if mode == ROUTED:
        route_results.append(editor.do_route())
    else:
        editor.do_stretch()
        stretch_count += 1

    # 3. Finish the cell: bring the constant inputs out to the bottom
    # edge (straight-line route cells; the router ignores what is in
    # the way, as the paper says) and promote the edge connectors.
    if bring_out_constants:
        for i in range(4):
            editor.bring_out(f"n{i}", ["B"], side="bottom")
    out_conn = editor.cell.instance("o").connector("OUT")
    if out_conn.position.y > editor.cell.bounding_box().lly:
        editor.bring_out("o", ["OUT"], side="bottom")
    editor.finish()

    return _logic_stats(editor, mode, cell_name, route_results, stretch_count)


def _logic_stats(
    editor: RiotEditor,
    mode: str,
    cell_name: str,
    route_results,
    stretch_count: int,
) -> AssemblyStats:
    cell = editor.library.get(cell_name)
    report = editor.check() if editor.cell is cell else None
    route_instances = [
        inst for inst in cell.instances if inst.cell.name.startswith("route")
    ]
    stats = AssemblyStats(
        mode=mode,
        cell_name=cell_name,
        bounding_box=cell.bounding_box(),
        route_cell_count=len(route_instances),
        route_area=sum(inst.bounding_box().area for inst in route_instances),
        channels_total=sum(r.solved.channels for r in route_results),
        stretch_count=stretch_count,
        warnings=list(editor.messages),
    )
    if report is not None:
        stats.connections_made = report.made_count
        stats.near_misses = len(report.near_misses)
    return stats


@dataclass
class ChipStats:
    """Measurements of the completed chip (figure 10)."""

    mode: str
    logic: AssemblyStats
    bounding_box: Box
    pad_count: int = 0
    pads_connected: int = 0
    route_cell_count: int = 0
    connections_made: int = 0
    overlaps: int = 0

    @property
    def area(self) -> int:
        return self.bounding_box.area


def assemble_chip(editor: RiotEditor, mode: str = STRETCHED) -> ChipStats:
    """Build the complete logical filter chip (figure 10).

    Pads surround the logic block: the serial input on the left, the
    clock on top, four constants and the filter output on the bottom,
    power and ground brought in over pipe-fitting straps on the left
    and right.  "Pad routing is done in pieces with Riot's routing
    command" — each pad gets its own route, made without moving the
    already-positioned instances.
    """
    logic_stats = assemble_logic(editor, mode, name="logic")
    logic_cell = editor.library.get("logic")

    editor.new_cell("chip")
    editor.create(at=Point(0, 0), cell_name="logic", name="L")
    logic_instance = editor.cell.instance("L")
    offset = Point(0, 0) - logic_stats.bounding_box.lower_left
    pad_names: list[str] = []

    # Serial data input on the left, at the shift register data height.
    in_name = _edge_connector_name(logic_cell, "IN[")
    in_y = logic_cell.connector(in_name).position.y + offset.y
    editor.create(at=Point(-28000, in_y - 5000), cell_name="inpad", name="xpad")
    pad_names.append("xpad")
    editor.connect("L", in_name, "xpad", "PAD")
    editor.do_route(move_from=False)

    # Power and ground pads arrive over pipe-fitting straps.
    _power_over_strap(
        editor, "vddpad", "inpad", Point(-28000, 42000), "strapv",
        _edge_connector_name(logic_cell, "PWRL"), "W", "E",
    )
    _power_over_strap(
        editor, "gndpad", "outpad", Point(36000, 42000), "strapg",
        _edge_connector_name(logic_cell, "GNDR"), "E", "W",
    )
    pad_names += ["vddpad", "gndpad"]

    # Clock from the top, through a poly-to-metal converter.
    clk_name = _edge_connector_name(logic_cell, "CLKT[1")
    editor.create(
        at=Point(0, 50000), cell_name="p2m", orientation="R180", name="cv_clk"
    )
    editor.connect("cv_clk", "P", "L", clk_name)
    editor.do_abut()
    editor.create(
        at=Point(0, 60000), cell_name="inpad", orientation="R270", name="clkpad"
    )
    pad_names.append("clkpad")
    editor.connect("cv_clk", "M", "clkpad", "PAD")
    editor.do_route(move_from=False)

    # Constants and the output leave at the bottom, each over its own
    # converter and its own route — "in pieces".
    bottom = [
        name
        for name in _connector_names(logic_cell)
        if name.endswith(".B") or name == "B" or name.endswith(".OUT") or name == "OUT"
    ]
    bottom.sort(key=lambda n: logic_cell.connector(n).position.x)
    for index, conn_name in enumerate(bottom):
        converter = f"cv{index}"
        editor.create(at=Point(0, -8000), cell_name="p2m", name=converter)
        editor.connect(converter, "P", "L", conn_name)
        editor.do_abut(overlap=True)
        pad = f"bpad{index}"
        kind = "outpad" if "OUT" in conn_name else "inpad"
        orientation = "R270" if kind == "outpad" else "R90"
        editor.create(
            at=Point(index * 12000 - 24000, -26000),
            cell_name=kind,
            orientation=orientation,
            name=pad,
        )
        pad_names.append(pad)
        editor.connect(converter, "M", pad, "PAD")
        editor.do_route(move_from=False)

    editor.finish()
    return _chip_stats(editor, mode, logic_stats, pad_names)


def _power_over_strap(
    editor: RiotEditor,
    pad_name: str,
    pad_cell: str,
    pad_at: Point,
    strap_name: str,
    logic_connector: str,
    strap_pad_pin: str,
    strap_route_pin: str,
) -> None:
    """Place a pad, abut a pipe-fitting strap to it, route to the rail."""
    editor.create(at=pad_at, cell_name=pad_cell, name=pad_name)
    editor.create(at=Point(pad_at.x, pad_at.y - 15000), cell_name="fit_strap",
                  name=strap_name)
    editor.connect(strap_name, strap_pad_pin, pad_name, "PAD")
    editor.do_abut()
    editor.connect(strap_name, strap_route_pin, "L", logic_connector)
    editor.do_route(move_from=False)


def _connector_names(cell: CompositionCell) -> list[str]:
    return [conn.name for conn in cell.connectors]


def _edge_connector_name(cell: CompositionCell, prefix: str) -> str:
    """The unique promoted connector whose name contains ``prefix``."""
    matches = [name for name in _connector_names(cell) if prefix in name]
    if not matches:
        raise RiotError(
            f"logic cell has no connector matching {prefix!r}; "
            f"have {_connector_names(cell)}"
        )
    return sorted(matches)[0]


def _chip_stats(
    editor: RiotEditor,
    mode: str,
    logic_stats: AssemblyStats,
    pad_names: list[str],
) -> ChipStats:
    chip = editor.cell
    assert chip is not None
    report = editor.check()
    pads_connected = 0
    for pad_name in pad_names:
        instance = chip.instance(pad_name)
        if any(
            conn.a.instance is instance or conn.b.instance is instance
            for conn in report.made
        ):
            pads_connected += 1
    route_instances = [
        inst for inst in chip.instances if inst.cell.name.startswith("route")
    ]
    return ChipStats(
        mode=mode,
        logic=logic_stats,
        bounding_box=chip.bounding_box(),
        pad_count=len(pad_names),
        pads_connected=pads_connected,
        route_cell_count=len(route_instances),
        connections_made=report.made_count,
        overlaps=len(report.overlapping_instances),
    )
