"""The rough floorplan of figure 7.

"A rough initial floorplan ... showing how the designer wishes to lay
out the design.  This floorplan determines which cells are needed, how
they must connect to one another, and gives an initial guess at
critical paths in the design."

A floorplan here is a set of named regions with the two things the
paper uses it for: checking that placements land where intended, and
enumerating the cells each region needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry.box import Box


@dataclass
class Region:
    name: str
    box: Box
    cells_needed: tuple[str, ...] = ()


@dataclass
class Floorplan:
    """Named, possibly annotated regions of the chip-to-be."""

    name: str
    regions: dict[str, Region] = field(default_factory=dict)

    def add_region(
        self, name: str, box: Box, cells_needed: tuple[str, ...] = ()
    ) -> Region:
        if name in self.regions:
            raise ValueError(f"floorplan already has a region {name!r}")
        region = Region(name, box, cells_needed)
        self.regions[name] = region
        return region

    def region(self, name: str) -> Region:
        try:
            return self.regions[name]
        except KeyError:
            raise KeyError(
                f"floorplan {self.name!r} has no region {name!r}"
            ) from None

    def contains(self, region_name: str, box: Box) -> bool:
        """Does ``box`` land inside the named region?"""
        return self.region(region_name).box.contains_box(box)

    def cells_needed(self) -> set[str]:
        """Every cell any region calls for — the shopping list the
        floorplan hands to leaf-cell design."""
        needed: set[str] = set()
        for region in self.regions.values():
            needed.update(region.cells_needed)
        return needed

    def bounding_box(self) -> Box:
        from repro.geometry.box import union_all

        return union_all(r.box for r in self.regions.values())

    def overlapping_regions(self) -> list[tuple[str, str]]:
        """Region pairs that overlap (a floorplan sanity check)."""
        names = list(self.regions)
        bad = []
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                if self.regions[a].box.overlaps(self.regions[b].box):
                    bad.append((a, b))
        return bad


def filter_floorplan() -> Floorplan:
    """Figure 7: the logical filter's rough floorplan.

    Data flows top to bottom: shift register row, two NAND stages, the
    OR, with pads around the periphery.  Region sizes are generous —
    it is a *rough* floorplan; assembly decides exact positions.
    """
    plan = Floorplan("logical-filter")
    plan.add_region("pads_top", Box(-30000, 40000, 60000, 60000), ("inpad",))
    plan.add_region(
        "sr_row", Box(-2000, 30000, 40000, 38000), ("srcell",)
    )
    plan.add_region(
        "nand_row", Box(-2000, 24000, 40000, 30000), ("nand",)
    )
    plan.add_region(
        "nand2_row", Box(-2000, 18000, 40000, 24000), ("nand",)
    )
    plan.add_region("or_row", Box(-2000, 8000, 40000, 18000), ("or2",))
    plan.add_region(
        "pads_bottom", Box(-30000, -26000, 60000, -5000), ("inpad", "outpad", "p2m")
    )
    plan.add_region(
        "pads_left", Box(-30000, -5000, -3000, 40000), ("inpad", "fit_strap")
    )
    plan.add_region(
        "pads_right", Box(41000, -5000, 60000, 40000), ("outpad", "fit_strap")
    )
    return plan
