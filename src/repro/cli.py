"""Shared CLI wiring for the observability flags.

Every ``python -m repro`` subcommand — the REPL, ``fuzz``, ``serve`` —
accepts the same two flags with the same semantics:

``--trace FILE``
    trace the whole run and write FILE in Chrome trace-event format at
    exit (open it in Perfetto or ``chrome://tracing``).

``--metrics [FILE]``
    bare, print the metrics registry as ``name value`` text to stdout
    at exit; with FILE, write the snapshot as key-sorted JSON instead.

One ``add_obs_flags`` call declares them and one ``obs_from_flags``
context manager wires them, so a subcommand cannot drift from the
others.
"""

from __future__ import annotations

import argparse
import contextlib
import json


def add_obs_flags(parser: argparse.ArgumentParser) -> None:
    """Declare ``--trace`` / ``--metrics`` on ``parser``."""
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="trace the run and write FILE in Chrome trace-event format",
    )
    parser.add_argument(
        "--metrics",
        metavar="FILE",
        nargs="?",
        const="-",
        default=None,
        help=(
            "report the metrics registry at exit: bare, print "
            "'name value' text; with FILE, write a JSON snapshot"
        ),
    )


@contextlib.contextmanager
def obs_from_flags(
    trace_path: str | None, metrics_dest: str | None, *, echo=print
):
    """Run the body under the flags' observability contract.

    Enables process-wide tracing when ``trace_path`` is given (yielding
    the tracer, ``None`` otherwise) and, on the way out — including the
    error path, so a failed run still leaves its trace behind — writes
    the trace file, warns about unclosed spans, and emits the metrics
    report ``--metrics`` asked for.
    """
    from repro.obs import metrics, trace

    tracer = trace.enable(trace.Tracer()) if trace_path else None
    try:
        yield tracer
    finally:
        if tracer is not None:
            import os

            from repro.obs.export import write_chrome

            trace.disable()
            unclosed = tracer.open_count()
            label = trace.process_label_explicit()
            write_chrome(
                trace_path,
                tracer.finished(),
                metrics.export_snapshot(),
                unclosed=unclosed,
                pid=os.getpid() if label is not None else None,
                process_name=label,
            )
            if unclosed:
                echo(f"warning: {unclosed} trace span(s) never closed")
        if metrics_dest == "-":
            echo(metrics.render_snapshot_text(metrics.export_snapshot()))
        elif metrics_dest:
            with open(metrics_dest, "w", encoding="utf-8") as fh:
                json.dump(
                    metrics.export_snapshot(), fh, indent=2, sort_keys=True
                )
                fh.write("\n")
