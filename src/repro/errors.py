"""The root of every structured error the system reports.

Each subsystem keeps its own exception family (``core``, ``cif``,
``sticks``, ``rest``, ``composition``, ``api``, ``service``) but all of
them derive from :class:`ReproError` and carry a stable,
machine-readable ``code`` string.  The code — not the message text — is
the contract: the typed API layer (:mod:`repro.api`) maps exceptions
into error responses by code, wire clients branch on it, and tests pin
it.  Messages remain free-form human prose and may change.

Codes are dotted paths, subsystem first (``riot.command``,
``cif.error``, ``rest.infeasible``, ``service.backpressure``), chosen
once and then kept stable across protocol versions.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class: an operation could not be carried out as requested.

    ``code`` is a class attribute so subclasses declare their code once;
    an instance may override it via the ``code=`` keyword when a single
    class reports distinguishable conditions.
    """

    code: str = "error"

    def __init__(self, message: str = "", *, code: str | None = None):
        super().__init__(message)
        if code is not None:
            self.code = code


def error_code(exc: BaseException) -> str:
    """The stable code for any exception a command may raise.

    :class:`ReproError` subclasses carry their own; the handful of
    builtin exceptions the command surface tolerates (bad lookups, bad
    literals) map to fixed codes; anything else is an internal error —
    a bug, not a user mistake.
    """
    if isinstance(exc, ReproError):
        return exc.code
    if isinstance(exc, KeyError):
        return "args.key"
    if isinstance(exc, ValueError):
        return "args.value"
    return "internal"
