"""``python -m repro floorplan`` — the big-chip workload, end to end.

Generates a seeded synthetic chip at a named size tier, assembles it
through the typed command surface (every placement and connection is
an ordinary journaled command), optionally checks the floorplan
invariants and runs the verification pipeline, and writes the chip's
CIF and/or a JSON report.  The same (seed, tier) pair always produces
byte-identical output — this is the determinism the golden tests and
the scale-regression suite pin.
"""

from __future__ import annotations

import argparse
import json
import sys


def main(argv: list[str] | None = None) -> int:
    from repro.cli import add_obs_flags, obs_from_flags
    from repro.floorplan.assemble import assemble_floorplan
    from repro.floorplan.checks import run_floorplan_checks
    from repro.floorplan.generator import TIERS, gen_floorplan_case
    from repro.floorplan.strategy import STRATEGIES
    from repro.proptest.prng import Rng

    parser = argparse.ArgumentParser(
        prog="repro floorplan",
        description=(
            "Generate a seeded synthetic chip and assemble it with the "
            "paper's abut/route/stretch primitives."
        ),
    )
    parser.add_argument("--seed", type=int, default=0, help="PRNG seed")
    parser.add_argument(
        "--tier",
        choices=sorted(TIERS),
        default="small",
        help="chip size tier",
    )
    parser.add_argument(
        "--strategy",
        choices=sorted(STRATEGIES),
        default=None,
        help="per-edge assembly strategy (default: greedy)",
    )
    parser.add_argument(
        "--out", metavar="FILE", default=None, help="write the chip CIF to FILE"
    )
    parser.add_argument(
        "--report",
        metavar="FILE",
        default=None,
        help="write the assembly report as JSON to FILE ('-' for stdout)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="run the floorplan invariant checks after assembly",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="also run the verification pipeline (implies --check)",
    )
    add_obs_flags(parser)
    args = parser.parse_args(argv)

    with obs_from_flags(args.trace, args.metrics):
        case = gen_floorplan_case(Rng(args.seed), args.tier)
        report = assemble_floorplan(case, strategy=args.strategy)
        stats = report.to_dict()
        print(
            f"assembled {stats['top']} ({stats['tier']}, seed {args.seed}): "
            f"{stats['instances']} instances, {stats['abuts']} abuts / "
            f"{stats['stretches']} stretches / {stats['routes']} routes, "
            f"{stats['route_spills']} spill(s), area {stats['area']}"
        )
        if args.check or args.verify:
            try:
                summary = run_floorplan_checks(report, verify=args.verify)
            except AssertionError as exc:
                print(f"CHECK FAILED: {exc}", file=sys.stderr)
                return 1
            print(
                "checks ok: "
                + ", ".join(f"{k}={v}" for k, v in sorted(summary.items()))
            )
        if args.out:
            from repro.core.convert import composition_to_cif

            chip = report.editor.library.get(report.top)
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(composition_to_cif(chip, report.editor.technology))
            print(f"wrote CIF to {args.out}")
        if args.report == "-":
            json.dump(stats, sys.stdout, indent=2, sort_keys=True)
            print()
        elif args.report:
            with open(args.report, "w", encoding="utf-8") as fh:
                json.dump(stats, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"wrote report to {args.report}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
