"""Floorplan-scale invariant checks.

These re-state the proptest oracles' claims over a whole assembled
chip instead of a two-cell setup: every abutted pair coincides, every
river route is separation-clean and terminates on its connectors,
every stretch hit its targets, the journal strict-replays into an
equivalent editor, and the verification pipeline agrees with itself
warm and cold.  Both ``tests/floorplan`` and the ``floorplan`` fuzz
oracle call them; failures raise plain :class:`AssertionError` so
either harness can wrap them.
"""

from __future__ import annotations

from repro.floorplan.generator import install_palette


def _connector_positions(editor, cell_name, inst_name):
    cell = editor.library.get(cell_name)
    for inst in cell.instances:
        if inst.name == inst_name:
            return {c.name: c.position for c in inst.connectors()}
    raise AssertionError(f"{cell_name}: instance {inst_name!r} vanished")


def check_abut_edges(report) -> int:
    """Every executed abut made all its pairs with no warnings, and the
    paired connectors coincide in the finished geometry."""
    checked = 0
    editor = report.editor
    for edge in report.edges:
        if edge.op != "abut":
            continue
        assert edge.made == edge.pairs, (
            f"{edge.cell}: abut {edge.from_instance}->{edge.to_instance} made "
            f"{edge.made} of {edge.pairs} pairs"
        )
        assert not edge.warnings, (
            f"{edge.cell}: abut {edge.from_instance}->{edge.to_instance} "
            f"warned: {edge.warnings}"
        )
        checked += 1
    # Spot geometry: paired connectors of abutted slice chains coincide.
    for edge in report.edges:
        if edge.op != "abut" or edge.scope != "row":
            continue
        from_pos = _connector_positions(editor, edge.cell, edge.from_instance)
        to_pos = _connector_positions(editor, edge.cell, edge.to_instance)
        shared = [
            name
            for name in from_pos
            if name.startswith("L") and name.replace("L", "R", 1) in to_pos
        ]
        assert shared, f"{edge.cell}: abutted pair shares no lanes"
        for name in shared:
            other = name.replace("L", "R", 1)
            assert from_pos[name] == to_pos[other], (
                f"{edge.cell}: {edge.from_instance}.{name} at {from_pos[name]} "
                f"!= {edge.to_instance}.{other} at {to_pos[other]}"
            )
    return checked


def check_stretch_edges(report) -> int:
    """Every stretch produced a new cell, rebound the instance, and its
    follow-up abutment made every pair silently."""
    editor = report.editor
    checked = 0
    for edge in report.edges:
        if edge.op != "stretch":
            continue
        assert not edge.warnings, (
            f"{edge.cell}: stretch {edge.from_instance} warned: {edge.warnings}"
        )
        assert edge.stretch_new and edge.stretch_new in editor.library, (
            f"{edge.cell}: stretched cell {edge.stretch_new!r} not in library"
        )
        cell = editor.library.get(edge.cell)
        inst = next(
            i for i in cell.instances if i.name == edge.from_instance
        )
        assert inst.cell.name == edge.stretch_new, (
            f"{edge.cell}: {edge.from_instance} still bound to "
            f"{inst.cell.name!r}, expected {edge.stretch_new!r}"
        )
        checked += 1
    return checked


def _segments(points):
    return list(zip(points, points[1:]))


def _seg_touch(a, b) -> bool:
    """Axis-aligned closed segments share a point (centreline meet)."""
    (a1, a2), (b1, b2) = a, b
    ax_lo, ax_hi = sorted((a1.x, a2.x))
    ay_lo, ay_hi = sorted((a1.y, a2.y))
    bx_lo, bx_hi = sorted((b1.x, b2.x))
    by_lo, by_hi = sorted((b1.y, b2.y))
    return (
        ax_lo <= bx_hi
        and bx_lo <= ax_hi
        and ay_lo <= by_hi
        and by_lo <= ay_hi
    )


def check_route_edges(report) -> int:
    """Every route cell's solved wires terminate on the route cell's
    own connectors and distinct same-layer centrelines never meet —
    the river oracle's claim, read back from the built geometry."""
    editor = report.editor
    checked = 0
    for edge in report.edges:
        if edge.op != "route" or edge.route_cell is None:
            continue
        cell = editor.library.get(edge.route_cell)
        sticks = cell.sticks_cell
        pin_points = {pin.point for pin in sticks.pins}
        by_layer: dict[str, list] = {}
        for wire in sticks.wires:
            assert wire.points[0] in pin_points or wire.points[-1] in pin_points, (
                f"{edge.route_cell}: wire does not terminate on a connector"
            )
            by_layer.setdefault(wire.layer, []).append(wire)
        total = sum(len(group) for group in by_layer.values())
        assert total == edge.made, (
            f"{edge.route_cell}: {total} wires, command reported {edge.made}"
        )
        for group in by_layer.values():
            for i, a in enumerate(group):
                for b in group[i + 1 :]:
                    crossed = any(
                        _seg_touch(sa, sb)
                        for sa in _segments(a.points)
                        for sb in _segments(b.points)
                    )
                    assert not crossed, (
                        f"{edge.route_cell}: same-layer wires meet"
                    )
        checked += 1
    return checked


def check_no_overlaps(report) -> int:
    """Sibling instances never overlap (interiors open — touching is
    the whole point of abutment)."""
    editor = report.editor
    checked = 0
    for cell_name in [*report.blocks, report.top]:
        cell = editor.library.get(cell_name)
        boxes = [(inst.name, inst.bounding_box()) for inst in cell.instances]
        for i, (name_a, box_a) in enumerate(boxes):
            for name_b, box_b in boxes[i + 1 :]:
                assert not box_a.overlaps(box_b), (
                    f"{cell_name}: {name_a} {box_a} overlaps {name_b} {box_b}"
                )
        checked += 1
    return checked


def check_wal_replay(report) -> None:
    """The session journal strict-replays against a fresh editor with
    the same palette into an equivalent session."""
    from repro.core.editor import RiotEditor
    from repro.proptest.gen import describe_editor

    editor = report.editor
    fresh = RiotEditor(tracks_per_channel=editor.tracks_per_channel)
    install_palette(fresh.library, report.case)
    fresh.replay_from(editor.journal.to_text())
    before = describe_editor(editor)
    after = describe_editor(fresh)
    assert before == after, "strict WAL replay diverged from the live session"


def check_verify_pipeline(report, *, jobs: int = 1) -> dict:
    """The verification pipeline runs clean over the assembled chip:
    geometry expands, DRC passes, and a warm cache agrees with a cold
    one.  Returns the violation counts per cell."""
    import tempfile

    from repro.pipeline import run_verification

    editor = report.editor
    cells = [editor.library.get(name) for name in [*report.blocks, report.top]]
    with tempfile.TemporaryDirectory(prefix="floorplan-verify-") as tmp:
        cold = run_verification(cells, editor.technology, jobs=jobs, cache=tmp)
        warm = run_verification(cells, editor.technology, jobs=jobs, cache=tmp)
    assert {n: r.summary() for n, r in cold.reports.items()} == {
        n: r.summary() for n, r in warm.reports.items()
    }, "warm verification disagrees with cold"
    return {
        name: len(rep.drc.violations) for name, rep in cold.reports.items()
    }


def run_floorplan_checks(report, *, verify: bool = False) -> dict:
    """Run every floorplan invariant; returns a coverage summary."""
    summary = {
        "abuts": check_abut_edges(report),
        "stretches": check_stretch_edges(report),
        "routes": check_route_edges(report),
        "cells": check_no_overlaps(report),
    }
    check_wal_replay(report)
    if verify:
        summary["verified"] = len(check_verify_pipeline(report))
    return summary
