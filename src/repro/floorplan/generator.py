"""Seeded synthetic chip generation, parameterized by size tier.

A floorplan *case* is a plain JSON-able dict (the ``proptest``
convention): every coordinate and palette choice is drawn from
SplitMix64 substreams of one seed, so the same (seed, tier) pair
always describes byte-for-byte the same chip.

The chip's shape follows the paper's assembly vocabulary:

* **datapath blocks** — grids of two-sided bit slices chained left to
  right; neighbouring slices share lane layers but may differ in lane
  pitch, which is exactly what makes the abut/stretch/route choice
  interesting;
* **channel hierarchies** — blocks are arranged in a chip-level grid
  and connected across vertical routing channels;
* **pad ring** — bond pads around the perimeter, strapped to the
  outermost blocks with fixed-height river routes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.composition.cell import LeafCell
from repro.proptest.gen import (
    SLICE_PITCHES,
    build_pad_cell,
    build_slice_cell,
    gen_lane_layers,
    gen_pad_case,
    gen_slice_case,
)
from repro.proptest.prng import Rng

PAD_SIDES = ("left", "right", "top", "bottom")

#: Which way a pad on each ring side faces (toward the core).
PAD_FACING = {"left": "right", "right": "left", "top": "bottom", "bottom": "top"}


@dataclass(frozen=True)
class Tier:
    """One size tier of the synthetic-chip corpus."""

    name: str
    grid: tuple[int, int]  #: chip grid of blocks: (columns, rows)
    block_rows: int  #: slice rows per block
    block_cols: int  #: slices per row
    lanes: tuple[int, int]  #: lanes per chip row, drawn from this range
    palette: int  #: slice palette size per chip row
    pads_per_side: int

    @property
    def slice_instances(self) -> int:
        cols, rows = self.grid
        return cols * rows * self.block_rows * self.block_cols


TIERS: dict[str, Tier] = {
    "small": Tier("small", (2, 1), 2, 4, (2, 3), 2, 3),
    "medium": Tier("medium", (3, 2), 4, 10, (2, 5), 3, 8),
    "large": Tier("large", (4, 3), 6, 14, (3, 6), 3, 12),
    "xl": Tier("xl", (6, 3), 8, 14, (4, 7), 3, 16),
}


def resolve_tier(tier: str | Tier) -> Tier:
    if isinstance(tier, Tier):
        return tier
    try:
        return TIERS[tier]
    except KeyError:
        raise ValueError(
            f"unknown floorplan tier {tier!r} (have {', '.join(sorted(TIERS))})"
        ) from None


def gen_floorplan_case(rng: Rng, tier: str | Tier = "small") -> dict:
    """Generate one chip description for ``tier`` from ``rng``.

    Lane count and lane layers are per *chip row* (a datapath spans
    the chip horizontally, so blocks that face each other across a
    channel share a bus shape); slice pitch and width vary per palette
    member, so some slice edges abut exactly, some stretch, and the
    rest route.
    """
    spec = resolve_tier(tier)
    grid_cols, grid_rows = spec.grid
    lam = 250
    case: dict = {
        "tier": spec.name,
        "lambda": lam,
        # Narrow channels make the biggest routes overflow into extra
        # channels — the river overflow rate the benchmark tracks.
        "tracks_per_channel": rng.fork(f"tracks_{spec.name}").randint(1, 2),
        "grid": [grid_cols, grid_rows],
        "block_rows": spec.block_rows,
        "block_cols": spec.block_cols,
        "chip_rows": [],
        "blocks": [],
        "pads": {},
        # Assembly clearances, in lambda.  "row" and "chip_row" budget
        # for the river router's median-offset slide: ROUTE with
        # move_from recenters the from instance along the channel axis,
        # so routed slices drift vertically within a bounded envelope
        # and the strips must absorb it.
        "gaps": {"slice": 25, "row": 24, "block": 60, "chip_row": 80, "pad": 30},
    }
    for r in range(grid_rows):
        row_rng = rng.fork(f"chiprow{r}")
        lanes = row_rng.fork("lanes").randint(*spec.lanes)
        lane_layers = gen_lane_layers(row_rng.fork("layers"), lanes)
        palette = []
        for k in range(spec.palette):
            member = row_rng.fork(f"palette{k}")
            palette.append(
                gen_slice_case(
                    member,
                    f"sl_r{r}_{k}",
                    lane_layers,
                    member.fork("pitch").choice(SLICE_PITCHES),
                )
            )
        case["chip_rows"].append(
            {"lanes": lanes, "lane_layers": lane_layers, "palette": palette}
        )
    for r in range(grid_rows):
        for c in range(grid_cols):
            block_rng = rng.fork(f"block{r}_{c}")
            slices = [
                [
                    block_rng.fork(f"pick{br}_{bc}").randint(0, spec.palette - 1)
                    for bc in range(spec.block_cols)
                ]
                for br in range(spec.block_rows)
            ]
            case["blocks"].append(
                {"name": f"blk_r{r}c{c}", "row": r, "col": c, "slices": slices}
            )
    for side in PAD_SIDES:
        pads = []
        for i in range(spec.pads_per_side):
            pads.append(
                gen_pad_case(
                    rng.fork(f"pad_{side}{i}"), f"pad_{side}{i}", PAD_FACING[side]
                )
            )
        case["pads"][side] = pads
    return case


def palette_cells(case: dict) -> list:
    """All leaf :class:`SticksCell`s the case needs, in a fixed order."""
    cells = []
    for chip_row in case.get("chip_rows", []):
        for member in chip_row.get("palette", []):
            cells.append(build_slice_cell(member))
    for side in PAD_SIDES:
        for pad in case.get("pads", {}).get(side, []):
            cells.append(build_pad_cell(pad))
    return cells


def install_palette(library, case: dict) -> list[str]:
    """Materialise the case's leaf palette into ``library``.

    Both the assembler and a WAL replay of an assembled session call
    this, so a replayed editor starts from the identical cell menu.
    A same-named cell already in the library is replaced (rebinding
    its instances) — the cell-redefinition semantics the paper's
    REPLAY exists for — so re-running a build in a live session works.
    """
    names = []
    for sticks in palette_cells(case):
        leaf = LeafCell.from_sticks(sticks, library.technology)
        if leaf.name in library:
            library.replace(leaf.name, leaf)
        else:
            library.add(leaf)
        names.append(sticks.name)
    return names
