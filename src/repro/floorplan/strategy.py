"""The abut-vs-stretch-vs-route decision seam.

The assembler scores each edge's three candidate primitives
*geometrically* — feasibility must be decided before dispatching,
because the connection commands clear the pending list even on
failure — and hands an :class:`EdgeContext` to a strategy.  The
default :class:`GreedyStrategy` minimises estimated area plus
weighted wirelength; the registry keeps the seam pluggable so a
search strategy (Bayesian optimisation over placements, simulated
annealing, ...) can drop in later without touching the driver.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Candidate primitives, in preference order for cost ties: abutment
#: is free, stretching grows one cell, routing adds a channel cell.
OPS = ("abut", "stretch", "route")


@dataclass(frozen=True)
class OpOption:
    """One candidate primitive for an edge, with its estimated cost."""

    op: str
    feasible: bool
    area: float = 0.0  #: centimicrons^2 the op is estimated to add
    wirelength: float = 0.0  #: centimicrons of new wire
    reason: str = ""  #: why infeasible (empty when feasible)


@dataclass(frozen=True)
class EdgeContext:
    """Everything a strategy may consider for one edge."""

    scope: str  #: "row" (slice chain), "block" (chip channel), "pad"
    cell: str  #: composition cell under edit
    from_instance: str
    to_instance: str
    pairs: int  #: matched connector pairs across the edge
    options: tuple[OpOption, ...] = field(default_factory=tuple)

    def option(self, op: str) -> OpOption:
        for candidate in self.options:
            if candidate.op == op:
                return candidate
        raise KeyError(op)


class AssemblyStrategy:
    """Chooses one primitive per edge.  Subclass and register."""

    name = "base"

    def choose(self, edge: EdgeContext) -> str:
        raise NotImplementedError


class GreedyStrategy(AssemblyStrategy):
    """Minimise ``area + alpha * wirelength`` over the feasible ops.

    Ties break toward the cheaper primitive class (abut, then
    stretch, then route) — the paper's own bias: connect by geometry
    when you can, add wire only when you must.
    """

    name = "greedy"

    def __init__(self, alpha: float = 1.0) -> None:
        self.alpha = alpha

    def choose(self, edge: EdgeContext) -> str:
        feasible = [o for o in edge.options if o.feasible]
        if not feasible:
            raise ValueError(
                f"edge {edge.from_instance}->{edge.to_instance} has no feasible op"
            )
        best = min(
            feasible,
            key=lambda o: (o.area + self.alpha * o.wirelength, OPS.index(o.op)),
        )
        return best.op


class RouteOnlyStrategy(AssemblyStrategy):
    """Always route (the maximally conservative plan): every edge
    becomes a river channel.  Exists to prove the seam is pluggable
    and as the worst-case area baseline in tests."""

    name = "route-only"

    def choose(self, edge: EdgeContext) -> str:
        option = edge.option("route")
        if option.feasible:
            return "route"
        return GreedyStrategy().choose(edge)


STRATEGIES: dict[str, type[AssemblyStrategy]] = {}


def register_strategy(cls: type[AssemblyStrategy]) -> type[AssemblyStrategy]:
    STRATEGIES[cls.name] = cls
    return cls


register_strategy(GreedyStrategy)
register_strategy(RouteOnlyStrategy)


def make_strategy(name: str | AssemblyStrategy | None) -> AssemblyStrategy:
    if name is None:
        return GreedyStrategy()
    if isinstance(name, AssemblyStrategy):
        return name
    try:
        return STRATEGIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown assembly strategy {name!r} (have {', '.join(sorted(STRATEGIES))})"
        ) from None
