"""The big-floorplan workload: a seeded synthetic chip generator plus
a global batch assembly driver built on the paper's three primitives
(ABUT / river ROUTE / STRETCH).

``gen_floorplan_case`` emits a JSON-able description of a
multi-thousand-instance chip — datapath blocks of two-sided bit
slices, arranged in a grid with routing channels between them, ringed
by bond pads — and ``assemble_floorplan`` drives the typed command API
to place and connect it, choosing abut-vs-stretch-vs-route per edge
through a pluggable :class:`AssemblyStrategy`.
"""

from repro.floorplan.assemble import FloorplanReport, assemble_floorplan
from repro.floorplan.checks import run_floorplan_checks
from repro.floorplan.generator import (
    TIERS,
    Tier,
    gen_floorplan_case,
    install_palette,
)
from repro.floorplan.strategy import (
    STRATEGIES,
    AssemblyStrategy,
    GreedyStrategy,
    RouteOnlyStrategy,
    make_strategy,
)

__all__ = [
    "TIERS",
    "Tier",
    "gen_floorplan_case",
    "install_palette",
    "assemble_floorplan",
    "FloorplanReport",
    "run_floorplan_checks",
    "AssemblyStrategy",
    "GreedyStrategy",
    "RouteOnlyStrategy",
    "STRATEGIES",
    "make_strategy",
]
