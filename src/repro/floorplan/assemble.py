"""The global batch assembly driver.

Everything goes through the typed command API (``Session.dispatch``),
so an assembled floorplan is an ordinary editor session: it journals,
replays, publishes, and fuzzes like a hand-driven one.  Per edge the
driver scores the three primitives geometrically — the connection
commands clear the pending list even on failure, so feasibility is
decided *before* dispatching — and a pluggable
:class:`~repro.floorplan.strategy.AssemblyStrategy` picks one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api import types as t
from repro.floorplan.generator import install_palette, resolve_tier
from repro.floorplan.strategy import EdgeContext, OpOption, make_strategy
from repro.obs import metrics, trace

#: Cost-model constants (in lambda): estimated river track pitch and
#: entry margin.  These only rank options; the router decides reality.
_TRACK_PITCH_LAM = 4
_ENTRY_MARGIN_LAM = 4

_OPPOSITE = {"left": "right", "right": "left", "top": "bottom", "bottom": "top"}


@dataclass
class EdgeRecord:
    """One executed edge, as the scale-regression checks replay it."""

    scope: str
    cell: str
    op: str
    from_instance: str
    to_instance: str
    pairs: int
    made: int = 0
    warnings: tuple[str, ...] = ()
    route_cell: str | None = None
    route_instance: str | None = None
    channels: int = 0
    height: int = 0
    stretch_old: str | None = None
    stretch_new: str | None = None
    fallback: bool = False


@dataclass
class FloorplanReport:
    """What one assembly produced: live handles plus JSON-able counts."""

    case: dict
    top: str
    session: object
    edges: list[EdgeRecord] = field(default_factory=list)
    blocks: list[str] = field(default_factory=list)
    pads_placed: int = 0
    pads_connected: int = 0
    fallbacks: int = 0

    @property
    def editor(self):
        return self.session.editor

    def edge_count(self, op: str) -> int:
        return sum(1 for e in self.edges if e.op == op)

    @property
    def instances(self) -> int:
        """Placed instances across this build's composition cells
        (array elements counted individually)."""
        library = self.editor.library
        return sum(
            inst.nx * inst.ny
            for name in [*self.blocks, self.top]
            for inst in library.get(name).instances
        )

    @property
    def route_channels(self) -> int:
        return sum(e.channels for e in self.edges if e.op == "route")

    @property
    def route_spills(self) -> int:
        """Routes that overflowed one channel — the river overflow rate's
        numerator."""
        return sum(1 for e in self.edges if e.op == "route" and e.channels > 1)

    @property
    def wirelength(self) -> int:
        """Total routed wire, measured from the solved route cells'
        sticks geometry (exact, not the planning estimate)."""
        total = 0
        for edge in self.edges:
            if edge.route_cell is None:
                continue
            cell = self.editor.library.get(edge.route_cell)
            for wire in cell.sticks_cell.wires:
                for p1, p2 in zip(wire.points, wire.points[1:]):
                    total += abs(p2.x - p1.x) + abs(p2.y - p1.y)
        return total

    def chip_box(self):
        return self.editor.library.get(self.top).bounding_box()

    def to_dict(self) -> dict:
        box = self.chip_box()
        routes = self.edge_count("route")
        return {
            "tier": self.case.get("tier"),
            "top": self.top,
            "instances": self.instances,
            "cells": len(self.editor.library.names),
            "blocks": len(self.blocks),
            "edges": len(self.edges),
            "abuts": self.edge_count("abut"),
            "stretches": self.edge_count("stretch"),
            "routes": routes,
            "route_channels": self.route_channels,
            "route_spills": self.route_spills,
            "overflow_rate": round(self.route_spills / routes, 4) if routes else 0.0,
            "wirelength": self.wirelength,
            "width": box.width,
            "height": box.height,
            "area": box.width * box.height,
            "pads_placed": self.pads_placed,
            "pads_connected": self.pads_connected,
            "fallbacks": self.fallbacks,
            "commands": len(self.editor.journal.entries),
        }


def assemble_floorplan(case: dict, *, session=None, strategy=None) -> FloorplanReport:
    """Place and connect ``case``'s chip; returns the report."""
    return _Assembler(case, session=session, strategy=strategy).run()


class _Assembler:
    def __init__(self, case: dict, *, session=None, strategy=None) -> None:
        if session is None:
            from repro.api.session import Session

            session = Session()
        self.case = case
        self.session = session
        self.editor = session.editor
        self.strategy = make_strategy(strategy)
        self.lam = int(case.get("lambda", 250))
        self.gaps = {k: int(v) * self.lam for k, v in case.get("gaps", {}).items()}
        self.spec = resolve_tier(case["tier"])
        # Composition names are allocated per build, so a second build
        # in the same session (a different seed, say) never collides
        # with the first chip's cells.
        library = self.editor.library
        self._block_names = {
            block["name"]: library.unique_name(block["name"])
            for block in case.get("blocks", [])
        }
        self.report = FloorplanReport(
            case=case, top=library.unique_name("chip"), session=session
        )

    # -- plumbing ---------------------------------------------------------

    def _do(self, request):
        return self.session.dispatch(request)

    def _instance(self, name: str):
        for inst in self.editor.cell.instances:
            if inst.name == name:
                return inst
        raise KeyError(f"no instance {name!r} in {self.editor.cell.name!r}")

    def _row_pitch(self, chip_row: dict) -> int:
        """Vertical strip height one slice row occupies inside a block:
        tall enough for the deepest palette member plus clearance."""
        tallest = max(
            (len(m["lanes"]) + 1) * int(m["pitch"])
            for m in chip_row["palette"]
        )
        return tallest + self.gaps["row"]

    # -- edge scoring -----------------------------------------------------

    def _match_pairs(self, from_conns, to_conns, tolerance: int):
        """Greedy monotone matching of facing connectors by position.

        Both lists arrive sorted by the channel coordinate; matched
        pairs are monotone in both, which is exactly the river
        router's planarity precondition.
        """
        pairs = []
        i = j = 0
        while i < len(from_conns) and j < len(to_conns):
            fc, tc = from_conns[i], to_conns[j]
            fu, tu = self._u(fc.position), self._u(tc.position)
            if abs(fu - tu) <= tolerance and fc.layer.name == tc.layer.name:
                pairs.append((fc, tc))
                i += 1
                j += 1
            elif fu <= tu:
                i += 1
            else:
                j += 1
        return pairs

    @staticmethod
    def _u(position):
        """Channel coordinate for a vertical seam (to-side left/right)."""
        return position.y

    def _options(self, scope, from_inst, pairs):
        lam = self.lam
        deltas = [
            (tc.position.x - fc.position.x, tc.position.y - fc.position.y)
            for fc, tc in pairs
        ]
        # A feasible abut needs one uniform translation — and, across a
        # vertical seam, a *purely horizontal* one: a dy component would
        # drift the chain out of its row strip, and over a long chain
        # the drift compounds into the neighbouring row.
        abut_ok = (
            scope != "pad"
            and bool(deltas)
            and all(d == deltas[0] for d in deltas)
            and deltas[0][1] == 0
        )
        abut = OpOption("abut", abut_ok, reason="" if abut_ok else "pitch mismatch")

        stretch_ok, stretch_area, reason = False, 0.0, "not a slice chain"
        if scope == "row" and not abut_ok and len(pairs) >= 2:
            cell = from_inst.cell
            if not (cell.is_leaf and cell.is_stretchable and not from_inst.is_array):
                reason = "from-cell not stretchable"
            else:
                from_u = [self._u(fc.position) for fc, _ in pairs]
                to_u = [self._u(tc.position) for _, tc in pairs]
                cur_gaps = [b - a for a, b in zip(from_u, from_u[1:])]
                new_gaps = [b - a for a, b in zip(to_u, to_u[1:])]
                if all(n >= c for n, c in zip(new_gaps, cur_gaps)):
                    stretch_ok = True
                    grow = (to_u[-1] - to_u[0]) - (from_u[-1] - from_u[0])
                    stretch_area = from_inst.bounding_box().width * grow
                else:
                    reason = "targets would shrink a pin gap"
        stretch = OpOption(
            "stretch", stretch_ok, area=stretch_area, reason="" if stretch_ok else reason
        )

        route_ok = bool(pairs)
        route_area = route_wl = 0.0
        if route_ok:
            from_u = [self._u(fc.position) for fc, _ in pairs]
            to_u = [self._u(tc.position) for _, tc in pairs]
            jogs = sum(1 for f, u in zip(from_u, to_u) if f != u)
            height = (jogs + 2) * _TRACK_PITCH_LAM * lam
            span = (
                max(max(from_u), max(to_u))
                - min(min(from_u), min(to_u))
                + 2 * _ENTRY_MARGIN_LAM * lam
            )
            route_area = float(height * span)
            route_wl = float(
                sum(abs(f - u) for f, u in zip(from_u, to_u)) + len(pairs) * height
            )
        route = OpOption(
            "route",
            route_ok,
            area=route_area,
            wirelength=route_wl,
            reason="" if route_ok else "no facing connector pairs",
        )
        return (abut, stretch, route)

    # -- edge execution ---------------------------------------------------

    def _connect_edge(self, scope, from_name, to_name, tolerance) -> EdgeRecord | None:
        """Score, choose, and execute one edge.  Returns None when the
        instances share no facing connectors (placement-only edge)."""
        from_inst = self._instance(from_name)
        to_inst = self._instance(to_name)
        to_side = "right" if from_inst.bounding_box().llx >= to_inst.bounding_box().llx else "left"
        from_conns = sorted(
            from_inst.connectors_on_side(_OPPOSITE[to_side]),
            key=lambda c: self._u(c.position),
        )
        to_conns = sorted(
            to_inst.connectors_on_side(to_side), key=lambda c: self._u(c.position)
        )
        pairs = self._match_pairs(from_conns, to_conns, tolerance)
        if not pairs:
            return None
        options = self._options(scope, from_inst, pairs)
        edge = EdgeContext(
            scope=scope,
            cell=self.editor.cell.name,
            from_instance=from_name,
            to_instance=to_name,
            pairs=len(pairs),
            options=options,
        )
        op = self.strategy.choose(edge)
        record = self._execute(scope, op, from_name, to_name, pairs)
        if record is None:
            # The chosen primitive was refused at solve time (the
            # geometric precheck is an estimate, not the solver): the
            # rollback restored placement, the pending list is clear —
            # fall back to a route, which is always solvable on a
            # monotone pair set.
            metrics.counter("floorplan.fallbacks").inc()
            self.report.fallbacks += 1
            record = self._execute(scope, "route", from_name, to_name, pairs)
            if record is None:
                raise RuntimeError(
                    f"edge {from_name}->{to_name}: route fallback failed"
                )
            record.fallback = True
        self.report.edges.append(record)
        return record

    def _execute(self, scope, op, from_name, to_name, pairs) -> EdgeRecord | None:
        from repro.errors import ReproError

        for fc, tc in pairs:
            self._do(
                t.ConnectRequest(
                    from_instance=from_name,
                    from_connector=fc.name,
                    to_instance=to_name,
                    to_connector=tc.name,
                )
            )
        record = EdgeRecord(
            scope=scope,
            cell=self.editor.cell.name,
            op=op,
            from_instance=from_name,
            to_instance=to_name,
            pairs=len(pairs),
        )
        try:
            if op == "abut":
                result = self._do(t.AbutRequest())
                record.made, record.warnings = result.made, result.warnings
            elif op == "stretch":
                result = self._do(t.StretchRequest())
                record.stretch_old = result.old_cell
                record.stretch_new = result.new_cell
                record.warnings = result.warnings
                record.made = len(pairs)
            else:
                result = self._do(t.RouteRequest(move_from=(scope != "pad")))
                record.route_cell = result.route_cell
                record.route_instance = result.instance
                record.channels = result.channels
                record.height = result.height
                record.made = result.wires
        except ReproError:
            return None
        plural = {"abut": "abuts", "stretch": "stretches", "route": "routes"}
        metrics.counter(f"floorplan.{plural[op]}").inc()
        return record

    # -- assembly phases --------------------------------------------------

    def _assemble_block(self, block: dict) -> None:
        chip_row = self.case["chip_rows"][block["row"]]
        palette = chip_row["palette"]
        row_pitch = self._row_pitch(chip_row)
        tolerance = row_pitch // 2
        name = self._block_names[block["name"]]
        with trace.span("floorplan.block", block=name):
            self._do(t.NewCellRequest(name=name))
            for br, row in enumerate(block["slices"]):
                y = br * row_pitch
                prev = None
                for bc, pick in enumerate(row):
                    member = palette[pick]
                    inst = f"r{br}c{bc}"
                    if prev is None:
                        at = (0, y)
                    else:
                        box = self._instance(prev).bounding_box()
                        at = (box.urx + self.gaps["slice"], y)
                    self._do(
                        t.CreateRequest(at=at, cell_name=member["name"], name=inst)
                    )
                    if prev is not None:
                        self._connect_edge("row", inst, prev, tolerance)
                    prev = inst
            self._do(t.FinishRequest())
        self.report.blocks.append(name)

    def _assemble_top(self) -> None:
        grid_cols, grid_rows = self.case["grid"]
        self._do(t.NewCellRequest(name=self.report.top))
        y = 0
        for r in range(grid_rows):
            chip_row = self.case["chip_rows"][r]
            row_pitch = self._row_pitch(chip_row)
            tolerance = row_pitch // 2
            prev = None
            for c in range(grid_cols):
                block = self.case["blocks"][r * grid_cols + c]
                inst = f"b_r{r}c{c}"
                if prev is None:
                    at = (0, y)
                else:
                    box = self._instance(prev).bounding_box()
                    at = (box.urx + self.gaps["block"], y)
                self._do(
                    t.CreateRequest(
                        at=at, cell_name=self._block_names[block["name"]], name=inst
                    )
                )
                if prev is not None:
                    self._connect_edge("block", inst, prev, tolerance)
                prev = inst
            y += self.spec.block_rows * row_pitch + self.gaps["chip_row"]

    def _pad_targets(self, side: str):
        """Spacing-filtered strap targets on the chip's ``side`` edge:
        metal connectors of the outermost block column, bottom to top,
        far enough apart that pads placed on them cannot overlap."""
        grid_cols, grid_rows = self.case["grid"]
        col = 0 if side == "left" else grid_cols - 1
        conns = []
        for r in range(grid_rows):
            inst = self._instance(f"b_r{r}c{col}")
            conns.extend(
                c for c in inst.connectors_on_side(side) if c.layer.name == "metal"
            )
        conns.sort(key=lambda c: c.position.y)
        max_pad = max(
            (int(p["size"]) for p in self.case["pads"][side]), default=0
        )
        spacing = max_pad + 2 * self.lam
        targets, last_y = [], None
        for conn in conns:
            if last_y is None or conn.position.y - last_y >= spacing:
                targets.append(conn)
                last_y = conn.position.y
        return targets

    def _place_pads(self) -> None:
        box = self.report.chip_box()
        pad_gap = self.gaps["pad"]
        ring_y = {"top": box.ury + pad_gap, "bottom": None}
        for side in ("left", "right"):
            pads = self.case["pads"][side]
            targets = self._pad_targets(side)
            overflow_at = box.ury + pad_gap  # park unstrapped pads above
            for i, pad in enumerate(pads):
                size = int(pad["size"])
                inst = pad["name"]
                if i < len(targets):
                    target = targets[i]
                    x = (
                        target.position.x - pad_gap - size
                        if side == "left"
                        else target.position.x + pad_gap
                    )
                    at = (x, target.position.y - size // 2)
                    self._do(t.CreateRequest(at=at, cell_name=pad["name"], name=inst))
                    self._do(
                        t.ConnectRequest(
                            from_instance=inst,
                            from_connector="PAD",
                            to_instance=target.instance.name,
                            to_connector=target.name,
                        )
                    )
                    record = self._execute("pad", "route", inst, target.instance.name, [])
                    if record is not None:
                        record.pairs = record.made
                        self.report.edges.append(record)
                        self.report.pads_connected += 1
                else:
                    x = box.llx - pad_gap - size if side == "left" else box.urx + pad_gap
                    self._do(
                        t.CreateRequest(
                            at=(x, overflow_at), cell_name=pad["name"], name=inst
                        )
                    )
                    overflow_at += size + 2 * self.lam
                self.report.pads_placed += 1
        for side in ("top", "bottom"):
            pads = self.case["pads"][side]
            x = box.llx
            for pad in pads:
                size = int(pad["size"])
                y = ring_y["top"] if side == "top" else box.lly - pad_gap - size
                self._do(
                    t.CreateRequest(
                        at=(x, y), cell_name=pad["name"], name=pad["name"]
                    )
                )
                x += size + 4 * self.lam
                self.report.pads_placed += 1

    def run(self) -> FloorplanReport:
        case = self.case
        with trace.span(
            "floorplan.assemble",
            tier=str(case.get("tier")),
            slices=self.spec.slice_instances,
        ):
            install_palette(self.editor.library, case)
            if "tracks_per_channel" in case:
                self._do(t.SetTracksRequest(tracks=int(case["tracks_per_channel"])))
            for block in case["blocks"]:
                self._assemble_block(block)
            with trace.span("floorplan.top"):
                self._assemble_top()
                self._place_pads()
                self._do(t.FinishRequest())
        metrics.counter("floorplan.assemblies").inc()
        return self.report
