"""CIF error type carrying source position."""

from __future__ import annotations

from repro.errors import ReproError


class CifError(ReproError):
    """A syntax or semantic error in a CIF stream.

    ``line`` and ``column`` are 1-based positions into the source text
    when known; semantic errors raised after parsing may omit them.
    """

    code = "cif.error"

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"line {line}, column {column}: {message}"
        super().__init__(message)
