"""Caltech Intermediate Form (substrate S2).

CIF 2.0 as specified by Sproull & Lyon in *Introduction to VLSI
Systems* (1980) — the geometrical interchange format all Caltech tools
of the Riot era spoke.  Riot reads CIF leaf cells (pads, PLA output,
Bristle Blocks output) and writes CIF for mask generation.

The paper notes: "A user extension was added to CIF to indicate
connector locations so that Riot's logical connection operations could
be performed on CIF cells."  We adopt the MOSIS-style user commands:

* ``9 name;``                     — names the enclosing symbol;
* ``94 name x y layer width;``    — declares a connector.
"""

from repro.cif.errors import CifError
from repro.cif.nodes import (
    BoxCommand,
    CallCommand,
    CifFile,
    DeleteCommand,
    LayerCommand,
    PolygonCommand,
    RoundFlashCommand,
    SymbolDefinition,
    UserCommand,
    WireCommand,
)
from repro.cif.parser import parse_cif
from repro.cif.semantics import CifCell, CifConnector, elaborate
from repro.cif.writer import write_cif

__all__ = [
    "CifError",
    "CifFile",
    "SymbolDefinition",
    "BoxCommand",
    "PolygonCommand",
    "WireCommand",
    "RoundFlashCommand",
    "LayerCommand",
    "CallCommand",
    "UserCommand",
    "DeleteCommand",
    "parse_cif",
    "elaborate",
    "CifCell",
    "CifConnector",
    "write_cif",
]
