"""Recursive-descent parser for CIF 2.0.

CIF's lexical structure is unusual: *anything* that is not an upper
case letter, digit, ``-``, ``(``, ``)`` or ``;`` is blank (lower case
letters included), and comments are nestable parenthesised text that
may appear wherever blanks may.  Each command is identified by its
first significant character and terminated by ``;``.
"""

from __future__ import annotations

from repro.cif.errors import CifError
from repro.cif.nodes import (
    BoxCommand,
    CallCommand,
    CifFile,
    Command,
    DeleteCommand,
    LayerCommand,
    PolygonCommand,
    RoundFlashCommand,
    SymbolDefinition,
    TransformElement,
    UserCommand,
    WireCommand,
)
from repro.geometry.point import Point

_UPPER = set("ABCDEFGHIJKLMNOPQRSTUVWXYZ")
_DIGITS = set("0123456789")
_SIGNIFICANT = _UPPER | _DIGITS | set("-();")


class _Scanner:
    """Character scanner with CIF's blank/comment rules."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.line = 1
        self.column = 1

    def error(self, message: str) -> CifError:
        return CifError(message, self.line, self.column)

    def _advance(self) -> str:
        ch = self.text[self.pos]
        self.pos += 1
        if ch == "\n":
            self.line += 1
            self.column = 1
        else:
            self.column += 1
        return ch

    def at_end(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def skip_blanks(self) -> None:
        """Skip blanks and (nested) comments."""
        while not self.at_end():
            ch = self.peek()
            if ch == "(":
                self._skip_comment()
            elif ch not in _SIGNIFICANT:
                self._advance()
            else:
                return

    def _skip_comment(self) -> None:
        depth = 0
        while not self.at_end():
            ch = self._advance()
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    return
        raise self.error("unterminated comment")

    def expect_semi(self) -> None:
        self.skip_blanks()
        if self.at_end() or self.peek() != ";":
            raise self.error(f"expected ';', found {self.peek()!r}")
        self._advance()

    def at_semi(self) -> bool:
        self.skip_blanks()
        return self.peek() == ";"

    def read_integer(self) -> int:
        self.skip_blanks()
        negative = False
        if self.peek() == "-":
            self._advance()
            negative = True
            self.skip_blanks()
        if self.peek() not in _DIGITS:
            raise self.error(f"expected integer, found {self.peek()!r}")
        value = 0
        while self.peek() in _DIGITS:
            value = value * 10 + int(self._advance())
        return -value if negative else value

    def read_point(self) -> Point:
        x = self.read_integer()
        y = self.read_integer()
        return Point(x, y)

    def try_read_point(self) -> Point | None:
        """Read a point if one follows before the next ';'."""
        self.skip_blanks()
        if self.peek() == ";" or self.at_end():
            return None
        return self.read_point()

    def read_shortname(self) -> str:
        """A layer shortname: 1-4 chars, uppercase letters or digits."""
        self.skip_blanks()
        if self.peek() not in _UPPER:
            raise self.error(f"layer name must start with a letter, found {self.peek()!r}")
        name = self._advance()
        while self.peek() in _UPPER | _DIGITS and len(name) < 4:
            name += self._advance()
        return name

    def read_upper(self) -> str:
        self.skip_blanks()
        if self.peek() not in _UPPER:
            raise self.error(f"expected letter, found {self.peek()!r}")
        return self._advance()

    def read_user_text(self) -> str:
        """Everything (verbatim) up to the terminating ';'."""
        chars: list[str] = []
        while not self.at_end() and self.peek() != ";":
            chars.append(self._advance())
        return "".join(chars).strip()


def parse_cif(text: str) -> CifFile:
    """Parse CIF source text into a :class:`CifFile`.

    Raises :class:`CifError` with position on malformed input.  The
    final ``E`` command is required, as by the CIF specification.
    """
    scanner = _Scanner(text)
    result = CifFile()
    current: SymbolDefinition | None = None
    saw_end = False

    while True:
        scanner.skip_blanks()
        if scanner.at_end():
            break
        ch = scanner.peek()

        if ch == ";":
            scanner._advance()  # null command
            continue

        if ch in _DIGITS:
            digit = int(scanner._advance())
            text_body = scanner.read_user_text()
            scanner.expect_semi()
            _emit(result, current, UserCommand(digit, text_body), scanner)
            continue

        letter = scanner.read_upper()

        if letter == "E":
            saw_end = True
            # The spec ends the file at E; trailing blanks allowed.
            scanner.skip_blanks()
            break

        if letter == "D":
            sub = scanner.read_upper()
            if sub == "S":
                number = scanner.read_integer()
                scanner.skip_blanks()
                if scanner.peek() != ";":
                    a = scanner.read_integer()
                    b = scanner.read_integer()
                else:
                    a, b = 1, 1
                scanner.expect_semi()
                if current is not None:
                    raise scanner.error("nested DS is not allowed")
                if b == 0:
                    raise scanner.error("DS scale denominator must be nonzero")
                current = SymbolDefinition(number, a, b)
            elif sub == "F":
                scanner.expect_semi()
                if current is None:
                    raise scanner.error("DF without matching DS")
                result.symbols.append(current)
                current = None
            elif sub == "D":
                threshold = scanner.read_integer()
                scanner.expect_semi()
                _emit(result, current, DeleteCommand(threshold), scanner)
            else:
                raise scanner.error(f"unknown command D{sub}")
            continue

        command = _parse_letter_command(scanner, letter)
        scanner.expect_semi()
        _emit(result, current, command, scanner)

    if current is not None:
        raise scanner.error(f"unterminated symbol definition DS {current.number}")
    if not saw_end:
        raise scanner.error("missing final E command")
    return result


def _emit(
    result: CifFile,
    current: SymbolDefinition | None,
    command: Command,
    scanner: _Scanner,
) -> None:
    if isinstance(command, DeleteCommand) and current is not None:
        raise scanner.error("DD may not appear inside a symbol definition")
    if current is not None:
        current.commands.append(command)
    else:
        result.commands.append(command)


def _parse_letter_command(scanner: _Scanner, letter: str) -> Command:
    if letter == "B":
        length = scanner.read_integer()
        width = scanner.read_integer()
        center = scanner.read_point()
        direction = scanner.try_read_point() or Point(1, 0)
        if direction == Point(0, 0):
            raise scanner.error("box direction may not be the zero vector")
        return BoxCommand(length, width, center, direction)

    if letter == "P":
        points = _read_point_list(scanner)
        if len(points) < 3:
            raise scanner.error("polygon needs at least 3 points")
        return PolygonCommand(tuple(points))

    if letter == "W":
        width = scanner.read_integer()
        points = _read_point_list(scanner)
        if not points:
            raise scanner.error("wire needs at least 1 point")
        return WireCommand(width, tuple(points))

    if letter == "R":
        diameter = scanner.read_integer()
        center = scanner.read_point()
        return RoundFlashCommand(diameter, center)

    if letter == "L":
        return LayerCommand(scanner.read_shortname())

    if letter == "C":
        symbol = scanner.read_integer()
        elements: list[TransformElement] = []
        while not scanner.at_semi():
            kind = scanner.read_upper()
            if kind == "T":
                elements.append(TransformElement("T", scanner.read_point()))
            elif kind == "M":
                axis = scanner.read_upper()
                if axis == "X":
                    elements.append(TransformElement("MX"))
                elif axis == "Y":
                    elements.append(TransformElement("MY"))
                else:
                    raise scanner.error(f"mirror must be MX or MY, got M{axis}")
            elif kind == "R":
                direction = scanner.read_point()
                if direction == Point(0, 0):
                    raise scanner.error("rotation may not be the zero vector")
                elements.append(TransformElement("R", direction))
            else:
                raise scanner.error(f"unknown transform element {kind!r}")
        return CallCommand(symbol, tuple(elements))

    raise scanner.error(f"unknown command letter {letter!r}")


def _read_point_list(scanner: _Scanner) -> list[Point]:
    points: list[Point] = []
    while True:
        p = scanner.try_read_point()
        if p is None:
            return points
        points.append(p)
