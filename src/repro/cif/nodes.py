"""Syntactic AST for CIF files.

These nodes mirror the CIF 2.0 command set one-to-one; they carry no
layer binding or symbol resolution (that is ``repro.cif.semantics``'
job).  Coordinates are raw file coordinates, before DS scaling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry.point import Point


@dataclass(frozen=True)
class BoxCommand:
    """``B length width cx cy [direction]`` — a centre-specified box.

    ``direction`` rotates the box so its "length" runs along that
    vector; CIF allows any vector but the Riot flow only produces the
    four axis directions.
    """

    length: int
    width: int
    center: Point
    direction: Point = Point(1, 0)


@dataclass(frozen=True)
class PolygonCommand:
    """``P p1 p2 ... pn`` — a filled polygon."""

    points: tuple[Point, ...]


@dataclass(frozen=True)
class WireCommand:
    """``W width p1 ... pn`` — a fixed-width wire with rounded/square caps."""

    width: int
    points: tuple[Point, ...]


@dataclass(frozen=True)
class RoundFlashCommand:
    """``R diameter cx cy`` — a circular flash."""

    diameter: int
    center: Point


@dataclass(frozen=True)
class LayerCommand:
    """``L shortname`` — set the current layer for subsequent geometry."""

    name: str


@dataclass(frozen=True)
class TransformElement:
    """One element of a call transformation, applied left to right.

    ``kind`` is ``T`` (translate by ``point``), ``MX``, ``MY``, or
    ``R`` (rotate +x axis to ``point``).
    """

    kind: str
    point: Point | None = None


@dataclass(frozen=True)
class CallCommand:
    """``C symbol t1 t2 ...`` — instantiate symbol with a transformation."""

    symbol: int
    elements: tuple[TransformElement, ...] = ()


@dataclass(frozen=True)
class UserCommand:
    """``<digit> text`` — user-extension command, uninterpreted here."""

    digit: int
    text: str


@dataclass(frozen=True)
class DeleteCommand:
    """``DD n`` — delete symbol definitions numbered >= n."""

    threshold: int


Command = (
    BoxCommand
    | PolygonCommand
    | WireCommand
    | RoundFlashCommand
    | LayerCommand
    | CallCommand
    | UserCommand
    | DeleteCommand
)


@dataclass
class SymbolDefinition:
    """``DS number a b ... DF`` — one symbol, with its scale factor a/b."""

    number: int
    scale_num: int = 1
    scale_den: int = 1
    commands: list[Command] = field(default_factory=list)


@dataclass
class CifFile:
    """A parsed CIF file: definitions plus top-level commands.

    ``commands`` holds commands outside any DS/DF pair (geometry and
    calls at the outermost level), in file order.
    """

    symbols: list[SymbolDefinition] = field(default_factory=list)
    commands: list[Command] = field(default_factory=list)

    def symbol(self, number: int) -> SymbolDefinition:
        """Return the *last* definition of ``number`` (CIF redefinition rule)."""
        found = None
        for sym in self.symbols:
            if sym.number == number:
                found = sym
        if found is None:
            raise KeyError(f"CIF symbol {number} is not defined")
        return found
