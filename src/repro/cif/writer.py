"""CIF output.

Writes elaborated :class:`~repro.cif.semantics.CifCell` hierarchies
back to CIF 2.0 text, including the Riot user extensions (``9`` cell
name, ``94`` connector).  The writer emits symbols in dependency order
(callees before callers) so any standard CIF reader accepts the
stream, and it is the exact inverse of parse+elaborate: round-tripping
preserves geometry, connectors, names and hierarchy.
"""

from __future__ import annotations

from repro.cif.errors import CifError
from repro.cif.semantics import CifCell
from repro.geometry.point import Point
from repro.geometry.transform import Transform


def write_cif(
    top_cells: list[CifCell],
    instantiate_top: bool = True,
) -> str:
    """Serialise the cell hierarchies rooted at ``top_cells``.

    Every reachable cell is written once; symbol numbers are
    reassigned densely from 1 (CIF consumers only care about
    consistency within the file).  With ``instantiate_top`` the roots
    are called at the top level so mask tools see the full chip.
    """
    ordered = _dependency_order(top_cells)
    numbers = {id(cell): i + 1 for i, cell in enumerate(ordered)}
    lines: list[str] = ["( CIF written by repro.riot );"]

    for cell in ordered:
        lines.append(f"DS {numbers[id(cell)]} 1 1;")
        lines.append(f"9 {cell.name};")
        _write_geometry(lines, cell)
        for conn in cell.connectors:
            lines.append(
                f"94 {conn.name} {conn.position.x} {conn.position.y} "
                f"{conn.layer.cif_name} {conn.width};"
            )
        for child, transform in cell.calls:
            lines.append(_call_line(numbers[id(child)], transform))
        lines.append("DF;")

    if instantiate_top:
        for cell in top_cells:
            lines.append(_call_line(numbers[id(cell)], Transform.identity()))
    lines.append("E")
    return "\n".join(lines) + "\n"


def _write_geometry(lines: list[str], cell: CifCell) -> None:
    """Emit local geometry grouped by layer to minimise L commands."""
    by_layer: dict[str, list[str]] = {}

    for layer, box in cell.geometry.boxes:
        if box.width % 2 or box.height % 2:
            raise CifError(
                f"cell {cell.name}: box {box} has odd dimensions; CIF B "
                "commands are centre-specified"
            )
        center = box.center
        by_layer.setdefault(layer.cif_name, []).append(
            f"B {box.width} {box.height} {center.x} {center.y};"
        )
    for polygon in cell.geometry.polygons:
        pts = " ".join(f"{p.x} {p.y}" for p in polygon.points)
        by_layer.setdefault(polygon.layer.cif_name, []).append(f"P {pts};")
    for path in cell.geometry.paths:
        pts = " ".join(f"{p.x} {p.y}" for p in path.points)
        by_layer.setdefault(path.layer.cif_name, []).append(
            f"W {path.width} {pts};"
        )

    for cif_name in sorted(by_layer):
        lines.append(f"L {cif_name};")
        lines.extend(by_layer[cif_name])


def _call_line(number: int, transform: Transform) -> str:
    parts = [f"C {number}"]
    parts.extend(transform.orientation.cif_elements())
    t = transform.translation
    if t != Point(0, 0):
        parts.append(f"T {t.x} {t.y}")
    return " ".join(parts) + ";"


def _dependency_order(tops: list[CifCell]) -> list[CifCell]:
    """Topological order, callees first, with cycle detection."""
    ordered: list[CifCell] = []
    done: set[int] = set()
    visiting: set[int] = set()

    def visit(cell: CifCell) -> None:
        if id(cell) in done:
            return
        if id(cell) in visiting:
            raise CifError(f"recursive cell hierarchy at {cell.name}")
        visiting.add(id(cell))
        for child, _ in cell.calls:
            visit(child)
        visiting.discard(id(cell))
        done.add(id(cell))
        ordered.append(cell)

    for top in tops:
        visit(top)
    return ordered
