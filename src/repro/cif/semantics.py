"""Semantic elaboration of parsed CIF.

Turns the syntactic :class:`~repro.cif.nodes.CifFile` into
:class:`CifCell` objects: layers bound against a technology, DS scale
factors applied, user extensions interpreted (cell names and
connectors), calls resolved to (cell, transform) pairs, and geometry
flattenable for mask output or display.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cif.errors import CifError
from repro.cif.nodes import (
    BoxCommand,
    CallCommand,
    CifFile,
    Command,
    DeleteCommand,
    LayerCommand,
    PolygonCommand,
    RoundFlashCommand,
    TransformElement,
    UserCommand,
    WireCommand,
)
from repro.geometry.box import Box, union_all
from repro.geometry.layers import Layer, Technology
from repro.geometry.orientation import MX, MY, R0, R90, R180, R270
from repro.geometry.path import Path
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.transform import Transform


@dataclass(frozen=True)
class CifConnector:
    """A connector declared by the ``94`` user extension.

    Matches Riot's connector definition: "a location on or inside the
    bounding box of the cell, and the layer and width of the wire that
    makes that connection."
    """

    name: str
    position: Point
    layer: Layer
    width: int


@dataclass
class FlatGeometry:
    """Flattened mask geometry in a single coordinate system."""

    boxes: list[tuple[Layer, Box]] = field(default_factory=list)
    polygons: list[Polygon] = field(default_factory=list)
    paths: list[Path] = field(default_factory=list)

    def bounding_box(self) -> Box:
        pieces = [b for _, b in self.boxes]
        pieces += [p.bounding_box() for p in self.polygons]
        pieces += [p.bounding_box() for p in self.paths]
        if not pieces:
            raise ValueError("empty geometry has no bounding box")
        return union_all(pieces)

    @property
    def shape_count(self) -> int:
        return len(self.boxes) + len(self.polygons) + len(self.paths)

    def transformed(self, transform: Transform) -> "FlatGeometry":
        return FlatGeometry(
            boxes=[(layer, transform.apply_box(b)) for layer, b in self.boxes],
            polygons=[p.transformed(transform) for p in self.polygons],
            paths=[p.transformed(transform) for p in self.paths],
        )

    def extend(self, other: "FlatGeometry") -> None:
        self.boxes.extend(other.boxes)
        self.polygons.extend(other.polygons)
        self.paths.extend(other.paths)


class CifCell:
    """An elaborated CIF symbol.

    Holds local geometry, connectors and child calls.  ``flatten``
    instantiates the full subtree; ``bounding_box`` covers local
    geometry plus child boxes (connectors do not grow the box, matching
    Riot which allows connectors only on or inside the bounding box).
    """

    def __init__(self, number: int, name: str | None = None) -> None:
        self.number = number
        self.name = name or f"cif{number}"
        self.geometry = FlatGeometry()
        self.connectors: list[CifConnector] = []
        self.calls: list[tuple["CifCell", Transform]] = []

    def connector(self, name: str) -> CifConnector:
        for conn in self.connectors:
            if conn.name == name:
                return conn
        raise KeyError(f"cell {self.name} has no connector {name!r}")

    def bounding_box(self) -> Box:
        return self._bounding_box(frozenset())

    def _bounding_box(self, visiting: frozenset[int]) -> Box:
        if self.number in visiting:
            raise CifError(f"recursive symbol call involving symbol {self.number}")
        pieces: list[Box] = []
        if self.geometry.shape_count:
            pieces.append(self.geometry.bounding_box())
        for child, transform in self.calls:
            child_box = child._bounding_box(visiting | {self.number})
            pieces.append(transform.apply_box(child_box))
        if not pieces:
            raise CifError(f"symbol {self.number} ({self.name}) is empty")
        return union_all(pieces)

    def flatten(self) -> FlatGeometry:
        """All mask geometry of the subtree, in this cell's coordinates."""
        return self._flatten(frozenset())

    def _flatten(self, visiting: frozenset[int]) -> FlatGeometry:
        if self.number in visiting:
            raise CifError(f"recursive symbol call involving symbol {self.number}")
        flat = FlatGeometry()
        flat.extend(self.geometry)
        for child, transform in self.calls:
            flat.extend(child._flatten(visiting | {self.number}).transformed(transform))
        return flat

    def __repr__(self) -> str:
        return f"CifCell({self.number}, {self.name!r})"


@dataclass
class CifDesign:
    """The result of elaborating one CIF file."""

    cells_by_number: dict[int, CifCell]
    top_calls: list[tuple[CifCell, Transform]]
    top_geometry: FlatGeometry

    def cell(self, name_or_number: str | int) -> CifCell:
        if isinstance(name_or_number, int):
            try:
                return self.cells_by_number[name_or_number]
            except KeyError:
                raise KeyError(f"no CIF symbol {name_or_number}") from None
        for cell in self.cells_by_number.values():
            if cell.name == name_or_number:
                return cell
        raise KeyError(f"no CIF cell named {name_or_number!r}")

    @property
    def cells(self) -> list[CifCell]:
        return list(self.cells_by_number.values())


def transform_from_elements(elements: tuple[TransformElement, ...]) -> Transform:
    """Fold a CIF transformation-element sequence into one rigid transform.

    Elements apply left to right; only Manhattan rotations are
    accepted (anything else is outside the Riot flow).
    """
    rotations = {
        Point(1, 0): R0,
        Point(0, 1): R90,
        Point(-1, 0): R180,
        Point(0, -1): R270,
    }
    current = Transform.identity()
    for element in elements:
        if element.kind == "T":
            assert element.point is not None
            step = Transform.translate(element.point.x, element.point.y)
        elif element.kind == "MX":
            step = Transform(MX, Point(0, 0))
        elif element.kind == "MY":
            step = Transform(MY, Point(0, 0))
        elif element.kind == "R":
            assert element.point is not None
            direction = _normalise_direction(element.point)
            if direction not in rotations:
                raise CifError(f"non-Manhattan rotation R {element.point}")
            step = Transform(rotations[direction], Point(0, 0))
        else:  # pragma: no cover - parser only produces the above
            raise CifError(f"unknown transform element kind {element.kind!r}")
        current = step.compose(current)
    return current


def _normalise_direction(p: Point) -> Point:
    """Reduce a direction vector to unit axis form when axis-aligned."""
    if p.x == 0 and p.y != 0:
        return Point(0, 1 if p.y > 0 else -1)
    if p.y == 0 and p.x != 0:
        return Point(1 if p.x > 0 else -1, 0)
    return p


class _Scale:
    """Exact rational scaling by a/b with integrality checking."""

    def __init__(self, num: int, den: int, symbol: int) -> None:
        self.num = num
        self.den = den
        self.symbol = symbol

    def __call__(self, value: int) -> int:
        scaled = value * self.num
        if scaled % self.den:
            raise CifError(
                f"symbol {self.symbol}: coordinate {value} * {self.num}/{self.den} "
                "is not an integer"
            )
        return scaled // self.den

    def point(self, p: Point) -> Point:
        return Point(self(p.x), self(p.y))


def elaborate(cif: CifFile, technology: Technology) -> CifDesign:
    """Elaborate a parsed CIF file against ``technology``.

    Returns the design with every symbol turned into a
    :class:`CifCell`.  ``DD`` commands (delete definitions) are honoured
    in file order for top-level streams.
    """
    cells: dict[int, CifCell] = {}
    pending_calls: dict[int, list[tuple[int, Transform]]] = {}

    for symbol in cif.symbols:
        cell = CifCell(symbol.number)
        scale = _Scale(symbol.scale_num, symbol.scale_den, symbol.number)
        pending = _elaborate_commands(
            cell, symbol.commands, scale, technology, in_symbol=True
        )
        pending_calls[symbol.number] = pending
        cells[symbol.number] = cell  # later definition wins, per CIF

    top = CifCell(-1, "<top>")
    unit_scale = _Scale(1, 1, -1)
    top_pending: list[tuple[int, Transform]] = []
    for command in cif.commands:
        if isinstance(command, DeleteCommand):
            for number in [n for n in cells if n >= command.threshold]:
                del cells[number]
                pending_calls.pop(number, None)
            continue
        top_pending.extend(
            _elaborate_commands(
                top, [command], unit_scale, technology, in_symbol=False
            )
        )

    # Resolve calls now that every symbol is defined (CIF allows
    # forward references).
    for number, pending in pending_calls.items():
        if number not in cells:
            continue  # deleted by DD
        for target, transform in pending:
            if target not in cells:
                raise CifError(
                    f"symbol {number} calls undefined symbol {target}"
                )
            cells[number].calls.append((cells[target], transform))
    top_calls: list[tuple[CifCell, Transform]] = []
    for target, transform in top_pending:
        if target not in cells:
            raise CifError(f"top level calls undefined symbol {target}")
        top_calls.append((cells[target], transform))

    return CifDesign(cells, top_calls, top.geometry)


def _elaborate_commands(
    cell: CifCell,
    commands: list[Command],
    scale: _Scale,
    technology: Technology,
    in_symbol: bool,
) -> list[tuple[int, Transform]]:
    """Process commands into ``cell``; return unresolved calls."""
    current_layer: Layer | None = None
    pending: list[tuple[int, Transform]] = []

    def need_layer() -> Layer:
        if current_layer is None:
            raise CifError(
                f"geometry before any L command in symbol {cell.number}"
            )
        return current_layer

    for command in commands:
        if isinstance(command, LayerCommand):
            current_layer = technology.layer_by_cif(command.name)
        elif isinstance(command, BoxCommand):
            cell.geometry.boxes.append(
                (need_layer(), _box_from_command(command, scale))
            )
        elif isinstance(command, PolygonCommand):
            cell.geometry.polygons.append(
                Polygon(need_layer(), tuple(scale.point(p) for p in command.points))
            )
        elif isinstance(command, WireCommand):
            if command.width <= 0:
                raise CifError(f"wire width must be positive in symbol {cell.number}")
            cell.geometry.paths.append(
                Path(
                    need_layer(),
                    scale(command.width),
                    tuple(scale.point(p) for p in command.points),
                )
            )
        elif isinstance(command, RoundFlashCommand):
            # Substitution: the Riot flow never needs true circles, so a
            # round flash becomes its bounding square on the layer.
            side = scale(command.diameter)
            if side <= 0:
                raise CifError(f"round flash diameter must be positive")
            if side % 2:
                side += 1
            cell.geometry.boxes.append(
                (need_layer(), Box.from_center(scale.point(command.center), side, side))
            )
        elif isinstance(command, CallCommand):
            transform = transform_from_elements(command.elements)
            transform = Transform(
                transform.orientation, scale.point(transform.translation)
            )
            pending.append((command.symbol, transform))
        elif isinstance(command, UserCommand):
            _elaborate_user(cell, command, scale, technology, in_symbol)
        elif isinstance(command, DeleteCommand):
            raise CifError("DD inside a symbol definition")
        else:  # pragma: no cover
            raise CifError(f"unhandled command {command!r}")
    return pending


def _box_from_command(command: BoxCommand, scale: _Scale) -> Box:
    """Realise a CIF ``B`` command: length runs along ``direction``."""
    direction = _normalise_direction(command.direction)
    length = scale(command.length)
    width = scale(command.width)
    center = scale.point(command.center)
    if length <= 0 or width <= 0:
        raise CifError(f"box dimensions must be positive, got {length}x{width}")
    if direction in (Point(1, 0), Point(-1, 0)):
        dx, dy = length, width
    elif direction in (Point(0, 1), Point(0, -1)):
        dx, dy = width, length
    else:
        raise CifError(f"non-Manhattan box direction {command.direction}")
    try:
        return Box.from_center(center, dx, dy)
    except ValueError as exc:
        raise CifError(str(exc)) from None


def _elaborate_user(
    cell: CifCell,
    command: UserCommand,
    scale: _Scale,
    technology: Technology,
    in_symbol: bool,
) -> None:
    """Interpret the user extensions the Riot flow defines.

    * ``9 name`` — symbol name.
    * ``94 name x y layer [width]`` — connector declaration (the paper's
      "user extension ... to indicate connector locations").

    Unknown user commands are ignored, as the CIF spec requires.
    """
    if command.digit != 9:
        return
    body = command.text
    if body.startswith("4"):
        fields = body[1:].split()
        if len(fields) not in (4, 5):
            raise CifError(
                f"malformed connector extension '9{body}' in symbol {cell.number}; "
                "expected '94 name x y layer [width]'"
            )
        name, xs, ys, layer_name = fields[:4]
        try:
            x, y = int(xs), int(ys)
        except ValueError:
            raise CifError(
                f"connector {name!r}: coordinates must be integers"
            ) from None
        layer = technology.layer_by_cif(layer_name)
        if len(fields) == 5:
            try:
                width = scale(int(fields[4]))
            except ValueError:
                raise CifError(f"connector {name!r}: width must be an integer") from None
        else:
            width = technology.min_width(layer)
        if width <= 0:
            raise CifError(f"connector {name!r}: width must be positive")
        cell.connectors.append(
            CifConnector(name, scale.point(Point(x, y)), layer, width)
        )
    else:
        if not in_symbol:
            return
        name = body.split()[0] if body.split() else ""
        if name:
            cell.name = name
