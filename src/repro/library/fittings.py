"""Pipe fittings for power, ground and clock plumbing.

"Pre-defined pipe fittings aid complex routes for power, ground and
clock lines."  Each fitting is a small Sticks cell of plain metal
wire: a corner, a tee, a cross, and a straight strap, with pins named
by compass direction (N/S/E/W).  They go in the cell menu like any
other cell and get placed, rotated and mirrored to plumb the rails.
"""

from __future__ import annotations

FIT_SIZE = 3000
FIT_WIDTH = 750


def _header(name: str) -> str:
    return f"STICKS {name}\nBBOX 0 0 {FIT_SIZE} {FIT_SIZE}\n"


def corner_sticks() -> str:
    """West-to-south elbow."""
    mid = FIT_SIZE // 2
    return (
        _header("fit_corner")
        + f"PIN W metal 0 {mid} {FIT_WIDTH}\n"
        + f"PIN S metal {mid} 0 {FIT_WIDTH}\n"
        + f"WIRE metal {FIT_WIDTH} 0 {mid} {mid} {mid} {mid} 0\n"
        + "END\n"
    )


def tee_sticks() -> str:
    """West-east bar with a south branch."""
    mid = FIT_SIZE // 2
    return (
        _header("fit_tee")
        + f"PIN W metal 0 {mid} {FIT_WIDTH}\n"
        + f"PIN E metal {FIT_SIZE} {mid} {FIT_WIDTH}\n"
        + f"PIN S metal {mid} 0 {FIT_WIDTH}\n"
        + f"WIRE metal {FIT_WIDTH} 0 {mid} {FIT_SIZE} {mid}\n"
        + f"WIRE metal {FIT_WIDTH} {mid} {mid} {mid} 0\n"
        + "END\n"
    )


def cross_sticks() -> str:
    """Four-way junction."""
    mid = FIT_SIZE // 2
    return (
        _header("fit_cross")
        + f"PIN W metal 0 {mid} {FIT_WIDTH}\n"
        + f"PIN E metal {FIT_SIZE} {mid} {FIT_WIDTH}\n"
        + f"PIN N metal {mid} {FIT_SIZE} {FIT_WIDTH}\n"
        + f"PIN S metal {mid} 0 {FIT_WIDTH}\n"
        + f"WIRE metal {FIT_WIDTH} 0 {mid} {FIT_SIZE} {mid}\n"
        + f"WIRE metal {FIT_WIDTH} {mid} 0 {mid} {FIT_SIZE}\n"
        + "END\n"
    )


def strap_sticks() -> str:
    """A straight west-east strap (stretch it to any length)."""
    mid = FIT_SIZE // 2
    return (
        _header("fit_strap")
        + f"PIN W metal 0 {mid} {FIT_WIDTH}\n"
        + f"PIN E metal {FIT_SIZE} {mid} {FIT_WIDTH}\n"
        + f"WIRE metal {FIT_WIDTH} 0 {mid} {FIT_SIZE} {mid}\n"
        + "END\n"
    )


def fittings_sticks_text() -> str:
    """All fittings in one Sticks file."""
    return corner_sticks() + tee_sticks() + cross_sticks() + strap_sticks()
