"""Bonding pads, authored as CIF text.

Rigid committed geometry, "taken from a library of CIF cells": a
bonding area in metal with a glass (overglass) opening, and a metal
finger leading to the single connector on one edge.  Because these are
CIF-backed, Riot can never stretch them — connections to pads go
through the river router, exactly as in the paper's example.

All dimensions in centimicrons; the pads are 10000 x 10000 (100 um
square), a plausible early-80s bond pad.
"""

from __future__ import annotations

PAD_SIZE = 10000
PAD_METAL = 8000
PAD_GLASS = 6000
FINGER_WIDTH = 750


def pads_cif_text() -> str:
    """CIF for the input pad (connector on the right edge) and the
    output pad (connector on the left edge)."""
    half = PAD_SIZE // 2
    # Wires have square end caps extending width/2 past the end point;
    # stop the centreline short so the cap lands exactly on the cell
    # edge and the connector sits on the bounding box.
    cap = FINGER_WIDTH // 2
    finger_in = (
        f"W {FINGER_WIDTH} {half + PAD_METAL // 2} {half} "
        f"{PAD_SIZE - cap} {half};"
    )
    finger_out = (
        f"W {FINGER_WIDTH} {cap} {half} {half - PAD_METAL // 2} {half};"
    )
    return f"""( pad library, repro.riot reproduction );
DS 1 1 1;
9 inpad;
L NM;
B {PAD_METAL} {PAD_METAL} {half} {half};
{finger_in}
L NG;
B {PAD_GLASS} {PAD_GLASS} {half} {half};
94 PAD {PAD_SIZE} {half} NM {FINGER_WIDTH};
DF;
DS 2 1 1;
9 outpad;
L NM;
B {PAD_METAL} {PAD_METAL} {half} {half};
{finger_out}
L NG;
B {PAD_GLASS} {PAD_GLASS} {half} {half};
94 PAD 0 {half} NM {FINGER_WIDTH};
DF;
E
"""
