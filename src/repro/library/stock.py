"""Assemble the worked example's cell library."""

from __future__ import annotations

from repro.composition.library import CellLibrary
from repro.geometry.layers import Technology, nmos_technology
from repro.library.fittings import fittings_sticks_text
from repro.library.gates import logic_sticks_text
from repro.library.pads import pads_cif_text


def filter_library(technology: Technology | None = None) -> CellLibrary:
    """The figure-8 stock: pads (CIF), logic (Sticks), fittings.

    Loading goes through the real readers, exactly as a Riot session
    would ``read pads.cif`` and ``read logic.sticks``.
    """
    library = CellLibrary(technology or nmos_technology())
    library.load_cif(pads_cif_text(), source_file="pads.cif")
    library.load_sticks(logic_sticks_text(), source_file="logic.sticks")
    library.load_sticks(fittings_sticks_text(), source_file="fittings.sticks")
    return library
