"""Logic-true gate cells for functional verification.

The stock figure-8 gates share one geometric plan (a documented
substitution) and both measure as NORs.  The paper's filter, though,
is a textbook De Morgan structure: "two stages of NAND gates provide
the ANDing of the constant terms and the first level of ORs, then
routing is done to the OR gate" —

    f = OR_i (c_i x_i) = OR( NAND(t01), NAND(t23) ),
    t_ij = ( NAND(x_i,c_i), NAND(x_j,c_j) )

so with *true* NANDs and a true OR the assembled tree computes the
paper's equation exactly.  These cells have the same pin discipline as
the stock gates (A and B poly on the top edge, OUT poly on the bottom,
rails in the shared rows) but electrically correct internals: series
pulldowns for the NAND, a NOR stage plus inverter for the OR.

They are simulation-grade symbolic cells: structurally connected and
composable, not held to the mask design rules (crossing sticks wires
without a shared vertex neither connect nor short at this level).
"""

from __future__ import annotations

from repro.composition.library import CellLibrary
from repro.geometry.layers import Technology, nmos_technology
from repro.library.gates import (
    CELL_WIDTH,
    GND_Y,
    POLY_WIDTH,
    RAIL_WIDTH,
    ROW_HEIGHT,
    VDD_Y,
)


def true_nand_sticks() -> str:
    """A two-input NAND: series enhancement pulldowns on one column."""
    return f"""STICKS nand
BBOX 0 0 {CELL_WIDTH} {ROW_HEIGHT}
PIN PWRL metal 0 {VDD_Y} {RAIL_WIDTH}
PIN PWRR metal {CELL_WIDTH} {VDD_Y} {RAIL_WIDTH}
PIN GNDL metal 0 {GND_Y} {RAIL_WIDTH}
PIN GNDR metal {CELL_WIDTH} {GND_Y} {RAIL_WIDTH}
PIN A poly 700 {ROW_HEIGHT} {POLY_WIDTH}
PIN B poly 4300 {ROW_HEIGHT} {POLY_WIDTH}
PIN OUT poly 2400 0 {POLY_WIDTH}
WIRE metal {RAIL_WIDTH} 0 {VDD_Y} {CELL_WIDTH} {VDD_Y}
WIRE metal {RAIL_WIDTH} 0 {GND_Y} {CELL_WIDTH} {GND_Y}
WIRE diffusion - 1500 {GND_Y} 1500 3400
WIRE diffusion - 1500 3400 2400 3400
WIRE diffusion - 2400 3400 2400 {VDD_Y}
WIRE poly {POLY_WIDTH} 700 {ROW_HEIGHT} 700 1800
WIRE poly {POLY_WIDTH} 700 1800 2200 1800
WIRE poly {POLY_WIDTH} 4300 {ROW_HEIGHT} 4300 2800
WIRE poly {POLY_WIDTH} 800 2800 4300 2800
WIRE poly {POLY_WIDTH} 2400 3400 2400 0
CONTACT metal diffusion 1500 {GND_Y}
CONTACT metal diffusion 2400 {VDD_Y}
CONTACT poly diffusion 2400 3400
DEVICE enh 1500 1800 v
DEVICE enh 1500 2800 v
DEVICE dep 2400 4600 v
END
"""


def true_or2_sticks() -> str:
    """A two-input OR: a parallel-pulldown NOR stage into an inverter."""
    return f"""STICKS or2
BBOX 0 0 {CELL_WIDTH} {ROW_HEIGHT}
PIN PWRL metal 0 {VDD_Y} {RAIL_WIDTH}
PIN PWRR metal {CELL_WIDTH} {VDD_Y} {RAIL_WIDTH}
PIN GNDL metal 0 {GND_Y} {RAIL_WIDTH}
PIN GNDR metal {CELL_WIDTH} {GND_Y} {RAIL_WIDTH}
PIN A poly 700 {ROW_HEIGHT} {POLY_WIDTH}
PIN B poly 4300 {ROW_HEIGHT} {POLY_WIDTH}
PIN OUT poly 2400 0 {POLY_WIDTH}
WIRE metal {RAIL_WIDTH} 0 {VDD_Y} {CELL_WIDTH} {VDD_Y}
WIRE metal {RAIL_WIDTH} 0 {GND_Y} {CELL_WIDTH} {GND_Y}
WIRE diffusion - 1000 {GND_Y} 1000 3000
WIRE diffusion - 1800 {GND_Y} 1800 3000
WIRE diffusion - 1000 3000 1800 3000
WIRE diffusion - 1800 3000 1800 {VDD_Y}
WIRE poly {POLY_WIDTH} 700 {ROW_HEIGHT} 700 1800
WIRE poly {POLY_WIDTH} 700 1800 1300 1800
WIRE poly {POLY_WIDTH} 4300 {ROW_HEIGHT} 4300 2400
WIRE poly {POLY_WIDTH} 1300 2400 4300 2400
WIRE poly {POLY_WIDTH} 1400 3000 1400 3300
WIRE poly {POLY_WIDTH} 1400 3300 3800 3300
WIRE diffusion - 3400 {GND_Y} 3400 {VDD_Y}
WIRE poly {POLY_WIDTH} 3400 3900 4000 3900
WIRE poly {POLY_WIDTH} 4000 3900 4000 400
WIRE poly {POLY_WIDTH} 2400 400 4000 400
WIRE poly {POLY_WIDTH} 2400 400 2400 0
CONTACT metal diffusion 1000 {GND_Y}
CONTACT metal diffusion 1800 {GND_Y}
CONTACT metal diffusion 3400 {GND_Y}
CONTACT metal diffusion 1800 {VDD_Y}
CONTACT metal diffusion 3400 {VDD_Y}
CONTACT poly diffusion 1400 3000
CONTACT poly diffusion 3400 3900
DEVICE enh 1000 1800 v
DEVICE enh 1800 2400 v
DEVICE dep 1800 4200 v
DEVICE enh 3400 3300 v
DEVICE dep 3400 4500 v
END
"""


def functional_library(technology: Technology | None = None) -> CellLibrary:
    """The logic-true gate set under the stock names."""
    library = CellLibrary(technology or nmos_technology())
    library.load_sticks(
        true_nand_sticks() + true_or2_sticks(), source_file="functional.sticks"
    )
    return library
