"""The leaf-cell stock (L1) for the paper's worked example.

Figure 8 of the paper: "The input and output pads were taken from a
library of CIF cells.  The shift register cell, NAND and OR gates were
laid out in REST, and are defined as symbolic layout in Sticks.
Therefore, the pads cannot be stretched by Riot and all connections to
them will have to be made by routing, but connections to the other
cells can be made by stretching."

This package authors those cells the same way: pads as CIF *text*
(loaded through the CIF reader), logic as Sticks *text* (loaded
through the Sticks reader), plus the "pre-defined pipe fittings [that]
aid complex routes for power, ground and clock lines".
"""

from repro.library.pads import pads_cif_text
from repro.library.gates import logic_sticks_text
from repro.library.fittings import fittings_sticks_text
from repro.library.stock import filter_library

__all__ = [
    "pads_cif_text",
    "logic_sticks_text",
    "fittings_sticks_text",
    "filter_library",
]
