"""The logic cells: shift-register cell, NAND and OR, as Sticks text.

"The shift register cell, NAND and OR gates were laid out in REST,
and are defined as symbolic layout in Sticks" — symbolic, therefore
stretchable.

Shared row discipline (so the cells abut into rows):

* VDD rail: metal, width 750, at y = 5100, pins ``PWRL``/``PWRR``;
* GND rail: metal, width 750, at y = 900, pins ``GNDL``/``GNDR``;
* cell height 6000, cell width 5200; logic inputs enter as poly on
  the top edge, outputs leave as poly on the bottom edge.

The rails and their contacts are inset from the cell edges so that
abutted rows (each row's VDD side touching the row above's GND side)
stay design-rule clean: rail-to-rail and contact-pad-to-contact-pad
clearances across every seam are >= the metal/diffusion spacing.  The
5200 pitch likewise keeps gate-polys and contact pads of neighbouring
cells clear within a row.  The DRC tests hold rows of these cells to
the full rule set.

The transistor-level structure is standard NMOS: depletion pullup,
enhancement pulldowns (the NAND/OR series-parallel difference is
electrical, not geometric — see ``_two_input_gate``).
"""

from __future__ import annotations

ROW_HEIGHT = 6000
VDD_Y = 5100
GND_Y = 900
RAIL_WIDTH = 750
DATA_WIDTH = 750
POLY_WIDTH = 500


CELL_WIDTH = 5200


def srcell_sticks() -> str:
    """The shift-register cell: data straight through, clock vertical.

    Geometry is authored design-rule clean at lambda = 250 (the DRC
    tests hold every cell to it): the clock runs at x = 500, clear of
    the transistor gates around the diffusion column at x = 2000; the
    data tap drops at x = 3750 with its contact pads a full poly
    spacing away from the gates and from the neighbouring cell's
    clock when cells abut at the 5200 pitch.
    """
    return f"""STICKS srcell
BBOX 0 0 {CELL_WIDTH} {ROW_HEIGHT}
PIN PWRL metal 0 {VDD_Y} {RAIL_WIDTH}
PIN PWRR metal {CELL_WIDTH} {VDD_Y} {RAIL_WIDTH}
PIN GNDL metal 0 {GND_Y} {RAIL_WIDTH}
PIN GNDR metal {CELL_WIDTH} {GND_Y} {RAIL_WIDTH}
PIN IN metal 0 3000 {DATA_WIDTH}
PIN OUT metal {CELL_WIDTH} 3000 {DATA_WIDTH}
PIN CLKB poly 500 0 {POLY_WIDTH}
PIN CLKT poly 500 {ROW_HEIGHT} {POLY_WIDTH}
PIN TAP poly 3750 0 {POLY_WIDTH}
WIRE metal {RAIL_WIDTH} 0 {VDD_Y} {CELL_WIDTH} {VDD_Y}
WIRE metal {RAIL_WIDTH} 0 {GND_Y} {CELL_WIDTH} {GND_Y}
WIRE metal {DATA_WIDTH} 0 3000 {CELL_WIDTH} 3000
WIRE diffusion - 2000 {GND_Y} 2000 {VDD_Y}
WIRE poly {POLY_WIDTH} 500 0 500 {ROW_HEIGHT}
WIRE poly {POLY_WIDTH} 500 1800 2500 1800
WIRE poly {POLY_WIDTH} 1500 4200 2500 4200
WIRE poly {POLY_WIDTH} 3750 0 3750 3000
CONTACT metal diffusion 2000 {GND_Y}
CONTACT metal diffusion 2000 {VDD_Y}
CONTACT metal diffusion 2000 3000
CONTACT metal poly 3750 3000
DEVICE enh 2000 1800 v
DEVICE dep 2000 4200 v
END
"""


def _two_input_gate(name: str) -> str:
    """The shared two-input gate plan: inputs on the top edge, output
    on the bottom edge, so gate rows stack vertically under the shift
    register row (the figure 7 floorplan's data flow).

    Structure: two pulldown diffusion columns (x = 900 and 3900) gated
    by the A and B inputs, joined by a diffusion bar at the output
    level (y = 3400); a depletion pullup on the centre column reaches
    the VDD rail; the output drops to the bottom edge in poly from a
    buried contact partway up the pullup column (at y = 3650, clear of
    both pulldown gates and of the depletion gate above).  The NAND and OR of
    the paper share this plan — their series/parallel difference is
    electrical, not geometric, and nothing downstream of Riot's
    composition flow observes it.  Coordinates are authored
    design-rule clean at lambda = 250, including against the
    neighbouring cell when gates abut at the 5200 pitch.
    """
    return f"""STICKS {name}
BBOX 0 0 {CELL_WIDTH} {ROW_HEIGHT}
PIN PWRL metal 0 {VDD_Y} {RAIL_WIDTH}
PIN PWRR metal {CELL_WIDTH} {VDD_Y} {RAIL_WIDTH}
PIN GNDL metal 0 {GND_Y} {RAIL_WIDTH}
PIN GNDR metal {CELL_WIDTH} {GND_Y} {RAIL_WIDTH}
PIN A poly 700 {ROW_HEIGHT} {POLY_WIDTH}
PIN B poly 4300 {ROW_HEIGHT} {POLY_WIDTH}
PIN OUT poly 2400 0 {POLY_WIDTH}
WIRE metal {RAIL_WIDTH} 0 {VDD_Y} {CELL_WIDTH} {VDD_Y}
WIRE metal {RAIL_WIDTH} 0 {GND_Y} {CELL_WIDTH} {GND_Y}
WIRE diffusion - 900 {GND_Y} 900 3400
WIRE diffusion - 3900 {GND_Y} 3900 3400
WIRE diffusion - 900 3400 3900 3400
WIRE diffusion - 2400 3400 2400 {VDD_Y}
WIRE poly {POLY_WIDTH} 700 {ROW_HEIGHT} 700 1800
WIRE poly {POLY_WIDTH} 700 1800 1200 1800
WIRE poly {POLY_WIDTH} 4300 {ROW_HEIGHT} 4300 2400
WIRE poly {POLY_WIDTH} 3550 2400 4300 2400
WIRE poly {POLY_WIDTH} 2400 3650 2400 0
CONTACT metal diffusion 900 {GND_Y}
CONTACT metal diffusion 3900 {GND_Y}
CONTACT metal diffusion 2400 {VDD_Y}
CONTACT poly diffusion 2400 3650
DEVICE enh 900 1800 v
DEVICE enh 3900 2400 v
DEVICE dep 2400 4900 v
END
"""


def nand_sticks() -> str:
    """Two-input NAND (see :func:`_two_input_gate`)."""
    return _two_input_gate("nand")


def or_sticks() -> str:
    """Two-input OR (see :func:`_two_input_gate`)."""
    return _two_input_gate("or2")


def p2m_sticks() -> str:
    """A poly-to-metal layer converter.

    Poly pin on the top edge, metal pin on the bottom edge, joined by
    a contact.  Pad connectors are metal while gate signals are poly;
    this little cell sits between a logic block's poly connector and
    the river route running to a pad.
    """
    return f"""STICKS p2m
BBOX 0 0 1000 2000
PIN P poly 500 2000 {POLY_WIDTH}
PIN M metal 500 0 {RAIL_WIDTH}
WIRE poly {POLY_WIDTH} 500 2000 500 1000
WIRE metal {RAIL_WIDTH} 500 1000 500 0
CONTACT poly metal 500 1000
END
"""


def logic_sticks_text() -> str:
    """All four logic-side cells in one Sticks file."""
    return srcell_sticks() + nand_sticks() + or_sticks() + p2m_sticks()
