"""The textual command interface.

"The textual command interface, accessed with the keyboard, is used
primarily to modify the editing environment.  Textual commands store
and retrieve cells on disk, set plotting parameters, generate hardcopy
plots of cells, set defaults for routing operations, and invoke the
graphical command editor to modify a composition cell."

Since the api_redesign this module is a *shell*: each ``_cmd_`` method
parses its argument words into a frozen request dataclass from
:mod:`repro.api.types`, dispatches it through the session's typed
command surface (:class:`repro.api.session.Session`), and formats the
typed result back into the exact response text the tool has always
printed — a regression test pins the output byte-for-byte.  The same
typed entry points serve REPLAY, the fuzz oracles and the socket
service; this file owns only words-to-requests and results-to-words.

Files are accessed through a pluggable store (a dict-like object by
default) so sessions run hermetically under test; pass
:class:`DiskStore` to touch the real filesystem.
"""

from __future__ import annotations

from repro.api import types as t
from repro.api.session import Session
from repro.api.store import DiskStore, MemoryStore  # noqa: F401 (re-export)
from repro.core.editor import RiotEditor
from repro.core.errors import RiotError
from repro.errors import ReproError

#: Everything an interactive command may fail with; anything else is a
#: bug and propagates.  Every subsystem error family now descends from
#: :class:`ReproError`; the two builtins cover bad lookups and bad
#: literals in argument words.
COMMAND_ERRORS = (
    ReproError,
    KeyError,
    ValueError,
)


class TextualInterface:
    """Executes command lines against an editor session.

    ``execute`` returns the response text; command errors come back as
    ``error: ...`` strings rather than exceptions, the way an
    interactive tool reports them (``last_error`` keeps the exception).
    """

    def __init__(self, editor: RiotEditor, store=None, cellstore=None) -> None:
        self.session = Session(editor=editor, store=store, cellstore=cellstore)
        self.last_error: Exception | None = None

    # -- compatibility surface over the session ---------------------------

    @property
    def editor(self) -> RiotEditor:
        return self.session.editor

    @editor.setter
    def editor(self, editor: RiotEditor) -> None:
        self.session.editor = editor

    @property
    def store(self):
        return self.session.store

    @store.setter
    def store(self, store) -> None:
        self.session.store = store

    @property
    def verify_defaults(self) -> dict:
        return self.session.verify_defaults

    @property
    def tracer(self):
        return self.session.tracer

    @tracer.setter
    def tracer(self, tracer) -> None:
        self.session.tracer = tracer

    # -- the line interpreter ----------------------------------------------

    def execute(self, line: str) -> str:
        self.last_error = None
        fields = line.split()
        if not fields:
            return ""
        command = fields[0].lower()
        args = fields[1:]
        handler = getattr(self, f"_cmd_{command}", None)
        if handler is None:
            return f"error: unknown command {command!r} (try help)"
        try:
            return handler(args)
        except COMMAND_ERRORS as exc:
            self.last_error = exc
            message = str(exc).strip("'\"")
            return f"error: {message}"

    def run_script(self, lines: list[str]) -> list[str]:
        return [self.execute(line) for line in lines]

    def _do(self, request):
        return self.session.dispatch(request)

    # -- environment commands ----------------------------------------------

    def _cmd_read(self, args: list[str]) -> str:
        if len(args) != 1:
            raise RiotError("usage: read <file>")
        result = self._do(t.ReadRequest(name=args[0]))
        return f"read {len(result.cells)} cell(s): {', '.join(result.cells)}"

    def _cmd_write(self, args: list[str]) -> str:
        if len(args) != 1:
            raise RiotError("usage: write <file.comp>")
        result = self._do(t.WriteRequest(name=args[0]))
        return f"wrote session to {result.path}"

    def _cmd_writecif(self, args: list[str]) -> str:
        if len(args) != 2:
            raise RiotError("usage: writecif <cell> <file>")
        result = self._do(t.WriteCifRequest(cell=args[0], path=args[1]))
        return f"wrote CIF for {result.cell} to {result.path}"

    def _cmd_writesticks(self, args: list[str]) -> str:
        if len(args) != 2:
            raise RiotError("usage: writesticks <cell> <file>")
        result = self._do(t.WriteSticksRequest(cell=args[0], path=args[1]))
        message = f"wrote Sticks for {result.cell} to {result.path}"
        if result.warnings:
            message += f" ({result.warnings} warning(s))"
        return message

    def _cmd_plot(self, args: list[str]) -> str:
        """Hardcopy: symbolic view by default, mask view with 'mask'."""
        if len(args) not in (2, 3):
            raise RiotError("usage: plot <cell> <file.svg> [mask]")
        mask = len(args) == 3 and args[2] == "mask"
        result = self._do(t.PlotRequest(cell=args[0], path=args[1], mask=mask))
        return f"plotted {result.cell} to {result.path}"

    # -- editing lifecycle ------------------------------------------------------

    def _cmd_new(self, args: list[str]) -> str:
        if len(args) != 1:
            raise RiotError("usage: new <cell>")
        result = self._do(t.NewCellRequest(name=args[0]))
        return f"editing new cell {result.name}"

    def _cmd_edit(self, args: list[str]) -> str:
        if len(args) != 1:
            raise RiotError("usage: edit <cell>")
        result = self._do(t.EditRequest(name=args[0]))
        return f"editing {result.name}"

    def _cmd_finish(self, args: list[str]) -> str:
        result = self._do(t.FinishRequest())
        connectors = result.connectors
        return f"finished; {len(connectors)} connector(s): {', '.join(connectors)}"

    def _cmd_delete(self, args: list[str]) -> str:
        if len(args) != 1:
            raise RiotError("usage: delete <cell>")
        result = self._do(t.DeleteCellRequest(name=args[0]))
        return f"deleted {result.name}"

    def _cmd_rename(self, args: list[str]) -> str:
        if len(args) != 2:
            raise RiotError("usage: rename <old> <new>")
        result = self._do(t.RenameCellRequest(old=args[0], new=args[1]))
        return f"renamed {result.old} to {result.new}"

    # -- environment settings -----------------------------------------------------

    def _cmd_set(self, args: list[str]) -> str:
        if len(args) == 2 and args[0] == "tracks":
            result = self._do(t.SetTracksRequest(tracks=int(args[1])))
            return f"routing tracks per channel = {result.tracks}"
        raise RiotError("usage: set tracks <n>")

    # -- editing verbs (the graphical commands, scriptable) -----------------

    def _cmd_select(self, args: list[str]) -> str:
        if len(args) != 1:
            raise RiotError("usage: select <cell>")
        result = self._do(t.SelectRequest(cell_name=args[0]))
        return f"selected {result.cell_name}"

    def _cmd_create(self, args: list[str]) -> str:
        """CREATE from a script line: positional cell + position, then
        ``key=value`` options mirroring the editor call."""
        usage = (
            "usage: create <cell> <x> <y> "
            "[name=N] [orient=R90] [nx=N] [ny=N] [dx=D] [dy=D]"
        )
        if len(args) < 3:
            raise RiotError(usage)
        cell_name, x, y = args[0], int(args[1]), int(args[2])
        options: dict = {}
        allowed = {"name": str, "orient": str, "nx": int, "ny": int,
                   "dx": int, "dy": int}
        for extra in args[3:]:
            key, sep, value = extra.partition("=")
            if not sep or key not in allowed:
                raise RiotError(usage)
            options["orientation" if key == "orient" else key] = (
                allowed[key](value)
            )
        result = self._do(
            t.CreateRequest(at=(x, y), cell_name=cell_name, **options)
        )
        return f"created {result.name} at ({result.x}, {result.y})"

    def _cmd_connect(self, args: list[str]) -> str:
        if len(args) != 4:
            raise RiotError(
                "usage: connect <from-inst> <from-conn> <to-inst> <to-conn>"
            )
        result = self._do(
            t.ConnectRequest(
                from_instance=args[0],
                from_connector=args[1],
                to_instance=args[2],
                to_connector=args[3],
            )
        )
        return "pending: " + result.display

    def _cmd_abut(self, args: list[str]) -> str:
        if args not in ([], ["overlap"]):
            raise RiotError("usage: abut [overlap]")
        result = self._do(t.AbutRequest(overlap=bool(args)))
        message = f"abutted: {result.made} connection(s) made"
        if result.warnings:
            message += f", {len(result.warnings)} unmade"
        return message

    def _cmd_route(self, args: list[str]) -> str:
        """ROUTE the pending connections; ``stay`` leaves the from
        instance where it is (``move_from=False``)."""
        if args not in ([], ["stay"]):
            raise RiotError("usage: route [stay]")
        result = self._do(t.RouteRequest(move_from=not args))
        return (
            f"routed: cell {result.route_cell}, {result.wires} wire(s), "
            f"{result.channels} channel(s), height {result.height}"
        )

    def _cmd_stretch(self, args: list[str]) -> str:
        if args not in ([], ["overlap"]):
            raise RiotError("usage: stretch [overlap]")
        result = self._do(t.StretchRequest(overlap=bool(args)))
        return (
            f"stretched {result.old_cell} -> {result.new_cell} "
            f"along {result.axis}"
        )

    # -- inspection -----------------------------------------------------------------

    def _cmd_cells(self, args: list[str]) -> str:
        result = self._do(t.CellsRequest())
        names = result.names
        return "cells: " + (", ".join(names) if names else "(none)")

    def _cmd_pending(self, args: list[str]) -> str:
        result = self._do(t.PendingRequest())
        entries = result.entries
        return "pending: " + ("; ".join(entries) if entries else "(none)")

    def _cmd_check(self, args: list[str]) -> str:
        result = self._do(t.CheckRequest())
        return (
            f"connections made: {result.made}, "
            f"near misses: {result.near_misses}, "
            f"overlapping instances: {result.overlapping}, "
            f"unconnected: {result.unconnected}"
        )

    def _cmd_report(self, args: list[str]) -> str:
        """Hierarchy and area report for a composition cell."""
        if len(args) != 1:
            raise RiotError("usage: report <cell>")
        return self._do(t.ReportRequest(cell=args[0])).text

    def _cmd_verify(self, args: list[str]) -> str:
        """Full verification through the parallel pipeline:
        netcheck + DRC + mask extraction, fanned out with ``--jobs``,
        artifact-cached with ``--cache``, timed with ``--timing``."""
        usage = "usage: verify <cell>... [--jobs N] [--cache DIR] [--timing]"
        names: list[str] = []
        jobs: int | None = None
        cache: str | None = None
        timing: bool | None = None
        i = 0
        while i < len(args):
            arg = args[i]
            if arg == "--jobs":
                if i + 1 >= len(args):
                    raise RiotError(usage)
                jobs = int(args[i + 1])
                i += 2
            elif arg == "--cache":
                if i + 1 >= len(args):
                    raise RiotError(usage)
                cache = args[i + 1]
                i += 2
            elif arg == "--timing":
                timing = True
                i += 1
            elif arg.startswith("--"):
                raise RiotError(usage)
            else:
                names.append(arg)
                i += 1
        if not names:
            raise RiotError(usage)
        result = self._do(
            t.VerifyRequest(
                cells=tuple(names), jobs=jobs, cache=cache, timing=timing
            )
        )
        lines = list(result.summaries)
        if result.timing is not None:
            lines.append(result.timing)
        return "\n".join(lines)

    # -- replay -----------------------------------------------------------------------

    def _cmd_savereplay(self, args: list[str]) -> str:
        if len(args) != 1:
            raise RiotError("usage: savereplay <file>")
        result = self._do(t.SaveReplayRequest(path=args[0]))
        return f"saved replay ({result.commands} commands) to {result.path}"

    def _cmd_replay(self, args: list[str]) -> str:
        if len(args) != 1:
            raise RiotError("usage: replay <file>")
        result = self._do(t.ReplayFileRequest(path=args[0]))
        return f"replayed {result.executed} command(s)"

    def _cmd_journal(self, args: list[str]) -> str:
        """Attach a write-ahead journal: every future command is
        durably appended to the file before it executes."""
        if len(args) != 1:
            raise RiotError("usage: journal <file>")
        result = self._do(t.JournalRequest(path=args[0]))
        return (
            f"journaling to {result.path} "
            f"({result.checkpointed} command(s) checkpointed)"
        )

    def _cmd_recover(self, args: list[str]) -> str:
        """Crash recovery: salvage and replay a journal in skip mode."""
        if len(args) != 1:
            raise RiotError("usage: recover <file>")
        result = self._do(t.RecoverRequest(path=args[0]))
        lines = [
            f"recovered {result.executed} of {result.total} command(s)"
            + (f", {len(result.skipped)} skipped" if result.skipped else "")
        ]
        for entry in result.skipped:
            where = (
                f"entry {entry.index}"
                if entry.index is not None
                else f"line {entry.lineno}"
            )
            lines.append(f"  skipped {where} ({entry.command}): {entry.error}")
        if result.corruption is not None:
            lines.append(
                "  journal corrupt tail at "
                f"line {result.corruption.lineno}: {result.corruption.reason}"
            )
        return "\n".join(lines)

    # -- the shared cell library ----------------------------------------------

    def _cmd_library(self, args: list[str]) -> str:
        """The shared cell store: publish/consume versioned cells and
        see what a new version breaks (the invalidation cascade)."""
        usage = (
            "usage: library publish <cell> [--expect N] [--no-cascade] | "
            "get <ref> | resolve <ref> | list [name] | "
            "deprecate <name> <version> | deps <ref> | impact <ref>"
        )
        if not args:
            raise RiotError(usage)
        verb, rest = args[0], args[1:]
        if verb == "publish":
            expected: int | None = None
            cascade = True
            names: list[str] = []
            i = 0
            while i < len(rest):
                if rest[i] == "--expect":
                    if i + 1 >= len(rest):
                        raise RiotError(usage)
                    expected = int(rest[i + 1])
                    i += 2
                elif rest[i] == "--no-cascade":
                    cascade = False
                    i += 1
                elif rest[i].startswith("--"):
                    raise RiotError(usage)
                else:
                    names.append(rest[i])
                    i += 1
            if len(names) != 1:
                raise RiotError(usage)
            result = self._do(
                t.LibraryPublishRequest(
                    name=names[0], expected_version=expected, cascade=cascade
                )
            )
            lines = [f"published {result.name}@{result.version} ({result.kind})"]
            if result.deps:
                lines[0] += " deps: " + ", ".join(result.deps)
            lines.extend(self._impact_lines(result.impact))
            return "\n".join(lines)
        if verb == "get":
            if len(rest) != 1:
                raise RiotError(usage)
            result = self._do(t.LibraryGetRequest(ref=rest[0]))
            return (
                f"loaded {result.ref} ({result.kind}): "
                + (", ".join(result.loaded) if result.loaded else "(nothing new)")
            )
        if verb == "resolve":
            if len(rest) != 1:
                raise RiotError(usage)
            result = self._do(t.LibraryResolveRequest(ref=rest[0]))
            text = (
                f"{result.name}@{result.version} ({result.kind}) "
                f"hash {result.hash[:12]}"
            )
            if result.deprecated:
                text += " [deprecated]"
            if result.deps:
                text += " deps: " + ", ".join(result.deps)
            return text
        if verb == "list":
            if len(rest) > 1:
                raise RiotError(usage)
            result = self._do(
                t.LibraryListRequest(name=rest[0] if rest else None)
            )
            if not result.entries:
                return "library: (empty)"
            lines = []
            for entry in result.entries:
                line = f"{entry.name}@{entry.version} ({entry.kind})"
                if entry.deprecated:
                    line += " [deprecated]"
                if entry.deps:
                    line += " deps: " + ", ".join(entry.deps)
                lines.append(line)
            return "\n".join(lines)
        if verb == "deprecate":
            if len(rest) != 2:
                raise RiotError(usage)
            result = self._do(
                t.LibraryDeprecateRequest(name=rest[0], version=int(rest[1]))
            )
            return f"deprecated {result.name}@{result.version}"
        if verb == "deps":
            if len(rest) != 1:
                raise RiotError(usage)
            result = self._do(t.LibraryDepsRequest(ref=rest[0]))
            return (
                f"{result.ref} deps: "
                + (", ".join(result.deps) if result.deps else "(none)")
                + "; dependents: "
                + (
                    ", ".join(result.dependents)
                    if result.dependents
                    else "(none)"
                )
            )
        if verb == "impact":
            if len(rest) != 1:
                raise RiotError(usage)
            result = self._do(t.LibraryImpactRequest(ref=rest[0]))
            lines = [f"impact of {result.ref}:"]
            lines.extend(self._impact_lines(result.impact) or ["  (no dependents)"])
            return "\n".join(lines)
        raise RiotError(usage)

    @staticmethod
    def _impact_lines(impact) -> list[str]:
        """The cascade report, one dependent per line."""
        lines = []
        for entry in impact:
            if entry.survived:
                lines.append(
                    f"  {entry.composition} (via {entry.dependency}): "
                    f"ok ({entry.executed}/{entry.total} commands)"
                )
            else:
                first = entry.failures[0]
                lines.append(
                    f"  {entry.composition} (via {entry.dependency}): "
                    f"BROKEN at {first.command} [{first.code}] {first.error}"
                )
        return lines

    # -- the big-floorplan workload -------------------------------------------

    def _cmd_floorplan(self, args: list[str]) -> str:
        """Generate and assemble a seeded synthetic chip in this
        session: ``floorplan build [seed] [tier] [--strategy NAME]``
        places pad ring, datapath blocks and routing channels through
        the normal command surface; ``floorplan tiers`` lists sizes."""
        usage = (
            "usage: floorplan build [seed] [tier] [--strategy NAME] | "
            "floorplan tiers"
        )
        if not args:
            raise RiotError(usage)
        verb, rest = args[0], args[1:]
        if verb == "tiers":
            if rest:
                raise RiotError(usage)
            result = self._do(t.FloorplanTiersRequest())
            lines = []
            for tier in result.tiers:
                cols, rows = tier.grid
                lines.append(
                    f"{tier.name}: {cols}x{rows} blocks of "
                    f"{tier.block_rows}x{tier.block_cols} slices, "
                    f"{tier.pads_per_side} pads/side "
                    f"(~{tier.slice_instances} slice instances)"
                )
            return "\n".join(lines)
        if verb == "build":
            strategy: str | None = None
            positional: list[str] = []
            i = 0
            while i < len(rest):
                if rest[i] == "--strategy":
                    if i + 1 >= len(rest):
                        raise RiotError(usage)
                    strategy = rest[i + 1]
                    i += 2
                elif rest[i].startswith("--"):
                    raise RiotError(usage)
                else:
                    positional.append(rest[i])
                    i += 1
            if len(positional) > 2:
                raise RiotError(usage)
            seed = int(positional[0]) if positional else 0
            tier = positional[1] if len(positional) > 1 else "small"
            result = self._do(
                t.FloorplanBuildRequest(seed=seed, tier=tier, strategy=strategy)
            )
            return (
                f"assembled {result.top} ({result.tier}, seed {result.seed}): "
                f"{result.instances} instances in {result.cells} cells, "
                f"{result.abuts} abuts / {result.stretches} stretches / "
                f"{result.routes} routes, {result.route_spills} spill(s), "
                f"{result.pads_connected}/{result.pads_placed} pads strapped, "
                f"area {result.area}"
            )
        raise RiotError(usage)

    # -- observability --------------------------------------------------------

    def _cmd_stats(self, args: list[str]) -> str:
        """Dump the session's metrics registry as ``name value`` lines."""
        if args:
            raise RiotError("usage: stats")
        return self._do(t.StatsRequest()).text

    def _cmd_trace(self, args: list[str]) -> str:
        """Runtime tracing control: ``trace on`` starts collecting
        spans, ``trace off`` stops (keeping what was collected),
        ``trace save <file>`` writes the Chrome trace-event document,
        ``trace status`` reports the switch and span counts."""
        usage = "usage: trace on|off|status|save <file>"
        if not args or len(args) > 2:
            raise RiotError(usage)
        verb = args[0]
        path = args[1] if len(args) == 2 else None
        result = self._do(t.TraceRequest(verb=verb, path=path))
        if verb == "on":
            return "tracing on"
        if verb == "off":
            return "tracing off"
        if verb == "save":
            return (
                f"saved {result.finished} span(s) to {result.path} "
                "(Chrome trace-event format)"
            )
        if not result.collecting:
            return "tracing off (no spans collected)"
        return (
            f"tracing {result.state}: {result.finished} span(s) "
            f"finished, {result.open} open"
        )

    def _cmd_help(self, args: list[str]) -> str:
        commands = sorted(
            name[5:] for name in dir(self) if name.startswith("_cmd_")
        )
        result = t.HelpResult(commands=tuple(commands))
        return "commands: " + ", ".join(result.commands)
