"""The textual command interface.

"The textual command interface, accessed with the keyboard, is used
primarily to modify the editing environment.  Textual commands store
and retrieve cells on disk, set plotting parameters, generate hardcopy
plots of cells, set defaults for routing operations, and invoke the
graphical command editor to modify a composition cell."

Files are accessed through a pluggable store (a dict-like object by
default) so sessions run hermetically under test; pass
:class:`DiskStore` to touch the real filesystem.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path as FsPath

from repro.cif.errors import CifError
from repro.composition.cell import CompositionCell, CompositionError
from repro.composition.format import CompositionFormatError
from repro.core.convert import composition_to_cif, composition_to_sticks
from repro.core.editor import RiotEditor
from repro.core.errors import RiotError
from repro.geometry.point import Point
from repro.graphics.svg import render_mask, render_symbolic
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.rest.errors import InfeasibleConstraints
from repro.sticks.errors import SticksError
from repro.sticks.writer import write_sticks

#: Everything an interactive command may fail with; anything else is a
#: bug and propagates.
COMMAND_ERRORS = (
    RiotError,
    CompositionError,
    CompositionFormatError,
    CifError,
    SticksError,
    InfeasibleConstraints,
    KeyError,
    ValueError,
)


class MemoryStore(dict):
    """The default in-memory file store."""

    def read(self, name: str) -> str:
        try:
            return self[name]
        except KeyError:
            raise RiotError(f"no such file {name!r}") from None

    def write(self, name: str, content: str) -> None:
        self[name] = content


class DiskStore:
    """A file store over the real filesystem, rooted at a directory.

    Writes are atomic: content lands in a sibling temp file, is
    fsynced, and then renamed over the target with ``os.replace`` — a
    crash mid-save can never leave a torn composition or CIF file,
    only the old version or the new one.
    """

    def __init__(self, root: str = ".") -> None:
        self.root = FsPath(root)

    def read(self, name: str) -> str:
        target = self.root / name
        if not target.exists():
            raise RiotError(f"no such file {name!r}")
        return target.read_text()

    def write(self, name: str, content: str) -> None:
        target = self.root / name
        target.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=target.parent, prefix=target.name + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as f:
                f.write(content)
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, target)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


class TextualInterface:
    """Executes command lines against an editor.

    ``execute`` returns the response text; command errors come back as
    ``error: ...`` strings rather than exceptions, the way an
    interactive tool reports them (``last_error`` keeps the exception).
    """

    def __init__(self, editor: RiotEditor, store=None) -> None:
        self.editor = editor
        self.store = store if store is not None else MemoryStore()
        self.last_error: Exception | None = None
        #: Session-wide defaults for the ``verify`` command, set by the
        #: CLI's ``--jobs`` / ``--cache`` / ``--timing`` flags.
        self.verify_defaults: dict = {"jobs": 1, "cache": None, "timing": False}
        #: The tracer last enabled by ``trace on`` (kept after ``trace
        #: off`` so ``trace save`` can still export its spans).
        self.tracer = None

    def execute(self, line: str) -> str:
        self.last_error = None
        fields = line.split()
        if not fields:
            return ""
        command = fields[0].lower()
        args = fields[1:]
        handler = getattr(self, f"_cmd_{command}", None)
        if handler is None:
            return f"error: unknown command {command!r} (try help)"
        try:
            return handler(args)
        except COMMAND_ERRORS as exc:
            self.last_error = exc
            message = str(exc).strip("'\"")
            return f"error: {message}"

    def run_script(self, lines: list[str]) -> list[str]:
        return [self.execute(line) for line in lines]

    # -- environment commands ----------------------------------------------

    def _cmd_read(self, args: list[str]) -> str:
        if len(args) != 1:
            raise RiotError("usage: read <file>")
        name = args[0]
        text = self.store.read(name)
        if name.endswith(".cif"):
            added = self.editor.read_cif(text, source_file=name)
        elif name.endswith(".sticks"):
            added = self.editor.read_sticks(text, source_file=name)
        elif name.endswith(".comp"):
            added = self.editor.read_composition(text)
        else:
            raise RiotError(
                f"cannot tell the format of {name!r} "
                "(expect .cif, .sticks or .comp)"
            )
        return f"read {len(added)} cell(s): {', '.join(added)}"

    def _cmd_write(self, args: list[str]) -> str:
        if len(args) != 1:
            raise RiotError("usage: write <file.comp>")
        self.store.write(args[0], self.editor.write_composition())
        return f"wrote session to {args[0]}"

    def _cmd_writecif(self, args: list[str]) -> str:
        if len(args) != 2:
            raise RiotError("usage: writecif <cell> <file>")
        cell = self._composition(args[0])
        self.store.write(args[1], composition_to_cif(cell, self.editor.technology))
        return f"wrote CIF for {args[0]} to {args[1]}"

    def _cmd_writesticks(self, args: list[str]) -> str:
        if len(args) != 2:
            raise RiotError("usage: writesticks <cell> <file>")
        cell = self._composition(args[0])
        flat, warnings = composition_to_sticks(cell, self.editor.technology)
        self.store.write(args[1], write_sticks([flat]))
        message = f"wrote Sticks for {args[0]} to {args[1]}"
        if warnings:
            message += f" ({len(warnings)} warning(s))"
        return message

    def _cmd_plot(self, args: list[str]) -> str:
        """Hardcopy: symbolic view by default, mask view with 'mask'."""
        if len(args) not in (2, 3):
            raise RiotError("usage: plot <cell> <file.svg> [mask]")
        cell = self._composition(args[0])
        if len(args) == 3 and args[2] == "mask":
            from repro.cif.parser import parse_cif
            from repro.cif.semantics import elaborate

            text = composition_to_cif(cell, self.editor.technology)
            design = elaborate(parse_cif(text), self.editor.technology)
            svg = render_mask(design.cell(cell.name).flatten())
        else:
            svg = render_symbolic(cell)
        self.store.write(args[1], svg)
        return f"plotted {args[0]} to {args[1]}"

    # -- editing lifecycle ------------------------------------------------------

    def _cmd_new(self, args: list[str]) -> str:
        if len(args) != 1:
            raise RiotError("usage: new <cell>")
        self.editor.new_cell(args[0])
        return f"editing new cell {args[0]}"

    def _cmd_edit(self, args: list[str]) -> str:
        if len(args) != 1:
            raise RiotError("usage: edit <cell>")
        self.editor.edit(args[0])
        return f"editing {args[0]}"

    def _cmd_finish(self, args: list[str]) -> str:
        promoted = self.editor.finish()
        return f"finished; {len(promoted)} connector(s): {', '.join(promoted)}"

    def _cmd_delete(self, args: list[str]) -> str:
        if len(args) != 1:
            raise RiotError("usage: delete <cell>")
        self.editor.delete_cell(args[0])
        return f"deleted {args[0]}"

    def _cmd_rename(self, args: list[str]) -> str:
        if len(args) != 2:
            raise RiotError("usage: rename <old> <new>")
        self.editor.rename_cell(args[0], args[1])
        return f"renamed {args[0]} to {args[1]}"

    # -- environment settings -----------------------------------------------------

    def _cmd_set(self, args: list[str]) -> str:
        if len(args) == 2 and args[0] == "tracks":
            value = int(args[1])
            if value < 1:
                raise RiotError("tracks must be >= 1")
            self.editor.tracks_per_channel = value
            return f"routing tracks per channel = {value}"
        raise RiotError("usage: set tracks <n>")

    # -- editing verbs (the graphical commands, scriptable) -----------------

    def _cmd_select(self, args: list[str]) -> str:
        if len(args) != 1:
            raise RiotError("usage: select <cell>")
        self.editor.select(args[0])
        return f"selected {args[0]}"

    def _cmd_create(self, args: list[str]) -> str:
        """CREATE from a script line: positional cell + position, then
        ``key=value`` options mirroring the editor call."""
        usage = (
            "usage: create <cell> <x> <y> "
            "[name=N] [orient=R90] [nx=N] [ny=N] [dx=D] [dy=D]"
        )
        if len(args) < 3:
            raise RiotError(usage)
        cell_name, x, y = args[0], int(args[1]), int(args[2])
        options: dict = {}
        allowed = {"name": str, "orient": str, "nx": int, "ny": int,
                   "dx": int, "dy": int}
        for extra in args[3:]:
            key, sep, value = extra.partition("=")
            if not sep or key not in allowed:
                raise RiotError(usage)
            options["orientation" if key == "orient" else key] = (
                allowed[key](value)
            )
        instance = self.editor.create(
            Point(x, y), cell_name=cell_name, **options
        )
        return f"created {instance.name} at ({x}, {y})"

    def _cmd_connect(self, args: list[str]) -> str:
        if len(args) != 4:
            raise RiotError(
                "usage: connect <from-inst> <from-conn> <to-inst> <to-conn>"
            )
        return "pending: " + self.editor.connect(*args)

    def _cmd_abut(self, args: list[str]) -> str:
        if args not in ([], ["overlap"]):
            raise RiotError("usage: abut [overlap]")
        result = self.editor.do_abut(overlap=bool(args))
        message = f"abutted: {result.made} connection(s) made"
        if result.warnings:
            message += f", {len(result.warnings)} unmade"
        return message

    def _cmd_route(self, args: list[str]) -> str:
        """ROUTE the pending connections; ``stay`` leaves the from
        instance where it is (``move_from=False``)."""
        if args not in ([], ["stay"]):
            raise RiotError("usage: route [stay]")
        result = self.editor.do_route(move_from=not args)
        solved = result.solved
        return (
            f"routed: cell {result.route_cell}, {solved.wire_count} wire(s), "
            f"{solved.channels} channel(s), height {solved.height}"
        )

    def _cmd_stretch(self, args: list[str]) -> str:
        if args not in ([], ["overlap"]):
            raise RiotError("usage: stretch [overlap]")
        result = self.editor.do_stretch(overlap=bool(args))
        return (
            f"stretched {result.old_cell} -> {result.new_cell} "
            f"along {result.axis}"
        )

    # -- inspection -----------------------------------------------------------------

    def _cmd_cells(self, args: list[str]) -> str:
        names = self.editor.library.names
        return "cells: " + (", ".join(names) if names else "(none)")

    def _cmd_pending(self, args: list[str]) -> str:
        entries = self.editor.pending.display_strings()
        return "pending: " + ("; ".join(entries) if entries else "(none)")

    def _cmd_check(self, args: list[str]) -> str:
        report = self.editor.check()
        return (
            f"connections made: {report.made_count}, "
            f"near misses: {len(report.near_misses)}, "
            f"overlapping instances: {len(report.overlapping_instances)}, "
            f"unconnected: {len(report.unconnected)}"
        )

    def _cmd_report(self, args: list[str]) -> str:
        """Hierarchy and area report for a composition cell."""
        from repro.core.report import report_cell

        if len(args) != 1:
            raise RiotError("usage: report <cell>")
        return report_cell(self._composition(args[0])).to_text()

    def _cmd_verify(self, args: list[str]) -> str:
        """Full verification through the parallel pipeline:
        netcheck + DRC + mask extraction, fanned out with ``--jobs``,
        artifact-cached with ``--cache``, timed with ``--timing``."""
        from repro.pipeline import run_verification

        usage = "usage: verify <cell>... [--jobs N] [--cache DIR] [--timing]"
        names: list[str] = []
        options = dict(self.verify_defaults)
        i = 0
        while i < len(args):
            arg = args[i]
            if arg == "--jobs":
                if i + 1 >= len(args):
                    raise RiotError(usage)
                options["jobs"] = int(args[i + 1])
                i += 2
            elif arg == "--cache":
                if i + 1 >= len(args):
                    raise RiotError(usage)
                options["cache"] = args[i + 1]
                i += 2
            elif arg == "--timing":
                options["timing"] = True
                i += 1
            elif arg.startswith("--"):
                raise RiotError(usage)
            else:
                names.append(arg)
                i += 1
        if not names:
            raise RiotError(usage)
        cells = [self._composition(name) for name in names]
        with obs_trace.span(
            "command.verify",
            category="command",
            cells=names,
            jobs=options["jobs"],
        ):
            result = run_verification(
                cells,
                self.editor.technology,
                jobs=options["jobs"],
                cache=options["cache"],
            )
        lines = [result.reports[cell.name].summary() for cell in cells]
        if options["timing"]:
            lines.append(result.timing.to_text())
        return "\n".join(lines)

    # -- replay -----------------------------------------------------------------------

    def _cmd_savereplay(self, args: list[str]) -> str:
        if len(args) != 1:
            raise RiotError("usage: savereplay <file>")
        self.store.write(args[0], self.editor.journal.to_text())
        return f"saved replay ({len(self.editor.journal)} commands) to {args[0]}"

    def _cmd_replay(self, args: list[str]) -> str:
        if len(args) != 1:
            raise RiotError("usage: replay <file>")
        executed = self.editor.replay_from(self.store.read(args[0]))
        return f"replayed {executed} command(s)"

    def _cmd_journal(self, args: list[str]) -> str:
        """Attach a write-ahead journal: every future command is
        durably appended to the file before it executes."""
        if len(args) != 1:
            raise RiotError("usage: journal <file>")
        root = getattr(self.store, "root", None)
        if root is None:
            raise RiotError("journal requires a disk-backed store")
        from repro.core.wal import JournalWriter

        self.editor.journal.attach(JournalWriter(FsPath(root) / args[0]))
        count = len(self.editor.journal)
        return f"journaling to {args[0]} ({count} command(s) checkpointed)"

    def _cmd_recover(self, args: list[str]) -> str:
        """Crash recovery: salvage and replay a journal in skip mode."""
        if len(args) != 1:
            raise RiotError("usage: recover <file>")
        report = self.editor.recover_from(self.store.read(args[0]))
        return report.to_text()

    # -- observability --------------------------------------------------------

    def _cmd_stats(self, args: list[str]) -> str:
        """Dump the session's metrics registry as ``name value`` lines."""
        if args:
            raise RiotError("usage: stats")
        return obs_metrics.registry().render_text()

    def _cmd_trace(self, args: list[str]) -> str:
        """Runtime tracing control: ``trace on`` starts collecting
        spans, ``trace off`` stops (keeping what was collected),
        ``trace save <file>`` writes the Chrome trace-event document,
        ``trace status`` reports the switch and span counts."""
        usage = "usage: trace on|off|status|save <file>"
        if not args:
            raise RiotError(usage)
        verb = args[0]
        if verb == "on" and len(args) == 1:
            self.tracer = obs_trace.enable(self.tracer)
            return "tracing on"
        if verb == "off" and len(args) == 1:
            previous = obs_trace.disable()
            if previous is not None:
                self.tracer = previous
            return "tracing off"
        if verb == "status" and len(args) == 1:
            tracer = obs_trace.active() or self.tracer
            if tracer is None:
                return "tracing off (no spans collected)"
            state = "on" if obs_trace.enabled() else "off"
            return (
                f"tracing {state}: {len(tracer.finished())} span(s) "
                f"finished, {tracer.open_count()} open"
            )
        if verb == "save" and len(args) == 2:
            from repro.obs.export import chrome_text

            tracer = obs_trace.active() or self.tracer
            if tracer is None:
                raise RiotError("nothing traced yet (try: trace on)")
            self.store.write(
                args[1],
                chrome_text(
                    tracer.finished(),
                    obs_metrics.registry().snapshot(),
                    unclosed=tracer.open_count(),
                ),
            )
            return (
                f"saved {len(tracer.finished())} span(s) to {args[1]} "
                "(Chrome trace-event format)"
            )
        raise RiotError(usage)

    def _cmd_help(self, args: list[str]) -> str:
        commands = sorted(
            name[5:] for name in dir(self) if name.startswith("_cmd_")
        )
        return "commands: " + ", ".join(commands)

    # -- helpers -------------------------------------------------------------------------

    def _composition(self, name: str) -> CompositionCell:
        cell = self.editor.library.get(name)
        if cell.is_leaf:
            raise RiotError(f"{name!r} is a leaf cell")
        return cell
