"""The checking pass Riot's positional connections force on users.

"However, the mere possibility of missed connections requires
checking by users..." — this module is that checking, bundled: the
positional netcheck over the composition, design rules over the
generated mask, and mask-level continuity probes for the connections
the designer cares about.

Since the pipeline PR this module is a thin client of
``repro.pipeline``: the same checks, decomposed into a task DAG that
can fan out over worker processes (``jobs``) and cache every
intermediate artifact by content (``cache``).  The report type and
:func:`verify_cell` signature are unchanged for existing callers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.composition.cell import CompositionCell
from repro.composition.netcheck import ConnectionReport
from repro.drc.engine import DrcReport
from repro.extract.netlist import MaskNetlist
from repro.geometry.layers import Technology


@dataclass
class VerificationReport:
    """Everything a Riot user checked before trusting a composition."""

    cell_name: str
    connections: ConnectionReport
    drc: DrcReport
    netlist: MaskNetlist
    shape_count: int = 0
    probes: list[tuple[str, str, bool]] = field(default_factory=list)

    @property
    def positional_ok(self) -> bool:
        return not self.connections.near_misses

    @property
    def drc_ok(self) -> bool:
        return self.drc.is_clean

    def probe(self, name_a: str, name_b: str, cell: CompositionCell) -> bool:
        """Are two composition connectors electrically continuous on
        the mask?  Records the probe in the report."""
        a = cell.connector(name_a)
        b = cell.connector(name_b)
        ok = self.netlist.connected(
            a.position, a.layer.name, b.position, b.layer.name
        )
        self.probes.append((name_a, name_b, ok))
        return ok

    def summary(self) -> str:
        return (
            f"{self.cell_name}: {self.connections.made_count} positional "
            f"connections, {len(self.connections.near_misses)} near misses, "
            f"{len(self.drc.violations)} DRC violations over "
            f"{self.shape_count} shapes, {self.netlist.node_count} mask nodes"
        )


def verify_cell(
    cell: CompositionCell,
    technology: Technology,
    *,
    jobs: int = 1,
    cache=None,
) -> VerificationReport:
    """Run the full checking pass over one composition cell.

    ``jobs`` and ``cache`` (a directory path or
    :class:`~repro.pipeline.ContentCache`) are forwarded to the
    pipeline; the defaults reproduce the historical serial,
    uncached behaviour exactly.
    """
    from repro.pipeline import run_verification

    result = run_verification([cell], technology, jobs=jobs, cache=cache)
    return result.reports[cell.name]
