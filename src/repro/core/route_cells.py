"""Building route cells from solved channels.

"Riot then makes a new Sticks cell containing the river route wires
and places an instance of that route cell next to the to instance.
The from instance is moved to abut the other side of the river route
instance, thereby using the least amount of space possible for the
route. ... The routing cells made in Riot are treated just like other
cells.  They are entered in the list of cells in the cell menu, and
may be instantiated, moved, and deleted by the user."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.composition.cell import LeafCell
from repro.composition.library import CellLibrary
from repro.core.pending import PendingList
from repro.core.river import ChannelFrame, RiverRoute, RiverWire
from repro.geometry.box import Box
from repro.geometry.point import Point
from repro.sticks.model import Pin, SticksCell, SymbolicWire


@dataclass
class BuiltRoute:
    """A route cell in parent coordinates, plus where the from
    instance's connectors must land."""

    cell: SticksCell
    from_targets: dict[str, Point]  # from-connector name -> parent position
    route: RiverRoute


def build_route_cell(
    name: str,
    frame: ChannelFrame,
    wires: list[RiverWire],
    route: RiverRoute,
    pending: PendingList,
) -> BuiltRoute:
    """Realise a solved channel as a Sticks cell in parent coordinates.

    Pins at the channel entry carry the to-connector names (prefixed
    to stay unique); pins at the exit carry the from-connector names.
    The exit pin positions are exactly where the from instance's
    connectors must be moved to.
    """
    cell = SticksCell(name)
    from_targets: dict[str, Point] = {}

    for index, (wire, connection) in enumerate(zip(wires, pending)):
        points = [frame.to_parent(u, v) for u, v in wire.points(route.height)]
        cell.wires.append(
            SymbolicWire(wire.layer_name, tuple(points), wire.width)
        )
        entry, exit_ = points[0], points[-1]
        # Index prefixes keep pin names unique even when several to
        # instances expose identically named connectors.
        cell.pins.append(
            Pin(
                f"IN{index}_{connection.to_connector}",
                wire.layer_name,
                entry,
                wire.width,
            )
        )
        cell.pins.append(
            Pin(
                f"OUT{index}_{connection.from_connector}",
                wire.layer_name,
                exit_,
                wire.width,
            )
        )
        from_targets[connection.from_connector] = exit_

    us = [u for w in wires for u in (w.u_in, w.u_out)]
    margin = max(w.width for w in wires)
    lo = frame.to_parent(min(us) - margin, 0)
    hi = frame.to_parent(max(us) + margin, route.height)
    cell.boundary = Box.from_points([lo, hi])
    cell.validate()
    return BuiltRoute(cell, from_targets, route)


def register_route_cell(
    built: BuiltRoute, library: CellLibrary, base_name: str = "route"
) -> LeafCell:
    """Enter a route cell in the cell menu like any other cell."""
    built.cell.name = library.unique_name(base_name)
    leaf = LeafCell.from_sticks(built.cell, library.technology)
    return library.add(leaf)


def build_bringout_cell(
    name: str,
    connectors,
    edge_coordinate: int,
    direction: str,
) -> SticksCell:
    """A simple straight-line route cell to the cell boundary.

    "When an attempt is made to route the connectors on an instance
    past the bounding box of the cell, a simple straight-line route
    cell is made for those connectors to the edge of the cell."

    ``direction`` is the side of the composition cell being reached
    (``left``/``right``/``top``/``bottom``); ``edge_coordinate`` that
    edge's x (or y) position.
    """
    cell = SticksCell(name)
    ends: list[Point] = []
    half = 0
    for conn in connectors:
        start = conn.position
        if direction in ("left", "right"):
            end = Point(edge_coordinate, start.y)
        else:
            end = Point(start.x, edge_coordinate)
        if start == end:
            continue
        cell.wires.append(
            SymbolicWire(conn.layer.name, (start, end), conn.width)
        )
        cell.pins.append(Pin(f"IN_{conn.name}", conn.layer.name, start, conn.width))
        cell.pins.append(Pin(conn.name, conn.layer.name, end, conn.width))
        ends.extend((start, end))
        half = max(half, conn.width // 2)
    cell.validate()
    # An explicit boundary stopping exactly at the edge plane, so the
    # brought-out pins sit on the composition cell's bounding box and
    # get promoted when the cell is finished (wire end caps would
    # otherwise bloat the box past the edge).
    box = Box.from_points(ends)
    if direction in ("left", "right"):
        cell.boundary = Box(box.llx, box.lly - half, box.urx, box.ury + half)
    else:
        cell.boundary = Box(box.llx - half, box.lly, box.urx + half, box.ury)
    return cell
