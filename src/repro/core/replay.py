"""The REPLAY journal.

"Riot saves the commands given by the user and can re-run an editing
session if some of the input files have changed.  The replay file uses
instance names and connector names to identify connections, and the
positions are re-calculated, thereby avoiding the problems with
differently-shaped cells.  The replay also enables users to recover an
abnormally-terminated editing session or an accidentally-deleted
file."

The journal records every editor command as a name plus JSON
arguments, one per line — which makes an entry exactly a typed-API
request body (see :mod:`repro.api.types`).  Replaying decodes each
entry strictly and dispatches it through :class:`repro.api.session.
Session` against a (possibly different) library: connection commands
re-resolve
connector positions, which is exactly why replay survives leaf-cell
edits that positional connections do not.

Format (version 2): a ``# riot replay 2`` header line, then one JSON
object per line.  Each object carries the command, its kwargs, and a
``crc`` field — the CRC32 (hex) of the canonical serialisation of the
rest of the object — so a torn write from a crashed session is
detectable and the good prefix salvageable (see :mod:`repro.core.wal`).
Version-1 lines (no ``crc`` field) still parse.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field

from repro.core.errors import JournalError, ReplayError

#: Editor methods a journal line may invoke.  An allowlist, so a
#: hand-edited replay file cannot call arbitrary attributes.
REPLAYABLE = frozenset(
    {
        "new_cell",
        "edit",
        "finish",
        "select",
        "create",
        "delete_instance",
        "move",
        "move_by",
        "rotate",
        "mirror",
        "replicate",
        "connect",
        "bus",
        "unconnect",
        "clear_pending",
        "do_abut",
        "do_abut_edges",
        "do_route",
        "do_stretch",
        "bring_out",
        "delete_cell",
        "rename_cell",
    }
)

JOURNAL_HEADER = "# riot replay 2"


def canonical_payload(data: dict) -> str:
    """The serialisation the CRC is computed over: key-sorted, compact,
    so the checksum does not depend on incidental key order."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def line_crc(data: dict) -> str:
    return f"{zlib.crc32(canonical_payload(data).encode('utf-8')):08x}"


@dataclass
class JournalEntry:
    command: str
    kwargs: dict

    def to_line(self) -> str:
        """The version-2 framing: payload plus its CRC32 field."""
        data = {"command": self.command, **self.kwargs}
        return json.dumps({"crc": line_crc(data), **data})

    @classmethod
    def from_line(cls, line: str, lineno: int) -> "JournalEntry":
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise JournalError(f"replay line {lineno}: {exc}") from None
        if not isinstance(data, dict) or "command" not in data:
            raise JournalError(f"replay line {lineno}: missing command")
        crc = data.pop("crc", None)
        if crc is not None and crc != line_crc(data):
            raise JournalError(
                f"replay line {lineno}: CRC mismatch (corrupt entry)"
            )
        command = data.pop("command")
        if command not in REPLAYABLE:
            raise JournalError(
                f"replay line {lineno}: {command!r} is not a replayable command"
            )
        return cls(command, data)


@dataclass(frozen=True)
class CorruptionPoint:
    """Where salvage stopped reading a damaged journal."""

    lineno: int
    reason: str

    def __str__(self) -> str:
        return f"line {self.lineno}: {self.reason}"


@dataclass(frozen=True)
class SkippedEntry:
    """One journal entry that could not be (re-)executed.

    ``index`` is the entry's position in the journal for replay-time
    skips; parse-time rejections (non-allowlisted command) carry the
    file ``lineno`` instead and ``index`` is ``None``.
    """

    command: str
    error: str
    index: int | None = None
    lineno: int | None = None

    def __str__(self) -> str:
        where = (
            f"entry {self.index}" if self.index is not None else f"line {self.lineno}"
        )
        return f"{where} ({self.command}): {self.error}"


@dataclass
class RecoveryReport:
    """What a replay did: the structured result of session recovery."""

    total: int = 0
    executed: int = 0
    skipped: list[SkippedEntry] = field(default_factory=list)
    corruption: CorruptionPoint | None = None

    @property
    def clean(self) -> bool:
        return not self.skipped and self.corruption is None

    def to_text(self) -> str:
        lines = [
            f"recovered {self.executed} of {self.total} command(s)"
            + (f", {len(self.skipped)} skipped" if self.skipped else "")
        ]
        for entry in self.skipped:
            lines.append(f"  skipped {entry}")
        if self.corruption is not None:
            lines.append(f"  journal corrupt tail at {self.corruption}")
        return "\n".join(lines)


def journal_text(entries: list[JournalEntry], header: str = JOURNAL_HEADER) -> str:
    """The full on-disk form of a journal: header plus framed lines."""
    lines = [header]
    lines.extend(entry.to_line() for entry in entries)
    return "\n".join(lines) + "\n"


@dataclass
class Journal:
    """An append-only record of editor commands.

    With a :class:`repro.core.wal.JournalWriter` attached, every
    recorded entry is appended (flushed and fsynced) to the on-disk
    write-ahead journal *before* it enters the in-memory list, so a
    crashed session loses at most the command that was executing.
    """

    entries: list[JournalEntry] = field(default_factory=list)
    recording: bool = True
    writer: object | None = None
    corruption: CorruptionPoint | None = None
    rejected: list[SkippedEntry] = field(default_factory=list)

    def record(self, command: str, **kwargs) -> None:
        if not self.recording:
            return
        entry = JournalEntry(command, kwargs)
        if self.writer is not None:
            self.writer.append(entry)  # write-ahead: disk first
        self.entries.append(entry)

    def __len__(self) -> int:
        return len(self.entries)

    def clear(self) -> None:
        self.entries.clear()

    # -- write-ahead log ------------------------------------------------

    def attach(self, writer) -> None:
        """Tee future records to ``writer``; if the session already has
        history, checkpoint it so the file holds the full session."""
        self.writer = writer
        if self.entries:
            writer.checkpoint(self.entries)

    def mark(self) -> tuple[int, int | None]:
        """A transaction mark: (entry count, WAL byte offset)."""
        return (
            len(self.entries),
            self.writer.tell() if self.writer is not None else None,
        )

    def rollback(self, mark: tuple[int, int | None]) -> None:
        """Discard everything recorded after ``mark`` — in memory and,
        when a writer is attached, on disk (the WAL tail is truncated
        back to the last committed entry)."""
        count, offset = mark
        del self.entries[count:]
        if self.writer is not None and offset is not None:
            self.writer.truncate_to(offset)

    def maybe_checkpoint(self) -> None:
        """Compact the WAL when the writer's interval has elapsed.
        Called at command boundaries only, so a checkpoint can never
        invalidate an open transaction's rollback offset."""
        if self.writer is not None and self.writer.should_checkpoint():
            self.writer.checkpoint(self.entries)

    # -- persistence ----------------------------------------------------

    def to_text(self) -> str:
        return journal_text(self.entries)

    @classmethod
    def from_text(cls, text: str) -> "Journal":
        """Strict parse: any malformed line raises :class:`JournalError`.
        For crash salvage (stop at the corrupt tail, keep the good
        prefix) use :func:`repro.core.wal.load_text` instead."""
        entries = []
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            entries.append(JournalEntry.from_line(line, lineno))
        return cls(entries)

    # -- replay -------------------------------------------------------------

    def replay(self, editor, mode: str = "strict") -> RecoveryReport:
        """Execute every entry against ``editor``.

        The editor's own journaling is suspended during replay so the
        replayed commands are not recorded twice.  Returns a
        :class:`RecoveryReport`.

        ``mode="strict"`` raises :class:`ReplayError` naming the first
        entry that can no longer be executed (e.g. a connector that
        vanished from a re-read leaf cell).  ``mode="skip"`` — the
        recovery mode — rolls back the failed command (the editor's
        transactional wrapper guarantees no half-applied edits),
        records it in the report, and carries on with the rest of the
        session.
        """
        if mode not in ("strict", "skip"):
            raise ValueError(f"replay mode must be 'strict' or 'skip', got {mode!r}")
        # Lazy: repro.api imports the editor package, so a module-level
        # import here would cycle.
        from repro.api.codec import from_jsonable
        from repro.api.registry import spec_for
        from repro.api.session import Session

        session = Session(editor=editor)
        report = RecoveryReport(
            total=len(self.entries),
            corruption=self.corruption,
            skipped=list(self.rejected),
        )
        previous = editor.journal.recording
        editor.journal.recording = False
        try:
            for index, entry in enumerate(self.entries):
                try:
                    # A journal entry *is* a request body: decode it
                    # strictly and dispatch through the same typed
                    # surface every other transport uses.
                    spec = spec_for(entry.command)
                    request = from_jsonable(
                        spec.request, entry.kwargs, where=entry.command
                    )
                    session.dispatch(request)
                except Exception as exc:
                    if mode == "strict":
                        raise ReplayError(index, entry.command, exc) from exc
                    report.skipped.append(
                        SkippedEntry(
                            command=entry.command,
                            error=f"{type(exc).__name__}: {exc}",
                            index=index,
                        )
                    )
                    continue
                report.executed += 1
        finally:
            editor.journal.recording = previous
        return report
