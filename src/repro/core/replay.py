"""The REPLAY journal.

"Riot saves the commands given by the user and can re-run an editing
session if some of the input files have changed.  The replay file uses
instance names and connector names to identify connections, and the
positions are re-calculated, thereby avoiding the problems with
differently-shaped cells.  The replay also enables users to recover an
abnormally-terminated editing session or an accidentally-deleted
file."

The journal records every editor command as a name plus JSON
arguments, one per line.  Replaying executes the same methods against
a (possibly different) library: connection commands re-resolve
connector positions, which is exactly why replay survives leaf-cell
edits that positional connections do not.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.core.errors import RiotError

#: Editor methods a journal line may invoke.  An allowlist, so a
#: hand-edited replay file cannot call arbitrary attributes.
REPLAYABLE = frozenset(
    {
        "new_cell",
        "edit",
        "finish",
        "select",
        "create",
        "delete_instance",
        "move",
        "move_by",
        "rotate",
        "mirror",
        "replicate",
        "connect",
        "bus",
        "unconnect",
        "clear_pending",
        "do_abut",
        "do_abut_edges",
        "do_route",
        "do_stretch",
        "bring_out",
        "delete_cell",
        "rename_cell",
    }
)


@dataclass
class JournalEntry:
    command: str
    kwargs: dict

    def to_line(self) -> str:
        return json.dumps({"command": self.command, **self.kwargs})

    @classmethod
    def from_line(cls, line: str, lineno: int) -> "JournalEntry":
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise RiotError(f"replay line {lineno}: {exc}") from None
        if not isinstance(data, dict) or "command" not in data:
            raise RiotError(f"replay line {lineno}: missing command")
        command = data.pop("command")
        if command not in REPLAYABLE:
            raise RiotError(
                f"replay line {lineno}: {command!r} is not a replayable command"
            )
        return cls(command, data)


@dataclass
class Journal:
    """An append-only record of editor commands."""

    entries: list[JournalEntry] = field(default_factory=list)
    recording: bool = True

    def record(self, command: str, **kwargs) -> None:
        if not self.recording:
            return
        self.entries.append(JournalEntry(command, kwargs))

    def __len__(self) -> int:
        return len(self.entries)

    def clear(self) -> None:
        self.entries.clear()

    # -- persistence ----------------------------------------------------

    def to_text(self) -> str:
        lines = ["# riot replay 1"]
        lines.extend(entry.to_line() for entry in self.entries)
        return "\n".join(lines) + "\n"

    @classmethod
    def from_text(cls, text: str) -> "Journal":
        entries = []
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            entries.append(JournalEntry.from_line(line, lineno))
        return cls(entries)

    # -- replay -------------------------------------------------------------

    def replay(self, editor) -> int:
        """Execute every entry against ``editor``.

        The editor's own journaling is suspended during replay so the
        replayed commands are not recorded twice.  Raises
        :class:`RiotError` naming the failing entry when a command can
        no longer be executed (e.g. a connector that vanished from a
        re-read leaf cell).
        """
        from repro.geometry.point import Point

        previous = editor.journal.recording
        editor.journal.recording = False
        executed = 0
        try:
            for index, entry in enumerate(self.entries):
                method = getattr(editor, entry.command)
                kwargs = dict(entry.kwargs)
                # Points travel as [x, y] pairs.
                for key in ("at", "to"):
                    if key in kwargs and isinstance(kwargs[key], list):
                        kwargs[key] = Point(*kwargs[key])
                try:
                    method(**kwargs)
                except Exception as exc:
                    raise RiotError(
                        f"replay failed at entry {index} "
                        f"({entry.command}): {exc}"
                    ) from exc
                executed += 1
        finally:
            editor.journal.recording = previous
        return executed
