"""The Riot editor: cell list, cell under edit, pending connections.

Every public method is one Riot command; each call is recorded in the
REPLAY journal so a session can be re-run after leaf cells change
("the replay file uses instance names and connector names to identify
connections, and the positions are re-calculated").

Commands are transactional: each mutating method runs against a
copy-on-write snapshot of the open cell (plus the cell menu, the
selection, and — for non-consuming commands — the pending list), and a
command that raises mid-way is rolled back, so a failure never leaves
half-applied edits.  The rollback extends to the journal: the failed
command's entry is dropped from memory and, when a write-ahead journal
is attached (``wal=``), truncated off the on-disk tail — the WAL is
never more than one entry ahead of committed editor state.
"""

from __future__ import annotations

import functools
import os
from dataclasses import dataclass, field

from repro.composition.cell import CompositionCell, LeafCell
from repro.composition.format import load_composition, save_composition
from repro.composition.instance import Instance
from repro.composition.library import CellLibrary
from repro.composition.netcheck import ConnectionReport, check_connections
from repro.core.abut import AbutResult, abut, abut_edges
from repro.core.errors import RiotError
from repro.core.pending import PendingList
from repro.core.replay import Journal
from repro.core.river import RiverRoute, plan_route
from repro.core.route_cells import (
    build_bringout_cell,
    build_route_cell,
    register_route_cell,
)
from repro.core.stretch_op import StretchResult, stretch
from repro.geometry.layers import Technology, nmos_technology
from repro.obs import metrics, trace
from repro.geometry.orientation import Orientation
from repro.geometry.point import Point
from repro.geometry.transform import Transform


@dataclass
class _EditorSnapshot:
    """Pre-command state captured by :func:`transactional`."""

    cell: CompositionCell | None
    cell_state: tuple | None
    selected: str | None
    library: dict
    pending: list | None
    tracks: int


def transactional(method=None, *, restore_pending: bool = True):
    """Make an editor command atomic: on any exception, roll the editor
    back to its pre-command snapshot and drop the command's journal
    entry (memory and WAL tail), then re-raise.

    ``restore_pending=False`` is for the connection-executing commands
    (ABUT/ROUTE/STRETCH) whose contract is that "the logical connection
    information is thrown out" whether or not they succeed — their own
    ``finally`` clears the pending list and rollback must not resurrect
    it.  That surviving side effect must still reach the journal: the
    failed command's own entry is rolled back, so without a substitute
    ``clear_pending`` entry a replayed session would keep connections
    the live session has discarded (and diverge, or refuse a later
    ``connect`` the live session accepted).
    """

    def decorate(func):
        span_name = "command." + func.__name__

        @functools.wraps(func)
        def wrapper(self, *args, **kwargs):
            with trace.span(span_name, category="command") as span:
                snapshot = self._snapshot(include_pending=restore_pending)
                had_pending = len(self.pending) > 0
                mark = self.journal.mark()
                try:
                    result = func(self, *args, **kwargs)
                except Exception:
                    self._restore(snapshot)
                    self.journal.rollback(mark)
                    if not restore_pending and had_pending and not len(self.pending):
                        self.journal.record("clear_pending")
                    metrics.counter("editor.rollbacks").inc()
                    span.set("rolled_back", True)
                    raise
                # The WAL sequence number of the entry this command
                # produced: its index in the journal, which is also its
                # line position in the on-disk replay file — the join
                # key between a trace line and the journal entry.
                if len(self.journal.entries) > mark[0]:
                    span.set("wal_seq", mark[0])
                metrics.counter("editor.commands").inc()
                self.journal.maybe_checkpoint()
                return result

        return wrapper

    return decorate(method) if method is not None else decorate


@dataclass
class RouteOpResult:
    """What the ROUTE command did."""

    route_cell: str
    instance: Instance
    solved: RiverRoute
    moved_by: Point
    warnings: list[str] = field(default_factory=list)


class RiotEditor:
    """The top-level tool object.

    ``tracks_per_channel`` is the routing default the textual
    interface can change ("set defaults for routing operations").
    """

    def __init__(
        self,
        technology: Technology | None = None,
        tracks_per_channel: int = 8,
        wal=None,
    ) -> None:
        self.technology = technology or nmos_technology()
        self.library = CellLibrary(self.technology)
        self.cell: CompositionCell | None = None
        self.pending = PendingList()
        self.selected_cell: str | None = None
        self.tracks_per_channel = tracks_per_channel
        self.journal = Journal()
        self.messages: list[str] = []
        if wal is not None:
            if isinstance(wal, (str, os.PathLike)):
                from repro.core.wal import JournalWriter

                wal = JournalWriter(wal)
            self.journal.attach(wal)

    # -- internal helpers -------------------------------------------------

    def _require_cell(self) -> CompositionCell:
        if self.cell is None:
            raise RiotError("no cell under edit (use new_cell or edit)")
        return self.cell

    def _snapshot(self, include_pending: bool = True) -> _EditorSnapshot:
        return _EditorSnapshot(
            cell=self.cell,
            cell_state=self.cell.snapshot() if self.cell is not None else None,
            selected=self.selected_cell,
            library=self.library.snapshot(),
            pending=self.pending.snapshot() if include_pending else None,
            tracks=self.tracks_per_channel,
        )

    def _restore(self, snapshot: _EditorSnapshot) -> None:
        self.cell = snapshot.cell
        if snapshot.cell is not None and snapshot.cell_state is not None:
            snapshot.cell.restore(snapshot.cell_state)
        self.selected_cell = snapshot.selected
        self.library.restore(snapshot.library)
        if snapshot.pending is not None:
            self.pending.restore(snapshot.pending)
        self.tracks_per_channel = snapshot.tracks

    def _warn(self, warnings: list[str]) -> None:
        for message in warnings:
            self.messages.append(message)

    # -- environment interface ------------------------------------------------

    def read_cif(self, text: str, source_file: str | None = None) -> list[str]:
        """Load CIF leaf cells into the cell menu."""
        added = self.library.load_cif(text, source_file)
        return [cell.name for cell in added]

    def read_sticks(self, text: str, source_file: str | None = None) -> list[str]:
        added = self.library.load_sticks(text, source_file)
        return [cell.name for cell in added]

    def read_composition(self, text: str) -> list[str]:
        loaded = load_composition(text, self.library)
        return [cell.name for cell in loaded]

    def write_composition(self) -> str:
        """Save the session: every composition cell, leaves by reference."""
        cells = [c for c in self.library.cells if not c.is_leaf]
        if not cells:
            raise RiotError("no composition cells to save")
        return save_composition(cells)

    def write_generated_sticks(self) -> str:
        """Sticks text for every session-generated symbolic leaf.

        Route cells, bring-outs and stretched cells are created during
        editing and have no source file; saving a session needs their
        content alongside the composition file so a later ``read`` can
        restore them ("references to files which contain the leaf
        cells used in those compositions").
        """
        from repro.sticks.writer import write_sticks

        generated = [
            cell.sticks_cell
            for cell in self.library.cells
            if cell.is_leaf and cell.is_stretchable and cell.source_file is None
        ]
        return write_sticks(generated)

    @transactional
    def delete_cell(self, name: str) -> None:
        self.journal.record("delete_cell", name=name)
        self.library.remove(name)
        if self.cell is not None and self.cell.name == name:
            self.cell = None
        if self.selected_cell == name:
            self.selected_cell = None

    @transactional
    def rename_cell(self, old: str, new: str) -> None:
        self.journal.record("rename_cell", old=old, new=new)
        self.library.rename(old, new)
        if self.selected_cell == old:
            self.selected_cell = new

    # -- cell editing lifecycle ---------------------------------------------------

    @transactional
    def new_cell(self, name: str) -> CompositionCell:
        """Start a fresh composition cell and edit it."""
        self.journal.record("new_cell", name=name)
        cell = CompositionCell(name)
        self.library.add(cell)
        self.cell = cell
        self.pending.clear()
        return cell

    @transactional
    def edit(self, name: str) -> CompositionCell:
        """Invoke the graphical editor on a composition cell."""
        self.journal.record("edit", name=name)
        cell = self.library.get(name)
        if cell.is_leaf:
            raise RiotError(
                f"{name!r} is a leaf cell; Riot edits only composition cells"
            )
        self.cell = cell
        self.pending.clear()
        return cell

    @transactional
    def finish(self) -> list[str]:
        """Finish the cell under edit: promote edge connectors."""
        self.journal.record("finish")
        cell = self._require_cell()
        promoted = cell.refresh_connectors()
        return [conn.name for conn in promoted]

    # -- instance creation and manipulation ------------------------------------------

    @transactional
    def select(self, cell_name: str) -> None:
        """Point at a name in the cell menu."""
        self.library.get(cell_name)  # raises on unknown
        self.journal.record("select", cell_name=cell_name)
        self.selected_cell = cell_name

    @transactional
    def create(
        self,
        at: Point,
        cell_name: str | None = None,
        orientation: str = "R0",
        nx: int = 1,
        ny: int = 1,
        dx: int | None = None,
        dy: int | None = None,
        name: str | None = None,
    ) -> Instance:
        """The CREATE command: instantiate the selected cell at ``at``.

        ``at`` is where the instance bounding box's lower-left lands.
        Optional replication makes an array; optional rotation and
        mirroring are given by orientation name (R0/R90/.../MXR90).
        """
        cell_name = cell_name or self.selected_cell
        if cell_name is None:
            raise RiotError("CREATE: no cell selected")
        target = self._require_cell()
        defining = self.library.get(cell_name)
        if defining is target:
            raise RiotError("CREATE: a cell cannot instantiate itself")
        name = name or target.unique_instance_name(cell_name)
        self.journal.record(
            "create",
            at=[at.x, at.y],
            cell_name=cell_name,
            orientation=orientation,
            nx=nx,
            ny=ny,
            dx=dx,
            dy=dy,
            name=name,
        )
        instance = Instance(
            name,
            defining,
            Transform(Orientation.from_name(orientation), Point(0, 0)),
            nx,
            ny,
            dx,
            dy,
        )
        instance.move_to(at)
        target.add_instance(instance)
        return instance

    @transactional
    def delete_instance(self, name: str) -> None:
        cell = self._require_cell()
        instance = cell.instance(name)
        self.journal.record("delete_instance", name=name)
        dropped = self.pending.drop_instance(instance)
        if dropped:
            self.messages.append(
                f"dropped {dropped} pending connection(s) of {name!r}"
            )
        cell.remove_instance(instance)

    @transactional
    def move(self, name: str, to: Point) -> Instance:
        """Move an instance so its bounding box lower-left is at ``to``."""
        cell = self._require_cell()
        instance = cell.instance(name)
        self.journal.record("move", name=name, to=[to.x, to.y])
        instance.move_to(to)
        return instance

    @transactional
    def move_by(self, name: str, dx: int, dy: int) -> Instance:
        cell = self._require_cell()
        instance = cell.instance(name)
        self.journal.record("move_by", name=name, dx=dx, dy=dy)
        instance.translate(dx, dy)
        return instance

    @transactional
    def rotate(self, name: str) -> Instance:
        """Rotate 90 degrees CCW in place (bounding box corner kept)."""
        cell = self._require_cell()
        instance = cell.instance(name)
        self.journal.record("rotate", name=name)
        corner = instance.bounding_box().lower_left
        instance.rotate90()
        instance.move_to(corner)
        return instance

    @transactional
    def mirror(self, name: str, axis: str = "x") -> Instance:
        """Mirror in place; ``axis`` is 'x' (flip x) or 'y' (flip y)."""
        cell = self._require_cell()
        instance = cell.instance(name)
        if axis not in ("x", "y"):
            raise RiotError(f"mirror axis must be 'x' or 'y', got {axis!r}")
        self.journal.record("mirror", name=name, axis=axis)
        corner = instance.bounding_box().lower_left
        if axis == "x":
            instance.mirror_x()
        else:
            instance.mirror_y()
        instance.move_to(corner)
        return instance

    @transactional
    def replicate(
        self,
        name: str,
        nx: int,
        ny: int = 1,
        dx: int | None = None,
        dy: int | None = None,
    ) -> Instance:
        """Turn an instance into an array (or change its replication)."""
        cell = self._require_cell()
        instance = cell.instance(name)
        if nx < 1 or ny < 1:
            raise RiotError(f"replication counts must be >= 1, got {nx}x{ny}")
        self.journal.record("replicate", name=name, nx=nx, ny=ny, dx=dx, dy=dy)
        box = instance.cell.bounding_box()
        instance.nx = nx
        instance.ny = ny
        instance.dx = dx if dx is not None else box.width
        instance.dy = dy if dy is not None else box.height
        return instance

    # -- connection specification --------------------------------------------------------

    @transactional
    def connect(
        self,
        from_instance: str,
        from_connector: str,
        to_instance: str,
        to_connector: str,
    ) -> str:
        """Add one pending connection; returns its display string."""
        cell = self._require_cell()
        self.journal.record(
            "connect",
            from_instance=from_instance,
            from_connector=from_connector,
            to_instance=to_instance,
            to_connector=to_connector,
        )
        connection = self.pending.add(
            cell.instance(from_instance),
            from_connector,
            cell.instance(to_instance),
            to_connector,
        )
        return str(connection)

    @transactional
    def bus(self, from_instance: str, to_instance: str) -> int:
        """Bus-type specification: pair up all facing connectors."""
        cell = self._require_cell()
        self.journal.record(
            "bus", from_instance=from_instance, to_instance=to_instance
        )
        return self.pending.add_bus(
            cell.instance(from_instance), cell.instance(to_instance)
        )

    @transactional
    def unconnect(self, index: int) -> str:
        self.journal.record("unconnect", index=index)
        return str(self.pending.remove(index))

    @transactional
    def clear_pending(self) -> None:
        self.journal.record("clear_pending")
        self.pending.clear()

    # -- the three connection commands --------------------------------------------------------

    @transactional(restore_pending=False)
    def do_abut(self, overlap: bool = False) -> AbutResult:
        """ABUT with pending connections.

        "After the connection specification command, the logical
        connection information is thrown out" — the pending list is
        cleared whether or not every connection succeeded.
        """
        self.journal.record("do_abut", overlap=overlap)
        try:
            result = abut(self.pending, overlap=overlap)
        finally:
            self.pending.clear()
        self._warn(result.warnings)
        return result

    @transactional
    def do_abut_edges(self, from_instance: str, to_instance: str) -> AbutResult:
        """ABUT without connectors: edge matching by relative position."""
        cell = self._require_cell()
        self.journal.record(
            "do_abut_edges", from_instance=from_instance, to_instance=to_instance
        )
        return abut_edges(cell.instance(from_instance), cell.instance(to_instance))

    @transactional(restore_pending=False)
    def do_route(self, move_from: bool = True) -> RouteOpResult:
        """ROUTE: river-route the pending connections.

        A new route cell enters the cell menu and is instantiated
        between the instances; unless ``move_from`` is false, the from
        instance then abuts the far side of the route.
        """
        cell = self._require_cell()
        self.journal.record("do_route", move_from=move_from)
        try:
            frame, wires, solved, _shift = plan_route(
                self.pending,
                self.technology,
                self.tracks_per_channel,
                move_from=move_from,
            )
            from_instance = self.pending.from_instance
            assert from_instance is not None
            built = build_route_cell("route", frame, wires, solved, self.pending)
            leaf = register_route_cell(built, self.library)
            instance = cell.add_instance(
                Instance(cell.unique_instance_name(leaf.name), leaf)
            )
            moved_by = Point(0, 0)
            if move_from:
                first = self.pending[0]
                current = from_instance.connector(first.from_connector).position
                target = built.from_targets[first.from_connector]
                moved_by = target - current
                from_instance.translate(moved_by.x, moved_by.y)
        finally:
            self.pending.clear()
        return RouteOpResult(leaf.name, instance, solved, moved_by)

    @transactional(restore_pending=False)
    def do_stretch(self, overlap: bool = False) -> StretchResult:
        """STRETCH: re-space the from instance's connectors via REST."""
        self.journal.record("do_stretch", overlap=overlap)
        try:
            result = stretch(self.pending, self.library, overlap=overlap)
        finally:
            self.pending.clear()
        self._warn(result.warnings)
        return result

    # -- finishing a cell -----------------------------------------------------------------------

    @transactional
    def bring_out(
        self,
        instance_name: str,
        connector_names: list[str],
        side: str | None = None,
    ) -> Instance:
        """Route connectors straight out to the cell's bounding box edge.

        By default the wires leave on the side the connectors face;
        ``side`` overrides the direction (the wire then runs straight
        across whatever is in its way — Riot's router "ignores objects
        in the path of the route").  The straight-line route cell this
        makes is entered in the cell menu like any other cell.
        """
        cell = self._require_cell()
        instance = cell.instance(instance_name)
        self.journal.record(
            "bring_out",
            instance_name=instance_name,
            connector_names=list(connector_names),
            side=side,
        )
        if not connector_names:
            raise RiotError("bring_out: no connectors named")
        connectors = [instance.connector(n) for n in connector_names]
        if side is None:
            sides = {c.side for c in connectors}
            if len(sides) != 1:
                raise RiotError(
                    f"bring_out: connectors must share one side, got {sorted(sides)}"
                )
            side = next(iter(sides))
        elif side not in ("left", "right", "top", "bottom"):
            raise RiotError(f"bring_out: unknown side {side!r}")
        box = cell.bounding_box()
        edge = {
            "left": box.llx,
            "right": box.urx,
            "top": box.ury,
            "bottom": box.lly,
        }[side]
        sticks = build_bringout_cell("bringout", connectors, edge, side)
        sticks.name = self.library.unique_name("bringout")
        leaf = LeafCell.from_sticks(sticks, self.technology)
        self.library.add(leaf)
        return cell.add_instance(
            Instance(cell.unique_instance_name(leaf.name), leaf)
        )

    # -- checking -------------------------------------------------------------------------------------

    def check(self) -> ConnectionReport:
        """The positional connectivity report for the cell under edit."""
        cell = self._require_cell()
        return check_connections(cell.instances, self.technology)

    # -- replay ----------------------------------------------------------------------------------------

    def replay_from(self, journal_text: str) -> int:
        """Re-run a recorded session against this editor's current
        library (typically after leaf cells were re-read).  Strict: the
        first failing entry raises.  Returns the number of commands
        executed."""
        journal = Journal.from_text(journal_text)
        return journal.replay(self).executed

    def recover_from(self, journal_text: str, mode: str = "skip"):
        """Crash recovery: salvage ``journal_text`` (stopping at a
        corrupt tail instead of raising), replay it — ``skip`` mode
        carries on past entries that no longer execute — and adopt the
        committed history as this editor's journal.  Returns the
        :class:`repro.core.replay.RecoveryReport`."""
        from repro.core import wal

        return wal.recover(self, wal.load_text(journal_text), mode=mode)
