"""Conversions out of the composition world.

"Riot writes composition format files which are converted to CIF for
mask generation or to Sticks for simulation."

* :func:`composition_to_cif` — the full hierarchy as CIF text: CIF
  leaves pass through unchanged, Sticks leaves expand to mask
  geometry, composition cells become symbols with calls (arrays
  unrolled, since CIF has no array construct), and composition-cell
  connectors are carried as ``94`` extensions.
* :func:`composition_to_sticks` — a flattened symbolic cell for
  simulation.  Only Sticks-backed leaves carry devices; CIF leaves
  contribute nothing but a warning (their transistors are opaque
  geometry), matching the original flow where simulation input came
  from the symbolic side.
"""

from __future__ import annotations

from dataclasses import replace

from repro.cif.semantics import CifCell, CifConnector
from repro.cif.writer import write_cif
from repro.composition.cell import CompositionCell, LeafCell
from repro.core.errors import RiotError
from repro.geometry.layers import Technology
from repro.geometry.point import Point
from repro.geometry.transform import Transform
from repro.sticks.expand import expand_to_cif
from repro.sticks.model import (
    HORIZONTAL,
    VERTICAL,
    Device,
    Pin,
    SticksCell,
)


def composition_to_cif(
    cell: CompositionCell, technology: Technology, expander=None
) -> str:
    """The cell's full hierarchy as a CIF text stream.

    ``expander`` substitutes for :func:`expand_to_cif` when given —
    the verification pipeline passes one that serves Sticks leaf
    expansions from its content-addressed cache instead of
    recomputing them.
    """
    memo: dict[int, CifCell] = {}
    counter = [0]
    top = _to_cif_cell(cell, technology, memo, counter, expander or expand_to_cif)
    return write_cif([top])


def _to_cif_cell(
    cell,
    technology: Technology,
    memo: dict[int, CifCell],
    counter: list[int],
    expander,
) -> CifCell:
    if id(cell) in memo:
        return memo[id(cell)]
    counter[0] += 1
    number = counter[0]

    if isinstance(cell, LeafCell):
        if cell.cif_cell is not None:
            result = cell.cif_cell
        else:
            result = expander(cell.sticks_cell, technology, number)
    elif isinstance(cell, CompositionCell):
        result = CifCell(number, cell.name)
        for conn in cell.connectors:
            result.connectors.append(
                CifConnector(conn.name, conn.position, conn.layer, conn.width)
            )
        for instance in cell.instances:
            child = _to_cif_cell(instance.cell, technology, memo, counter, expander)
            for _, _, transform in instance.element_transforms():
                result.calls.append((child, transform))
    else:  # pragma: no cover - the hierarchy has exactly two cell kinds
        raise RiotError(f"cannot convert {cell!r} to CIF")
    memo[id(cell)] = result
    return result


def composition_to_sticks(
    cell: CompositionCell, technology: Technology
) -> tuple[SticksCell, list[str]]:
    """Flatten to one symbolic cell for simulation.

    Returns the cell and a list of warnings naming any CIF-backed
    leaves whose contents could not be represented symbolically.
    """
    flat = SticksCell(cell.name)
    warnings: list[str] = []
    _flatten_sticks(cell, Transform.identity(), flat, warnings, set())

    for conn in cell.connectors:
        flat.pins.append(
            Pin(conn.name, conn.layer.name, conn.position, conn.width)
        )
    flat.boundary = cell.bounding_box()
    return flat, warnings


def _flatten_sticks(
    cell: CompositionCell,
    transform: Transform,
    out: SticksCell,
    warnings: list[str],
    warned: set[str],
) -> None:
    for instance in cell.instances:
        for _, _, element in instance.element_transforms():
            total = transform.compose(element)
            child = instance.cell
            if isinstance(child, CompositionCell):
                _flatten_sticks(child, total, out, warnings, warned)
            elif child.sticks_cell is not None:
                _append_transformed(out, child.sticks_cell, total)
            else:
                if child.name not in warned:
                    warned.add(child.name)
                    warnings.append(
                        f"leaf cell {child.name!r} is CIF geometry; its "
                        "devices are not visible to simulation"
                    )


def _append_transformed(
    out: SticksCell, source: SticksCell, transform: Transform
) -> None:
    """Append ``source``'s components transformed into ``out``.

    Pins do not propagate (internal connectivity is positional); the
    caller decides the flat cell's pins from the composition cell's
    connectors.
    """
    for wire in source.wires:
        out.wires.append(
            replace(wire, points=tuple(transform.apply(p) for p in wire.points))
        )
    for contact in source.contacts:
        out.contacts.append(replace(contact, point=transform.apply(contact.point)))
    for device in source.devices:
        orientation = device.orientation
        if _swaps_axes(transform):
            orientation = HORIZONTAL if orientation == VERTICAL else VERTICAL
        out.devices.append(
            Device(
                device.kind,
                transform.apply(device.center),
                orientation,
                device.length,
                device.width,
            )
        )


def _swaps_axes(transform: Transform) -> bool:
    """Does the orientation exchange the x and y axes?"""
    image = transform.apply_vector(Point(1, 0))
    return image.x == 0
