"""Riot's editor core (the paper's contribution, C1).

"Riot has commands for four different tasks: interface to the
environment, creation of instances, connection of instances, and
completion of a cell."

* :mod:`repro.core.editor` — the editor object holding the cell list,
  the cell under edit and the pending-connection list; every command
  of the paper is a method here.
* :mod:`repro.core.pending` — the pending-connection list shown on
  screen constantly.
* :mod:`repro.core.abut`, :mod:`repro.core.river`,
  :mod:`repro.core.stretch_op` — the three connection primitives.
* :mod:`repro.core.bringout` — routing connectors out to the cell
  boundary when finishing a cell.
* :mod:`repro.core.commands` — the graphical command interface
  (pointing at menus), :mod:`repro.core.textual` — the textual one.
* :mod:`repro.core.replay` — the REPLAY journal.
* :mod:`repro.core.convert` — composition to CIF (masks) and to
  Sticks (simulation).
"""

from repro.core.errors import ConnectionError_, RiotError
from repro.core.editor import RiotEditor
from repro.core.pending import PendingConnection, PendingList

__all__ = [
    "RiotError",
    "ConnectionError_",
    "RiotEditor",
    "PendingConnection",
    "PendingList",
]
