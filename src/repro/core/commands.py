"""The graphical command interface.

"The user edits a cell with the graphical command interface by
pointing at items on the graphic display."  This module is the glue
between the display's hit testing and the editor: a small state
machine tracking the command selected in the command menu and the
editing-area picks it still needs.

Scripted device sessions (``repro.workstation``) drive this exactly
like a user at the Charles or GIGI workstation did.
"""

from __future__ import annotations

from repro.composition.instance import Instance, InstanceConnector
from repro.core.editor import RiotEditor
from repro.core.errors import RiotError
from repro.geometry.point import Point
from repro.graphics.display import Display
from repro.workstation.events import ButtonPress, Event, KeyLine, PointerMove

#: The command menu, in display order.
COMMANDS = (
    "CREATE",
    "MOVE",
    "ROTATE",
    "MIRROR",
    "DELETE",
    "CONNECT",
    "BUS",
    "ABUT",
    "OVERLAP",
    "ROUTE",
    "STRETCH",
    "FINISH",
    "ZOOMIN",
    "ZOOMOUT",
    "PAN",
    "FIT",
    "NAMES",
)

#: Commands that execute the moment they are picked from the menu.
IMMEDIATE = {"ABUT", "OVERLAP", "ROUTE", "STRETCH", "FINISH", "ZOOMIN", "ZOOMOUT", "FIT", "NAMES"}

#: How close (in screen pixels) a pick must be to a connector cross.
PICK_RADIUS_PIXELS = 8


class GraphicalInterface:
    """Routes device events to editor commands and keeps the screen fresh."""

    def __init__(self, editor: RiotEditor, display: Display | None = None) -> None:
        self.editor = editor
        self.display = display or Display(commands=COMMANDS)
        self.display.commands = list(COMMANDS)
        self.current_command: str | None = None
        self.picked_instance: Instance | None = None
        self.picked_connector: InstanceConnector | None = None
        self.show_names = False
        self.messages: list[str] = []
        self.redraw()

    # -- event pump ----------------------------------------------------------

    def handle_events(self, events: list[Event]) -> list[str]:
        """Process a batch of device events; returns messages produced."""
        produced: list[str] = []
        for event in events:
            message = self.handle(event)
            if message:
                produced.append(message)
        return produced

    def handle(self, event: Event) -> str | None:
        if isinstance(event, PointerMove):
            return None  # motion only matters at the press
        if isinstance(event, KeyLine):
            return f"(textual) {event.text}"
        if isinstance(event, ButtonPress):
            return self._press(event.position)
        return None

    def _press(self, screen_point: Point) -> str | None:
        hit = self.display.hit_test(screen_point)
        try:
            if hit.kind == "cell-menu":
                return self._pick_cell(hit.name)
            if hit.kind == "command-menu":
                return self._pick_command(hit.name)
            return self._pick_editing(hit.world)
        except (RiotError, KeyError) as exc:
            message = f"error: {str(exc).strip(chr(39))}"
            self.messages.append(message)
            self.redraw()
            return message

    # -- menu picks --------------------------------------------------------------

    def _pick_cell(self, name: str | None) -> str | None:
        if name is None:
            return None
        self.editor.select(name)
        self.redraw()
        return f"selected {name}"

    def _pick_command(self, name: str | None) -> str | None:
        if name is None:
            return None
        if name in IMMEDIATE:
            return self._execute_immediate(name)
        self.current_command = name
        self.picked_instance = None
        self.picked_connector = None
        return f"command {name}: point in the editing area"

    def _execute_immediate(self, name: str) -> str:
        editor = self.editor
        if name == "ABUT":
            result = editor.do_abut()
            message = f"abutted; moved by {result.moved_by}"
            if result.warnings:
                message += f"; {len(result.warnings)} warning(s)"
        elif name == "OVERLAP":
            result = editor.do_abut(overlap=True)
            message = f"abutted with overlap; moved by {result.moved_by}"
        elif name == "ROUTE":
            result = editor.do_route()
            message = (
                f"routed {result.solved.wire_count} wire(s) in "
                f"{result.solved.channels} channel(s) as {result.route_cell}"
            )
        elif name == "STRETCH":
            result = editor.do_stretch()
            message = f"stretched {result.old_cell} into {result.new_cell}"
        elif name == "FINISH":
            promoted = editor.finish()
            message = f"finished with {len(promoted)} connector(s)"
        elif name == "ZOOMIN":
            self.display.viewport.zoom(2)
            message = "zoomed in"
        elif name == "ZOOMOUT":
            self.display.viewport.zoom(1, 2)
            message = "zoomed out"
        elif name == "FIT":
            cell = editor.cell
            if cell is None or not cell.instances:
                raise RiotError("nothing to fit")
            self.display.viewport.fit(cell.bounding_box())
            message = "fitted"
        elif name == "NAMES":
            self.show_names = not self.show_names
            message = f"names {'on' if self.show_names else 'off'}"
        else:  # pragma: no cover
            raise RiotError(f"unhandled immediate command {name}")
        self.redraw()
        return message

    # -- editing-area picks -----------------------------------------------------------

    def _pick_editing(self, world: Point) -> str | None:
        command = self.current_command
        if command is None:
            instance = self.instance_at(world)
            return f"at {world}: {instance.name if instance else 'nothing'}"

        if command == "PAN":
            self.display.viewport.world_center = world
            message = f"panned to {world}"
        elif command == "CREATE":
            instance = self.editor.create(at=world)
            message = f"created {instance.name}"
        elif command == "MOVE":
            if self.picked_instance is None:
                self.picked_instance = self._require_instance(world)
                return f"moving {self.picked_instance.name}: point at destination"
            self.editor.move(self.picked_instance.name, world)
            message = f"moved {self.picked_instance.name}"
            self.picked_instance = None
        elif command == "ROTATE":
            instance = self._require_instance(world)
            self.editor.rotate(instance.name)
            message = f"rotated {instance.name}"
        elif command == "MIRROR":
            instance = self._require_instance(world)
            self.editor.mirror(instance.name)
            message = f"mirrored {instance.name}"
        elif command == "DELETE":
            instance = self._require_instance(world)
            self.editor.delete_instance(instance.name)
            message = f"deleted {instance.name}"
        elif command == "CONNECT":
            connector = self.connector_near(world)
            if connector is None:
                raise RiotError(f"no connector near {world}")
            if self.picked_connector is None:
                self.picked_connector = connector
                return f"from {connector}: point at the to connector"
            self.editor.connect(
                self.picked_connector.instance.name,
                self.picked_connector.name,
                connector.instance.name,
                connector.name,
            )
            message = f"pending {self.picked_connector} - {connector}"
            self.picked_connector = None
        elif command == "BUS":
            if self.picked_instance is None:
                self.picked_instance = self._require_instance(world)
                return f"bus from {self.picked_instance.name}: point at the to instance"
            to_instance = self._require_instance(world)
            count = self.editor.bus(self.picked_instance.name, to_instance.name)
            message = f"bus: {count} pending connection(s)"
            self.picked_instance = None
        else:  # pragma: no cover
            raise RiotError(f"unhandled command {command}")
        self.redraw()
        return message

    # -- picking helpers ------------------------------------------------------------------

    def instance_at(self, world: Point) -> Instance | None:
        """The topmost (most recently added) instance under the point."""
        cell = self.editor.cell
        if cell is None:
            return None
        for instance in reversed(cell.instances):
            if instance.bounding_box().contains_point(world):
                return instance
        return None

    def _require_instance(self, world: Point) -> Instance:
        instance = self.instance_at(world)
        if instance is None:
            raise RiotError(f"no instance at {world}")
        return instance

    def connector_near(self, world: Point) -> InstanceConnector | None:
        """The nearest visible connector within the pick radius."""
        cell = self.editor.cell
        if cell is None:
            return None
        radius = PICK_RADIUS_PIXELS * self.display.viewport.scale_den
        radius //= self.display.viewport.scale_num
        best: InstanceConnector | None = None
        best_distance = radius + 1
        for instance in cell.instances:
            for connector in instance.connectors():
                distance = connector.position.manhattan_distance(world)
                if distance < best_distance:
                    best = connector
                    best_distance = distance
        return best

    # -- screen -----------------------------------------------------------------------------

    def redraw(self) -> None:
        self.display.render(
            self.editor.cell,
            cell_menu=self.editor.library.names,
            selected_cell=self.editor.selected_cell,
            pending=self.editor.pending.display_strings(),
            show_names=self.show_names,
        )
