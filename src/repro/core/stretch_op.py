"""Connection by stretching (paper figure 6).

"In a stretched connection, the locations of the connectors on the to
instance are used to determine the needed separations of the
connectors on the from instance to make the connection by abutment.
If the from instance is defined in Sticks form, the new constraints on
the connector positions are put into the Stick file, making a new
cell.  The new cell is passed through the Stick optimizer in REST,
which moves the connectors to the constrained locations.  Riot then
removes the old instance and inserts an instance of the new cell into
the cell under edit.  The new locations of the connectors allow the
instances to be abutted without routing."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.composition.cell import LeafCell
from repro.composition.connector import LEFT, RIGHT
from repro.composition.library import CellLibrary
from repro.core.abut import AbutResult, abut
from repro.core.errors import RiotError
from repro.core.pending import PendingList
from repro.geometry.point import Point
from repro.rest.errors import InfeasibleConstraints
from repro.rest.stretch import stretch_pins


@dataclass
class StretchResult:
    """What the STRETCH command did."""

    old_cell: str
    new_cell: str
    axis: str
    targets: dict[str, int]
    abutment: AbutResult | None = None
    warnings: list[str] = field(default_factory=list)


def stretch(
    pending: PendingList,
    library: CellLibrary,
    overlap: bool = False,
) -> StretchResult:
    """Make the pending connections by stretching the from instance.

    The from instance must be a non-array instance of a Sticks-backed
    leaf ("the pads cannot be stretched by Riot").  A new leaf cell is
    created through the REST solver, registered in the library, bound
    to the instance, and the connection completed by abutment.
    """
    if len(pending) == 0:
        raise RiotError("STRETCH: no pending connections")
    from_instance = pending.from_instance
    assert from_instance is not None
    if from_instance.is_array:
        raise RiotError("STRETCH: cannot stretch an array instance")
    cell = from_instance.cell
    if not isinstance(cell, LeafCell) or not cell.is_stretchable:
        raise RiotError(
            f"STRETCH: cell {cell.name!r} is not symbolic (Sticks) layout; "
            "connect it by routing instead"
        )

    resolved = [c.resolve() for c in pending]
    sides = {a.side for a, _ in resolved}
    if len(sides) != 1:
        raise RiotError(
            f"STRETCH: from-connectors must share one side, got {sorted(sides)}"
        )
    side = next(iter(sides))
    parent_axis = "y" if side in (LEFT, RIGHT) else "x"

    # Pull the to-connector positions back into the from cell's local
    # frame, anchored so the first connector keeps its local position.
    orientation = from_instance.transform.orientation
    inverse = orientation.inverse()
    first_local = cell.connector(resolved[0][0].base_name).position
    anchor = resolved[0][1].position - orientation.apply(first_local)

    axis_vector = Point(1, 0) if parent_axis == "x" else Point(0, 1)
    local_axis_vector = inverse.apply(axis_vector)
    local_axis = "x" if local_axis_vector.x != 0 else "y"

    targets: dict[str, int] = {}
    for a, b in resolved:
        local_target = inverse.apply(b.position - anchor)
        value = local_target.x if local_axis == "x" else local_target.y
        pin_name = a.base_name
        if pin_name in targets and targets[pin_name] != value:
            raise RiotError(
                f"STRETCH: connector {pin_name!r} has conflicting targets"
            )
        targets[pin_name] = value

    new_name = library.unique_name(f"{cell.name}_s")
    try:
        stretched_sticks = stretch_pins(
            cell.sticks_cell,
            local_axis,
            targets,
            library.technology,
            name=new_name,
        )
    except InfeasibleConstraints as exc:
        raise RiotError(f"STRETCH: {exc}") from exc

    new_leaf = LeafCell.from_sticks(stretched_sticks, library.technology)
    library.add(new_leaf)
    from_instance.cell = new_leaf

    result = StretchResult(
        old_cell=cell.name,
        new_cell=new_name,
        axis=local_axis,
        targets=targets,
    )
    result.abutment = abut(pending, overlap=overlap)
    result.warnings = result.abutment.warnings
    return result
