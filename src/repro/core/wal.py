"""Write-ahead journaling: crash-safe persistence for the REPLAY log.

The paper's recovery claim — "the replay also enables users to recover
an abnormally-terminated editing session" — only holds if the journal
survives the abnormal termination.  :class:`JournalWriter` appends
each recorded command to disk *before* the editor mutates state
(flush + ``fsync`` per entry), so after a crash — power loss, ``kill
-9`` — the on-disk journal contains every committed command and at
most one torn line at the tail.

:func:`load_text` is the salvage-mode reader: it verifies each line's
CRC32 and stops at the first sign of a torn write, keeping the good
prefix, instead of refusing the whole file the way the strict parser
(:meth:`Journal.from_text`) does.  :func:`recover` ties it together:
replay the salvaged journal into an editor (``skip`` mode survives
entries whose connectors vanished) and adopt the committed history so
the recovered session can keep journaling.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

from repro.core.replay import (
    JOURNAL_HEADER,
    REPLAYABLE,
    CorruptionPoint,
    Journal,
    JournalEntry,
    RecoveryReport,
    SkippedEntry,
    journal_text,
    line_crc,
)
from repro.obs import metrics, trace


def _fsync_dir(path: Path) -> None:
    """Best-effort durability for a rename: fsync the directory."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover
        pass
    finally:
        os.close(fd)


class JournalWriter:
    """Append-only, fsync-per-entry on-disk journal.

    Every :meth:`append` writes one CRC-framed JSON line, flushes, and
    ``fsync``\\ s, so a committed entry survives any crash.  The editor's
    transactional wrapper uses :meth:`tell`/:meth:`truncate_to` to
    discard the WAL tail of a command that failed mid-way, keeping the
    file never more than one entry ahead of committed editor state.

    ``checkpoint_interval`` bounds unbounded growth: every N appends
    (checked at command boundaries), :meth:`checkpoint` rewrites the
    file from the journal's committed entries via a sibling temp file
    and ``os.replace`` — atomic, so a crash mid-compaction leaves the
    old journal intact.
    """

    def __init__(
        self,
        path,
        checkpoint_interval: int = 512,
        header: str = JOURNAL_HEADER,
    ) -> None:
        self.path = Path(path)
        self.checkpoint_interval = checkpoint_interval
        self.header = header
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "ab")
        self._offset = os.fstat(self._file.fileno()).st_size
        self._appends = 0
        #: Cumulative wall seconds spent inside ``fsync`` — the service
        #: reads the before/after delta around a command to attribute
        #: per-request durability cost in its stage telemetry.
        self.fsync_seconds = 0.0
        if self._offset == 0:
            self._write((self.header + "\n").encode("utf-8"))

    def _write(self, data: bytes) -> None:
        self._file.write(data)
        self._file.flush()
        t0 = time.perf_counter()
        os.fsync(self._file.fileno())
        self.fsync_seconds += time.perf_counter() - t0
        metrics.counter("wal.fsyncs").inc()
        self._offset += len(data)

    def append(self, entry: JournalEntry) -> int:
        """Durably append one entry; returns its starting byte offset."""
        before = self._offset
        with trace.span("wal.append", command=entry.command) as span:
            self._write((entry.to_line() + "\n").encode("utf-8"))
            span.set("bytes", self._offset - before)
        self._appends += 1
        metrics.counter("wal.appends").inc()
        return before

    def tell(self) -> int:
        return self._offset

    def truncate_to(self, offset: int) -> None:
        """Drop everything at and after ``offset`` (aborted-command undo)."""
        if offset >= self._offset:
            return
        self._file.flush()
        os.ftruncate(self._file.fileno(), offset)
        os.fsync(self._file.fileno())
        metrics.counter("wal.truncates").inc()
        self._offset = offset

    def should_checkpoint(self) -> bool:
        return self._appends >= self.checkpoint_interval

    def checkpoint(self, entries: list[JournalEntry]) -> None:
        """Atomically rewrite the journal as exactly ``entries``."""
        metrics.counter("wal.checkpoints").inc()
        fd, tmp = tempfile.mkstemp(
            dir=self.path.parent, prefix=self.path.name + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as f:
                f.write(journal_text(entries, header=self.header).encode("utf-8"))
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        _fsync_dir(self.path.parent)
        self._file.close()
        self._file = open(self.path, "ab")
        self._offset = os.fstat(self._file.fileno()).st_size
        self._appends = 0

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# -- salvage reading ------------------------------------------------------


def load_text(text: str, allowlist: frozenset = REPLAYABLE) -> Journal:
    """Read a journal, salvaging as much as a damaged file allows.

    Unlike the strict parser, a structurally broken line — truncated
    JSON from a torn write, a CRC mismatch, a non-entry object — ends
    the scan: everything before it is kept and the journal's
    ``corruption`` field records the salvage point.  A well-framed line
    naming a non-allowlisted command is not tearing; it is rejected
    (listed in ``rejected``) and the scan continues.

    ``allowlist`` defaults to the editor's :data:`REPLAYABLE` set; other
    journal dialects built on the same framing (the cell store's refs
    log) pass their own command set.
    """
    entries: list[JournalEntry] = []
    rejected: list[SkippedEntry] = []
    corruption: CorruptionPoint | None = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError:
            corruption = CorruptionPoint(lineno, "unparseable JSON (torn write?)")
            break
        if not isinstance(data, dict) or "command" not in data:
            corruption = CorruptionPoint(lineno, "not a journal entry")
            break
        crc = data.pop("crc", None)
        if crc is not None and crc != line_crc(data):
            corruption = CorruptionPoint(lineno, "CRC mismatch")
            break
        command = data.pop("command")
        if command not in allowlist:
            rejected.append(
                SkippedEntry(
                    command=command,
                    error="not a replayable command",
                    lineno=lineno,
                )
            )
            continue
        entries.append(JournalEntry(command, data))
    journal = Journal(entries)
    journal.corruption = corruption
    journal.rejected = rejected
    return journal


def load_path(path) -> Journal:
    return load_text(Path(path).read_text(encoding="utf-8"))


# -- recovery -------------------------------------------------------------


def recover(editor, journal: Journal, mode: str = "skip") -> RecoveryReport:
    """Replay ``journal`` into ``editor`` and adopt the committed history.

    After the replay, the entries that executed become the editor's own
    journal (skipped ones are dropped — they no longer describe the
    recovered state), so ``savereplay`` and an attached WAL continue
    the session seamlessly; if a WAL is already attached it is
    checkpointed, compacting away any corrupt tail in the source file.
    """
    report = journal.replay(editor, mode=mode)
    skipped_indexes = {s.index for s in report.skipped if s.index is not None}
    committed = [
        entry
        for index, entry in enumerate(journal.entries)
        if index not in skipped_indexes
    ]
    editor.journal.entries.extend(committed)
    if editor.journal.writer is not None:
        editor.journal.writer.checkpoint(editor.journal.entries)
    return report
