"""Design reports: what a composition is made of.

Riot's textual interface let the designer inspect the editing
environment; this module produces the summary a designer wants before
tape-out: the hierarchy tree, instance counts per cell, area
utilisation (cell area vs. bounding-box area), and the generated-cell
inventory (route cells, bring-outs, stretched variants).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.composition.cell import CompositionCell, LeafCell


@dataclass
class CellUsage:
    """How one definition is used across a hierarchy."""

    name: str
    kind: str            # "cif", "sticks" or "composition"
    instance_count: int = 0
    placed_area: int = 0


@dataclass
class DesignReport:
    """The full report for one root cell."""

    root: str
    usage: dict[str, CellUsage] = field(default_factory=dict)
    depth: int = 0
    total_instances: int = 0
    bounding_area: int = 0

    @property
    def placed_area(self) -> int:
        return sum(u.placed_area for u in self.usage.values() if u.kind != "composition")

    @property
    def utilization_percent(self) -> int:
        """Leaf area over root bounding-box area (0-100+)."""
        if not self.bounding_area:
            return 0
        return 100 * self.placed_area // self.bounding_area

    def generated_cells(self) -> list[str]:
        """Session-generated helpers: routes, bring-outs, stretch variants."""
        return sorted(
            name
            for name in self.usage
            if name.startswith(("route", "bringout")) or "_s" in name
        )

    def to_text(self) -> str:
        lines = [
            f"report for {self.root}:",
            f"  hierarchy depth {self.depth}, "
            f"{self.total_instances} placed leaf/composition instances",
            f"  bounding area {self.bounding_area}, leaf area "
            f"{self.placed_area} ({self.utilization_percent}% utilisation)",
            "  cell usage:",
        ]
        for usage in sorted(
            self.usage.values(), key=lambda u: (-u.instance_count, u.name)
        ):
            lines.append(
                f"    {usage.name:16s} {usage.kind:12s} x{usage.instance_count:<4d} "
                f"area {usage.placed_area}"
            )
        generated = self.generated_cells()
        if generated:
            lines.append(f"  generated this session: {', '.join(generated)}")
        return "\n".join(lines)


def report_cell(root: CompositionCell) -> DesignReport:
    """Walk the hierarchy under ``root`` and tally usage."""
    report = DesignReport(root=root.name)
    report.bounding_area = root.bounding_box().area

    def visit(cell: CompositionCell, depth: int) -> None:
        report.depth = max(report.depth, depth)
        for instance in cell.instances:
            child = instance.cell
            count = instance.nx * instance.ny
            if isinstance(child, LeafCell):
                kind = "sticks" if child.is_stretchable else "cif"
            else:
                kind = "composition"
            usage = report.usage.setdefault(child.name, CellUsage(child.name, kind))
            usage.instance_count += count
            usage.placed_area += child.bounding_box().area * count
            report.total_instances += count
            if isinstance(child, CompositionCell):
                visit(child, depth + 1)

    visit(root, 1)
    return report
