"""The multi-layer river router (paper figure 5).

"A multi-layer river-route is a routed connection between parallel
sets of points where no routes change layers and no two routes on the
same layer cross.  The Riot river router cannot turn corners, and it
ignores objects in the path of the route. ... The routing algorithm
attempts to route all wires to the desired locations in a single
routing channel.  If some wires are blocked, another channel is added
and the route is continued in the new channel.  This repeats until
the connection is completed."

The router works in a canonical *channel frame*: ``u`` runs along the
channel entry edge, ``v`` across it; wires enter at ``v = entry_i``
(the to-instance connectors) and leave at ``v = height`` (where the
from-instance connectors will land).  Each wire is a vertical run, at
most one horizontal jog on a track, and a vertical run — no corners
beyond the jog, no layer changes, which is exactly the paper's router.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import median_low

from repro.composition.connector import BOTTOM, LEFT, RIGHT, TOP
from repro.core.errors import RiotError
from repro.core.pending import PendingList
from repro.geometry.layers import Technology
from repro.geometry.point import Point
from repro.obs import metrics, trace

#: Which from-side faces each to-side across the channel.
FACING = {TOP: BOTTOM, BOTTOM: TOP, LEFT: RIGHT, RIGHT: LEFT}


@dataclass
class RiverWire:
    """One wire through the channel, in channel coordinates."""

    name: str
    layer_name: str
    width: int
    u_in: int
    u_out: int
    entry_v: int = 0
    track_v: int | None = None
    track_index: int | None = None

    @property
    def needs_jog(self) -> bool:
        return self.u_in != self.u_out

    def points(self, height: int) -> list[tuple[int, int]]:
        """The centreline in (u, v) coordinates."""
        if not self.needs_jog:
            return [(self.u_in, self.entry_v), (self.u_in, height)]
        assert self.track_v is not None
        return [
            (self.u_in, self.entry_v),
            (self.u_in, self.track_v),
            (self.u_out, self.track_v),
            (self.u_out, height),
        ]


@dataclass
class RiverRoute:
    """A solved channel."""

    wires: list[RiverWire]
    height: int
    channels: int
    tracks_by_layer: dict[str, int] = field(default_factory=dict)

    @property
    def wire_count(self) -> int:
        return len(self.wires)

    @property
    def jog_count(self) -> int:
        return sum(1 for w in self.wires if w.needs_jog)

    def total_wire_length(self) -> int:
        total = 0
        for wire in self.wires:
            pts = wire.points(self.height)
            for (u0, v0), (u1, v1) in zip(pts, pts[1:]):
                total += abs(u1 - u0) + abs(v1 - v0)
        return total


def route_channel(
    wires: list[RiverWire],
    technology: Technology,
    tracks_per_channel: int = 8,
    fixed_height: int | None = None,
) -> RiverRoute:
    """Assign jog tracks and size the channel.

    Raises :class:`RiotError` when same-layer wires would have to
    cross (a river route cannot do that on any number of channels) or
    when a ``fixed_height`` (the route-without-moving form) is too
    small for the required tracks.
    """
    with trace.span("river.route_channel", wires=len(wires)) as span:
        return _route_channel(
            wires, technology, tracks_per_channel, fixed_height, span
        )


def _route_channel(
    wires: list[RiverWire],
    technology: Technology,
    tracks_per_channel: int,
    fixed_height: int | None,
    span,
) -> RiverRoute:
    if not wires:
        raise RiotError("river route with no wires")
    if tracks_per_channel < 1:
        raise RiotError("tracks_per_channel must be >= 1")

    by_layer: dict[str, list[RiverWire]] = {}
    for wire in wires:
        by_layer.setdefault(wire.layer_name, []).append(wire)

    tracks_by_layer: dict[str, int] = {}
    layer_pitch: dict[str, int] = {}
    for layer_name, group in by_layer.items():
        _check_planarity(layer_name, group)
        max_width = max(w.width for w in group)
        pitch = max_width + technology.min_separation(layer_name)
        layer_pitch[layer_name] = pitch
        tracks_by_layer[layer_name] = _assign_tracks(group, pitch, technology)

    max_entry = max(w.entry_v for w in wires)
    needed = max_entry
    for layer_name, tracks in tracks_by_layer.items():
        pitch = layer_pitch[layer_name]
        needed = max(needed, max_entry + pitch * (tracks + 1))
    if needed == max_entry:  # every wire straight: a minimal strap
        needed = max_entry + max(layer_pitch.values())

    if fixed_height is not None:
        if fixed_height < needed:
            raise RiotError(
                f"route without moving needs a channel of {needed} "
                f"but only {fixed_height} is available"
            )
        height = fixed_height
    else:
        height = needed

    # Place jog tracks: track k of a layer sits at v = max_entry + pitch*(k+1).
    for layer_name, group in by_layer.items():
        pitch = layer_pitch[layer_name]
        for wire in group:
            if wire.track_index is not None:
                wire.track_v = max_entry + pitch * (wire.track_index + 1)

    max_tracks = max(tracks_by_layer.values(), default=0)
    channels = max(1, -(-max_tracks // tracks_per_channel))
    metrics.counter("river.routes").inc()
    metrics.histogram("river.tracks_used").observe(max_tracks)
    metrics.counter("river.channels").inc(channels)
    if channels > 1:
        # The paper's overflow path: the first channel filled and the
        # route "is continued in the new channel".
        metrics.counter("river.channels_spilled").inc(channels - 1)
    span.set("tracks", max_tracks).set("channels", channels).set(
        "height", height
    )
    return RiverRoute(wires, height, channels, tracks_by_layer)


def _check_planarity(layer_name: str, group: list[RiverWire]) -> None:
    """Same-layer wires must keep their order across the channel."""
    ordered = sorted(group, key=lambda w: (w.u_in, w.u_out))
    for a, b in zip(ordered, ordered[1:]):
        if a.u_in == b.u_in:
            raise RiotError(
                f"river route: wires {a.name!r} and {b.name!r} enter at the "
                f"same position on layer {layer_name}"
            )
        if b.u_out < a.u_out:
            raise RiotError(
                f"river route: wires {a.name!r} and {b.name!r} on layer "
                f"{layer_name} would cross; a river route cannot cross wires "
                "on one layer"
            )
        if b.u_out == a.u_out:
            raise RiotError(
                f"river route: wires {a.name!r} and {b.name!r} leave at the "
                f"same position on layer {layer_name}"
            )


def _assign_tracks(
    group: list[RiverWire], pitch: int, technology: Technology
) -> int:
    """Constraint-ordered track assignment for the jogging wires.

    Returns the number of tracks used.  Horizontal jogs on one layer
    may share a track when their u-extents (inflated by width and
    separation) do not collide — but sharing is not enough: a wire's
    vertical runs pass through every track below its own jog, so when
    wire Y's entry vertical lands inside wire X's jog span, Y must jog
    on a *lower* track than X (and on a higher one when its exit
    vertical does).  Jogs that merely touch end-to-end (Y enters where
    X exits) leave both verticals collinear and force the same strict
    ordering.  Planarity makes these constraints acyclic: overlapping
    jogs always run the same direction, so "entered later sits lower"
    (rightward) / "sits higher" (leftward) is always satisfiable.

    Straight wires need no constraints at all — a jog spanning a
    straight's run is a crossing that :func:`_check_planarity` has
    already refused.
    """
    jogging = [w for w in group if w.needs_jog]
    for wire in group:
        wire.track_index = None
    if not jogging:
        return 0
    sep = technology.min_separation(group[0].layer_name)

    spans = [(min(w.u_in, w.u_out), max(w.u_in, w.u_out)) for w in jogging]
    count = len(jogging)
    # below[i] holds every j that must jog strictly below wire i.
    below: list[set[int]] = [set() for _ in range(count)]
    for i in range(count):
        lo, hi = spans[i]
        x = jogging[i]
        for j in range(count):
            if i == j:
                continue
            y = jogging[j]
            if lo < y.u_in < hi or y.u_in == x.u_out:
                below[i].add(j)
            if lo < y.u_out < hi or y.u_out == x.u_in:
                below[j].add(i)

    # Lowest-feasible-track assignment in dependency order: a wire is
    # ready once everything that must sit below it is placed.
    order: list[int] = []
    done = [False] * count
    while len(order) < count:
        ready = [
            i
            for i in range(count)
            if not done[i] and all(done[j] for j in below[i])
        ]
        if not ready:
            raise RiotError(
                "river route: cyclic jog ordering on layer "
                f"{group[0].layer_name} (internal planarity error)"
            )
        ready.sort(key=lambda i: (spans[i][0], jogging[i].name))
        nxt = ready[0]
        done[nxt] = True
        order.append(nxt)

    tracks: list[list[int]] = []  # wire indices jogging on each track
    for i in order:
        wire = jogging[i]
        start = spans[i][0] - wire.width // 2
        end = spans[i][1] + wire.width // 2
        index = max(
            (jogging[j].track_index + 1 for j in below[i]), default=0
        )
        while index < len(tracks):
            if all(
                start > spans[j][1] + jogging[j].width // 2 + sep
                or spans[j][0] - jogging[j].width // 2 > end + sep
                for j in tracks[index]
            ):
                break
            index += 1
        if index == len(tracks):
            tracks.append([])
        tracks[index].append(i)
        wire.track_index = index
    return len(tracks)


@dataclass(frozen=True)
class ChannelFrame:
    """The parent <-> channel coordinate mapping for one route.

    ``to_side`` is the side of the to-instance edge the route attaches
    to; ``base`` its cross-axis coordinate; ``outward`` +1 when channel
    v grows toward +axis in parent space.
    """

    to_side: str
    base: int
    outward: int

    @classmethod
    def for_side(cls, to_side: str, base: int) -> "ChannelFrame":
        if to_side in (TOP, RIGHT):
            return cls(to_side, base, +1)
        if to_side in (BOTTOM, LEFT):
            return cls(to_side, base, -1)
        raise RiotError(f"cannot route from side {to_side!r}")

    @property
    def along_x(self) -> bool:
        """True when u runs along the x axis (vertical channel)."""
        return self.to_side in (TOP, BOTTOM)

    def to_channel(self, p: Point) -> tuple[int, int]:
        if self.along_x:
            return p.x, (p.y - self.base) * self.outward
        return p.y, (p.x - self.base) * self.outward

    def to_parent(self, u: int, v: int) -> Point:
        if self.along_x:
            return Point(u, self.base + v * self.outward)
        return Point(self.base + v * self.outward, u)


def plan_route(
    pending: PendingList,
    technology: Technology,
    tracks_per_channel: int = 8,
    move_from: bool = True,
) -> tuple[ChannelFrame, list[RiverWire], RiverRoute, int]:
    """Resolve pending connections into a solved channel.

    Returns (frame, wires, route, shift) where ``shift`` is the u-axis
    displacement applied to the from-instance connector pattern
    (always 0 when ``move_from`` is false).
    """
    if len(pending) == 0:
        raise RiotError("ROUTE: no pending connections")
    with trace.span("river.plan", connections=len(pending)):
        return _plan_route(pending, technology, tracks_per_channel, move_from)


def _plan_route(
    pending: PendingList,
    technology: Technology,
    tracks_per_channel: int,
    move_from: bool,
) -> tuple[ChannelFrame, list[RiverWire], RiverRoute, int]:
    resolved = [c.resolve() for c in pending]

    to_sides = {b.side for _, b in resolved}
    if len(to_sides) != 1:
        raise RiotError(
            f"ROUTE: to-connectors must share one side, got {sorted(to_sides)}"
        )
    to_side = next(iter(to_sides))
    from_sides = {a.side for a, _ in resolved}
    if from_sides != {FACING[to_side]}:
        raise RiotError(
            f"ROUTE: from-connectors must be on side {FACING[to_side]!r} "
            f"to face {to_side!r}, got {sorted(from_sides)}"
        )

    bases = [b.position.y if to_side in (TOP, BOTTOM) else b.position.x
             for _, b in resolved]
    # The channel starts at the innermost to-edge so every entry has
    # v >= 0 (ragged entries when to instances differ in extent).
    base = min(bases) if to_side in (TOP, RIGHT) else max(bases)
    frame = ChannelFrame.for_side(to_side, base)

    offsets = []
    for a, b in resolved:
        u_from, _ = frame.to_channel(a.position)
        u_to, _ = frame.to_channel(b.position)
        offsets.append(u_to - u_from)
    shift = 0 if not move_from else median_low(offsets)

    fixed_height = None
    if not move_from:
        gaps = []
        for a, _ in resolved:
            _, v = frame.to_channel(a.position)
            gaps.append(v)
        fixed_height = min(gaps)
        if fixed_height <= 0:
            raise RiotError(
                "ROUTE without moving: the from instance is not clear of "
                "the to edge (gap <= 0)"
            )

    wires = []
    for connection, (a, b) in zip(pending, resolved):
        u_from, _ = frame.to_channel(a.position)
        u_to, v_to = frame.to_channel(b.position)
        wires.append(
            RiverWire(
                name=connection.to_connector,
                layer_name=a.layer.name,
                width=max(a.width, b.width),
                u_in=u_to,
                u_out=u_from + shift,
                entry_v=v_to,
            )
        )
    route = route_channel(
        wires, technology, tracks_per_channel, fixed_height=fixed_height
    )
    return frame, wires, route, shift
