"""Connection by abutment (paper figure 4).

"Abutment makes the bottom or left edge match, depending on the
relative positions of the instances before the ABUT command.  If
specific connections to connectors exist, Riot will attempt to match
the specified connections during the abutment.  If the connections
cannot be made by the abutment, a warning message is produced.  An
option of the abutment command allows instances to be overlapped to
share a common pair of connectors."

Only the *from* instance ever moves (the one-to-many rule).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.composition.instance import Instance
from repro.core.errors import RiotError
from repro.core.pending import PendingList
from repro.geometry.point import Point
from repro.obs import metrics, trace


@dataclass
class AbutResult:
    """What the ABUT command did."""

    moved_by: Point
    warnings: list[str] = field(default_factory=list)
    made: int = 0


def abut(pending: PendingList, overlap: bool = False) -> AbutResult:
    """Make the pending connections by translating the from instance.

    With an empty specification list, abutment is not possible (there
    is nothing to say which instances abut); use :func:`abut_edges`
    for the connector-less form.
    """
    if len(pending) == 0:
        raise RiotError("ABUT: no pending connections")
    with trace.span("abut.solve", connections=len(pending)) as span:
        return _abut(pending, overlap, span)


def _abut(pending: PendingList, overlap: bool, span) -> AbutResult:
    from_instance = pending.from_instance
    assert from_instance is not None

    first_from, first_to = pending[0].resolve()
    delta = first_to.position - first_from.position
    from_instance.translate(delta.x, delta.y)

    result = AbutResult(moved_by=delta)
    for connection in pending:
        a, b = connection.resolve()
        if a.position == b.position:
            result.made += 1
        else:
            off = b.position - a.position
            result.warnings.append(
                f"connection {connection} not made by abutment "
                f"(off by {off.x},{off.y})"
            )

    if not overlap:
        overlappers = [
            inst
            for inst in pending.to_instances()
            if from_instance.bounding_box().overlaps(inst.bounding_box())
        ]
        if overlappers:
            # Undo: plain abutment must not overlap; the paper's
            # overlap option exists precisely to permit rail sharing.
            from_instance.translate(-delta.x, -delta.y)
            names = ", ".join(inst.name for inst in overlappers)
            metrics.counter("abut.refusals").inc()
            raise RiotError(
                f"ABUT would overlap {from_instance.name!r} with {names}; "
                "use the overlap option to share connectors"
            )
    if result.warnings:
        # Connections the abutment could not make ("a warning message
        # is produced").
        metrics.counter("abut.unmade").inc(len(result.warnings))
    metrics.counter("abut.solved").inc()
    span.set("made", result.made).set("unmade", len(result.warnings))
    return result


def abut_edges(from_instance: Instance, to_instance: Instance) -> AbutResult:
    """The connector-less abutment: "used if a cell has no connectors".

    The from instance moves next to the to instance on the side it is
    already on; the shared edges touch, and the transverse edges align
    ("makes the bottom or left edge match, depending on the relative
    positions").
    """
    if from_instance is to_instance:
        raise RiotError("ABUT: cannot abut an instance to itself")
    fbox = from_instance.bounding_box()
    tbox = to_instance.bounding_box()
    fc, tc = fbox.center, tbox.center
    dx_c, dy_c = fc.x - tc.x, fc.y - tc.y

    if abs(dx_c) >= abs(dy_c):
        # Horizontal abutment: edges touch, bottom edges align.
        if dx_c >= 0:
            delta = Point(tbox.urx - fbox.llx, tbox.lly - fbox.lly)
        else:
            delta = Point(tbox.llx - fbox.urx, tbox.lly - fbox.lly)
    else:
        # Vertical abutment: edges touch, left edges align.
        if dy_c >= 0:
            delta = Point(tbox.llx - fbox.llx, tbox.ury - fbox.lly)
        else:
            delta = Point(tbox.llx - fbox.llx, tbox.lly - fbox.ury)

    from_instance.translate(delta.x, delta.y)
    return AbutResult(moved_by=delta)
