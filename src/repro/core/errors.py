"""Editor error types."""

from __future__ import annotations


class RiotError(Exception):
    """A command cannot be carried out as given."""


class ConnectionError_(RiotError):
    """A connection specification is invalid (layer mismatch, not
    opposed, same instance, ...).  Named with a trailing underscore to
    avoid shadowing the builtin ``ConnectionError``."""
