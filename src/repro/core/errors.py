"""Editor error types.

A small hierarchy rooted at :class:`RiotError` so callers can catch
"anything a Riot command may report" with one clause while the journal
and replay machinery raises structured subclasses carrying enough
context to act on (which entry, which command, what went wrong).

All of it descends from :class:`repro.errors.ReproError`, so every
editor error carries a stable machine-readable ``code`` the typed API
layer puts on the wire.
"""

from __future__ import annotations

from repro.errors import ReproError


class RiotError(ReproError):
    """A command cannot be carried out as given."""

    code = "riot.command"


class ConnectionError_(RiotError):
    """A connection specification is invalid (layer mismatch, not
    opposed, same instance, ...).  Named with a trailing underscore to
    avoid shadowing the builtin ``ConnectionError``."""

    code = "riot.connection"


class JournalError(RiotError):
    """A replay journal cannot be parsed: malformed JSON, a missing
    command field, a CRC mismatch, or a non-allowlisted command."""

    code = "riot.journal"


class ReplayError(RiotError):
    """Replaying a journal entry failed.

    Carries the failing entry as structured attributes so recovery
    tooling can report (and skip) precisely, instead of parsing an
    f-string back apart:

    ``entry_index``
        zero-based position of the failing entry in the journal;
    ``command``
        the editor command the entry names;
    ``original``
        the exception the command raised.
    """

    code = "riot.replay"

    def __init__(self, entry_index: int, command: str, original: BaseException):
        super().__init__(
            f"replay failed at entry {entry_index} ({command}): {original}"
        )
        self.entry_index = entry_index
        self.command = command
        self.original = original
