"""The pending-connection list.

"The connection operations require that Riot keep a list of pending
connections.  The list is shown on the screen constantly, and the
user may add to and delete from this list."

A pending connection links a connector on the *from* instance to a
connector on a *to* instance.  Riot checks at specification time
"that the connectors to be joined are on the same layer and that they
are opposed ... they connect top to bottom or left to right".  The
one-to-many restriction (one from instance, possibly many to
instances) is enforced here too.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.composition.connector import opposed
from repro.composition.instance import Instance, InstanceConnector
from repro.core.errors import ConnectionError_


@dataclass(frozen=True)
class PendingConnection:
    """One specified (not yet made) connection."""

    from_instance: Instance
    from_connector: str
    to_instance: Instance
    to_connector: str

    def resolve(self) -> tuple[InstanceConnector, InstanceConnector]:
        """Current connector geometry (positions re-read every time,
        because instances move between specification and execution)."""
        return (
            self.from_instance.connector(self.from_connector),
            self.to_instance.connector(self.to_connector),
        )

    def __str__(self) -> str:
        return (
            f"{self.from_instance.name}.{self.from_connector}"
            f" - {self.to_instance.name}.{self.to_connector}"
        )


class PendingList:
    """The editor's pending connections, with Riot's validity rules."""

    def __init__(self) -> None:
        self._connections: list[PendingConnection] = []

    # -- building ------------------------------------------------------------

    def add(
        self,
        from_instance: Instance,
        from_connector: str,
        to_instance: Instance,
        to_connector: str,
    ) -> PendingConnection:
        """Validate and append one connection."""
        if from_instance is to_instance:
            raise ConnectionError_(
                f"cannot connect instance {from_instance.name!r} to itself"
            )
        a = from_instance.connector(from_connector)  # KeyError if absent
        b = to_instance.connector(to_connector)
        if a.layer.name != b.layer.name:
            raise ConnectionError_(
                f"{a} and {b} are on different layers "
                f"({a.layer.name} vs {b.layer.name})"
            )
        if not opposed(a.side, b.side):
            raise ConnectionError_(
                f"{a} ({a.side}) and {b} ({b.side}) are not opposed; "
                "connections join top to bottom or left to right"
            )
        if self._connections:
            anchor = self._connections[0].from_instance
            if from_instance is not anchor:
                raise ConnectionError_(
                    "all pending connections must come from one instance "
                    f"({anchor.name!r}); to connect many to many, wrap one "
                    "set in a composition cell"
                )
        connection = PendingConnection(
            from_instance, from_connector, to_instance, to_connector
        )
        if connection in self._connections:
            raise ConnectionError_(f"connection {connection} already pending")
        self._connections.append(connection)
        return connection

    def add_bus(self, from_instance: Instance, to_instance: Instance) -> int:
        """The bus-type specification: "all connections are made from
        one instance to another".

        Connectors pair up by name where names match on both
        instances; otherwise by order along the facing edges.  Returns
        the number of connections added.
        """
        from_conns = from_instance.connectors()
        to_conns = to_instance.connectors()
        pairs: list[tuple[InstanceConnector, InstanceConnector]] = []

        by_name = {c.name: c for c in to_conns}
        named = [
            (a, by_name[a.name])
            for a in from_conns
            if a.name in by_name
            and a.layer.name == by_name[a.name].layer.name
            and opposed(a.side, by_name[a.name].side)
        ]
        if named:
            pairs = named
        else:
            pairs = _pair_facing(from_conns, to_conns)
        if not pairs:
            raise ConnectionError_(
                f"no compatible connector pairs between "
                f"{from_instance.name!r} and {to_instance.name!r}"
            )
        for a, b in pairs:
            self.add(from_instance, a.name, to_instance, b.name)
        return len(pairs)

    # -- editing ------------------------------------------------------------------

    def remove(self, index: int) -> PendingConnection:
        try:
            return self._connections.pop(index)
        except IndexError:
            raise ConnectionError_(
                f"no pending connection #{index} (have {len(self)})"
            ) from None

    def clear(self) -> None:
        self._connections.clear()

    def snapshot(self) -> list[PendingConnection]:
        """The current list, for transactional rollback (connections
        are frozen dataclasses, so a shallow copy suffices)."""
        return list(self._connections)

    def restore(self, state: list[PendingConnection]) -> None:
        self._connections = list(state)

    def drop_instance(self, instance: Instance) -> int:
        """Remove every pending connection touching ``instance``
        (called when the instance is deleted).  Returns count removed."""
        before = len(self._connections)
        self._connections = [
            c
            for c in self._connections
            if c.from_instance is not instance and c.to_instance is not instance
        ]
        return before - len(self._connections)

    # -- reading ---------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._connections)

    def __iter__(self):
        return iter(self._connections)

    def __getitem__(self, index: int) -> PendingConnection:
        return self._connections[index]

    @property
    def connections(self) -> list[PendingConnection]:
        return list(self._connections)

    @property
    def from_instance(self) -> Instance | None:
        """The single from instance (None when the list is empty)."""
        return self._connections[0].from_instance if self._connections else None

    def to_instances(self) -> list[Instance]:
        seen: list[Instance] = []
        for c in self._connections:
            if c.to_instance not in seen:
                seen.append(c.to_instance)
        return seen

    def display_strings(self) -> list[str]:
        """What the display shows constantly."""
        return [str(c) for c in self._connections]


def _pair_facing(
    from_conns: list[InstanceConnector], to_conns: list[InstanceConnector]
) -> list[tuple[InstanceConnector, InstanceConnector]]:
    """Pair connectors on facing edges by order along the edge."""
    best: list[tuple[InstanceConnector, InstanceConnector]] = []
    for from_side, to_side in (
        ("right", "left"),
        ("left", "right"),
        ("top", "bottom"),
        ("bottom", "top"),
    ):
        a_edge = [c for c in from_conns if c.side == from_side]
        b_edge = [c for c in to_conns if c.side == to_side]
        along = (lambda c: c.position.y) if from_side in ("left", "right") else (
            lambda c: c.position.x
        )
        a_edge.sort(key=along)
        b_edge.sort(key=along)
        pairs = [
            (a, b)
            for a, b in zip(a_edge, b_edge)
            if a.layer.name == b.layer.name
        ]
        if len(pairs) > len(best):
            best = pairs
    return best
