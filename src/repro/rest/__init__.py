"""REST-style leaf cell optimizer (substrate S4).

Riot's stretch connection passes a Sticks cell "through the Stick
optimizer in REST [Mosteller 1981], which moves the connectors to the
constrained locations".  REST itself is a Caltech master's-thesis
system we cannot run; this package is the standard formulation of the
same engine: one-dimensional constraint-graph compaction.

* :mod:`repro.rest.graph` — difference-constraint graph with a
  longest-path (Bellman-Ford) solver and positive-cycle infeasibility
  detection.
* :mod:`repro.rest.spacing` — design-rule separation requirements
  between symbolic columns.
* :mod:`repro.rest.compactor` — per-axis compaction of Sticks cells,
  with optional pinned connector positions.
* :mod:`repro.rest.stretch` — the stretch entry point Riot calls.
"""

from repro.rest.errors import InfeasibleConstraints
from repro.rest.graph import ConstraintGraph
from repro.rest.compactor import compact
from repro.rest.stretch import stretch_pins

__all__ = [
    "InfeasibleConstraints",
    "ConstraintGraph",
    "compact",
    "stretch_pins",
]
