"""The stretch entry point Riot uses.

Riot's stretched connection: "the locations of the connectors on the
to instance are used to determine the needed separations of the
connectors on the from instance ... the new constraints on the
connector positions are put into the Stick file, making a new cell.
The new cell is passed through the Stick optimizer in REST, which
moves the connectors to the constrained locations."

:func:`stretch_pins` is that operation on a bare Sticks cell: pin
positions along one axis become equality constraints and the solver
re-spaces the rest of the cell around them.
"""

from __future__ import annotations

from repro.geometry.layers import Technology
from repro.rest.compactor import compact_axis
from repro.sticks.model import SticksCell


def stretch_pins(
    cell: SticksCell,
    axis: str,
    pin_targets: dict[str, int],
    tech: Technology,
    name: str | None = None,
) -> SticksCell:
    """A new cell with the named pins moved to ``pin_targets`` on ``axis``.

    All design-rule separations are preserved; other coordinates move
    as little as the constraint solution allows.  Raises
    :class:`~repro.rest.errors.InfeasibleConstraints` when the targets
    cannot be met (wrong order, or closer than the design rules
    permit), and ``KeyError`` for unknown pin names.
    """
    if not pin_targets:
        return cell.remapped(name or cell.name, lambda c: c, lambda c: c)
    return compact_axis(cell, tech, axis, pinned=pin_targets, name=name)
