"""Design-rule separation between symbolic columns.

The compactor works on *columns* (shared coordinates along one axis).
For two adjacent columns it needs the minimum centre-to-centre spacing
that keeps every pair of their occupants legal:

* two occupants on the same layer and different nets: half-widths plus
  the layer's edge-to-edge separation (same-net shapes may merge);
* poly against diffusion of different nets: half-widths plus one
  lambda (unintended-transistor prevention) — unless the pair is an
  *intended* gate crossing (the poly net gates that diffusion net);
* unrelated layers: no requirement (the columns may even coincide).

Occupants carry their extent along the *other* axis; two occupants
whose extents do not overlap never interact (they can slide past each
other).  Interval shadowing plus net awareness is what keeps 1-D
compaction from being wildly pessimistic — the refinements real
compactors of the REST era used.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.geometry.layers import Technology

_NEG = -(10**12)
_POS = 10**12

GatePairs = frozenset | set


@dataclass(frozen=True)
class Occupant:
    """Something occupying a column.

    ``width`` is the full extent across the column axis; ``lo``/``hi``
    bound the occupant along the other axis (defaults: unbounded, the
    conservative choice).  ``net`` identifies the electrical node when
    known; ``None`` means unknown, which is treated as distinct from
    everything (again the conservative choice).
    """

    layer: str
    width: int
    lo: int = _NEG
    hi: int = _POS
    net: Hashable = None

    def overlaps(self, other: "Occupant") -> bool:
        return self.lo <= other.hi and other.lo <= self.hi


def occupant_separation(
    a: Occupant,
    b: Occupant,
    tech: Technology,
    gate_pairs: GatePairs = frozenset(),
) -> int:
    """Minimum centre-to-centre distance between two column occupants.

    Zero when the occupants cannot interact: unrelated layers,
    disjoint extents along the other axis, a shared net on one layer,
    or an intended gate crossing.
    """
    if not a.overlaps(b):
        return 0
    half_widths = -(-(a.width + b.width) // 2)  # ceil division
    if a.layer == b.layer:
        if a.net is not None and a.net == b.net:
            return 0
        return half_widths + tech.min_separation(a.layer)
    pair = {a.layer, b.layer}
    if pair == {"poly", "diffusion"}:
        if a.net is not None and a.net == b.net:
            return 0  # joined by a buried/butting contact: one node
        poly, diff = (a, b) if a.layer == "poly" else (b, a)
        if (poly.net, diff.net) in gate_pairs:
            return 0
        return half_widths + tech.lam(1)
    return 0


def column_separation(
    left: list[Occupant],
    right: list[Occupant],
    tech: Technology,
    gate_pairs: GatePairs = frozenset(),
) -> int:
    """Minimum spacing between two adjacent columns (0 when unrelated)."""
    best = 0
    for a in left:
        for b in right:
            best = max(best, occupant_separation(a, b, tech, gate_pairs))
    return best
