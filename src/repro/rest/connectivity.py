"""Net extraction for symbolic cells.

Compaction must know which shapes belong to one electrical node:
same-layer shapes of one net may touch (no separation rule), and a
poly wire crossing diffusion *at its own transistor* is a gate, not a
spacing violation.  This module builds that connectivity by union-find
over coincident coordinates:

* wires on one layer join where a vertex of one lies on a segment of
  the other;
* pins join the same-layer wire they sit on;
* contacts fuse the nets of their two layers at their point;
* a device's gate net is the poly passing through its centre, its
  channel net the diffusion doing so.

Keys are ``("w", i)``, ``("p", i)``, ``("c", i)``, ``("dg", i)``,
``("dc", i)`` over the cell's component lists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from repro.geometry.point import Point
from repro.sticks.model import SticksCell, SymbolicWire

Key = tuple[str, int]


@dataclass
class Connectivity:
    """The nets of one cell."""

    _parent: dict[Key, Key] = field(default_factory=dict)
    #: (gate net, channel net) pairs, one per device, roots resolved.
    gate_pairs: set[tuple[Hashable, Hashable]] = field(default_factory=set)

    def _ensure(self, key: Key) -> None:
        self._parent.setdefault(key, key)

    def find(self, key: Key) -> Key:
        self._ensure(key)
        root = key
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[key] != root:  # path compression
            self._parent[key], key = root, self._parent[key]
        return root

    def union(self, a: Key, b: Key) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[rb] = ra

    def net(self, key: Key) -> Key:
        return self.find(key)

    def same_net(self, a: Key, b: Key) -> bool:
        return self.find(a) == self.find(b)


def _on_wire(wire: SymbolicWire, p: Point) -> bool:
    """Is ``p`` on the wire's centreline (vertices included)?"""
    for a, b in zip(wire.points, wire.points[1:]):
        if (
            min(a.x, b.x) <= p.x <= max(a.x, b.x)
            and min(a.y, b.y) <= p.y <= max(a.y, b.y)
            and (a.x == b.x == p.x or a.y == b.y == p.y)
        ):
            return True
    return len(wire.points) == 1 and wire.points[0] == p


def build_connectivity(cell: SticksCell) -> Connectivity:
    """Extract the nets of ``cell``."""
    conn = Connectivity()

    # Wire-wire joins on one layer.
    for i, wi in enumerate(cell.wires):
        conn._ensure(("w", i))
        for j in range(i):
            wj = cell.wires[j]
            if wi.layer != wj.layer:
                continue
            if any(_on_wire(wj, p) for p in wi.points) or any(
                _on_wire(wi, p) for p in wj.points
            ):
                conn.union(("w", i), ("w", j))

    # Pins join wires (and other pins) of their layer at their point.
    for i, pin in enumerate(cell.pins):
        conn._ensure(("p", i))
        for j, wire in enumerate(cell.wires):
            if wire.layer == pin.layer and _on_wire(wire, pin.point):
                conn.union(("p", i), ("w", j))
        for j in range(i):
            other = cell.pins[j]
            if other.layer == pin.layer and other.point == pin.point:
                conn.union(("p", i), ("p", j))

    # Contacts fuse their two layers at their point.
    for i, contact in enumerate(cell.contacts):
        conn._ensure(("c", i))
        for layer in (contact.layer_a, contact.layer_b):
            for j, wire in enumerate(cell.wires):
                if wire.layer == layer and _on_wire(wire, contact.point):
                    conn.union(("c", i), ("w", j))
            for j, pin in enumerate(cell.pins):
                if pin.layer == layer and pin.point == contact.point:
                    conn.union(("c", i), ("p", j))

    # Devices: gate on poly, channel on diffusion.
    for i, device in enumerate(cell.devices):
        conn._ensure(("dg", i))
        conn._ensure(("dc", i))
        for j, wire in enumerate(cell.wires):
            if not _on_wire(wire, device.center):
                continue
            if wire.layer == "poly":
                conn.union(("dg", i), ("w", j))
            elif wire.layer == "diffusion":
                conn.union(("dc", i), ("w", j))

    for i in range(len(cell.devices)):
        conn.gate_pairs.add((conn.find(("dg", i)), conn.find(("dc", i))))
    return conn
