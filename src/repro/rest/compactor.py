"""One-dimensional compaction of Sticks cells.

Every distinct coordinate along the working axis is a *column*; a
constraint graph chains adjacent columns at their design-rule
separation, optional pins nail columns to absolute positions, and the
longest-path solution gives each column its new coordinate.  A
monotone piecewise-linear map then rewrites the whole cell (boundary
included) into the solved coordinates.
"""

from __future__ import annotations

from repro.geometry.layers import Technology
from repro.obs import metrics, trace
from repro.rest.connectivity import Connectivity, build_connectivity
from repro.rest.errors import InfeasibleConstraints
from repro.rest.graph import ConstraintGraph
from repro.rest.spacing import Occupant, column_separation
from repro.sticks.model import SticksCell, VERTICAL

AXES = ("x", "y")


def _coord(point, axis: str) -> int:
    return point.x if axis == "x" else point.y


def _other(point, axis: str) -> int:
    return point.y if axis == "x" else point.x


def column_occupants(
    cell: SticksCell,
    tech: Technology,
    axis: str,
    connectivity: Connectivity | None = None,
) -> dict[int, list[Occupant]]:
    """Group the cell's components into columns along ``axis``.

    Every occupant carries its extent along the other axis (interval
    shadowing) and its net (same-net shapes and intended gate
    crossings are exempt from separation); the separation rules then
    only fire between occupants that can actually collide.
    """
    if axis not in AXES:
        raise ValueError(f"axis must be 'x' or 'y', got {axis!r}")
    conn = connectivity or build_connectivity(cell)
    columns: dict[int, list[Occupant]] = {}

    def add(coordinate: int, occupant: Occupant) -> None:
        columns.setdefault(coordinate, []).append(occupant)

    for i, pin in enumerate(cell.pins):
        width = pin.width if pin.width is not None else tech.min_width(pin.layer)
        o = _other(pin.point, axis)
        half = width // 2
        add(
            _coord(pin.point, axis),
            Occupant(pin.layer, width, o - half, o + half, conn.net(("p", i))),
        )

    for i, wire in enumerate(cell.wires):
        width = wire.width if wire.width is not None else tech.min_width(wire.layer)
        half = width // 2
        others = [_other(p, axis) for p in wire.points]
        lo, hi = min(others) - half, max(others) + half
        net = conn.net(("w", i))
        for point in wire.points:
            add(_coord(point, axis), Occupant(wire.layer, width, lo, hi, net))

    for i, device in enumerate(cell.devices):
        length = device.length if device.length is not None else tech.lam(2)
        width = device.width if device.width is not None else tech.lam(2)
        overhang = 2 * tech.lam(2)
        if device.orientation == VERTICAL:
            diff_across, diff_along = width, length + overhang
            poly_across, poly_along = width + overhang, length
        else:
            diff_across, diff_along = length + overhang, width
            poly_across, poly_along = length, width + overhang
        if axis == "y":
            diff_across, diff_along = diff_along, diff_across
            poly_across, poly_along = poly_along, poly_across
        c = _coord(device.center, axis)
        o = _other(device.center, axis)
        add(
            c,
            Occupant(
                "diffusion",
                diff_across,
                o - diff_along // 2,
                o + diff_along // 2,
                conn.net(("dc", i)),
            ),
        )
        add(
            c,
            Occupant(
                "poly",
                poly_across,
                o - poly_along // 2,
                o + poly_along // 2,
                conn.net(("dg", i)),
            ),
        )

    for i, contact in enumerate(cell.contacts):
        c = _coord(contact.point, axis)
        o = _other(contact.point, axis)
        net = conn.net(("c", i))
        pad = tech.lam(4)
        add(c, Occupant(contact.layer_a, pad, o - pad // 2, o + pad // 2, net))
        add(c, Occupant(contact.layer_b, pad, o - pad // 2, o + pad // 2, net))
        cut = tech.lam(2)
        add(c, Occupant("contact", cut, o - cut // 2, o + cut // 2, net))

    return columns


def solve_axis(
    cell: SticksCell,
    tech: Technology,
    axis: str,
    pinned: dict[str, int] | None = None,
) -> dict[int, int]:
    """Solve new column positions along ``axis``.

    ``pinned`` maps pin names to absolute target coordinates; the
    returned dict maps each old column coordinate to its new value.
    Raises :class:`InfeasibleConstraints` when targets contradict the
    design rules or each other (e.g. targets that would reorder
    connectors).
    """
    pinned = pinned or {}
    with trace.span(
        "rest.solve_axis", cell=cell.name, axis=axis, pins=len(pinned)
    ) as span:
        return _solve_axis(cell, tech, axis, pinned, span)


def _solve_axis(
    cell: SticksCell,
    tech: Technology,
    axis: str,
    pinned: dict[str, int],
    span,
) -> dict[int, int]:
    connectivity = build_connectivity(cell)
    columns = column_occupants(cell, tech, axis, connectivity)
    ordered = sorted(columns)
    if not ordered:
        return {}

    graph = ConstraintGraph()
    for col in ordered:
        graph.add_variable(("col", col))
    # Order preservation between neighbours, plus a separation
    # constraint for *every* interacting pair — adjacent-only
    # constraints would let two same-layer columns merge whenever an
    # unrelated column sits between them.
    for a, b in zip(ordered, ordered[1:]):
        graph.add_min_separation(("col", a), ("col", b), 0)
    for i, a in enumerate(ordered):
        for b in ordered[i + 1 :]:
            separation = column_separation(
                columns[a], columns[b], tech, connectivity.gate_pairs
            )
            if separation > 0:
                graph.add_min_separation(("col", a), ("col", b), separation)

    targets: list[int] = []
    for pin_name, target in pinned.items():
        pin = cell.pin(pin_name)  # KeyError on unknown pin, intentionally
        graph.pin(("col", _coord(pin.point, axis)), target)
        targets.append(target)

    bound = min(ordered + targets) if targets else 0
    metrics.counter("rest.solves").inc()
    metrics.histogram("rest.columns").observe(len(ordered))
    span.set("columns", len(ordered)).set("edges", graph.edge_count)
    try:
        solved = graph.solve(default_lower_bound=min(0, bound))
    except InfeasibleConstraints as exc:
        metrics.counter("rest.infeasible").inc()
        raise InfeasibleConstraints(
            f"cell {cell.name!r}, axis {axis}: {exc}"
        ) from exc
    return {col: solved[("col", col)] for col in ordered}


def make_coordinate_map(mapping: dict[int, int]):
    """A monotone piecewise-linear extension of a column mapping.

    Coordinates at columns map exactly; coordinates between columns
    interpolate linearly (integer arithmetic); coordinates outside the
    column range translate rigidly with the nearest end.
    """
    if not mapping:
        return lambda c: c
    ordered = sorted(mapping)

    def mapper(c: int) -> int:
        if c in mapping:
            return mapping[c]
        first, last = ordered[0], ordered[-1]
        if c <= first:
            return c + (mapping[first] - first)
        if c >= last:
            return c + (mapping[last] - last)
        # binary search for the surrounding pair
        lo, hi = 0, len(ordered) - 1
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if ordered[mid] <= c:
                lo = mid
            else:
                hi = mid
        a, b = ordered[lo], ordered[hi]
        na, nb = mapping[a], mapping[b]
        return na + (c - a) * (nb - na) // (b - a)

    return mapper


def compact_axis(
    cell: SticksCell,
    tech: Technology,
    axis: str,
    pinned: dict[str, int] | None = None,
    name: str | None = None,
) -> SticksCell:
    """Compact (or stretch, when pinned) ``cell`` along one axis."""
    mapping = solve_axis(cell, tech, axis, pinned)
    mapper = make_coordinate_map(mapping)
    identity = lambda c: c  # noqa: E731 - tiny lambda clearer inline
    map_x = mapper if axis == "x" else identity
    map_y = mapper if axis == "y" else identity
    return cell.remapped(name or cell.name, map_x, map_y)


def compact(
    cell: SticksCell, tech: Technology, name: str | None = None
) -> SticksCell:
    """Full two-axis compaction: pack toward the origin, design rules kept."""
    out = compact_axis(cell, tech, "x", name=name or cell.name)
    return compact_axis(out, tech, "y", name=name or cell.name)
