"""Difference-constraint graphs with a longest-path solver.

A constraint ``position(v) - position(u) >= d`` is an edge ``u -> v``
of weight ``d``.  The minimal feasible assignment (the compacted
layout) is the longest-path distance from a virtual source; a positive
cycle means the constraints contradict each other.

This is the classical formulation of one-dimensional layout
compaction, which is what REST supplied to Riot.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from repro.obs import metrics
from repro.rest.errors import InfeasibleConstraints

SOURCE = "__source__"


class ConstraintGraph:
    """A system of difference constraints over hashable variables."""

    def __init__(self) -> None:
        self._edges: list[tuple[Hashable, Hashable, int]] = []
        self._variables: dict[Hashable, None] = {}  # insertion-ordered set

    # -- building ----------------------------------------------------------

    def add_variable(self, v: Hashable) -> None:
        if v == SOURCE:
            raise ValueError(f"{SOURCE!r} is reserved for the virtual source")
        self._variables.setdefault(v, None)

    def add_min_separation(self, u: Hashable, v: Hashable, d: int) -> None:
        """Require ``position(v) - position(u) >= d``."""
        self.add_variable(u)
        self.add_variable(v)
        self._edges.append((u, v, d))

    def add_max_separation(self, u: Hashable, v: Hashable, d: int) -> None:
        """Require ``position(v) - position(u) <= d``."""
        self.add_min_separation(v, u, -d)

    def add_equality(self, u: Hashable, v: Hashable, d: int = 0) -> None:
        """Require ``position(v) - position(u) == d``."""
        self.add_min_separation(u, v, d)
        self.add_max_separation(u, v, d)

    def pin(self, v: Hashable, value: int) -> None:
        """Require ``position(v) == value`` (absolute)."""
        self.add_variable(v)
        self._edges.append((SOURCE, v, value))
        self._edges.append((v, SOURCE, -value))

    def set_lower_bound(self, v: Hashable, value: int) -> None:
        """Require ``position(v) >= value`` (absolute)."""
        self.add_variable(v)
        self._edges.append((SOURCE, v, value))

    @property
    def variables(self) -> list[Hashable]:
        return list(self._variables)

    @property
    def edge_count(self) -> int:
        return len(self._edges)

    # -- solving ---------------------------------------------------------------

    def solve(self, default_lower_bound: int | None = 0) -> dict[Hashable, int]:
        """Minimal feasible positions via Bellman-Ford longest path.

        ``default_lower_bound`` (when not None) gives every variable an
        implicit ``position >= bound``; without it, variables with no
        absolute constraint at all would be unbounded below and are
        reported as infeasible.

        Raises :class:`InfeasibleConstraints` on a positive cycle,
        naming the variables on the cycle.
        """
        edges = list(self._edges)
        if default_lower_bound is not None:
            for v in self._variables:
                edges.append((SOURCE, v, default_lower_bound))

        dist: dict[Hashable, float] = {v: float("-inf") for v in self._variables}
        dist[SOURCE] = 0
        pred: dict[Hashable, Hashable] = {}

        n = len(self._variables) + 1
        rounds = 0
        for _ in range(n - 1):
            rounds += 1
            changed = False
            for u, v, d in edges:
                if dist[u] != float("-inf") and dist[u] + d > dist[v]:
                    dist[v] = dist[u] + d
                    pred[v] = u
                    changed = True
            if not changed:
                break
        metrics.counter("rest.iterations").inc(rounds)

        # One more pass: any further relaxation proves a positive cycle.
        for u, v, d in edges:
            if dist[u] != float("-inf") and dist[u] + d > dist[v]:
                raise InfeasibleConstraints(
                    "constraints admit no solution",
                    cycle=self._extract_cycle(pred, v),
                )

        unreachable = [v for v in self._variables if dist[v] == float("-inf")]
        if unreachable:
            raise InfeasibleConstraints(
                f"variables with no lower bound: {unreachable[:5]}"
            )
        return {v: int(dist[v]) for v in self._variables}

    def _extract_cycle(
        self, pred: dict[Hashable, Hashable], start: Hashable
    ) -> list[Hashable]:
        """Walk predecessors from a relaxed vertex to recover a cycle."""
        # After n-1 rounds plus a relaxable edge, walking n predecessor
        # steps from `start` must land inside the cycle.
        v = start
        for _ in range(len(self._variables) + 1):
            v = pred.get(v, SOURCE)
        cycle = [v]
        u = pred.get(v, SOURCE)
        while u != v and u != SOURCE:
            cycle.append(u)
            u = pred.get(u, SOURCE)
        cycle.reverse()
        return [c for c in cycle if c != SOURCE]


def chain_constraints(
    graph: ConstraintGraph, ordered: Iterable[Hashable], separation: int
) -> None:
    """Convenience: require each consecutive pair be >= ``separation`` apart."""
    items = list(ordered)
    for u, v in zip(items, items[1:]):
        graph.add_min_separation(u, v, separation)
