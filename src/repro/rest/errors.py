"""REST error types."""

from __future__ import annotations

from repro.errors import ReproError


class InfeasibleConstraints(ReproError):
    """The constraint system admits no solution.

    Raised when pinned connector positions contradict each other or
    the design rules (a positive cycle in the constraint graph).
    ``cycle`` lists the variables on one offending cycle when known.
    """

    code = "rest.infeasible"

    def __init__(self, message: str, cycle: list | None = None):
        self.cycle = cycle or []
        if self.cycle:
            chain = " -> ".join(str(v) for v in self.cycle)
            message = f"{message} (cycle: {chain})"
        super().__init__(message)
