"""Expansion of symbolic Sticks cells into mask geometry.

Riot converts its composition output "to CIF for mask generation";
sticks leaf cells therefore need real geometry.  The expansion follows
the Mead-Conway NMOS recipes:

* wires fatten to their width (technology minimum when unspecified);
* contacts become a 2-lambda contact cut with 4-lambda pads on both
  connected layers;
* transistors become poly crossing diffusion with 2-lambda overhangs
  on both layers; depletion devices add an implant box over the
  channel.
"""

from __future__ import annotations

from repro.cif.semantics import CifCell, CifConnector
from repro.geometry.box import Box
from repro.geometry.layers import Technology
from repro.geometry.path import Path
from repro.geometry.point import Point
from repro.sticks.errors import SticksError
from repro.sticks.model import DEPLETION, Contact, Device, SticksCell, VERTICAL


def expand_to_cif(
    cell: SticksCell, technology: Technology, number: int = 0
) -> CifCell:
    """Expand ``cell`` into an elaborated :class:`CifCell`.

    Pins become ``94`` connectors; the result can be written straight
    to CIF with :func:`repro.cif.write_cif`.
    """
    cell.validate()
    result = CifCell(number, cell.name)

    for wire in cell.wires:
        layer = technology.layer(wire.layer)
        width = wire.width if wire.width is not None else technology.min_width(layer)
        result.geometry.paths.append(Path(layer, width, wire.points))

    for contact in cell.contacts:
        _expand_contact(result, contact, technology)

    for device in cell.devices:
        _expand_device(result, device, technology)

    for pin in cell.pins:
        layer = technology.layer(pin.layer)
        width = pin.width if pin.width is not None else technology.min_width(layer)
        result.connectors.append(CifConnector(pin.name, pin.point, layer, width))

    if cell.boundary is None and result.geometry.shape_count == 0:
        raise SticksError(f"cell {cell.name!r} expands to no geometry")
    return result


def expanded_bounding_box(cell: SticksCell, technology: Technology) -> Box:
    """The mask-level bounding box: explicit boundary when declared,
    otherwise the box of the expanded geometry."""
    if cell.boundary is not None:
        return cell.boundary
    return expand_to_cif(cell, technology).geometry.bounding_box()


def _box_at(center: Point, width: int, height: int, what: str) -> Box:
    try:
        return Box.from_center(center, width, height)
    except ValueError as exc:
        raise SticksError(f"{what}: {exc}") from None


def _expand_contact(result: CifCell, contact: Contact, tech: Technology) -> None:
    cut = tech.lam(2)
    pad = tech.lam(4)
    # Poly-diffusion joins are buried contacts in NMOS; everything
    # else goes through a metal contact cut.
    cut_layer = (
        "buried"
        if {contact.layer_a, contact.layer_b} == {"poly", "diffusion"}
        else "contact"
    )
    result.geometry.boxes.append(
        (tech.layer(cut_layer), _box_at(contact.point, cut, cut, "contact cut"))
    )
    for layer_name in (contact.layer_a, contact.layer_b):
        result.geometry.boxes.append(
            (
                tech.layer(layer_name),
                _box_at(contact.point, pad, pad, f"contact pad on {layer_name}"),
            )
        )


def _expand_device(result: CifCell, device: Device, tech: Technology) -> None:
    length = device.length if device.length is not None else tech.lam(2)
    width = device.width if device.width is not None else tech.lam(2)
    overhang = tech.lam(2)

    if device.orientation == VERTICAL:
        # Diffusion runs vertically (current flow vertical); the poly
        # gate crosses it horizontally.
        diff_w, diff_h = width, length + 2 * overhang
        poly_w, poly_h = width + 2 * overhang, length
    else:
        diff_w, diff_h = length + 2 * overhang, width
        poly_w, poly_h = length, width + 2 * overhang

    result.geometry.boxes.append(
        (
            tech.layer("diffusion"),
            _box_at(device.center, diff_w, diff_h, "device diffusion"),
        )
    )
    result.geometry.boxes.append(
        (tech.layer("poly"), _box_at(device.center, poly_w, poly_h, "device gate"))
    )
    if device.kind == DEPLETION:
        grow = tech.lam(2)
        channel_w = width if device.orientation == VERTICAL else length
        channel_h = length if device.orientation == VERTICAL else width
        result.geometry.boxes.append(
            (
                tech.layer("implant"),
                _box_at(
                    device.center,
                    channel_w + 2 * grow,
                    channel_h + 2 * grow,
                    "device implant",
                ),
            )
        )
