"""Parser for the Sticks text format.

The format is line-oriented:

```
STICKS cellname
BBOX llx lly urx ury            # optional explicit boundary
PIN name layer x y [width]
WIRE layer width x1 y1 x2 y2 ...    # width may be '-' for default
DEVICE kind x y orient [length width]
CONTACT layerA layerB x y
END
```

``#`` starts a comment; blank lines are ignored.  Layer names are the
logical names of the technology ("metal", "poly", "diffusion").
Multiple cells may appear in one file.
"""

from __future__ import annotations

from repro.geometry.box import Box
from repro.geometry.point import Point
from repro.sticks.errors import SticksError
from repro.sticks.model import (
    DEVICE_KINDS,
    DEVICE_ORIENTATIONS,
    Contact,
    Device,
    Pin,
    SticksCell,
    SymbolicWire,
)


def parse_sticks(text: str) -> list[SticksCell]:
    """Parse a Sticks file into its (validated) cells."""
    cells: list[SticksCell] = []
    current: SticksCell | None = None

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        fields = line.split()
        keyword = fields[0].upper()
        args = fields[1:]

        if keyword == "STICKS":
            if current is not None:
                raise SticksError("STICKS before END of previous cell", lineno)
            if len(args) != 1:
                raise SticksError("STICKS needs exactly one name", lineno)
            current = SticksCell(args[0])
            continue

        if current is None:
            raise SticksError(f"{keyword} outside a STICKS/END block", lineno)

        if keyword == "END":
            if args:
                raise SticksError("END takes no arguments", lineno)
            current.validate()
            cells.append(current)
            current = None
        elif keyword == "BBOX":
            current.boundary = Box(*_ints(args, 4, "BBOX", lineno))
        elif keyword == "PIN":
            current.pins.append(_parse_pin(args, lineno))
        elif keyword == "WIRE":
            current.wires.append(_parse_wire(args, lineno))
        elif keyword == "DEVICE":
            current.devices.append(_parse_device(args, lineno))
        elif keyword == "CONTACT":
            current.contacts.append(_parse_contact(args, lineno))
        else:
            raise SticksError(f"unknown keyword {keyword!r}", lineno)

    if current is not None:
        raise SticksError(f"cell {current.name!r} missing END")
    return cells


def _int(token: str, what: str, lineno: int) -> int:
    try:
        return int(token)
    except ValueError:
        raise SticksError(f"{what}: {token!r} is not an integer", lineno) from None


def _ints(tokens: list[str], count: int, what: str, lineno: int) -> list[int]:
    if len(tokens) != count:
        raise SticksError(
            f"{what} needs {count} integers, got {len(tokens)}", lineno
        )
    return [_int(t, what, lineno) for t in tokens]


def _width(token: str, lineno: int) -> int | None:
    if token == "-":
        return None
    value = _int(token, "width", lineno)
    if value <= 0:
        raise SticksError(f"width must be positive, got {value}", lineno)
    return value


def _parse_pin(args: list[str], lineno: int) -> Pin:
    if len(args) not in (4, 5):
        raise SticksError("PIN needs: name layer x y [width]", lineno)
    name, layer = args[0], args[1]
    x = _int(args[2], "PIN x", lineno)
    y = _int(args[3], "PIN y", lineno)
    width = _width(args[4], lineno) if len(args) == 5 else None
    return Pin(name, layer, Point(x, y), width)


def _parse_wire(args: list[str], lineno: int) -> SymbolicWire:
    if len(args) < 6:
        raise SticksError("WIRE needs: layer width x1 y1 x2 y2 ...", lineno)
    layer = args[0]
    width = _width(args[1], lineno)
    coords = args[2:]
    if len(coords) % 2:
        raise SticksError("WIRE has an odd number of coordinates", lineno)
    points = tuple(
        Point(_int(coords[i], "WIRE x", lineno), _int(coords[i + 1], "WIRE y", lineno))
        for i in range(0, len(coords), 2)
    )
    try:
        return SymbolicWire(layer, points, width)
    except SticksError as exc:
        raise SticksError(str(exc), lineno) from None


def _parse_device(args: list[str], lineno: int) -> Device:
    if len(args) not in (4, 6):
        raise SticksError("DEVICE needs: kind x y orient [length width]", lineno)
    kind = args[0].lower()
    if kind not in DEVICE_KINDS:
        raise SticksError(f"unknown device kind {args[0]!r}", lineno)
    x = _int(args[1], "DEVICE x", lineno)
    y = _int(args[2], "DEVICE y", lineno)
    orient = args[3].lower()
    if orient not in DEVICE_ORIENTATIONS:
        raise SticksError(f"unknown device orientation {args[3]!r}", lineno)
    length = width = None
    if len(args) == 6:
        length = _dimension(args[4], "DEVICE length", lineno)
        width = _dimension(args[5], "DEVICE width", lineno)
    return Device(kind, Point(x, y), orient, length, width)


def _dimension(token: str, what: str, lineno: int) -> int | None:
    """A device dimension: an integer or '-' for the technology default."""
    if token == "-":
        return None
    value = _int(token, what, lineno)
    if value <= 0:
        raise SticksError(f"{what} must be positive, got {value}", lineno)
    return value


def _parse_contact(args: list[str], lineno: int) -> Contact:
    if len(args) != 4:
        raise SticksError("CONTACT needs: layerA layerB x y", lineno)
    try:
        return Contact(
            args[0],
            args[1],
            Point(_int(args[2], "CONTACT x", lineno), _int(args[3], "CONTACT y", lineno)),
        )
    except SticksError as exc:
        raise SticksError(str(exc), lineno) from None
