"""Sticks error type."""

from __future__ import annotations


class SticksError(Exception):
    """A syntax or semantic error in a Sticks description."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
