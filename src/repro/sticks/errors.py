"""Sticks error type."""

from __future__ import annotations

from repro.errors import ReproError


class SticksError(ReproError):
    """A syntax or semantic error in a Sticks description."""

    code = "sticks.error"

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
