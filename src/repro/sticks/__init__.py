"""Sticks symbolic layout (substrate S3).

The "Sticks Standard" [Trimberger 1980] is the symbolic-layout
interchange format of the Caltech flow: cells are described as pins,
symbolic wires, transistors and contacts on a virtual grid, with no
committed design-rule spacing.  Riot reads Sticks leaf cells, writes
Sticks for simulation, builds its river-route cells as Sticks cells,
and stretches Sticks cells through the REST optimizer.
"""

from repro.sticks.errors import SticksError
from repro.sticks.model import Contact, Device, Pin, SticksCell, SymbolicWire
from repro.sticks.parser import parse_sticks
from repro.sticks.writer import write_sticks
from repro.sticks.expand import expand_to_cif

__all__ = [
    "SticksError",
    "SticksCell",
    "Pin",
    "SymbolicWire",
    "Device",
    "Contact",
    "parse_sticks",
    "write_sticks",
    "expand_to_cif",
]
