"""The symbolic layout model.

A Sticks cell is a set of symbolic components whose coordinates are
*topological*: they fix relative order, not final spacing.  The REST
optimizer (``repro.rest``) may move every coordinate, preserving order
and connectivity, which is exactly what makes Riot's stretch
connection possible.

Components:

* :class:`Pin` — an external connector (name, layer, width).
* :class:`SymbolicWire` — a Manhattan wire on one layer.
* :class:`Device` — an NMOS transistor (enhancement or depletion),
  drawn as poly crossing diffusion.
* :class:`Contact` — an inter-layer contact at a point.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Iterator

from repro.geometry.box import Box
from repro.geometry.point import Point
from repro.sticks.errors import SticksError

ENHANCEMENT = "enh"
DEPLETION = "dep"
DEVICE_KINDS = (ENHANCEMENT, DEPLETION)

HORIZONTAL = "h"
VERTICAL = "v"
DEVICE_ORIENTATIONS = (HORIZONTAL, VERTICAL)


@dataclass(frozen=True)
class Pin:
    """An external connection point of the cell.

    ``width`` is the wire width of the connection (``None`` means the
    technology minimum for the layer); pins become ``94`` connector
    extensions when the cell is expanded to CIF.
    """

    name: str
    layer: str
    point: Point
    width: int | None = None


@dataclass(frozen=True)
class SymbolicWire:
    """A Manhattan wire on one layer with at least two points."""

    layer: str
    points: tuple[Point, ...]
    width: int | None = None

    def __post_init__(self) -> None:
        if len(self.points) < 2:
            raise SticksError("a symbolic wire needs at least 2 points")
        for a, b in zip(self.points, self.points[1:]):
            if not a.is_orthogonal_to(b):
                raise SticksError(f"non-Manhattan wire segment {a} -> {b}")

    def segments(self) -> Iterator[tuple[Point, Point]]:
        yield from zip(self.points, self.points[1:])


@dataclass(frozen=True)
class Device:
    """An NMOS transistor: poly crossing diffusion at ``center``.

    ``orientation`` is the direction of current flow through the
    channel: ``"v"`` means the diffusion runs vertically (gate poly is
    horizontal), ``"h"`` the opposite.  ``length`` and ``width`` are
    the channel dimensions in centimicrons (``None`` = technology
    minimum, 2 lambda each).
    """

    kind: str
    center: Point
    orientation: str = VERTICAL
    length: int | None = None
    width: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in DEVICE_KINDS:
            raise SticksError(
                f"device kind must be one of {DEVICE_KINDS}, got {self.kind!r}"
            )
        if self.orientation not in DEVICE_ORIENTATIONS:
            raise SticksError(
                f"device orientation must be one of {DEVICE_ORIENTATIONS}, "
                f"got {self.orientation!r}"
            )


@dataclass(frozen=True)
class Contact:
    """An inter-layer contact at a point."""

    layer_a: str
    layer_b: str
    point: Point

    def __post_init__(self) -> None:
        if self.layer_a == self.layer_b:
            raise SticksError(f"contact layers must differ, got {self.layer_a!r} twice")


@dataclass
class SticksCell:
    """A symbolic cell: components plus an optional explicit boundary.

    When ``boundary`` is None, the cell's bounding box is derived from
    its expanded geometry; leaf-cell designers usually declare an
    explicit boundary so abutting cells share power-rail pitch.
    """

    name: str
    pins: list[Pin] = field(default_factory=list)
    wires: list[SymbolicWire] = field(default_factory=list)
    devices: list[Device] = field(default_factory=list)
    contacts: list[Contact] = field(default_factory=list)
    boundary: Box | None = None

    # -- lookup -----------------------------------------------------------

    def pin(self, name: str) -> Pin:
        for pin in self.pins:
            if pin.name == name:
                return pin
        raise KeyError(f"sticks cell {self.name!r} has no pin {name!r}")

    def has_pin(self, name: str) -> bool:
        return any(pin.name == name for pin in self.pins)

    @property
    def component_count(self) -> int:
        return (
            len(self.pins) + len(self.wires) + len(self.devices) + len(self.contacts)
        )

    # -- coordinates --------------------------------------------------------

    def all_points(self) -> Iterator[Point]:
        """Every symbolic coordinate in the cell (boundary excluded)."""
        for pin in self.pins:
            yield pin.point
        for wire in self.wires:
            yield from wire.points
        for device in self.devices:
            yield device.center
        for contact in self.contacts:
            yield contact.point

    def symbolic_bounding_box(self) -> Box:
        """The box of symbolic coordinates (no design-rule fattening)."""
        if self.boundary is not None:
            return self.boundary
        points = list(self.all_points())
        if not points:
            raise SticksError(f"sticks cell {self.name!r} is empty")
        return Box.from_points(points)

    # -- structural validation ------------------------------------------------

    def validate(self) -> None:
        """Check structural invariants; raise :class:`SticksError` if broken.

        * pin names are unique;
        * every pin lies on or inside the boundary (when declared);
        * the cell is non-empty.
        """
        if self.component_count == 0:
            raise SticksError(f"sticks cell {self.name!r} is empty")
        seen: set[str] = set()
        for pin in self.pins:
            if pin.name in seen:
                raise SticksError(
                    f"duplicate pin {pin.name!r} in cell {self.name!r}"
                )
            seen.add(pin.name)
        if self.boundary is not None:
            for pin in self.pins:
                if not self.boundary.contains_point(pin.point):
                    raise SticksError(
                        f"pin {pin.name!r} at {pin.point} lies outside the "
                        f"boundary {self.boundary} of cell {self.name!r}"
                    )

    # -- transformation ---------------------------------------------------------

    def remapped(
        self,
        name: str,
        map_x: Callable[[int], int],
        map_y: Callable[[int], int],
    ) -> "SticksCell":
        """A copy with every coordinate pushed through the axis maps.

        Both maps must be monotonically non-decreasing for the result
        to remain a valid symbolic layout; the REST solver guarantees
        this for the maps it produces.
        """

        def mp(p: Point) -> Point:
            return Point(map_x(p.x), map_y(p.y))

        new_boundary = None
        if self.boundary is not None:
            new_boundary = Box(
                map_x(self.boundary.llx),
                map_y(self.boundary.lly),
                map_x(self.boundary.urx),
                map_y(self.boundary.ury),
            )
        return SticksCell(
            name=name,
            pins=[replace(pin, point=mp(pin.point)) for pin in self.pins],
            wires=[
                replace(wire, points=tuple(mp(p) for p in wire.points))
                for wire in self.wires
            ],
            devices=[replace(dev, center=mp(dev.center)) for dev in self.devices],
            contacts=[replace(c, point=mp(c.point)) for c in self.contacts],
            boundary=new_boundary,
        )

    def translated(self, dx: int, dy: int) -> "SticksCell":
        return self.remapped(self.name, lambda x: x + dx, lambda y: y + dy)
