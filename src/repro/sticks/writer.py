"""Writer for the Sticks text format — exact inverse of the parser."""

from __future__ import annotations

from repro.sticks.model import SticksCell


def write_sticks(cells: list[SticksCell]) -> str:
    """Serialise ``cells`` to Sticks text."""
    lines: list[str] = ["# Sticks written by repro.riot"]
    for cell in cells:
        lines.append(f"STICKS {cell.name}")
        if cell.boundary is not None:
            b = cell.boundary
            lines.append(f"BBOX {b.llx} {b.lly} {b.urx} {b.ury}")
        for pin in cell.pins:
            suffix = f" {pin.width}" if pin.width is not None else ""
            lines.append(
                f"PIN {pin.name} {pin.layer} {pin.point.x} {pin.point.y}{suffix}"
            )
        for wire in cell.wires:
            width = "-" if wire.width is None else str(wire.width)
            coords = " ".join(f"{p.x} {p.y}" for p in wire.points)
            lines.append(f"WIRE {wire.layer} {width} {coords}")
        for device in cell.devices:
            dims = ""
            if device.length is not None or device.width is not None:
                length = "-" if device.length is None else str(device.length)
                dwidth = "-" if device.width is None else str(device.width)
                dims = f" {length} {dwidth}"
            lines.append(
                f"DEVICE {device.kind} {device.center.x} {device.center.y} "
                f"{device.orientation}{dims}"
            )
        for contact in cell.contacts:
            lines.append(
                f"CONTACT {contact.layer_a} {contact.layer_b} "
                f"{contact.point.x} {contact.point.y}"
            )
        lines.append("END")
    return "\n".join(lines) + "\n"
